// Table 6: weighted completeness of Linux systems and emulation layers,
// with suggested APIs to add.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/systems.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 6: Linux systems / emulation layers");
  const auto& dataset = *bench::FullStudy().dataset;

  TableWriter table({"System", "#", "Paper W.Comp.", "Measured W.Comp.",
                     "Suggested APIs to add (measured)"});
  for (const auto& plan : corpus::LinuxSystemPlans()) {
    auto profile = corpus::BuildSystemProfile(dataset, plan);
    auto eval = core::EvaluateSystem(dataset, profile);
    std::vector<std::string> suggested;
    for (const auto& api : eval.suggested) {
      suggested.push_back(std::string(
          corpus::SyscallName(static_cast<int>(api.code))));
    }
    table.AddRow({plan.name, std::to_string(eval.supported_count),
                  bench::Pct(plan.paper_completeness, 2),
                  bench::Pct(eval.weighted_completeness, 2),
                  Join(suggested, ", ")});
  }
  table.Print(std::cout);
  return 0;
}
