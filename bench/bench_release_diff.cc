// Release-over-release API-usage diff — the longitudinal study the paper
// could not run for lack of historical data (§2.4), demonstrated on two
// simulated releases: "15.04" (the paper's measurements) and a hypothetical
// next release where the secure/modern variant outreach of §6 succeeded
// (faccessat & friends adopted 15x more widely).

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/diff.h"
#include "src/corpus/study_runner.h"
#include "src/corpus/syscall_table.h"

using namespace lapis;

int main() {
  corpus::StudyOptions options;
  options.distro.app_package_count = 1500;
  options.distro.installation_count = 30000;

  std::printf("simulating release A (paper baseline)...\n");
  auto release_a = corpus::RunStudy(options);
  if (!release_a.ok()) {
    std::fprintf(stderr, "study failed\n");
    return 1;
  }
  std::printf("simulating release B (modern-variant adoption x15)...\n\n");
  options.distro.modern_variant_adoption = 15.0;
  auto release_b = corpus::RunStudy(options);
  if (!release_b.ok()) {
    std::fprintf(stderr, "study failed\n");
    return 1;
  }

  core::DiffOptions diff_options;
  diff_options.unweighted = true;
  diff_options.min_shift = 0.01;
  auto diff = core::CompareDatasets(*release_a.value().dataset,
                                    *release_b.value().dataset,
                                    diff_options);

  std::printf("compared %zu syscalls; %zu moved by >= 1 point "
              "(unweighted importance)\n\n",
              diff.apis_compared, diff.moved.size());
  TableWriter table({"System call", "Release A (pkgs)", "Release B (pkgs)",
                     "Shift"});
  size_t shown = 0;
  for (const auto& delta : diff.moved) {
    table.AddRow({std::string(corpus::SyscallName(
                      static_cast<int>(delta.api.code))),
                  bench::Pct(delta.unweighted_before, 2),
                  bench::Pct(delta.unweighted_after, 2),
                  bench::Pct(delta.UnweightedShift(), 2)});
    if (++shown >= 14) {
      break;
    }
  }
  table.Print(std::cout);

  // Deprecation readiness: with adoption shifted, how close is access() to
  // removable?
  auto access_nr = *corpus::SyscallNumber("faccessat");
  core::ApiId faccessat = core::SyscallApi(static_cast<uint32_t>(access_nr));
  std::printf(
      "\nfaccessat adoption: %s of packages -> %s of packages\n"
      "the same diff run against real successive Ubuntu releases would give\n"
      "kernel maintainers the §6 'proactive outreach' signal the paper asks\n"
      "for.\n",
      bench::Pct(release_a.value().dataset->UnweightedImportance(faccessat),
                 2)
          .c_str(),
      bench::Pct(release_b.value().dataset->UnweightedImportance(faccessat),
                 2)
          .c_str());
  return 0;
}
