// Support-planner frontier benchmark: runs an audited study in-process,
// then for each Table 6 system plots the completeness-vs-cost frontier
// three ways:
//
//   * greedy marginal-gain/cost planner (the shipping solver)
//   * exact optimum (subset DP) on small budgets over the top candidates,
//     to certify the greedy's optimality gap
//   * importance-order baseline (the paper's §3.2 ranking, cost-blind)
//
// plus an audit-value section: the cost to reach fixed completeness
// targets with and without the dynamic-replay evidence (evidence lets
// vectored sub-ops be faked and claimed-but-unobserved APIs be stubbed,
// so the informed frontier reaches each target cheaper).
//
// Results go to BENCH_plan.json (override with LAPIS_PLAN_BENCH_JSON).
// Scale knobs: LAPIS_BENCH_APPS / LAPIS_BENCH_INSTALLS.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/study_runner.h"
#include "src/corpus/system_profiles.h"
#include "src/plan/cost_model.h"
#include "src/plan/planner.h"
#include "src/runtime/stage_stats.h"
#include "src/util/env.h"

namespace lapis {
namespace {

std::string CpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    auto colon = line.find(':');
    if (colon != std::string::npos &&
        line.compare(0, 10, "model name") == 0) {
      size_t start = line.find_first_not_of(" \t", colon + 1);
      return start == std::string::npos ? "" : line.substr(start);
    }
  }
  return "unknown";
}

std::string IsoDate() {
  std::time_t now = std::time(nullptr);
  char buf[16];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm_utc);
  return buf;
}

// (cumulative cost, completeness) frontier of a finished plan, starting at
// the profile's initial completeness for cost 0.
std::vector<std::pair<double, double>> Curve(const plan::SupportPlan& p) {
  std::vector<std::pair<double, double>> curve;
  curve.reserve(p.actions.size() + 1);
  curve.emplace_back(0.0, p.initial_completeness);
  for (const auto& action : p.actions) {
    curve.emplace_back(action.cumulative_cost, action.completeness_after);
  }
  return curve;
}

// Best completeness the frontier reaches without exceeding `cost`.
double CompletenessAtCost(const std::vector<std::pair<double, double>>& curve,
                          double cost) {
  double best = 0.0;
  for (const auto& [c, comp] : curve) {
    if (c <= cost + 1e-9) {
      best = std::max(best, comp);
    }
  }
  return best;
}

// Cheapest frontier point reaching `target` completeness; -1 if never.
double CostToReach(const std::vector<std::pair<double, double>>& curve,
                   double target) {
  for (const auto& [c, comp] : curve) {
    if (comp >= target - 1e-9) {
      return c;
    }
  }
  return -1.0;
}

// Decimated curve for the JSON: every point up to `dense`, then every
// `stride`-th, always keeping the last.
void AppendCurveJson(std::ostringstream& os, const char* label,
                     const std::vector<std::pair<double, double>>& curve,
                     bool last = false) {
  constexpr size_t kDense = 48;
  constexpr size_t kStride = 10;
  os << "      \"" << label << "\": [";
  bool first = true;
  for (size_t i = 0; i < curve.size(); ++i) {
    if (i >= kDense && i + 1 != curve.size() && (i % kStride) != 0) {
      continue;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s[%.2f, %.6f]", first ? "" : ", ",
                  curve[i].first, curve[i].second);
    os << buf;
    first = false;
  }
  os << "]" << (last ? "" : ",") << "\n";
}

struct TimedPlan {
  plan::SupportPlan plan;
  double wall_ms = 0.0;
};

TimedPlan RunGreedy(const plan::PlannerInput& input) {
  TimedPlan out;
  double start = runtime::MonotonicSeconds();
  out.plan = plan::GreedyPlan(input);
  out.wall_ms = (runtime::MonotonicSeconds() - start) * 1e3;
  return out;
}

int Run() {
  corpus::StudyOptions options;
  options.distro.app_package_count = EnvSizeOr("LAPIS_BENCH_APPS", 600);
  options.distro.installation_count =
      EnvSizeOr("LAPIS_BENCH_INSTALLS", 50000);
  options.audit = true;  // the bench is precisely about audit evidence

  std::fprintf(stderr,
               "[bench_support_frontier] running audited study (%zu "
               "apps)...\n",
               options.distro.app_package_count);
  auto study = corpus::RunStudy(options);
  if (!study.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 study.status().ToString().c_str());
    return 1;
  }
  const core::StudyDataset& dataset = *study.value().dataset;
  plan::AuditEvidence evidence;
  evidence.kinds_mask = study.value().evidence_kinds_mask;
  evidence.observed = study.value().evidence_observed;
  if (evidence.empty()) {
    std::fprintf(stderr, "no audit evidence produced; bench is meaningless\n");
    return 1;
  }

  const plan::CostModel costs = plan::CostModel::Defaults();
  int failures = 0;

  std::ostringstream systems_json;
  bool first_system = true;
  for (const auto& row : corpus::LinuxSystemPlans()) {
    core::SystemProfile profile =
        corpus::BuildSystemProfile(dataset, row);
    plan::PlannerInput input;
    input.dataset = &dataset;
    input.costs = &costs;
    input.already_supported = profile.supported;
    input.evaluated_kinds = profile.evaluated_kinds;
    input.evidence = evidence;

    TimedPlan greedy = RunGreedy(input);
    double base_start = runtime::MonotonicSeconds();
    plan::SupportPlan baseline = plan::ImportanceOrderPlan(input);
    double base_ms = (runtime::MonotonicSeconds() - base_start) * 1e3;
    auto greedy_curve = Curve(greedy.plan);
    auto base_curve = Curve(baseline);

    // Budget-point dominance: at each greedy frontier cost, does the
    // importance order do strictly worse?
    size_t dominated = 0;
    double max_advantage = 0.0, at_cost = 0.0;
    for (const auto& [c, comp] : greedy_curve) {
      double gap = comp - CompletenessAtCost(base_curve, c);
      if (gap > 1e-9) {
        ++dominated;
        if (gap > max_advantage) {
          max_advantage = gap;
          at_cost = c;
        }
      }
    }

    // Exact certification on a small instance: the 14 most important
    // missing APIs, at 25/50/75% of the restricted frontier's cost.
    plan::PlannerInput small = plan::RestrictToTopApis(input, 14);
    plan::SupportPlan small_full = plan::GreedyPlan(small);
    std::ostringstream exact_json;
    bool first_budget = true;
    double worst_ratio = 1.0;
    for (double fraction : {0.25, 0.5, 0.75}) {
      plan::PlannerInput at_budget = small;
      at_budget.budget = std::max(1.0, small_full.total_cost * fraction);
      double exact_start = runtime::MonotonicSeconds();
      plan::ExactResult exact = plan::ExactPlan(at_budget);
      double exact_ms = (runtime::MonotonicSeconds() - exact_start) * 1e3;
      TimedPlan greedy_small = RunGreedy(at_budget);
      double ratio = exact.completeness > 1e-12
                         ? greedy_small.plan.final_completeness /
                               exact.completeness
                         : 1.0;
      worst_ratio = std::min(worst_ratio, ratio);
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "%s\n        { \"budget\": %.2f, \"exact\": %.6f, "
                    "\"greedy\": %.6f, \"ratio\": %.4f, \"optimal\": %s, "
                    "\"exact_wall_ms\": %.2f, \"greedy_wall_ms\": %.2f }",
                    first_budget ? "" : ",", at_budget.budget,
                    exact.completeness,
                    greedy_small.plan.final_completeness, ratio,
                    exact.optimal ? "true" : "false", exact_ms,
                    greedy_small.wall_ms);
      exact_json << buf;
      first_budget = false;
      if (ratio < 0.95) {
        std::fprintf(stderr,
                     "[bench_support_frontier] FAIL %s: greedy %.4f < "
                     "0.95 x exact %.4f at budget %.1f\n",
                     row.name.c_str(),
                     greedy_small.plan.final_completeness,
                     exact.completeness, at_budget.budget);
        ++failures;
      }
    }
    if (dominated == 0 && !greedy.plan.actions.empty()) {
      std::fprintf(stderr,
                   "[bench_support_frontier] note: %s greedy never beats "
                   "the importance order (plans coincide)\n",
                   row.name.c_str());
    }

    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s    {\n      \"name\": \"%s\",\n"
        "      \"initial_completeness\": %.6f,\n"
        "      \"greedy\": { \"final\": %.6f, \"cost\": %.2f, \"actions\": "
        "%zu, \"wall_ms\": %.2f },\n"
        "      \"importance_baseline\": { \"final\": %.6f, \"cost\": %.2f, "
        "\"actions\": %zu, \"wall_ms\": %.2f },\n"
        "      \"dominance\": { \"budget_points_strictly_better\": %zu, "
        "\"max_advantage\": %.6f, \"at_cost\": %.2f },\n"
        "      \"greedy_vs_exact_worst_ratio\": %.4f,\n",
        first_system ? "" : ",\n", row.name.c_str(),
        greedy.plan.initial_completeness, greedy.plan.final_completeness,
        greedy.plan.total_cost, greedy.plan.actions.size(), greedy.wall_ms,
        baseline.final_completeness, baseline.total_cost,
        baseline.actions.size(), base_ms, dominated, max_advantage, at_cost,
        worst_ratio);
    systems_json << buf;
    systems_json << "      \"exact_small_budgets\": [" << exact_json.str()
                 << "\n      ],\n";
    AppendCurveJson(systems_json, "curve_greedy", greedy_curve);
    AppendCurveJson(systems_json, "curve_importance", base_curve,
                    /*last=*/true);
    systems_json << "    }";
    first_system = false;

    std::fprintf(stderr,
                 "[bench_support_frontier] %-22s greedy %.4f -> %.4f "
                 "(cost %.0f, %zu actions, %.1fms), exact worst ratio "
                 "%.3f, dominates baseline at %zu budget points\n",
                 row.name.c_str(), greedy.plan.initial_completeness,
                 greedy.plan.final_completeness, greedy.plan.total_cost,
                 greedy.plan.actions.size(), greedy.wall_ms, worst_ratio,
                 dominated);
  }

  // Audit value: greenfield plan over every API kind, with and without
  // the replay evidence. Same-coverage cost should drop when informed.
  plan::PlannerInput all_kinds;
  all_kinds.dataset = &dataset;
  all_kinds.costs = &costs;
  all_kinds.evidence = evidence;
  TimedPlan informed = RunGreedy(all_kinds);
  plan::PlannerInput blind_input = all_kinds;
  blind_input.evidence = plan::AuditEvidence{};
  TimedPlan blind = RunGreedy(blind_input);
  auto informed_curve = Curve(informed.plan);
  auto blind_curve = Curve(blind.plan);

  std::ostringstream audit_json;
  bool first_target = true;
  for (double target : {0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    double cost_informed = CostToReach(informed_curve, target);
    double cost_blind = CostToReach(blind_curve, target);
    double savings = (cost_informed > 0 && cost_blind > 0)
                         ? 100.0 * (1.0 - cost_informed / cost_blind)
                         : 0.0;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s\n      { \"completeness\": %.2f, \"cost_informed\": "
                  "%.2f, \"cost_blind\": %.2f, \"savings_pct\": %.1f }",
                  first_target ? "" : ",", target, cost_informed,
                  cost_blind, savings);
    audit_json << buf;
    first_target = false;
    if (cost_informed > cost_blind + 1e-6 && cost_blind > 0) {
      std::fprintf(stderr,
                   "[bench_support_frontier] FAIL: informed plan costs "
                   "more (%.1f > %.1f) to reach %.2f\n",
                   cost_informed, cost_blind, target);
      ++failures;
    }
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"description\": \"Support-planner frontier: completeness vs "
        "implementation cost per Table 6 system (greedy vs exact-small-"
        "budget DP vs importance-order baseline), plus the cost savings "
        "from planning with the differential auditor's dynamic-replay "
        "evidence. Emitted by bench_support_frontier.\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"host\": {\n"
                "    \"cpu_model\": \"%s\",\n"
                "    \"logical_cpus\": %u,\n"
                "    \"compiler\": \"%s\",\n"
                "    \"date\": \"%s\"\n"
                "  },\n",
                CpuModel().c_str(), std::thread::hardware_concurrency(),
                __VERSION__, IsoDate().c_str());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"config\": { \"app_packages\": %zu, \"installations\": "
                "%" PRIu64 ", \"packages\": %zu, \"audited_executables\": "
                "%zu, \"observed_apis\": %zu, \"curve_sampling\": \"dense "
                "to 48 points then every 10th\" },\n",
                options.distro.app_package_count,
                options.distro.installation_count, dataset.package_count(),
                study.value().audit ? study.value().audit->executables_audited
                                    : 0,
                evidence.observed.size());
  os << buf;
  os << "  \"systems\": [\n" << systems_json.str() << "\n  ],\n";
  std::snprintf(
      buf, sizeof buf,
      "  \"audit_value\": {\n    \"profile\": \"greenfield, all API "
      "kinds\",\n    \"informed\": { \"final\": %.6f, \"cost\": %.2f, "
      "\"actions\": %zu, \"wall_ms\": %.2f },\n    \"blind\": { \"final\": "
      "%.6f, \"cost\": %.2f, \"actions\": %zu, \"wall_ms\": %.2f },\n",
      informed.plan.final_completeness, informed.plan.total_cost,
      informed.plan.actions.size(), informed.wall_ms,
      blind.plan.final_completeness, blind.plan.total_cost,
      blind.plan.actions.size(), blind.wall_ms);
  os << buf;
  os << "    \"targets\": [" << audit_json.str() << "\n    ]\n  }\n";
  os << "}\n";

  std::string path = EnvStringOr("LAPIS_PLAN_BENCH_JSON", "BENCH_plan.json");
  std::ofstream out(path, std::ios::trunc);
  out << os.str();
  if (!out.good()) {
    std::fprintf(stderr, "failed writing %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[bench_support_frontier] wrote %s (informed cost %.0f vs "
               "blind %.0f for %.4f completeness, %d failures)\n",
               path.c_str(), informed.plan.total_cost,
               blind.plan.total_cost, informed.plan.final_completeness,
               failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lapis

int main() { return lapis::Run(); }
