// Table 12: analysis-framework scale. The paper reports 3,105 lines of
// Python + 2,423 of SQL and a 428M-row Postgres database taking ~3 days per
// repository sweep; lapis reports its own end-to-end pipeline scale,
// including the db-backed aggregation path that mirrors their recursive SQL.

#include <chrono>
#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"
#include "src/db/table.h"
#include "src/db/transitive_closure.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  auto start = std::chrono::steady_clock::now();
  bench::PrintStudyBanner("Table 12: analysis framework implementation");
  const auto& study = bench::FullStudy();
  auto generated = std::chrono::steady_clock::now();

  // Mirror the paper's database: load the footprint rows into lapis::db
  // tables and run one recursive aggregation over the package dependency
  // graph (facts = encoded ApiIds), the same fixpoint their SQL computed.
  db::Database database;
  auto* edges =
      database
          .CreateTable("pkg_depends", {{"src", db::ColumnType::kInt64},
                                       {"dst", db::ColumnType::kInt64}})
          .value();
  auto* facts =
      database
          .CreateTable("pkg_apis", {{"pkg", db::ColumnType::kInt64},
                                    {"api", db::ColumnType::kInt64}})
          .value();
  auto* installs =
      database
          .CreateTable("popcon", {{"pkg", db::ColumnType::kInt64},
                                  {"count", db::ColumnType::kInt64}})
          .value();
  const auto& dataset = *study.dataset;
  for (uint32_t pkg = 0; pkg < dataset.package_count(); ++pkg) {
    for (const auto& api : dataset.Footprint(pkg)) {
      (void)facts->Insert({int64_t{pkg}, api.Encode()});
    }
    for (uint32_t dep : dataset.DependencyClosure(pkg)) {
      if (dep != pkg) {
        (void)edges->Insert({int64_t{pkg}, int64_t{dep}});
      }
    }
    (void)installs->Insert(
        {int64_t{pkg},
         static_cast<int64_t>(study.survey.install_counts[pkg])});
  }
  auto aggregator = db::TransitiveAggregator::FromTables(
      *edges, *facts, static_cast<uint32_t>(dataset.package_count()));
  auto closure = aggregator.value().Aggregate();
  size_t closure_facts = 0;
  for (const auto& row : closure) {
    closure_facts += row.size();
  }
  auto done = std::chrono::steady_clock::now();

  TableWriter table({"Metric", "Paper", "lapis (measured)"});
  table.AddRow({"Analysis implementation", "3,105 LoC Python + 2,423 SQL",
                "C++20 library (see cloc in README)"});
  table.AddRow({"Packages analyzed", "30,976",
                FormatWithCommas(study.spec.packages.size())});
  table.AddRow({"Binaries disassembled", "66,275",
                FormatWithCommas(study.analyzed_binaries)});
  table.AddRow({"Syscall call sites inspected", "~66k",
                FormatWithCommas(
                    static_cast<uint64_t>(study.total_syscall_sites))});
  table.AddRow({"Undeterminable call sites", "2,454 (4%)",
                FormatWithCommas(
                    static_cast<uint64_t>(study.unknown_syscall_sites))});
  {
    std::vector<std::string> names;
    for (int nr : study.int80_numbers) {
      names.push_back(corpus::I386SyscallName(nr));
    }
    table.AddRow({"Legacy int $0x80 sites", "searched for (§7)",
                  FormatWithCommas(static_cast<uint64_t>(study.int80_sites)) +
                      " (" + Join(names, ", ") + ")"});
  }
  table.AddRow({"Database rows", "428,634,030",
                FormatWithCommas(database.TotalRows())});
  table.AddRow(
      {"Closure facts aggregated", "-", FormatWithCommas(closure_facts)});
  table.AddRow({"End-to-end sweep time", "~3 days",
                FormatDouble(std::chrono::duration<double>(done - start)
                                 .count(),
                             1) +
                    "s (generation " +
                    FormatDouble(std::chrono::duration<double>(generated -
                                                               start)
                                     .count(),
                                 1) +
                    "s)"});
  // Parallel-runtime accounting: the paper ran one 3-day sequential sweep;
  // lapis shards the pipeline over a work-stealing pool and reports the
  // executor's counters plus the per-stage wall/CPU split.
  table.AddRow({"Pipeline worker threads", "1 (sequential sweep)",
                FormatWithCommas(study.jobs_used)});
  table.AddRow(
      {"Executor tasks / steals", "-",
       FormatWithCommas(study.executor_stats.tasks_executed) + " / " +
           FormatWithCommas(study.executor_stats.steals)});
  table.AddRow({"Executor max queue depth", "-",
                FormatWithCommas(study.executor_stats.max_queue_depth)});
  for (const auto& [stage, record] : study.pipeline_stats.stages()) {
    table.AddRow({"Stage: " + stage, "-",
                  FormatDouble(record.wall_seconds, 2) + "s wall / " +
                      FormatDouble(record.cpu_seconds, 2) + "s cpu, " +
                      FormatWithCommas(record.items) + " items"});
  }
  table.Print(std::cout);
  return 0;
}
