// lapis_serve throughput/latency benchmark: runs a study in-process, saves
// the artifact, then measures against a live daemon (in-process Server on a
// Unix socket):
//
//   * cold snapshot load (artifact file -> ready-to-serve Snapshot)
//   * warm generation swap (Publish of a prebuilt snapshot, under load)
//   * QPS + p50/p99 frame latency for the three query kinds: point
//     importance lookups (batched), profile evaluation, top-K ranking
//
// Results go to BENCH_serve.json (override with LAPIS_SERVE_BENCH_JSON).
// Scale knobs: LAPIS_BENCH_APPS / LAPIS_BENCH_INSTALLS (study size),
// LAPIS_SERVE_BENCH_CLIENTS (client threads), LAPIS_SERVE_BENCH_SECONDS
// (measure window per query kind).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/dataset_io.h"
#include "src/corpus/study_runner.h"
#include "src/corpus/syscall_table.h"
#include "src/runtime/stage_stats.h"
#include "src/serve/client.h"
#include "src/serve/generation.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/snapshot.h"
#include "src/util/env.h"

namespace lapis {
namespace {

std::string CpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    auto colon = line.find(':');
    if (colon != std::string::npos &&
        line.compare(0, 10, "model name") == 0) {
      size_t start = line.find_first_not_of(" \t", colon + 1);
      return start == std::string::npos ? "" : line.substr(start);
    }
  }
  return "unknown";
}

std::string KernelRelease() {
  std::ifstream in("/proc/sys/kernel/osrelease");
  std::string release;
  std::getline(in, release);
  return release.empty() ? "unknown" : release;
}

std::string IsoDate() {
  std::time_t now = std::time(nullptr);
  char buf[16];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm_utc);
  return buf;
}

struct LoadResult {
  double qps = 0.0;             // requests per second (batch-adjusted)
  double frames_per_second = 0.0;
  double p50_us = 0.0;          // per-frame round-trip latency
  double p99_us = 0.0;
  uint64_t frames = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;      // hard failures (aborts the client thread)
  uint64_t busy_sheds = 0;  // retryable kBusy responses from overload caps
  uint64_t retries = 0;     // frames re-attempted after a shed
};

double Percentile(std::vector<double>& sorted_us, double fraction) {
  if (sorted_us.empty()) {
    return 0.0;
  }
  size_t index = static_cast<size_t>(
      fraction * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

// Drives `clients` threads against the daemon for ~`seconds`, each thread
// sending its own copy of `batch` as one frame per round trip. Per-frame
// latencies are measured client-side.
LoadResult RunLoad(const std::string& socket_path,
                   const std::vector<serve::QueryRequest>& batch,
                   size_t clients, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::atomic<uint64_t> busy_sheds{0};
  std::atomic<uint64_t> retries{0};
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto connected = serve::QueryClient::ConnectUnix(socket_path);
      if (!connected.ok()) {
        errors.fetch_add(1);
        return;
      }
      serve::QueryClient client = connected.take();
      auto& samples = latencies[t];
      samples.reserve(65536);
      // Sheds are retryable by contract: a kBusy (connection- or frame-cap
      // shed) or the I/O error from the server closing a shed connection
      // costs a short backoff, a reconnect, and another attempt — not a
      // bench failure. Only a long unbroken run of retryable failures (the
      // server is actually gone) or a non-retryable status counts as an
      // error. Shed round trips are not latency samples.
      int consecutive_retryable = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.connected()) {
          auto again = serve::QueryClient::ConnectUnix(socket_path);
          if (!again.ok()) {
            errors.fetch_add(1);
            return;
          }
          client = again.take();
        }
        double start = runtime::MonotonicSeconds();
        auto responses = client.Call(batch);
        double elapsed = runtime::MonotonicSeconds() - start;
        if (!responses.ok()) {
          if (serve::IsRetryableStatus(responses.status()) &&
              ++consecutive_retryable < 1000) {
            if (responses.status().code() == StatusCode::kUnavailable) {
              busy_sheds.fetch_add(1);
            }
            retries.fetch_add(1);
            client.Close();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
          }
          errors.fetch_add(1);
          return;
        }
        consecutive_retryable = 0;
        if (responses.value().size() != batch.size()) {
          errors.fetch_add(1);
          return;
        }
        for (const auto& response : responses.value()) {
          if (response.status != serve::WireStatus::kOk) {
            errors.fetch_add(1);
          }
        }
        samples.push_back(elapsed * 1e6);
      }
    });
  }
  double start = runtime::MonotonicSeconds();
  while (runtime::MonotonicSeconds() - start < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& thread : threads) {
    thread.join();
  }
  double window = runtime::MonotonicSeconds() - start;

  LoadResult result;
  std::vector<double> all;
  for (const auto& samples : latencies) {
    result.frames += samples.size();
    all.insert(all.end(), samples.begin(), samples.end());
  }
  result.requests = result.frames * batch.size();
  result.errors = errors.load();
  result.busy_sheds = busy_sheds.load();
  result.retries = retries.load();
  result.frames_per_second = static_cast<double>(result.frames) / window;
  result.qps = static_cast<double>(result.requests) / window;
  std::sort(all.begin(), all.end());
  result.p50_us = Percentile(all, 0.50);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

void AppendLoad(std::ostringstream& os, const char* label,
                const LoadResult& load, size_t batch, bool last = false) {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "    \"%s\": { \"qps\": %.0f, \"frames_per_s\": %.0f, "
                "\"batch\": %zu, \"p50_us\": %.1f, \"p99_us\": %.1f, "
                "\"frames\": %" PRIu64 ", \"errors\": %" PRIu64
                ", \"busy_sheds\": %" PRIu64 ", \"retries\": %" PRIu64
                " }%s\n",
                label, load.qps, load.frames_per_second, batch, load.p50_us,
                load.p99_us, load.frames, load.errors, load.busy_sheds,
                load.retries, last ? "" : ",");
  os << buf;
}

int Run() {
  corpus::StudyOptions options;
  options.distro.app_package_count = EnvSizeOr("LAPIS_BENCH_APPS", 1000);
  options.distro.installation_count =
      EnvSizeOr("LAPIS_BENCH_INSTALLS", 50000);
  size_t clients = EnvSizeOr("LAPIS_SERVE_BENCH_CLIENTS", 4);
  double seconds =
      static_cast<double>(EnvSizeOr("LAPIS_SERVE_BENCH_SECONDS", 3));

  std::fprintf(stderr, "[bench_serve_qps] running study (%zu apps)...\n",
               options.distro.app_package_count);
  auto study = corpus::RunStudy(options);
  if (!study.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 study.status().ToString().c_str());
    return 1;
  }

  auto artifact_path = std::filesystem::temp_directory_path() /
                       ("lapis-serve-bench-" + std::to_string(::getpid()) +
                        ".bin");
  auto save = corpus::SaveStudy(study.value(), artifact_path.string());
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
    return 1;
  }

  // Cold load: artifact file -> query-ready snapshot (deserialize + rank +
  // intern), the daemon's startup cost.
  double cold_start = runtime::MonotonicSeconds();
  auto snapshot = serve::Snapshot::FromFile(artifact_path.string());
  double cold_load_ms =
      (runtime::MonotonicSeconds() - cold_start) * 1e3;
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  auto artifact_bytes = std::filesystem::file_size(artifact_path);

  serve::GenerationStore store;
  store.Publish(snapshot.value());

  serve::ServerOptions server_options;
  server_options.unix_socket_path =
      (std::filesystem::temp_directory_path() /
       ("lapis-serve-bench-" + std::to_string(::getpid()) + ".sock"))
          .string();
  server_options.workers = clients;
  auto server = serve::Server::Start(server_options, &store);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  // Point lookups: a batch of 32 importance queries per frame, cycling
  // through the busiest syscall names.
  std::vector<serve::QueryRequest> point_batch;
  auto ranked = study.value().dataset->RankByImportance(
      core::ApiKind::kSyscall);
  for (size_t i = 0; i < 32 && i < ranked.size(); ++i) {
    serve::QueryRequest request;
    request.opcode = serve::Opcode::kImportance;
    request.api.kind = core::ApiKind::kSyscall;
    request.api.name = std::string(
        corpus::SyscallName(static_cast<int>(ranked[i].code)));
    point_batch.push_back(std::move(request));
  }

  // Profile evaluation: one completeness computation per frame over a
  // 100-syscall profile (the expensive query).
  std::vector<serve::QueryRequest> eval_batch(1);
  eval_batch[0].opcode = serve::Opcode::kEvalProfile;
  eval_batch[0].evaluated_kinds_mask =
      1u << static_cast<uint8_t>(core::ApiKind::kSyscall);
  for (size_t i = 0; i < 100 && i < ranked.size(); ++i) {
    serve::ApiRef ref;
    ref.kind = core::ApiKind::kSyscall;
    ref.name = std::string(
        corpus::SyscallName(static_cast<int>(ranked[i].code)));
    eval_batch[0].supported.push_back(std::move(ref));
  }

  // Top-K: rank the 20 best next syscalls given a 50-call profile.
  std::vector<serve::QueryRequest> topk_batch(1);
  topk_batch[0].opcode = serve::Opcode::kTopK;
  topk_batch[0].top_kind = core::ApiKind::kSyscall;
  topk_batch[0].top_k = 20;
  for (size_t i = 0; i < 50 && i < ranked.size(); ++i) {
    serve::ApiRef ref;
    ref.kind = core::ApiKind::kSyscall;
    ref.name = std::string(
        corpus::SyscallName(static_cast<int>(ranked[i].code)));
    topk_batch[0].supported.push_back(std::move(ref));
  }

  std::fprintf(stderr,
               "[bench_serve_qps] load: %zu clients x %.0fs per kind\n",
               clients, seconds);
  auto point = RunLoad(server_options.unix_socket_path, point_batch,
                       clients, seconds);
  auto eval = RunLoad(server_options.unix_socket_path, eval_batch, clients,
                      seconds);
  auto topk = RunLoad(server_options.unix_socket_path, topk_batch, clients,
                      seconds);

  // Warm generation swaps while point-lookup load is running: the swap
  // itself is O(1); measure Publish latency and confirm zero client
  // errors during ~50 swaps.
  auto alternate = serve::Snapshot::FromFile(artifact_path.string());
  if (!alternate.ok()) {
    std::fprintf(stderr, "alternate load failed: %s\n",
                 alternate.status().ToString().c_str());
    return 1;
  }
  constexpr int kSwaps = 50;
  std::vector<double> swap_us;
  swap_us.reserve(kSwaps);
  std::atomic<bool> swap_stop{false};
  std::thread swapper([&] {
    bool flip = false;
    for (int i = 0; i < kSwaps; ++i) {
      double start = runtime::MonotonicSeconds();
      store.Publish(flip ? alternate.value() : snapshot.value());
      swap_us.push_back((runtime::MonotonicSeconds() - start) * 1e6);
      flip = !flip;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    swap_stop.store(true);
  });
  auto under_swap = RunLoad(server_options.unix_socket_path, point_batch,
                            clients, seconds);
  swapper.join();
  std::sort(swap_us.begin(), swap_us.end());
  double swap_p50 = Percentile(swap_us, 0.50);
  double swap_p99 = Percentile(swap_us, 0.99);

  server.value()->Stop();
  auto stats = server.value()->stats();

  // Overload: a second listener over the same store with a deliberately
  // tiny connection cap, driven by the same client count. Excess clients
  // must be shed with retryable busy responses and recover by backing off
  // and reconnecting — while the one admitted client keeps getting
  // answers. The default-load phases above run uncapped and must never
  // shed (both asserted in the exit code below).
  serve::ServerOptions overload_options;
  overload_options.unix_socket_path =
      (std::filesystem::temp_directory_path() /
       ("lapis-serve-bench-" + std::to_string(::getpid()) +
        "-overload.sock"))
          .string();
  overload_options.workers = clients;
  overload_options.max_connections = 1;
  auto overload_server = serve::Server::Start(overload_options, &store);
  if (!overload_server.ok()) {
    std::fprintf(stderr, "overload server start failed: %s\n",
                 overload_server.status().ToString().c_str());
    return 1;
  }
  size_t overload_clients = std::max<size_t>(clients, 4);
  std::fprintf(stderr,
               "[bench_serve_qps] overload: %zu clients vs "
               "--max-connections %zu\n",
               overload_clients, overload_options.max_connections);
  auto overload =
      RunLoad(overload_options.unix_socket_path, point_batch,
              overload_clients, std::min(seconds, 2.0));
  overload_server.value()->Stop();
  auto overload_stats = overload_server.value()->stats();

  std::error_code ec;
  std::filesystem::remove(artifact_path, ec);

  std::ostringstream os;
  os << "{\n";
  os << "  \"description\": \"lapis_serve daemon benchmark: cold artifact "
        "load, warm generation swaps, and client-measured QPS/latency per "
        "query kind over a Unix socket (in-process server, one frame per "
        "round trip). Emitted by bench_serve_qps.\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"host\": {\n"
                "    \"cpu_model\": \"%s\",\n"
                "    \"logical_cpus\": %u,\n"
                "    \"kernel\": \"%s\",\n"
                "    \"compiler\": \"%s\",\n"
                "    \"date\": \"%s\"\n"
                "  },\n",
                CpuModel().c_str(), std::thread::hardware_concurrency(),
                KernelRelease().c_str(), __VERSION__, IsoDate().c_str());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"config\": { \"app_packages\": %zu, \"installations\": "
                "%" PRIu64 ", \"packages\": %zu, \"clients\": %zu, "
                "\"server_workers\": %zu, \"seconds_per_kind\": %.0f },\n",
                options.distro.app_package_count,
                options.distro.installation_count,
                study.value().dataset->package_count(), clients,
                server.value()->workers(), seconds);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"snapshot\": { \"artifact_bytes\": %" PRIu64
                ", \"cold_load_ms\": %.2f, \"swap_p50_us\": %.1f, "
                "\"swap_p99_us\": %.1f, \"swaps\": %d },\n",
                static_cast<uint64_t>(artifact_bytes), cold_load_ms,
                swap_p50, swap_p99, kSwaps);
  os << buf;
  os << "  \"queries\": {\n";
  AppendLoad(os, "point_importance", point, point_batch.size());
  AppendLoad(os, "eval_profile", eval, eval_batch.size());
  AppendLoad(os, "top_k", topk, topk_batch.size());
  AppendLoad(os, "point_importance_during_swaps", under_swap,
             point_batch.size(), /*last=*/true);
  os << "  },\n";
  os << "  \"overload\": {\n";
  std::snprintf(buf, sizeof buf,
                "    \"max_connections\": %zu, \"clients\": %zu,\n",
                overload_options.max_connections, overload_clients);
  os << buf;
  AppendLoad(os, "point_importance_capped", overload, point_batch.size());
  std::snprintf(buf, sizeof buf,
                "    \"connections_shed\": %" PRIu64
                ", \"frames_shed\": %" PRIu64 " },\n",
                overload_stats.connections_shed,
                overload_stats.frames_shed);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"server_stats\": { \"connections\": %" PRIu64
                ", \"frames\": %" PRIu64 ", \"requests\": %" PRIu64
                ", \"protocol_errors\": %" PRIu64
                ", \"connections_shed\": %" PRIu64
                ", \"frames_shed\": %" PRIu64 " },\n",
                stats.connections_accepted, stats.frames_served,
                stats.requests_served, stats.protocol_errors,
                stats.connections_shed, stats.frames_shed);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"memory\": { \"max_rss_kib\": %" PRIu64
                ", \"note\": \"process peak incl. study generation "
                "(getrusage ru_maxrss)\" }\n",
                runtime::PeakRssKib());
  os << buf;
  os << "}\n";

  std::string path =
      EnvStringOr("LAPIS_SERVE_BENCH_JSON", "BENCH_serve.json");
  std::ofstream out(path, std::ios::trunc);
  out << os.str();
  if (!out.good()) {
    std::fprintf(stderr, "failed writing %s\n", path.c_str());
    return 1;
  }
  uint64_t default_errors = point.errors + eval.errors + topk.errors +
                            under_swap.errors;
  uint64_t default_sheds = point.busy_sheds + eval.busy_sheds +
                           topk.busy_sheds + under_swap.busy_sheds;
  std::fprintf(stderr,
               "[bench_serve_qps] wrote %s (cold load %.1fms, point %.0f "
               "qps p99 %.0fus, eval %.0f qps, topk %.0f qps, %" PRIu64
               " errors; overload: %" PRIu64 " sheds absorbed by %" PRIu64
               " retries, %" PRIu64 " errors)\n",
               path.c_str(), cold_load_ms, point.qps, point.p99_us,
               eval.qps, topk.qps, default_errors,
               overload_stats.connections_shed + overload_stats.frames_shed,
               overload.retries, overload.errors);
  // Pass criteria: the uncapped phases see zero errors and zero sheds, and
  // the capped phase demonstrably sheds while retries keep it error-free.
  if (default_errors != 0 || overload.errors != 0) {
    std::fprintf(stderr, "[bench_serve_qps] FAIL: hard errors\n");
    return 1;
  }
  if (default_sheds != 0 || stats.connections_shed != 0 ||
      stats.frames_shed != 0) {
    std::fprintf(stderr,
                 "[bench_serve_qps] FAIL: uncapped server shed load\n");
    return 1;
  }
  if (overload_stats.connections_shed == 0) {
    std::fprintf(stderr,
                 "[bench_serve_qps] FAIL: overload phase never shed\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lapis

int main() { return lapis::Run(); }
