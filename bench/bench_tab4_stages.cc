// Table 4: the five recommended implementation stages along the greedy
// path, with sample syscalls per stage.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/completeness.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 4: five stages of syscall implementation");
  const auto& dataset = *bench::FullStudy().dataset;
  auto path = core::GreedyCompletenessPath(dataset, core::ApiKind::kSyscall,
                                           corpus::FullSyscallUniverse());
  // Program-less (data-only) packages are always supported; measure the
  // stages above that floor.
  auto stages = core::DecomposeStages(
      path, {0.01, 0.10, 0.50, 0.90, 1.00},
      path.front().weighted_completeness);

  struct PaperRow {
    const char* stage;
    const char* count;
    const char* completeness;
  } paper[] = {
      {"I", "40", "1.12%"},   {"II", "+41 (81)", "10.68%"},
      {"III", "+64 (145)", "50.09%"}, {"IV", "+57 (202)", "90.61%"},
      {"V", "+70 (272)", "100%"},
  };

  TableWriter table({"Stage", "Paper #", "Paper W.Comp.", "Measured #",
                     "Measured W.Comp.", "Sample syscalls"});
  size_t previous = 0;
  for (size_t i = 0; i < stages.size() && i < 5; ++i) {
    const auto& stage = stages[i];
    std::vector<std::string> samples;
    for (size_t n = previous; n < stage.cumulative_apis && samples.size() < 5;
         n += std::max<size_t>(1, (stage.cumulative_apis - previous) / 5)) {
      samples.push_back(std::string(
          corpus::SyscallName(static_cast<int>(path[n].api.code))));
    }
    char measured_count[32];
    std::snprintf(measured_count, sizeof(measured_count), "+%zu (%zu)",
                  stage.cumulative_apis - previous, stage.cumulative_apis);
    table.AddRow({paper[i].stage, paper[i].count, paper[i].completeness,
                  measured_count, bench::Pct(stage.weighted_completeness),
                  Join(samples, ", ")});
    previous = stage.cumulative_apis;
  }
  table.Print(std::cout);
  return 0;
}
