// Tables 8: unweighted importance of secure vs insecure API variants
// (set*id/get*id semantics and atomic directory operations).

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"

using namespace lapis;

namespace {

void PrintPairs(const char* title, corpus::VariantTable which) {
  const auto& dataset = *bench::FullStudy().dataset;
  PrintBanner(std::cout, title);
  TableWriter table({"Variant A", "Paper", "Measured", "Variant B", "Paper",
                     "Measured"});
  auto paper_value = [](int nr) -> std::string {
    for (const auto& anchor : corpus::UnweightedAnchors()) {
      if (anchor.syscall_nr == nr) {
        return lapis::bench::Pct(anchor.unweighted_importance, 2);
      }
    }
    return "-";
  };
  for (const auto& pair : corpus::VariantPairs()) {
    if (pair.table != which) {
      continue;
    }
    double left = dataset.UnweightedImportance(
        core::SyscallApi(static_cast<uint32_t>(pair.left_nr)));
    double right = dataset.UnweightedImportance(
        core::SyscallApi(static_cast<uint32_t>(pair.right_nr)));
    table.AddRow({std::string(pair.left_label), paper_value(pair.left_nr),
                  lapis::bench::Pct(left, 2), std::string(pair.right_label),
                  paper_value(pair.right_nr), lapis::bench::Pct(right, 2)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  bench::PrintStudyBanner(
      "Table 8: secure vs insecure API variant adoption (unweighted)");
  PrintPairs("Unclear vs well-defined ID management",
             corpus::VariantTable::kSecureIds);
  PrintPairs("Non-atomic vs atomic directory operations",
             corpus::VariantTable::kSecureAtomicDir);
  std::printf(
      "\npaper conclusion: ~75%% of packages still use race-prone access()\n"
      "instead of faccessat(); only setresuid has displaced its insecure\n"
      "counterparts.\n");
  return 0;
}
