// §2 claim: "a system with 'partial support' for ioctl is just as likely to
// support all or none of the Linux applications distributed with Ubuntu."
//
// Sweep: a hypothetical system supports every syscall but only the K most
// important ioctl opcodes. Weighted completeness stays near zero until the
// 52-opcode universal block is complete, then jumps — supporting the
// paper's argument that vectored system calls cannot be half-implemented.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/completeness.h"
#include "src/corpus/api_universe.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner(
      "§2: weighted completeness vs partial ioctl support");
  const auto& dataset = *bench::FullStudy().dataset;

  std::vector<core::ApiId> universe;
  for (const auto& op : corpus::IoctlOps()) {
    universe.push_back(core::IoctlApi(op.code));
  }
  auto ranked = dataset.RankByImportance(core::ApiKind::kIoctlOp, universe);

  core::CompletenessOptions options;
  options.evaluated_kinds = {core::ApiKind::kIoctlOp};

  TableWriter table({"ioctl ops supported", "Weighted completeness"});
  std::set<core::ApiId> supported;
  size_t next_checkpoint = 0;
  const size_t checkpoints[] = {0,  1,   2,   5,   10,  20,  40,  47,
                                51, 52,  60,  100, 188, 280, 635};
  for (size_t k = 0; k <= ranked.size(); ++k) {
    if (next_checkpoint < sizeof(checkpoints) / sizeof(checkpoints[0]) &&
        k == checkpoints[next_checkpoint]) {
      table.AddRow({std::to_string(k),
                    bench::Pct(core::WeightedCompleteness(dataset, supported,
                                                          options))});
      ++next_checkpoint;
    }
    if (k < ranked.size()) {
      supported.insert(ranked[k]);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nreading: without the TTY/generic-IO block nearly every package\n"
      "breaks (only ioctl-free packages survive at K=0); completeness jumps\n"
      "as the universal block completes at 52 opcodes, and the remaining\n"
      "580+ defined opcodes contribute almost nothing -- supporting the\n"
      "paper's point that 'partial ioctl support' is all-or-nothing for\n"
      "most applications.\n");
  return 0;
}
