#include "bench/study_fixture.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/util/strings.h"

namespace lapis::bench {

namespace {

double g_study_seconds = 0.0;

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

corpus::StudyOptions BenchStudyOptions() {
  corpus::StudyOptions options;
  options.distro.app_package_count = EnvSize("LAPIS_BENCH_APPS", 3000);
  options.distro.installation_count =
      EnvSize("LAPIS_BENCH_INSTALLS", 100000);
  options.popcon_retain_samples = EnvSize("LAPIS_BENCH_SAMPLES", 0);
  return options;
}

const corpus::StudyResult& FullStudy() {
  static const corpus::StudyResult* study = [] {
    auto start = std::chrono::steady_clock::now();
    auto result = corpus::RunStudy(BenchStudyOptions());
    auto end = std::chrono::steady_clock::now();
    g_study_seconds = std::chrono::duration<double>(end - start).count();
    if (!result.ok()) {
      std::fprintf(stderr, "study generation failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    return new corpus::StudyResult(result.take());
  }();
  return *study;
}

void PrintStudyBanner(const std::string& title) {
  const auto& study = FullStudy();
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
  std::printf(
      "synthetic distribution: %zu packages, %zu ELF binaries analyzed "
      "(%.1fs), %s simulated installations, ground-truth mismatches: %zu\n\n",
      study.spec.packages.size(), study.analyzed_binaries, g_study_seconds,
      FormatWithCommas(study.survey.total_reporting).c_str(),
      study.ground_truth_mismatches);
}

std::string Pct(double fraction, int decimals) {
  return FormatPercent(fraction, decimals);
}

}  // namespace lapis::bench
