#include "bench/study_fixture.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/util/env.h"
#include "src/util/strings.h"

namespace lapis::bench {

namespace {

double g_study_seconds = 0.0;

}  // namespace

corpus::StudyOptions BenchStudyOptions() {
  corpus::StudyOptions options;
  options.distro.app_package_count = EnvSizeOr("LAPIS_BENCH_APPS", 3000);
  options.distro.installation_count =
      EnvSizeOr("LAPIS_BENCH_INSTALLS", 100000);
  options.popcon_retain_samples = EnvSizeOr("LAPIS_BENCH_SAMPLES", 0);
  // 0 = all cores (runtime::DefaultJobs); 1 pins the sequential path.
  options.jobs = EnvSizeOr("LAPIS_BENCH_JOBS", 0);
  // Optional persistent analysis cache (warm reruns of the bench suite).
  options.cache_dir = EnvStringOr("LAPIS_CACHE_DIR", "");
  return options;
}

const corpus::StudyResult& FullStudy() {
  static const corpus::StudyResult* study = [] {
    auto start = std::chrono::steady_clock::now();
    auto result = corpus::RunStudy(BenchStudyOptions());
    auto end = std::chrono::steady_clock::now();
    g_study_seconds = std::chrono::duration<double>(end - start).count();
    if (!result.ok()) {
      std::fprintf(stderr, "study generation failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    return new corpus::StudyResult(result.take());
  }();
  return *study;
}

void PrintStudyBanner(const std::string& title) {
  const auto& study = FullStudy();
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
  std::printf(
      "synthetic distribution: %zu packages, %zu ELF binaries analyzed "
      "(%.1fs), %s simulated installations, ground-truth mismatches: %zu\n",
      study.spec.packages.size(), study.analyzed_binaries, g_study_seconds,
      FormatWithCommas(study.survey.total_reporting).c_str(),
      study.ground_truth_mismatches);
  std::printf(
      "analysis: %s constant propagation, %d of %d syscall sites unknown\n",
      study.analyzer_options.use_ipa          ? "interprocedural (ipa)"
      : study.analyzer_options.use_dataflow   ? "CFG dataflow"
                                              : "linear",
      study.unknown_syscall_sites, study.total_syscall_sites);
  if (study.audit.has_value()) {
    std::printf("%s\n", study.audit->Summary().c_str());
  }
  std::printf(
      "pipeline: %zu worker thread(s), %zu tasks executed, %zu steals, "
      "max queue depth %zu, %.1fs wall / %.1fs cpu across stages\n",
      study.jobs_used, study.executor_stats.tasks_executed,
      study.executor_stats.steals, study.executor_stats.max_queue_depth,
      study.pipeline_stats.TotalWallSeconds(),
      study.pipeline_stats.TotalCpuSeconds());
  if (study.cache_enabled) {
    std::printf(
        "cache: %llu hits / %llu lookups (%.1f%%), %zu/%zu analyses "
        "restored, %llu KiB read, %llu KiB written\n",
        static_cast<unsigned long long>(study.cache_stats.hits),
        static_cast<unsigned long long>(study.cache_stats.Lookups()),
        100.0 * study.cache_stats.HitRate(), study.analyses_from_cache,
        study.analyzed_binaries,
        static_cast<unsigned long long>(study.cache_stats.bytes_read / 1024),
        static_cast<unsigned long long>(study.cache_stats.bytes_written /
                                        1024));
  }
  std::printf("\n");
}

std::string Pct(double fraction, int decimals) {
  return FormatPercent(fraction, decimals);
}

}  // namespace lapis::bench
