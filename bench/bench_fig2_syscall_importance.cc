// Figure 2: API importance of the N-most-important system calls
// (inverted-CDF view) plus the tier counts the paper highlights.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Figure 2: syscall API importance distribution");
  const auto& dataset = *bench::FullStudy().dataset;
  auto ranked = dataset.RankByImportance(core::ApiKind::kSyscall,
                                         corpus::FullSyscallUniverse());

  PrintBanner(std::cout, "Importance at selected ranks (inverted CDF)");
  TableWriter curve({"N-most important", "Syscall at rank", "Importance"});
  for (size_t n : {1u, 40u, 100u, 201u, 224u, 232u, 257u, 280u, 301u, 320u}) {
    const auto& api = ranked[n - 1];
    curve.AddRow({std::to_string(n),
                  std::string(corpus::SyscallName(static_cast<int>(api.code))),
                  bench::Pct(dataset.ApiImportance(api))});
  }
  curve.Print(std::cout);

  size_t at_100 = 0;
  size_t above_10 = 0;
  size_t nonzero = 0;
  for (const auto& api : ranked) {
    double imp = dataset.ApiImportance(api);
    at_100 += imp > 0.995 ? 1 : 0;
    above_10 += imp > 0.10 ? 1 : 0;
    nonzero += imp > 0.0 ? 1 : 0;
  }
  PrintBanner(std::cout, "Tier counts");
  TableWriter tiers({"Tier", "Paper", "Measured"});
  tiers.AddRow({"Indispensable (importance ~100%)", "224",
                std::to_string(at_100)});
  tiers.AddRow({"Importance > 10%", "257", std::to_string(above_10)});
  tiers.AddRow({"Importance > 0", "~301", std::to_string(nonzero)});
  tiers.AddRow({"Unused", "18", std::to_string(320 - nonzero)});
  tiers.Print(std::cout);
  return 0;
}
