// Figure 4: API importance of ioctl operation codes — 52 universal ops, a
// declining band to rank 188, and a very long unused tail.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/api_universe.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Figure 4: ioctl operation importance");
  const auto& dataset = *bench::FullStudy().dataset;
  const auto& ops = corpus::IoctlOps();

  std::vector<core::ApiId> universe;
  for (const auto& op : ops) {
    universe.push_back(core::IoctlApi(op.code));
  }
  auto ranked = dataset.RankByImportance(core::ApiKind::kIoctlOp, universe);

  PrintBanner(std::cout, "Importance at selected ranks");
  TableWriter curve({"Rank", "Importance"});
  for (size_t n : {1u, 26u, 52u, 80u, 120u, 188u, 240u, 280u, 400u, 635u}) {
    curve.AddRow({std::to_string(n),
                  bench::Pct(dataset.ApiImportance(ranked[n - 1]), 2)});
  }
  curve.Print(std::cout);

  size_t at_100 = 0;
  size_t above_1 = 0;
  size_t used = 0;
  for (const auto& api : ranked) {
    double imp = dataset.ApiImportance(api);
    at_100 += imp > 0.995 ? 1 : 0;
    above_1 += imp > 0.01 ? 1 : 0;
    used += imp > 0.0 ? 1 : 0;
  }
  PrintBanner(std::cout, "Tier counts");
  TableWriter tiers({"Tier", "Paper", "Measured"});
  tiers.AddRow({"Defined operations", "635", std::to_string(ops.size())});
  tiers.AddRow({"Importance ~100%", "52", std::to_string(at_100)});
  tiers.AddRow({"Importance > 1%", "188", std::to_string(above_1)});
  tiers.AddRow({"Used by any binary", "280", std::to_string(used)});
  tiers.Print(std::cout);

  PrintBanner(std::cout, "Most important named operations");
  TableWriter named({"Operation", "Code", "Importance"});
  for (size_t i = 0; i < 12; ++i) {
    char code[16];
    std::snprintf(code, sizeof(code), "0x%x", ops[i].code);
    named.AddRow({ops[i].name, code,
                  bench::Pct(dataset.ApiImportance(
                      core::IoctlApi(ops[i].code)))});
  }
  named.Print(std::cout);
  return 0;
}
