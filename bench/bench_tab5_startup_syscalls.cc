// Table 5: ubiquitous syscalls from libc-family initialization, attributed
// to the core library whose code issues them.

#include <iostream>
#include <map>

#include "bench/study_fixture.h"
#include "src/corpus/binary_synth.h"
#include "src/corpus/syscall_table.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 5: startup syscalls by core library");
  const auto& study = bench::FullStudy();
  const auto& dataset = *study.dataset;

  // Invert: for each startup syscall, which core libraries contain direct
  // call sites (measured from the binaries, not the plan).
  TableWriter table({"System call", "Importance",
                     "Core libraries with call sites (measured)"});
  for (int nr : corpus::StartupSyscalls()) {
    std::vector<std::string> libs;
    auto it = study.syscall_site_binaries.find(nr);
    if (it != study.syscall_site_binaries.end()) {
      for (const char* core_lib :
           {corpus::kLibcSoname, corpus::kLdSoname, corpus::kPthreadSoname,
            corpus::kRtSoname}) {
        if (it->second.contains(core_lib)) {
          libs.push_back(core_lib);
        }
      }
    }
    table.AddRow({std::string(corpus::SyscallName(nr)),
                  bench::Pct(dataset.ApiImportance(
                      core::SyscallApi(static_cast<uint32_t>(nr)))),
                  Join(libs, ", ")});
  }
  table.Print(std::cout);
  std::printf(
      "\npaper: every dynamically-linked executable needs these ~40 calls\n"
      "before main() runs; libc and the dynamic linker alone give many\n"
      "syscalls a first-order importance boost.\n");
  return 0;
}
