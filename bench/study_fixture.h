// Shared fixture for the figure/table benches: one full-scale study per
// process (3,000 app packages, 100k simulated installations), plus common
// printing helpers for "paper vs measured" rows.

#ifndef LAPIS_BENCH_STUDY_FIXTURE_H_
#define LAPIS_BENCH_STUDY_FIXTURE_H_

#include <string>

#include "src/corpus/study_runner.h"
#include "src/util/table_writer.h"

namespace lapis::bench {

// Options used by every figure/table bench. Honors LAPIS_BENCH_APPS /
// LAPIS_BENCH_INSTALLS environment overrides for quick runs.
corpus::StudyOptions BenchStudyOptions();

// Lazily-built full-scale study (cached for the process lifetime).
const corpus::StudyResult& FullStudy();

// Prints the standard bench header: corpus scale, analysis stats, runtime.
void PrintStudyBanner(const std::string& title);

// "93.1%" / "0.42%" formatting for completeness values.
std::string Pct(double fraction, int decimals = 1);

}  // namespace lapis::bench

#endif  // LAPIS_BENCH_STUDY_FIXTURE_H_
