// Table 11: powerful vs simple API variants (unweighted importance).

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner(
      "Table 11: powerful vs simple variants (unweighted)");
  const auto& dataset = *bench::FullStudy().dataset;

  TableWriter table({"Powerful variant", "Measured", "Simple variant",
                     "Measured"});
  for (const auto& pair : corpus::VariantPairs()) {
    if (pair.table != corpus::VariantTable::kPowerSimplicity) {
      continue;
    }
    table.AddRow({std::string(pair.left_label),
                  bench::Pct(dataset.UnweightedImportance(core::SyscallApi(
                                 static_cast<uint32_t>(pair.left_nr))),
                             2),
                  std::string(pair.right_label),
                  bench::Pct(dataset.UnweightedImportance(core::SyscallApi(
                                 static_cast<uint32_t>(pair.right_nr))),
                             2)});
  }
  table.Print(std::cout);
  std::printf(
      "\npaper: developers choose simplicity unless a task demands the\n"
      "more powerful variant (select over pselect6, dup2 over dup3).\n");
  return 0;
}
