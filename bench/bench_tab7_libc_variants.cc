// Table 7: weighted completeness of libc variants against GNU libc, raw and
// after reversing compile-time symbol replacement (__printf_chk -> printf).

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/libc_analysis.h"
#include "src/corpus/system_profiles.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 7: libc variant compatibility");
  const auto& study = bench::FullStudy();
  const auto& dataset = *study.dataset;

  TableWriter table({"Variant", "# exported", "Paper W.Comp.",
                     "Measured W.Comp.", "Paper norm.", "Measured norm.",
                     "Top missing (measured)"});
  for (const auto& plan : corpus::LibcVariantPlans()) {
    auto profile = corpus::BuildLibcVariantProfile(plan, study.libc_interner);
    auto eval = core::EvaluateLibcVariant(dataset, profile);
    std::vector<std::string> missing;
    for (uint32_t id : eval.top_missing) {
      missing.push_back(study.libc_interner.NameOf(id));
      if (missing.size() >= 3) {
        break;
      }
    }
    table.AddRow({plan.name, std::to_string(eval.exported_count),
                  bench::Pct(plan.paper_completeness, 1),
                  bench::Pct(eval.weighted_completeness, 1),
                  bench::Pct(plan.paper_normalized_completeness, 1),
                  bench::Pct(eval.normalized_weighted_completeness, 1),
                  Join(missing, ", ")});
  }
  table.Print(std::cout);
  return 0;
}
