// Figure 6: API importance of pseudo-files under /dev and /proc, plus the
// hard-coded-path binary counts the paper reports in §3.4.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/api_universe.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Figure 6: pseudo-file importance");
  const auto& study = bench::FullStudy();
  const auto& dataset = *study.dataset;

  TableWriter table({"Path", "Importance", "Binaries hard-coding it"});
  for (const auto& file : corpus::PseudoFiles()) {
    uint32_t id = study.path_interner.Find(file.path);
    double imp =
        id == UINT32_MAX
            ? 0.0
            : dataset.ApiImportance(
                  core::ApiId{core::ApiKind::kPseudoFile, id});
    auto count_it = study.pseudo_path_binary_counts.find(file.path);
    size_t count = count_it == study.pseudo_path_binary_counts.end()
                       ? 0
                       : count_it->second;
    table.AddRow({file.path, bench::Pct(imp), std::to_string(count)});
  }
  table.Print(std::cout);

  size_t with_path = 0;
  for (const auto& [path, count] : study.pseudo_path_binary_counts) {
    (void)path;
    with_path += count;
  }
  std::printf(
      "\npaper anchors: 12,039 binaries hard-code a pseudo path; 3,324 use "
      "/dev/null; 439 use /proc/cpuinfo\n"
      "measured (scaled corpus): %zu package-path references; /dev/null is "
      "the most common hard-coded path\n",
      with_path);
  return 0;
}
