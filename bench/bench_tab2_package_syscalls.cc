// Table 2: system calls whose usage is dominated by one or two packages.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 2: syscalls dominated by specific packages");
  const auto& study = bench::FullStudy();
  const auto& dataset = *study.dataset;

  TableWriter table({"System call", "Paper imp.", "Measured imp.",
                     "Measured dependents"});
  struct Row {
    const char* name;
    const char* paper;
  } rows[] = {
      {"seccomp", "1%"},       {"sched_setattr", "1%"},
      {"sched_getattr", "1%"}, {"kexec_load", "1%"},
      {"clock_adjtime", "4%"}, {"renameat2", "4%"},
      {"mq_timedsend", "1%"},  {"mq_getsetattr", "1%"},
      {"io_getevents", "1%"},  {"getcpu", "4%"},
  };
  for (const auto& row : rows) {
    int nr = *corpus::SyscallNumber(row.name);
    core::ApiId api = core::SyscallApi(static_cast<uint32_t>(nr));
    std::vector<std::string> dependents;
    for (core::PackageId pkg : dataset.Dependents(api)) {
      dependents.push_back(dataset.PackageName(pkg));
      if (dependents.size() >= 3) {
        break;
      }
    }
    table.AddRow({row.name, row.paper,
                  bench::Pct(dataset.ApiImportance(api)),
                  Join(dependents, ", ")});
  }
  table.Print(std::cout);
  return 0;
}
