// §3.2 extension: the implementation path over the FULL API surface —
// system calls, ioctl/fcntl/prctl opcodes, pseudo-files and libc exports
// together ("the OS interface required by essentially all applications is
// substantially larger than the roughly 300 Linux system calls").

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/completeness.h"
#include "src/core/report.h"
#include "src/corpus/api_universe.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner(
      "§3.2/§9: completeness path over the full API surface");
  const auto& study = bench::FullStudy();
  const auto& dataset = *study.dataset;

  std::set<core::ApiKind> kinds = {
      core::ApiKind::kSyscall, core::ApiKind::kIoctlOp,
      core::ApiKind::kFcntlOp, core::ApiKind::kPrctlOp,
      core::ApiKind::kPseudoFile};
  auto path = core::GreedyCompletenessPathMultiKind(
      dataset, kinds, corpus::FullSyscallUniverse());

  size_t universal = 0;
  for (const auto& point : path) {
    universal += point.importance > 0.995 ? 1 : 0;
  }
  std::printf(
      "combined universe: %zu APIs used or defined (vs 320 syscalls alone)\n"
      "APIs with ~100%% importance: %zu (paper §9: '224 syscalls + 208\n"
      "ioctl/fcntl/prctl codes + hundreds of pseudo-files' are required by\n"
      "every installation)\n\n",
      path.size(), universal);

  TableWriter table({"N APIs (combined)", "W.Comp.", "N-th API added"});
  for (size_t n :
       {50u, 100u, 200u, 300u, 320u, 400u, 500u, 600u, 700u, 800u}) {
    if (n > path.size()) {
      break;
    }
    const auto& point = path[n - 1];
    std::string name =
        point.api.kind == core::ApiKind::kSyscall
            ? "syscall:" + std::string(corpus::SyscallName(
                               static_cast<int>(point.api.code)))
            : core::ApiName(point.api, study.path_interner,
                            study.libc_interner);
    table.AddRow({std::to_string(n),
                  bench::Pct(point.weighted_completeness), name});
  }
  table.Print(std::cout);

  // How many combined APIs reach the syscall-only milestones?
  PrintBanner(std::cout, "Milestones (combined surface vs syscall-only)");
  auto syscall_path = core::GreedyCompletenessPath(
      dataset, core::ApiKind::kSyscall, corpus::FullSyscallUniverse());
  TableWriter milestones(
      {"Milestone", "Syscall-only N", "Combined-surface N"});
  for (double target : {0.10, 0.50, 0.90}) {
    size_t syscall_n = 0;
    while (syscall_n < syscall_path.size() &&
           syscall_path[syscall_n].weighted_completeness < target) {
      ++syscall_n;
    }
    size_t combined_n = 0;
    while (combined_n < path.size() &&
           path[combined_n].weighted_completeness < target) {
      ++combined_n;
    }
    milestones.AddRow({bench::Pct(target, 0) + " of packages",
                       std::to_string(syscall_n + 1),
                       std::to_string(combined_n + 1)});
  }
  milestones.Print(std::cout);
  return 0;
}
