// Table 3: the 18 unused system calls, and the retired-but-still-attempted
// group from §3.1.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 3: unused system calls");
  const auto& dataset = *bench::FullStudy().dataset;

  TableWriter table({"System call", "Measured importance",
                     "Measured dependents"});
  for (int nr : corpus::UnusedSyscalls()) {
    core::ApiId api = core::SyscallApi(static_cast<uint32_t>(nr));
    table.AddRow({std::string(corpus::SyscallName(nr)),
                  bench::Pct(dataset.ApiImportance(api)),
                  std::to_string(dataset.Dependents(api).size())});
  }
  table.Print(std::cout);

  PrintBanner(std::cout,
              "Officially retired but still attempted (nonzero importance)");
  TableWriter retired({"System call", "Measured importance"});
  for (int nr : corpus::RetiredButAttemptedSyscalls()) {
    retired.AddRow({std::string(corpus::SyscallName(nr)),
                    bench::Pct(dataset.ApiImportance(
                        core::SyscallApi(static_cast<uint32_t>(nr))))});
  }
  retired.Print(std::cout);
  return 0;
}
