// Figure 3: cumulative weighted completeness when the N top-ranked system
// calls are implemented — the "hello world to qemu" path.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/completeness.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Figure 3: weighted completeness vs N syscalls");
  const auto& dataset = *bench::FullStudy().dataset;
  auto path = core::GreedyCompletenessPath(dataset, core::ApiKind::kSyscall,
                                           corpus::FullSyscallUniverse());

  TableWriter table({"N syscalls", "Paper W.Comp.", "Measured W.Comp.",
                     "N-th syscall added"});
  struct Anchor {
    size_t n;
    const char* paper;
  } anchors[] = {{40, "1.1%"},  {81, "10.7%"},  {125, "25%"},
                 {145, "50.1%"}, {202, "90.6%"}, {272, "100%"},
                 {320, "100%"}};
  for (const auto& anchor : anchors) {
    const auto& point = path[anchor.n - 1];
    table.AddRow(
        {std::to_string(anchor.n), anchor.paper,
         bench::Pct(point.weighted_completeness),
         std::string(corpus::SyscallName(static_cast<int>(point.api.code)))});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Full curve (every 10 ranks)");
  TableWriter curve({"N", "W.Comp."});
  for (size_t n = 10; n <= path.size(); n += 10) {
    curve.AddRow({std::to_string(n),
                  bench::Pct(path[n - 1].weighted_completeness)});
  }
  curve.Print(std::cout);
  return 0;
}
