// Pipeline micro-benchmarks (google-benchmark): disassembly throughput,
// per-binary analysis, cross-library resolution, metric computation, and
// the db-backed aggregation path.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/library_resolver.h"
#include "src/core/completeness.h"
#include "src/corpus/binary_synth.h"
#include "src/corpus/distro_spec.h"
#include "src/corpus/study_runner.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"
#include "src/db/transitive_closure.h"
#include "src/disasm/decoder.h"
#include "src/elf/elf_reader.h"
#include "src/runtime/executor.h"

namespace lapis {
namespace {

const corpus::DistroSpec& Spec() {
  static const corpus::DistroSpec* spec = [] {
    corpus::DistroOptions options;
    options.app_package_count = 500;
    options.script_package_count = 50;
    options.data_package_count = 10;
    return new corpus::DistroSpec(
        corpus::BuildDistroSpec(options).take());
  }();
  return *spec;
}

const std::vector<uint8_t>& LibcBytes() {
  static const std::vector<uint8_t>* bytes = [] {
    corpus::DistroSynthesizer synthesizer(Spec());
    auto libs = synthesizer.CoreLibraries().take();
    return new std::vector<uint8_t>(std::move(libs.back().bytes));
  }();
  return *bytes;
}

void BM_DisassembleLibcText(benchmark::State& state) {
  auto image = elf::ElfReader::Parse(LibcBytes()).take();
  const auto* text = image.FindSection(".text");
  for (auto _ : state) {
    auto sweep = disasm::LinearSweep(text->data, text->addr);
    benchmark::DoNotOptimize(sweep.insns.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text->size));
}
BENCHMARK(BM_DisassembleLibcText);

void BM_ParseLibcElf(benchmark::State& state) {
  for (auto _ : state) {
    auto image = elf::ElfReader::Parse(LibcBytes());
    benchmark::DoNotOptimize(image.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(LibcBytes().size()));
}
BENCHMARK(BM_ParseLibcElf);

void BM_AnalyzeLibc(benchmark::State& state) {
  auto image = elf::ElfReader::Parse(LibcBytes()).take();
  for (auto _ : state) {
    auto analysis = analysis::BinaryAnalyzer::Analyze(image);
    benchmark::DoNotOptimize(analysis.ok());
  }
}
BENCHMARK(BM_AnalyzeLibc);

void BM_SynthesizeAndAnalyzePackage(benchmark::State& state) {
  corpus::DistroSynthesizer synthesizer(Spec());
  size_t coreutils = Spec().by_name.at("coreutils");
  for (auto _ : state) {
    auto binaries = synthesizer.PackageBinaries(coreutils).take();
    for (const auto& binary : binaries) {
      auto image = elf::ElfReader::Parse(binary.bytes).take();
      auto analysis = analysis::BinaryAnalyzer::Analyze(image);
      benchmark::DoNotOptimize(analysis.ok());
    }
  }
}
BENCHMARK(BM_SynthesizeAndAnalyzePackage);

const corpus::StudyResult& PerfStudy() {
  static const corpus::StudyResult* study = [] {
    corpus::StudyOptions options;
    options.distro.app_package_count = 500;
    options.distro.script_package_count = 50;
    options.distro.data_package_count = 10;
    options.distro.installation_count = 20000;
    return new corpus::StudyResult(corpus::RunStudy(options).take());
  }();
  return *study;
}

void BM_ApiImportanceAllSyscalls(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  for (auto _ : state) {
    double total = 0;
    for (int nr = 0; nr < corpus::kSyscallCount; ++nr) {
      total += dataset.ApiImportance(
          core::SyscallApi(static_cast<uint32_t>(nr)));
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ApiImportanceAllSyscalls);

void BM_WeightedCompleteness(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  auto ranked = dataset.RankByImportance(core::ApiKind::kSyscall);
  std::set<core::ApiId> supported(ranked.begin(),
                                  ranked.begin() + ranked.size() / 2);
  core::CompletenessOptions options;
  options.evaluated_kinds = {core::ApiKind::kSyscall};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::WeightedCompleteness(dataset, supported, options));
  }
}
BENCHMARK(BM_WeightedCompleteness);

void BM_GreedyCompletenessPath(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  for (auto _ : state) {
    auto path = core::GreedyCompletenessPath(
        dataset, core::ApiKind::kSyscall, corpus::FullSyscallUniverse());
    benchmark::DoNotOptimize(path.size());
  }
}
BENCHMARK(BM_GreedyCompletenessPath);

void BM_DbTransitiveAggregation(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  for (auto _ : state) {
    db::TransitiveAggregator aggregator(
        static_cast<uint32_t>(dataset.package_count()));
    for (uint32_t pkg = 0; pkg < dataset.package_count(); ++pkg) {
      for (const auto& api : dataset.Footprint(pkg)) {
        (void)aggregator.AddFact(pkg, api.Encode());
      }
      for (uint32_t dep : dataset.DependencyClosure(pkg)) {
        if (dep != pkg) {
          (void)aggregator.AddEdge(pkg, dep);
        }
      }
    }
    auto closure = aggregator.Aggregate();
    benchmark::DoNotOptimize(closure.size());
  }
}
BENCHMARK(BM_DbTransitiveAggregation);

// End-to-end study at a reduced scale, parameterized by worker count
// (argument 0 = runtime::DefaultJobs, i.e. all cores). Exports are
// byte-identical across arguments; only wall time may differ.
void BM_StudyPipelineJobs(benchmark::State& state) {
  corpus::StudyOptions options;
  options.distro.app_package_count = 400;
  options.distro.script_package_count = 40;
  options.distro.data_package_count = 10;
  options.distro.installation_count = 5000;
  options.jobs = static_cast<size_t>(state.range(0));
  double tasks = 0.0;
  double steals = 0.0;
  size_t threads = 1;
  for (auto _ : state) {
    auto study = corpus::RunStudy(options);
    if (!study.ok()) {
      state.SkipWithError(study.status().ToString().c_str());
      break;
    }
    tasks += static_cast<double>(study.value().executor_stats.tasks_executed);
    steals += static_cast<double>(study.value().executor_stats.steals);
    threads = study.value().jobs_used;
    benchmark::DoNotOptimize(study.value().analyzed_binaries);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["tasks"] =
      benchmark::Counter(tasks, benchmark::Counter::kAvgIterations);
  state.counters["steals"] =
      benchmark::Counter(steals, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_StudyPipelineJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// The db closure aggregation alone, sequential vs level-parallel on a pool.
void BM_DbTransitiveAggregationJobs(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  size_t jobs = static_cast<size_t>(state.range(0));
  runtime::Executor executor(jobs);
  for (auto _ : state) {
    db::TransitiveAggregator aggregator(
        static_cast<uint32_t>(dataset.package_count()));
    for (uint32_t pkg = 0; pkg < dataset.package_count(); ++pkg) {
      for (const auto& api : dataset.Footprint(pkg)) {
        (void)aggregator.AddFact(pkg, api.Encode());
      }
      for (uint32_t dep : dataset.DependencyClosure(pkg)) {
        if (dep != pkg) {
          (void)aggregator.AddEdge(pkg, dep);
        }
      }
    }
    auto closure = aggregator.Aggregate(&executor);
    benchmark::DoNotOptimize(closure.size());
  }
  state.counters["threads"] = static_cast<double>(executor.thread_count());
}
BENCHMARK(BM_DbTransitiveAggregationJobs)->Arg(1)->Arg(0);

// Raw executor overhead: ParallelFor over a counter increment, per element.
void BM_ExecutorParallelFor(benchmark::State& state) {
  runtime::Executor executor(static_cast<size_t>(state.range(0)));
  constexpr size_t kElements = 1 << 16;
  std::vector<uint32_t> data(kElements, 1);
  for (auto _ : state) {
    std::atomic<uint64_t> sum{0};
    executor.ParallelFor(0, kElements, 0,
                         [&data, &sum](size_t begin, size_t end) {
                           uint64_t local = 0;
                           for (size_t i = begin; i < end; ++i) {
                             local += data[i];
                           }
                           sum.fetch_add(local, std::memory_order_relaxed);
                         });
    if (sum.load() != kElements) {
      state.SkipWithError("parallel_for dropped elements");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_ExecutorParallelFor)->Arg(1)->Arg(0);

void BM_PopconSimulation(benchmark::State& state) {
  const auto& spec = Spec();
  corpus::DistroSynthesizer synthesizer(spec);
  auto repo = synthesizer.BuildRepository().take();
  std::vector<double> marginals;
  for (const auto& plan : spec.packages) {
    marginals.push_back(plan.target_marginal);
  }
  package::PopconOptions options;
  options.installation_count = 5000;
  for (auto _ : state) {
    auto survey = package::PopconSimulator::Run(repo, marginals, options);
    benchmark::DoNotOptimize(survey.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_PopconSimulation);

}  // namespace
}  // namespace lapis

BENCHMARK_MAIN();
