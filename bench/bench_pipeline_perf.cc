// Pipeline micro-benchmarks (google-benchmark): disassembly throughput,
// per-binary analysis, cross-library resolution, metric computation, and
// the db-backed aggregation path.
//
// main() first runs a cold/warm end-to-end study pair against one shared
// content-addressed cache and writes the measured numbers (host topology,
// per-stage wall/CPU, cache hit rate, speedup) to BENCH_pipeline.json
// (override with LAPIS_BENCH_JSON; LAPIS_BENCH_APPS / LAPIS_BENCH_INSTALLS
// / LAPIS_BENCH_JOBS scale the pair), then hands over to the registered
// google-benchmark suite.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/library_resolver.h"
#include "src/cache/footprint_cache.h"
#include "src/core/completeness.h"
#include "src/corpus/binary_synth.h"
#include "src/corpus/distro_spec.h"
#include "src/corpus/study_runner.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"
#include "src/db/transitive_closure.h"
#include "src/disasm/decoder.h"
#include "src/elf/elf_reader.h"
#include "src/runtime/executor.h"
#include "src/runtime/stage_stats.h"
#include "src/util/env.h"

namespace lapis {
namespace {

const corpus::DistroSpec& Spec() {
  static const corpus::DistroSpec* spec = [] {
    corpus::DistroOptions options;
    options.app_package_count = 500;
    options.script_package_count = 50;
    options.data_package_count = 10;
    return new corpus::DistroSpec(
        corpus::BuildDistroSpec(options).take());
  }();
  return *spec;
}

const std::vector<uint8_t>& LibcBytes() {
  static const std::vector<uint8_t>* bytes = [] {
    corpus::DistroSynthesizer synthesizer(Spec());
    auto libs = synthesizer.CoreLibraries().take();
    return new std::vector<uint8_t>(std::move(libs.back().bytes));
  }();
  return *bytes;
}

void BM_DisassembleLibcText(benchmark::State& state) {
  auto image = elf::ElfReader::Parse(LibcBytes()).take();
  const auto* text = image.FindSection(".text");
  for (auto _ : state) {
    auto sweep = disasm::LinearSweep(text->data, text->addr);
    benchmark::DoNotOptimize(sweep.insns.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text->size));
}
BENCHMARK(BM_DisassembleLibcText);

void BM_ParseLibcElf(benchmark::State& state) {
  for (auto _ : state) {
    auto image = elf::ElfReader::Parse(LibcBytes());
    benchmark::DoNotOptimize(image.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(LibcBytes().size()));
}
BENCHMARK(BM_ParseLibcElf);

void BM_AnalyzeLibc(benchmark::State& state) {
  auto image = elf::ElfReader::Parse(LibcBytes()).take();
  for (auto _ : state) {
    auto analysis = analysis::BinaryAnalyzer::Analyze(image);
    benchmark::DoNotOptimize(analysis.ok());
  }
}
BENCHMARK(BM_AnalyzeLibc);

void BM_SynthesizeAndAnalyzePackage(benchmark::State& state) {
  corpus::DistroSynthesizer synthesizer(Spec());
  size_t coreutils = Spec().by_name.at("coreutils");
  for (auto _ : state) {
    auto binaries = synthesizer.PackageBinaries(coreutils).take();
    for (const auto& binary : binaries) {
      auto image = elf::ElfReader::Parse(binary.bytes).take();
      auto analysis = analysis::BinaryAnalyzer::Analyze(image);
      benchmark::DoNotOptimize(analysis.ok());
    }
  }
}
BENCHMARK(BM_SynthesizeAndAnalyzePackage);

const corpus::StudyResult& PerfStudy() {
  static const corpus::StudyResult* study = [] {
    corpus::StudyOptions options;
    options.distro.app_package_count = 500;
    options.distro.script_package_count = 50;
    options.distro.data_package_count = 10;
    options.distro.installation_count = 20000;
    return new corpus::StudyResult(corpus::RunStudy(options).take());
  }();
  return *study;
}

void BM_ApiImportanceAllSyscalls(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  for (auto _ : state) {
    double total = 0;
    for (int nr = 0; nr < corpus::kSyscallCount; ++nr) {
      total += dataset.ApiImportance(
          core::SyscallApi(static_cast<uint32_t>(nr)));
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ApiImportanceAllSyscalls);

void BM_WeightedCompleteness(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  auto ranked = dataset.RankByImportance(core::ApiKind::kSyscall);
  std::set<core::ApiId> supported(ranked.begin(),
                                  ranked.begin() + ranked.size() / 2);
  core::CompletenessOptions options;
  options.evaluated_kinds = {core::ApiKind::kSyscall};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::WeightedCompleteness(dataset, supported, options));
  }
}
BENCHMARK(BM_WeightedCompleteness);

void BM_GreedyCompletenessPath(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  for (auto _ : state) {
    auto path = core::GreedyCompletenessPath(
        dataset, core::ApiKind::kSyscall, corpus::FullSyscallUniverse());
    benchmark::DoNotOptimize(path.size());
  }
}
BENCHMARK(BM_GreedyCompletenessPath);

void BM_DbTransitiveAggregation(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  for (auto _ : state) {
    db::TransitiveAggregator aggregator(
        static_cast<uint32_t>(dataset.package_count()));
    for (uint32_t pkg = 0; pkg < dataset.package_count(); ++pkg) {
      for (const auto& api : dataset.Footprint(pkg)) {
        (void)aggregator.AddFact(pkg, api.Encode());
      }
      for (uint32_t dep : dataset.DependencyClosure(pkg)) {
        if (dep != pkg) {
          (void)aggregator.AddEdge(pkg, dep);
        }
      }
    }
    auto closure = aggregator.Aggregate();
    benchmark::DoNotOptimize(closure.size());
  }
}
BENCHMARK(BM_DbTransitiveAggregation);

// End-to-end study at a reduced scale, parameterized by worker count
// (argument 0 = runtime::DefaultJobs, i.e. all cores). Exports are
// byte-identical across arguments; only wall time may differ.
void BM_StudyPipelineJobs(benchmark::State& state) {
  corpus::StudyOptions options;
  options.distro.app_package_count = 400;
  options.distro.script_package_count = 40;
  options.distro.data_package_count = 10;
  options.distro.installation_count = 5000;
  options.jobs = static_cast<size_t>(state.range(0));
  double tasks = 0.0;
  double steals = 0.0;
  size_t threads = 1;
  for (auto _ : state) {
    auto study = corpus::RunStudy(options);
    if (!study.ok()) {
      state.SkipWithError(study.status().ToString().c_str());
      break;
    }
    tasks += static_cast<double>(study.value().executor_stats.tasks_executed);
    steals += static_cast<double>(study.value().executor_stats.steals);
    threads = study.value().jobs_used;
    benchmark::DoNotOptimize(study.value().analyzed_binaries);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["tasks"] =
      benchmark::Counter(tasks, benchmark::Counter::kAvgIterations);
  state.counters["steals"] =
      benchmark::Counter(steals, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_StudyPipelineJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// The db closure aggregation alone, sequential vs level-parallel on a pool.
void BM_DbTransitiveAggregationJobs(benchmark::State& state) {
  const auto& dataset = *PerfStudy().dataset;
  size_t jobs = static_cast<size_t>(state.range(0));
  runtime::Executor executor(jobs);
  for (auto _ : state) {
    db::TransitiveAggregator aggregator(
        static_cast<uint32_t>(dataset.package_count()));
    for (uint32_t pkg = 0; pkg < dataset.package_count(); ++pkg) {
      for (const auto& api : dataset.Footprint(pkg)) {
        (void)aggregator.AddFact(pkg, api.Encode());
      }
      for (uint32_t dep : dataset.DependencyClosure(pkg)) {
        if (dep != pkg) {
          (void)aggregator.AddEdge(pkg, dep);
        }
      }
    }
    auto closure = aggregator.Aggregate(&executor);
    benchmark::DoNotOptimize(closure.size());
  }
  state.counters["threads"] = static_cast<double>(executor.thread_count());
}
BENCHMARK(BM_DbTransitiveAggregationJobs)->Arg(1)->Arg(0);

// Raw executor overhead: ParallelFor over a counter increment, per element.
void BM_ExecutorParallelFor(benchmark::State& state) {
  runtime::Executor executor(static_cast<size_t>(state.range(0)));
  constexpr size_t kElements = 1 << 16;
  std::vector<uint32_t> data(kElements, 1);
  for (auto _ : state) {
    std::atomic<uint64_t> sum{0};
    executor.ParallelFor(0, kElements, 0,
                         [&data, &sum](size_t begin, size_t end) {
                           uint64_t local = 0;
                           for (size_t i = begin; i < end; ++i) {
                             local += data[i];
                           }
                           sum.fetch_add(local, std::memory_order_relaxed);
                         });
    if (sum.load() != kElements) {
      state.SkipWithError("parallel_for dropped elements");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kElements));
}
BENCHMARK(BM_ExecutorParallelFor)->Arg(1)->Arg(0);

void BM_PopconSimulation(benchmark::State& state) {
  const auto& spec = Spec();
  corpus::DistroSynthesizer synthesizer(spec);
  auto repo = synthesizer.BuildRepository().take();
  std::vector<double> marginals;
  for (const auto& plan : spec.packages) {
    marginals.push_back(plan.target_marginal);
  }
  package::PopconOptions options;
  options.installation_count = 5000;
  for (auto _ : state) {
    auto survey = package::PopconSimulator::Run(repo, marginals, options);
    benchmark::DoNotOptimize(survey.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_PopconSimulation);

// --- Cold/warm study pair + BENCH_pipeline.json ---------------------------

std::string CpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    auto colon = line.find(':');
    if (colon != std::string::npos &&
        line.compare(0, 10, "model name") == 0) {
      size_t start = line.find_first_not_of(" \t", colon + 1);
      return start == std::string::npos ? "" : line.substr(start);
    }
  }
  return "unknown";
}

std::string KernelRelease() {
  std::ifstream in("/proc/sys/kernel/osrelease");
  std::string release;
  std::getline(in, release);
  return release.empty() ? "unknown" : release;
}

std::string IsoDate() {
  std::time_t now = std::time(nullptr);
  char buf[16];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm_utc);
  return buf;
}

struct TimedStudy {
  corpus::StudyResult result;
  double wall_seconds = 0.0;
};

void AppendStages(std::ostringstream& os, const corpus::StudyResult& study) {
  os << "      \"stages\": {";
  bool first = true;
  for (const auto& [stage, record] : study.pipeline_stats.stages()) {
    if (!first) {
      os << ",";
    }
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\n        \"%s\": { \"wall_s\": %.3f, \"cpu_s\": %.3f, "
                  "\"items\": %" PRIu64 " }",
                  stage.c_str(), record.wall_seconds, record.cpu_seconds,
                  record.items);
    os << buf;
  }
  os << "\n      }";
}

void AppendRun(std::ostringstream& os, const char* label,
               const TimedStudy& run) {
  const auto& cs = run.result.cache_stats;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    \"%s\": {\n"
      "      \"wall_s\": %.3f,\n"
      "      \"pipeline_wall_s\": %.3f,\n"
      "      \"pipeline_cpu_s\": %.3f,\n"
      "      \"cache\": { \"hits\": %" PRIu64 ", \"lookups\": %" PRIu64
      ", \"hit_rate\": %.4f, \"analyses_restored\": %zu, "
      "\"analyzed_binaries\": %zu, \"resolutions_restored\": %zu, "
      "\"kib_read\": %" PRIu64 ", \"kib_written\": %" PRIu64 " },\n",
      label, run.wall_seconds, run.result.pipeline_stats.TotalWallSeconds(),
      run.result.pipeline_stats.TotalCpuSeconds(), cs.hits, cs.Lookups(),
      cs.HitRate(), run.result.analyses_from_cache,
      run.result.analyzed_binaries, run.result.resolutions_from_cache,
      cs.bytes_read / 1024, cs.bytes_written / 1024);
  os << buf;
  AppendStages(os, run.result);
  os << "\n    }";
}

int WriteColdWarmJson() {
  corpus::StudyOptions options;
  options.distro.app_package_count = EnvSizeOr("LAPIS_BENCH_APPS", 3000);
  options.distro.installation_count =
      EnvSizeOr("LAPIS_BENCH_INSTALLS", 100000);
  options.jobs = EnvSizeOr("LAPIS_BENCH_JOBS", 0);

  auto cache_dir = std::filesystem::temp_directory_path() /
                   ("lapis-bench-cache-" + std::to_string(::getpid()));
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
  auto cache = cache::FootprintCache::Open(cache_dir.string());
  if (!cache.ok()) {
    std::fprintf(stderr, "cache open failed: %s\n",
                 cache.status().ToString().c_str());
    return 1;
  }
  options.cache = cache.value().get();

  auto run_once = [&options](const char* label) -> Result<TimedStudy> {
    std::fprintf(stderr, "[bench_pipeline_perf] %s study run...\n", label);
    double start = runtime::MonotonicSeconds();
    auto study = corpus::RunStudy(options);
    double wall = runtime::MonotonicSeconds() - start;
    if (!study.ok()) {
      return study.status();
    }
    return TimedStudy{study.take(), wall};
  };

  auto cold = run_once("cold");
  if (!cold.ok()) {
    std::fprintf(stderr, "cold study failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  auto warm = run_once("warm");
  if (!warm.ok()) {
    std::fprintf(stderr, "warm study failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  std::filesystem::remove_all(cache_dir, ec);

  double speedup = warm.value().wall_seconds > 0.0
                       ? cold.value().wall_seconds / warm.value().wall_seconds
                       : 0.0;
  double skip_fraction =
      warm.value().result.analyzed_binaries > 0
          ? static_cast<double>(warm.value().result.analyses_from_cache) /
                static_cast<double>(warm.value().result.analyzed_binaries)
          : 0.0;

  std::ostringstream os;
  os << "{\n";
  os << "  \"description\": \"Cold-vs-warm RunStudy pair sharing one "
        "content-addressed footprint cache (src/cache), emitted by "
        "bench_pipeline_perf at startup. Warm runs skip the per-binary "
        "analysis chain (ELF parse, linear sweep, CFG, dataflow), the "
        "per-library export reachability, the per-executable resolution, "
        "and the popcon survey; exports are byte-identical cold vs. "
        "warm.\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"host\": {\n"
                "    \"cpu_model\": \"%s\",\n"
                "    \"logical_cpus\": %u,\n"
                "    \"kernel\": \"%s\",\n"
                "    \"compiler\": \"%s\",\n"
                "    \"date\": \"%s\"\n"
                "  },\n",
                CpuModel().c_str(), std::thread::hardware_concurrency(),
                KernelRelease().c_str(), __VERSION__, IsoDate().c_str());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"config\": { \"app_packages\": %zu, \"installations\": "
                "%" PRIu64 ", \"jobs\": %zu, \"jobs_used\": %zu },\n",
                options.distro.app_package_count,
                options.distro.installation_count, options.jobs,
                cold.value().result.jobs_used);
  os << buf;
  os << "  \"runs\": {\n";
  AppendRun(os, "cold", cold.value());
  os << ",\n";
  AppendRun(os, "warm", warm.value());
  os << "\n  },\n";
  std::snprintf(buf, sizeof buf,
                "  \"warm_vs_cold\": { \"speedup\": %.2f, "
                "\"hit_rate\": %.4f, \"analysis_skip_fraction\": %.4f },\n",
                speedup, warm.value().result.cache_stats.HitRate(),
                skip_fraction);
  os << buf;
  // ru_maxrss is a process-lifetime high-water mark, so this covers the
  // cold run, the warm run, and everything either allocated transiently.
  std::snprintf(buf, sizeof buf,
                "  \"memory\": { \"max_rss_kib\": %" PRIu64
                ", \"note\": \"process peak across both runs "
                "(getrusage ru_maxrss)\" }\n",
                runtime::PeakRssKib());
  os << buf;
  os << "}\n";

  std::string path = EnvStringOr("LAPIS_BENCH_JSON", "BENCH_pipeline.json");
  std::ofstream out(path, std::ios::trunc);
  out << os.str();
  if (!out.good()) {
    std::fprintf(stderr, "failed writing %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[bench_pipeline_perf] wrote %s (cold %.3fs, warm %.3fs, "
               "%.1fx, hit rate %.1f%%, peak RSS %" PRIu64 " KiB)\n",
               path.c_str(), cold.value().wall_seconds,
               warm.value().wall_seconds, speedup,
               100.0 * warm.value().result.cache_stats.HitRate(),
               runtime::PeakRssKib());
  return 0;
}

}  // namespace
}  // namespace lapis

int main(int argc, char** argv) {
  // LAPIS_BENCH_SKIP_JSON=1 skips the cold/warm pair (e.g. when only the
  // registered microbenches are wanted).
  if (lapis::EnvSizeOr("LAPIS_BENCH_SKIP_JSON", 0) == 0) {
    int rc = lapis::WriteColdWarmJson();
    if (rc != 0) {
      return rc;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
