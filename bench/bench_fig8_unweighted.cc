// Figure 8: unweighted API importance (fraction of packages) of the
// N-most-important syscalls.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Figure 8: unweighted syscall importance");
  const auto& dataset = *bench::FullStudy().dataset;
  auto ranked = dataset.RankByUnweightedImportance(
      core::ApiKind::kSyscall, corpus::FullSyscallUniverse());

  PrintBanner(std::cout, "Unweighted importance at selected ranks");
  TableWriter curve({"N-most important", "Syscall", "Share of packages"});
  for (size_t n : {1u, 40u, 60u, 90u, 130u, 160u, 200u, 250u, 320u}) {
    const auto& api = ranked[n - 1];
    curve.AddRow({std::to_string(n),
                  std::string(corpus::SyscallName(static_cast<int>(api.code))),
                  bench::Pct(dataset.UnweightedImportance(api))});
  }
  curve.Print(std::cout);

  size_t used_by_nearly_all = 0;
  size_t above_10 = 0;
  for (const auto& api : ranked) {
    double u = dataset.UnweightedImportance(api);
    used_by_nearly_all += u > 0.90 ? 1 : 0;
    above_10 += u > 0.10 ? 1 : 0;
  }
  PrintBanner(std::cout, "Tier counts");
  TableWriter tiers({"Tier", "Paper", "Measured"});
  tiers.AddRow({"Used by ~all packages", "40", std::to_string(used_by_nearly_all)});
  tiers.AddRow({"Used by >= 10% of packages", "130", std::to_string(above_10)});
  tiers.Print(std::cout);
  return 0;
}
