// Table 10: Linux-specific vs portable/generic API variants (unweighted).

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner(
      "Table 10: Linux-specific vs portable variants (unweighted)");
  const auto& dataset = *bench::FullStudy().dataset;

  TableWriter table({"Linux-specific", "Measured", "Portable/generic",
                     "Measured"});
  for (const auto& pair : corpus::VariantPairs()) {
    if (pair.table != corpus::VariantTable::kPortability) {
      continue;
    }
    table.AddRow({std::string(pair.left_label),
                  bench::Pct(dataset.UnweightedImportance(core::SyscallApi(
                                 static_cast<uint32_t>(pair.left_nr))),
                             2),
                  std::string(pair.right_label),
                  bench::Pct(dataset.UnweightedImportance(core::SyscallApi(
                                 static_cast<uint32_t>(pair.right_nr))),
                             2)});
  }
  table.Print(std::cout);
  std::printf(
      "\npaper: except pipe2, Linux-specific variants stay below 10%% --\n"
      "developers prefer portable APIs.\n");
  return 0;
}
