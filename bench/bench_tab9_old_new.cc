// Table 9: unweighted importance of old (deprecated) vs new (preferred)
// API variants.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 9: old vs new API variants (unweighted)");
  const auto& dataset = *bench::FullStudy().dataset;

  TableWriter table({"Old API", "Measured", "New API", "Measured"});
  for (const auto& pair : corpus::VariantPairs()) {
    if (pair.table != corpus::VariantTable::kOldNew) {
      continue;
    }
    table.AddRow({std::string(pair.left_label),
                  bench::Pct(dataset.UnweightedImportance(core::SyscallApi(
                                 static_cast<uint32_t>(pair.left_nr))),
                             2),
                  std::string(pair.right_label),
                  bench::Pct(dataset.UnweightedImportance(core::SyscallApi(
                                 static_cast<uint32_t>(pair.right_nr))),
                             2)});
  }
  table.Print(std::cout);
  std::printf(
      "\npaper: adoption of preferred variants is slow -- 60%% of packages\n"
      "still call wait4 although waitid is preferred (0.24%%).\n");
  return 0;
}
