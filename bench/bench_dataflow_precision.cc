// Dataflow-precision benchmark: runs the full study pipeline three times
// over the same calibrated corpus — the linear constant-propagation
// baseline, CFG dataflow, and the interprocedural (ipa) tier — with the
// differential soundness audit enabled in every mode. Reports, side by
// side:
//   * unknown syscall-site counts and rates (precision);
//   * ground-truth mismatches (both must be zero — soundness of recovery);
//   * the audit verdict (both must replay with zero violations).
// The headline check: dataflow must STRICTLY reduce unknown sites versus
// the linear baseline (branch-guarded sites are recoverable only through
// the CFG join), at zero soundness cost.

#include <cstdio>
#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/study_runner.h"
#include "src/util/table_writer.h"

using namespace lapis;

namespace {

corpus::StudyResult RunMode(bool use_dataflow, bool use_ipa = false) {
  corpus::StudyOptions options = bench::BenchStudyOptions();
  options.analyzer.use_dataflow = use_dataflow;
  options.analyzer.use_ipa = use_ipa;
  options.audit = true;
  auto result = corpus::RunStudy(options);
  if (!result.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return result.take();
}

std::string Rate(int unknown, int total) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f%%",
                total > 0 ? 100.0 * unknown / total : 0.0);
  return buffer;
}

}  // namespace

int main() {
  std::printf("Dataflow constant propagation vs linear baseline vs ipa\n");
  std::printf("(same corpus, all modes audited against dynamic replay)\n\n");

  corpus::StudyResult linear = RunMode(/*use_dataflow=*/false);
  corpus::StudyResult dataflow = RunMode(/*use_dataflow=*/true);
  corpus::StudyResult ipa = RunMode(/*use_dataflow=*/true, /*use_ipa=*/true);

  TableWriter table({"Metric", "Linear", "CFG dataflow", "IPA"});
  table.AddRow({"syscall sites",
                std::to_string(linear.total_syscall_sites),
                std::to_string(dataflow.total_syscall_sites),
                std::to_string(ipa.total_syscall_sites)});
  table.AddRow({"unknown sites",
                std::to_string(linear.unknown_syscall_sites),
                std::to_string(dataflow.unknown_syscall_sites),
                std::to_string(ipa.unknown_syscall_sites)});
  table.AddRow({"unknown rate",
                Rate(linear.unknown_syscall_sites,
                     linear.total_syscall_sites),
                Rate(dataflow.unknown_syscall_sites,
                     dataflow.total_syscall_sites),
                Rate(ipa.unknown_syscall_sites,
                     ipa.total_syscall_sites)});
  table.AddRow({"ground-truth mismatches",
                std::to_string(linear.ground_truth_mismatches),
                std::to_string(dataflow.ground_truth_mismatches),
                std::to_string(ipa.ground_truth_mismatches)});
  table.AddRow({"executables replayed",
                std::to_string(linear.audit->executables_audited),
                std::to_string(dataflow.audit->executables_audited),
                std::to_string(ipa.audit->executables_audited)});
  table.AddRow({"soundness violations",
                std::to_string(linear.audit->soundness_violations),
                std::to_string(dataflow.audit->soundness_violations),
                std::to_string(ipa.audit->soundness_violations)});
  table.AddRow({"observed masked by unknowns",
                std::to_string(linear.audit->masked_by_unknown_sites),
                std::to_string(dataflow.audit->masked_by_unknown_sites),
                std::to_string(ipa.audit->masked_by_unknown_sites)});
  table.AddRow({"static-only margin",
                std::to_string(linear.audit->static_only_apis),
                std::to_string(dataflow.audit->static_only_apis),
                std::to_string(ipa.audit->static_only_apis)});
  table.Print(std::cout);

  std::printf("\nlinear   %s\n", linear.audit->Summary().c_str());
  std::printf("dataflow %s\n", dataflow.audit->Summary().c_str());
  std::printf("ipa      %s\n\n", ipa.audit->Summary().c_str());

  const bool strict_reduction =
      dataflow.unknown_syscall_sites < linear.unknown_syscall_sites &&
      ipa.unknown_syscall_sites < dataflow.unknown_syscall_sites;
  const bool both_sound = linear.audit->sound() &&
                          dataflow.audit->sound() && ipa.audit->sound();
  std::printf("strict unknown-site reduction: %s (%d -> %d -> %d)\n",
              strict_reduction ? "YES" : "NO",
              linear.unknown_syscall_sites,
              dataflow.unknown_syscall_sites,
              ipa.unknown_syscall_sites);
  std::printf("zero audit violations in all modes: %s\n",
              both_sound ? "YES" : "NO");
  if (!strict_reduction || !both_sound) {
    std::printf("\nVERDICT: FAIL\n");
    return 1;
  }
  std::printf("\nVERDICT: PASS — dataflow strictly sharpens the paper's\n"
              "call-site number recovery without giving up the strace\n"
              "superset invariant (paper section 2.3).\n");
  return 0;
}
