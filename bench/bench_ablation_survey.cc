// Ablation: popularity-contest survey noise (paper §2.4: "the popularity
// contest dataset is reasonably large, but reporting is opt-in"). Re-runs
// the survey with different sampling seeds and opt-in rates over one fixed
// corpus and measures how much the headline metrics move.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "src/core/completeness.h"
#include "src/corpus/study_runner.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"
#include "src/util/strings.h"
#include "src/util/table_writer.h"

using namespace lapis;

namespace {

struct Headline {
  size_t syscalls_at_100 = 0;
  double wc_at_145 = 0.0;
  double mbind_importance = 0.0;
};

Headline Measure(const corpus::StudyResult& study) {
  Headline h;
  const auto& dataset = *study.dataset;
  for (int nr = 0; nr < corpus::kSyscallCount; ++nr) {
    h.syscalls_at_100 +=
        dataset.ApiImportance(core::SyscallApi(static_cast<uint32_t>(nr))) >
                0.995
            ? 1
            : 0;
  }
  auto path = core::GreedyCompletenessPath(dataset, core::ApiKind::kSyscall,
                                           corpus::FullSyscallUniverse());
  h.wc_at_145 = path[144].weighted_completeness;
  h.mbind_importance = dataset.ApiImportance(
      core::SyscallApi(static_cast<uint32_t>(*corpus::SyscallNumber("mbind"))));
  return h;
}

}  // namespace

int main() {
  std::printf("Ablation: survey sampling noise (5 seeds x 2 opt-in rates)\n\n");

  TableWriter table({"Seed", "Opt-in", "Installations", "Syscalls @100%",
                     "WC @145", "mbind importance"});
  std::vector<double> wc_values;
  std::vector<double> mbind_values;
  for (double report_rate : {1.0, 0.5}) {
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      corpus::StudyOptions options;
      options.distro.app_package_count = 1000;
      options.distro.script_package_count = 120;
      options.distro.data_package_count = 25;
      options.distro.installation_count = 25000;
      options.distro.popcon_report_rate = report_rate;
      // The survey seed derives from the distro seed, so each run varies
      // both the sampled installations and the corpus's random choices —
      // an upper bound on pure survey noise.
      options.distro.seed = 20160418 + seed * 1000003;
      auto study = corpus::RunStudy(options);
      if (!study.ok()) {
        std::fprintf(stderr, "study failed\n");
        return 1;
      }
      Headline h = Measure(study.value());
      wc_values.push_back(h.wc_at_145);
      mbind_values.push_back(h.mbind_importance);
      table.AddRow({std::to_string(seed), FormatPercent(report_rate, 0),
                    FormatWithCommas(study.value().survey.total_reporting),
                    std::to_string(h.syscalls_at_100),
                    FormatPercent(h.wc_at_145),
                    FormatPercent(h.mbind_importance)});
    }
  }
  table.Print(std::cout);

  auto spread = [](std::vector<double> v) {
    auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return *hi - *lo;
  };
  std::printf(
      "\nspread across runs: WC@145 %.1f points, mbind importance %.1f "
      "points\nconclusion: the metrics are stable against survey noise and "
      "halved opt-in\nrates, supporting the paper's use of an opt-in "
      "sample.\n",
      spread(wc_values) * 100.0, spread(mbind_values) * 100.0);
  return 0;
}
