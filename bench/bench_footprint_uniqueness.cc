// §6: system-call footprints as identifiers — distinct and unique footprint
// counts, and automatic seccomp-policy generation from footprints.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("§6: footprint uniqueness & seccomp policies");
  const auto& study = bench::FullStudy();
  auto uniq = study.dataset->ComputeFootprintUniqueness();

  TableWriter table({"Metric", "Paper", "Measured"});
  table.AddRow({"Applications with footprints", "31,433",
                FormatWithCommas(uniq.packages_with_footprint)});
  table.AddRow({"Distinct footprints", "11,680",
                FormatWithCommas(uniq.distinct)});
  table.AddRow({"Unique footprints", "9,133 (1/3 of apps)",
                FormatWithCommas(uniq.unique)});
  table.Print(std::cout);

  // Demonstrate automatic seccomp allowlist generation (paper: "generation
  // of seccomp policies can be easily automated using our framework").
  PrintBanner(std::cout, "Example generated seccomp allowlists");
  for (const char* package : {"qemu-user", "kexec-tools", "coreutils"}) {
    auto pkg = study.dataset->FindPackage(package);
    if (pkg == UINT32_MAX) {
      continue;
    }
    size_t syscalls = 0;
    std::vector<std::string> sample;
    for (const auto& api : study.dataset->Footprint(pkg)) {
      if (api.kind != core::ApiKind::kSyscall) {
        continue;
      }
      ++syscalls;
      if (sample.size() < 6) {
        sample.push_back(std::string(
            corpus::SyscallName(static_cast<int>(api.code))));
      }
    }
    std::printf("  %-14s allow %zu syscalls: %s, ...\n", package, syscalls,
                Join(sample, ", ").c_str());
  }
  return 0;
}
