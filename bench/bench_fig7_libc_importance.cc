// Figure 7: API importance distribution over GNU libc's exported functions.

#include <algorithm>
#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/api_universe.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Figure 7: libc export importance distribution");
  const auto& study = bench::FullStudy();
  const auto& dataset = *study.dataset;

  std::vector<double> importances;
  for (const auto& spec : corpus::LibcUniverse()) {
    uint32_t id = study.libc_interner.Find(spec.name);
    importances.push_back(
        id == UINT32_MAX
            ? 0.0
            : dataset.ApiImportance(core::ApiId{core::ApiKind::kLibcFn, id}));
  }
  std::sort(importances.rbegin(), importances.rend());

  PrintBanner(std::cout, "Importance at N%-most-important ranks");
  TableWriter curve({"Percentile of libc APIs", "Importance"});
  for (int pct : {0, 10, 17, 33, 43, 50, 60, 67, 75, 84, 95, 99}) {
    size_t index = static_cast<size_t>(
        pct / 100.0 * static_cast<double>(importances.size() - 1));
    curve.AddRow({std::to_string(pct) + "%",
                  bench::Pct(importances[index], 2)});
  }
  curve.Print(std::cout);

  size_t total = importances.size();
  size_t at_100 = 0;
  size_t below_50 = 0;
  size_t below_1 = 0;
  size_t unused = 0;
  for (double imp : importances) {
    at_100 += imp > 0.995 ? 1 : 0;
    below_50 += imp < 0.50 ? 1 : 0;
    below_1 += imp < 0.01 ? 1 : 0;
    unused += imp == 0.0 ? 1 : 0;
  }
  PrintBanner(std::cout, "Distribution summary");
  TableWriter tiers({"Band", "Paper", "Measured"});
  tiers.AddRow({"Total exported functions", "1,274", std::to_string(total)});
  tiers.AddRow({"Importance ~100%", "42.8%",
                bench::Pct(static_cast<double>(at_100) / total)});
  tiers.AddRow({"Importance < 50%", "50.6%",
                bench::Pct(static_cast<double>(below_50) / total)});
  tiers.AddRow({"Importance < 1%", "39.7%",
                bench::Pct(static_cast<double>(below_1) / total)});
  tiers.AddRow({"Never used (§6)", "222", std::to_string(unused)});
  tiers.Print(std::cout);
  return 0;
}
