// Figure 1: breakdown of executables by type (ELF vs interpreted languages)
// and of ELF binaries by linkage (static / shared library / dynamic).

#include <cstdio>
#include <iostream>

#include "bench/study_fixture.h"
#include "src/package/repository.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner(
      "Figure 1: executable types across the distribution");
  const auto& study = bench::FullStudy();
  const auto& stats = study.binary_stats;

  size_t scripts_total = 0;
  for (const auto& [kind, count] : stats.script_programs) {
    (void)kind;
    scripts_total += count;
  }
  size_t elf_total = stats.TotalElf();
  size_t total = elf_total + scripts_total;

  TableWriter table({"Type", "Paper share", "Measured count",
                     "Measured share"});
  table.AddRow({"ELF binary", "60%", std::to_string(elf_total),
                bench::Pct(static_cast<double>(elf_total) / total)});
  struct Row {
    package::ProgramKind kind;
    const char* paper;
  } rows[] = {
      {package::ProgramKind::kShellDash, "15%"},
      {package::ProgramKind::kPython, "9%"},
      {package::ProgramKind::kPerl, "8%"},
      {package::ProgramKind::kShellBash, "6%"},
      {package::ProgramKind::kRuby, "1%"},
      {package::ProgramKind::kOtherInterpreted, "1%"},
  };
  for (const auto& row : rows) {
    auto it = stats.script_programs.find(row.kind);
    size_t count = it == stats.script_programs.end() ? 0 : it->second;
    table.AddRow({package::ProgramKindName(row.kind), row.paper,
                  std::to_string(count),
                  bench::Pct(static_cast<double>(count) / total)});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "Types of ELF binaries");
  TableWriter elf_table({"Linkage", "Paper share", "Measured count",
                         "Measured share"});
  elf_table.AddRow(
      {"Linkable shared libraries", "52%",
       std::to_string(stats.elf_shared_libraries),
       bench::Pct(static_cast<double>(stats.elf_shared_libraries) /
                  elf_total)});
  elf_table.AddRow(
      {"Dynamically linked executables", "48%",
       std::to_string(stats.elf_executables),
       bench::Pct(static_cast<double>(stats.elf_executables) / elf_total)});
  elf_table.AddRow(
      {"Static binaries", "0.38%", std::to_string(stats.elf_static),
       bench::Pct(static_cast<double>(stats.elf_static) / elf_total, 2)});
  elf_table.Print(std::cout);
  return 0;
}
