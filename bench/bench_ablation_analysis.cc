// Ablation: the static-analysis design choices the paper's methodology
// relies on (§2.3, §7):
//   1. call-site constant recovery for vectored opcodes (without it, the
//      ioctl/fcntl/prctl sub-tables are invisible);
//   2. hard-coded path extraction (without it, no pseudo-file study);
//   3. entry-point reachability vs whole-binary linear sweep (the latter
//      over-approximates footprints with dead/unreachable code).

#include <iostream>
#include <memory>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/library_resolver.h"
#include "src/corpus/binary_synth.h"
#include "src/corpus/distro_spec.h"
#include "src/elf/elf_reader.h"
#include "src/util/table_writer.h"

using namespace lapis;
using analysis::BinaryAnalysis;
using analysis::BinaryAnalyzer;
using analysis::LibraryResolver;

namespace {

struct VariantTotals {
  size_t syscalls = 0;
  size_t ioctl_ops = 0;
  size_t pseudo_paths = 0;
  size_t unknown_opcode_sites = 0;
};

}  // namespace

int main() {
  corpus::DistroOptions options;
  options.app_package_count = 600;
  options.script_package_count = 60;
  options.data_package_count = 12;
  auto spec = corpus::BuildDistroSpec(options).take();
  corpus::DistroSynthesizer synthesizer(spec);

  std::printf("Ablation: analyzer configurations over %zu packages\n\n",
              spec.packages.size());

  BinaryAnalyzer::Options full;
  BinaryAnalyzer::Options no_opcodes;
  no_opcodes.resolve_wrapper_opcodes = false;
  BinaryAnalyzer::Options no_paths;
  no_paths.collect_pseudo_paths = false;

  struct Variant {
    const char* name;
    BinaryAnalyzer::Options options;
    bool whole_binary;
  } variants[] = {
      {"full (paper methodology)", full, false},
      {"no opcode recovery", no_opcodes, false},
      {"no pseudo-path extraction", no_paths, false},
      {"whole-binary sweep (no call graph)", full, true},
  };

  TableWriter table({"Configuration", "Syscalls (pkg avg)",
                     "ioctl ops (total)", "Pseudo-paths (total)",
                     "Unknown opcode sites"});
  for (const auto& variant : variants) {
    LibraryResolver resolver;
    auto core_libs = synthesizer.CoreLibraries().take();
    for (const auto& binary : core_libs) {
      auto image = elf::ElfReader::Parse(binary.bytes).take();
      auto analysis = BinaryAnalyzer::Analyze(image, variant.options);
      (void)resolver.AddLibrary(
          std::make_shared<BinaryAnalysis>(analysis.take()));
    }
    VariantTotals totals;
    size_t packages = 0;
    for (size_t pkg = 0; pkg < spec.packages.size(); ++pkg) {
      const auto& plan = spec.packages[pkg];
      if (plan.data_only || !plan.interpreter_package.empty()) {
        continue;
      }
      auto binaries = synthesizer.PackageBinaries(pkg).take();
      analysis::Footprint footprint;
      // Package-private library sonames are globally unique, so they can
      // accumulate in the shared resolver (as the study runner does).
      std::vector<const corpus::SynthesizedBinary*> exes;
      for (const auto& binary : binaries) {
        if (!binary.is_library) {
          continue;
        }
        auto image = elf::ElfReader::Parse(binary.bytes).take();
        auto lib_analysis = BinaryAnalyzer::Analyze(image, variant.options);
        (void)resolver.AddLibrary(
            std::make_shared<BinaryAnalysis>(lib_analysis.take()));
      }
      auto& local = resolver;
      for (const auto& binary : binaries) {
        if (binary.is_library) {
          continue;
        }
        auto image = elf::ElfReader::Parse(binary.bytes).take();
        auto analysis_result =
            BinaryAnalyzer::Analyze(image, variant.options);
        auto shared =
            std::make_shared<BinaryAnalysis>(analysis_result.take());
        if (variant.whole_binary) {
          // Over-approximation: every function is a root, reachable or not.
          std::vector<uint64_t> roots;
          for (const auto& fn : shared->functions()) {
            roots.push_back(fn.vaddr);
          }
          auto reach = shared->Reachable(roots);
          footprint.MergeFrom(reach.footprint);
          footprint.MergeFrom(
              local.ResolveFromSymbols(
                       {reach.plt_calls.begin(), reach.plt_calls.end()})
                  .footprint);
        } else {
          footprint.MergeFrom(local.ResolveExecutable(*shared).footprint);
        }
      }
      totals.syscalls += footprint.syscalls.size();
      totals.ioctl_ops += footprint.ioctl_ops.size();
      totals.pseudo_paths += footprint.pseudo_paths.size();
      totals.unknown_opcode_sites +=
          static_cast<size_t>(footprint.unknown_opcode_sites);
      ++packages;
    }
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.1f",
                  static_cast<double>(totals.syscalls) /
                      static_cast<double>(packages));
    table.AddRow({variant.name, avg, std::to_string(totals.ioctl_ops),
                  std::to_string(totals.pseudo_paths),
                  std::to_string(totals.unknown_opcode_sites)});
  }
  table.Print(std::cout);
  std::printf(
      "\nreadings:\n"
      "- without call-site opcode recovery the vectored-API study\n"
      "  (Figs 4-5) loses its data entirely;\n"
      "- without path extraction the pseudo-file study (Fig 6) disappears;\n"
      "- a whole-binary sweep counts dead (statically linked but\n"
      "  unreachable) code, inflating footprints -- the paper's call-graph\n"
      "  reachability avoids this over-approximation.\n");
  return 0;
}
