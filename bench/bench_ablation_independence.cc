// Ablation: the paper's §A.2 independence assumption. The popcon data only
// publishes marginal install counts, so API importance must assume package
// installations are independent. Our simulator retains joint samples,
// letting us compare the assumed importance against the true fraction of
// installations containing a dependent package.

#include <cmath>
#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/study_runner.h"
#include "src/corpus/syscall_table.h"

using namespace lapis;

namespace {

struct ErrorStats {
  double mean = 0.0;
  double max = 0.0;
  size_t measured = 0;
};

ErrorStats MeasureErrors(const corpus::StudyResult& study,
                         TableWriter* table) {
  const auto& dataset = *study.dataset;
  ErrorStats stats;
  double sum = 0.0;
  for (int nr = 0; nr < corpus::kSyscallCount; ++nr) {
    core::ApiId api = core::SyscallApi(static_cast<uint32_t>(nr));
    const auto& dependents = dataset.Dependents(api);
    if (dependents.empty()) {
      continue;
    }
    size_t hits = 0;
    for (const auto& sample : study.survey.samples) {
      for (core::PackageId pkg : dependents) {
        if (sample.Contains(pkg)) {
          ++hits;
          break;
        }
      }
    }
    double truth = static_cast<double>(hits) /
                   static_cast<double>(study.survey.samples.size());
    double assumed = dataset.ApiImportance(api);
    double error = std::abs(assumed - truth);
    stats.max = std::max(stats.max, error);
    sum += error;
    ++stats.measured;
    // Print the interesting middle band (0 and 1 are trivially exact).
    if (table != nullptr && assumed > 0.02 && assumed < 0.98 &&
        table->row_count() < 14) {
      table->AddRow({std::string(corpus::SyscallName(nr)),
                     lapis::bench::Pct(assumed, 2),
                     lapis::bench::Pct(truth, 2),
                     lapis::bench::Pct(error, 2)});
    }
  }
  stats.mean = sum / std::max<size_t>(stats.measured, 1);
  return stats;
}

}  // namespace

int main() {
  // This bench needs joint samples; run its own mid-scale studies.
  corpus::StudyOptions options = bench::BenchStudyOptions();
  options.distro.app_package_count =
      std::min<size_t>(options.distro.app_package_count, 1500);
  options.distro.installation_count = 30000;
  options.popcon_retain_samples = 30000;

  std::printf("Ablation: independence assumption (paper Appendix A.2)\n\n");

  // ---- World 1: installs correlated only through APT dependencies (the
  // paper's implicit model).
  auto baseline = corpus::RunStudy(options);
  if (!baseline.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  TableWriter table({"System call", "Assumed importance (A.1 formula)",
                     "True importance (joint samples)", "Abs. error"});
  ErrorStats base_stats = MeasureErrors(baseline.value(), &table);
  std::printf("world 1: dependency-only correlation (%zu packages, %zu "
              "joint samples)\n",
              baseline.value().spec.packages.size(),
              baseline.value().survey.samples.size());
  table.Print(std::cout);
  std::printf("mean |error| = %s, max |error| = %s across %zu syscalls\n\n",
              bench::Pct(base_stats.mean, 2).c_str(),
              bench::Pct(base_stats.max, 2).c_str(), base_stats.measured);

  // ---- World 2: strong install-profile correlation (server / desktop /
  // developer profiles tripling same-profile package odds). The published
  // popcon data cannot reveal this structure; this measures how wrong the
  // independence assumption could be if it exists.
  options.popcon_profile_count = 3;
  options.popcon_profile_boost = 3.0;
  auto correlated = corpus::RunStudy(options);
  if (!correlated.ok()) {
    std::fprintf(stderr, "study failed\n");
    return 1;
  }
  ErrorStats corr_stats = MeasureErrors(correlated.value(), nullptr);
  std::printf("world 2: + install profiles (3 profiles, 3x boost)\n");
  std::printf("mean |error| = %s, max |error| = %s across %zu syscalls\n",
              bench::Pct(corr_stats.mean, 2).c_str(),
              bench::Pct(corr_stats.max, 2).c_str(), corr_stats.measured);

  std::printf(
      "\nconclusion: with dependency-only correlation the A.1 formula is\n"
      "nearly exact; under hidden install profiles it overestimates\n"
      "importance for co-profile APIs by up to the max error above --\n"
      "the cost of the popcon dataset publishing only marginal counts\n"
      "(paper §2.4's acknowledged limitation).\n");
  return 0;
}
