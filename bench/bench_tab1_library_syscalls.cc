// Table 1: system calls whose only direct call sites live in particular
// libraries, with their API importance.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/syscall_table.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("Table 1: syscalls used only via libraries");
  const auto& study = bench::FullStudy();
  const auto& dataset = *study.dataset;

  TableWriter table({"System call", "Paper imp.", "Measured imp.",
                     "Call-site binaries (measured)"});
  struct Row {
    const char* name;
    const char* paper;
  } rows[] = {
      {"clock_settime", "100%"}, {"iopl", "100%"},
      {"ioperm", "100%"},        {"signalfd4", "100%"},
      {"mbind", "36.0%"},        {"add_key", "27.2%"},
      {"keyctl", "27.2%"},       {"request_key", "14.4%"},
      {"preadv", "11.7%"},       {"pwritev", "11.7%"},
  };
  for (const auto& row : rows) {
    int nr = *corpus::SyscallNumber(row.name);
    double imp =
        dataset.ApiImportance(core::SyscallApi(static_cast<uint32_t>(nr)));
    std::vector<std::string> sites;
    auto it = study.syscall_site_binaries.find(nr);
    if (it != study.syscall_site_binaries.end()) {
      for (const auto& binary : it->second) {
        sites.push_back(binary);
        if (sites.size() >= 3) {
          break;
        }
      }
    }
    table.AddRow({row.name, row.paper, bench::Pct(imp),
                  Join(sites, ", ")});
  }
  table.Print(std::cout);
  std::printf(
      "\nAll call sites above live in shared libraries (libc.so.6 or the\n"
      "owning package's library), so deprecating these syscalls only needs\n"
      "library changes -- the paper's Table 1 conclusion.\n");
  return 0;
}
