// IPA-precision benchmark: runs the full study pipeline three times over
// the same calibrated corpus — linear baseline, CFG dataflow, and the
// interprocedural (ipa) tier — with the differential soundness audit
// enabled in every mode. Reports, side by side:
//   * unknown syscall-site counts and rates (precision per tier);
//   * ground-truth mismatches (all must be zero — soundness of recovery);
//   * the audit verdict (every tier must replay with zero violations).
// Headline checks, mirroring bench_dataflow_precision one tier up:
//   * ipa must STRICTLY reduce unknown sites versus dataflow (wrapper-style
//     sites are recoverable only by back-tracking through the call graph);
//   * ipa exports must be byte-identical at --jobs=1 and --jobs=4 (the
//     bottom-up summary / top-down resolution passes are deterministic).
// Results go to BENCH_ipa.json (override with LAPIS_IPA_BENCH_JSON).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "bench/study_fixture.h"
#include "src/core/report.h"
#include "src/corpus/study_runner.h"
#include "src/util/env.h"
#include "src/util/table_writer.h"

using namespace lapis;

namespace {

std::string CpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    auto colon = line.find(':');
    if (colon != std::string::npos &&
        line.compare(0, 10, "model name") == 0) {
      size_t start = line.find_first_not_of(" \t", colon + 1);
      return start == std::string::npos ? "" : line.substr(start);
    }
  }
  return "unknown";
}

std::string IsoDate() {
  std::time_t now = std::time(nullptr);
  char buf[16];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm_utc);
  return buf;
}

corpus::StudyResult RunTier(bool use_dataflow, bool use_ipa,
                            size_t jobs = 0) {
  corpus::StudyOptions options = bench::BenchStudyOptions();
  options.analyzer.use_dataflow = use_dataflow;
  options.analyzer.use_ipa = use_ipa;
  options.audit = true;
  if (jobs != 0) options.jobs = jobs;
  auto result = corpus::RunStudy(options);
  if (!result.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return result.take();
}

// Concatenated TSV exports of a finished study — the byte-identity surface
// the determinism guarantee covers (same surface runtime_determinism_test
// checks).
std::string ExportBytes(const corpus::StudyResult& study) {
  std::ostringstream os;
  if (!core::ExportImportanceTsv(
           *study.dataset,
           {core::ApiKind::kSyscall, core::ApiKind::kIoctlOp,
            core::ApiKind::kFcntlOp, core::ApiKind::kPrctlOp,
            core::ApiKind::kPseudoFile, core::ApiKind::kLibcFn},
           study.path_interner, study.libc_interner, os)
           .ok() ||
      !core::ExportPackagesTsv(*study.dataset, os).ok() ||
      !core::ExportFootprintsTsv(*study.dataset, study.path_interner,
                                 study.libc_interner, os)
          .ok()) {
    std::fprintf(stderr, "export failed\n");
    std::abort();
  }
  return os.str();
}

std::string Rate(int unknown, int total) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f%%",
                total > 0 ? 100.0 * unknown / total : 0.0);
  return buffer;
}

void AppendTierJson(std::ostringstream& os, const char* name,
                    const corpus::StudyResult& s, bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    { \"tier\": \"%s\", \"syscall_sites\": %d, \"unknown_sites\": "
      "%d, \"unknown_rate\": %.6f, \"ground_truth_mismatches\": %zu, "
      "\"executables_audited\": %zu, \"soundness_violations\": %zu, "
      "\"masked_by_unknown_sites\": %zu }%s\n",
      name, s.total_syscall_sites, s.unknown_syscall_sites,
      s.total_syscall_sites > 0
          ? static_cast<double>(s.unknown_syscall_sites) /
                s.total_syscall_sites
          : 0.0,
      s.ground_truth_mismatches, s.audit->executables_audited,
      s.audit->soundness_violations, s.audit->masked_by_unknown_sites,
      last ? "" : ",");
  os << buf;
}

}  // namespace

int main() {
  std::printf("Interprocedural (ipa) tier vs dataflow vs linear baseline\n");
  std::printf("(same corpus, all tiers audited against dynamic replay)\n\n");

  corpus::StudyResult linear = RunTier(false, false);
  corpus::StudyResult dataflow = RunTier(true, false);
  corpus::StudyResult ipa = RunTier(true, true);

  TableWriter table({"Metric", "Linear", "CFG dataflow", "IPA"});
  table.AddRow({"syscall sites", std::to_string(linear.total_syscall_sites),
                std::to_string(dataflow.total_syscall_sites),
                std::to_string(ipa.total_syscall_sites)});
  table.AddRow({"unknown sites",
                std::to_string(linear.unknown_syscall_sites),
                std::to_string(dataflow.unknown_syscall_sites),
                std::to_string(ipa.unknown_syscall_sites)});
  table.AddRow(
      {"unknown rate",
       Rate(linear.unknown_syscall_sites, linear.total_syscall_sites),
       Rate(dataflow.unknown_syscall_sites, dataflow.total_syscall_sites),
       Rate(ipa.unknown_syscall_sites, ipa.total_syscall_sites)});
  table.AddRow({"ground-truth mismatches",
                std::to_string(linear.ground_truth_mismatches),
                std::to_string(dataflow.ground_truth_mismatches),
                std::to_string(ipa.ground_truth_mismatches)});
  table.AddRow({"soundness violations",
                std::to_string(linear.audit->soundness_violations),
                std::to_string(dataflow.audit->soundness_violations),
                std::to_string(ipa.audit->soundness_violations)});
  table.AddRow({"observed masked by unknowns",
                std::to_string(linear.audit->masked_by_unknown_sites),
                std::to_string(dataflow.audit->masked_by_unknown_sites),
                std::to_string(ipa.audit->masked_by_unknown_sites)});
  table.Print(std::cout);

  std::printf("\nlinear   %s\n", linear.audit->Summary().c_str());
  std::printf("dataflow %s\n", dataflow.audit->Summary().c_str());
  std::printf("ipa      %s\n\n", ipa.audit->Summary().c_str());

  // Determinism: the ipa tier at --jobs=1 and --jobs=4 must export
  // byte-identical TSVs (summary emission order is callees-first over the
  // SCC condensation, never scheduling order).
  corpus::StudyResult ipa_j1 = RunTier(true, true, /*jobs=*/1);
  corpus::StudyResult ipa_j4 = RunTier(true, true, /*jobs=*/4);
  const std::string bytes_j1 = ExportBytes(ipa_j1);
  const bool deterministic = bytes_j1 == ExportBytes(ipa_j4) &&
                             bytes_j1 == ExportBytes(ipa);

  const bool strict_reduction =
      ipa.unknown_syscall_sites < dataflow.unknown_syscall_sites &&
      dataflow.unknown_syscall_sites < linear.unknown_syscall_sites;
  const bool all_sound = linear.audit->sound() && dataflow.audit->sound() &&
                         ipa.audit->sound();
  const bool no_mismatches = linear.ground_truth_mismatches == 0 &&
                             dataflow.ground_truth_mismatches == 0 &&
                             ipa.ground_truth_mismatches == 0;
  std::printf("strict unknown-site reduction (linear > dataflow > ipa): "
              "%s (%d -> %d -> %d)\n",
              strict_reduction ? "YES" : "NO",
              linear.unknown_syscall_sites, dataflow.unknown_syscall_sites,
              ipa.unknown_syscall_sites);
  std::printf("zero audit violations in all tiers: %s\n",
              all_sound ? "YES" : "NO");
  std::printf("ipa exports byte-identical at jobs=1/4/default: %s\n",
              deterministic ? "YES" : "NO");

  std::ostringstream os;
  os << "{\n  \"bench\": \"ipa_precision\",\n"
     << "  \"description\": \"Unknown syscall-site precision of the three "
        "analysis tiers (linear constant scan, CFG dataflow, "
        "interprocedural back-tracking), each differentially audited "
        "against dynamic replay, plus the ipa determinism check across "
        "worker counts. Emitted by bench_ipa_precision.\",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"host\": {\n"
                "    \"cpu_model\": \"%s\",\n"
                "    \"logical_cpus\": %u,\n"
                "    \"compiler\": \"%s\",\n"
                "    \"date\": \"%s\"\n"
                "  },\n",
                CpuModel().c_str(), std::thread::hardware_concurrency(),
                __VERSION__, IsoDate().c_str());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"config\": { \"app_packages\": %zu, \"installations\": "
                "%" PRIu64 ", \"packages\": %zu, \"ipa_max_depth\": %d },\n",
                bench::BenchStudyOptions().distro.app_package_count,
                bench::BenchStudyOptions().distro.installation_count,
                ipa.spec.packages.size(), ipa.analyzer_options.ipa_max_depth);
  os << buf;
  os << "  \"tiers\": [\n";
  AppendTierJson(os, "linear", linear, false);
  AppendTierJson(os, "dataflow", dataflow, false);
  AppendTierJson(os, "ipa", ipa, true);
  os << "  ],\n";
  std::snprintf(buf, sizeof buf,
                "  \"checks\": { \"strict_unknown_reduction\": %s, "
                "\"all_tiers_sound\": %s, \"jobs_deterministic\": %s, "
                "\"export_bytes\": %zu }\n}\n",
                strict_reduction ? "true" : "false",
                all_sound ? "true" : "false",
                deterministic ? "true" : "false", bytes_j1.size());
  os << buf;

  std::string path = EnvStringOr("LAPIS_IPA_BENCH_JSON", "BENCH_ipa.json");
  std::ofstream out(path, std::ios::trunc);
  out << os.str();
  if (!out.good()) {
    std::fprintf(stderr, "failed writing %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());

  if (!strict_reduction || !all_sound || !deterministic || !no_mismatches) {
    std::printf("\nVERDICT: FAIL\n");
    return 1;
  }
  std::printf("\nVERDICT: PASS — interprocedural back-tracking strictly\n"
              "sharpens call-site number recovery over the CFG tier while\n"
              "holding the strace superset invariant and byte-identical\n"
              "exports at every worker count.\n");
  return 0;
}
