// §3.5: restructuring libc — strip exports below an importance threshold and
// measure retained API count, retained code bytes, and the stripped
// library's weighted completeness. Sweeps several thresholds (the paper
// reports the 90% point).

#include <iostream>

#include "bench/study_fixture.h"
#include "src/core/libc_analysis.h"
#include "src/util/strings.h"

using namespace lapis;

int main() {
  bench::PrintStudyBanner("§3.5: libc restructuring analysis");
  const auto& study = bench::FullStudy();

  TableWriter table({"Threshold", "Retained APIs", "Size kept",
                     "Stripped-libc W.Comp."});
  for (double threshold : {0.50, 0.75, 0.90, 0.99}) {
    auto report = core::AnalyzeLibcRestructure(*study.dataset,
                                               study.libc_symbol_sizes,
                                               threshold);
    table.AddRow({bench::Pct(threshold, 0),
                  std::to_string(report.retained_apis) + " / " +
                      std::to_string(report.total_apis),
                  bench::Pct(report.retained_size_fraction),
                  bench::Pct(report.stripped_weighted_completeness)});
  }
  table.Print(std::cout);

  auto report = core::AnalyzeLibcRestructure(*study.dataset,
                                             study.libc_symbol_sizes, 0.90);
  std::printf(
      "\npaper @90%%: 889 retained, 63%% of size, 90.7%% completeness\n"
      "measured  : %zu retained, %s of size, %s completeness\n"
      "relocation table: %zu entries, %s bytes (paper: 1,274 entries, "
      "30,576 bytes)\n",
      report.retained_apis, bench::Pct(report.retained_size_fraction).c_str(),
      bench::Pct(report.stripped_weighted_completeness).c_str(),
      report.relocation_entries,
      FormatWithCommas(report.relocation_bytes).c_str());
  return 0;
}
