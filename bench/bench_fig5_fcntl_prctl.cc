// Figure 5: API importance ranking of fcntl and prctl operation codes.

#include <iostream>

#include "bench/study_fixture.h"
#include "src/corpus/api_universe.h"

using namespace lapis;

namespace {

void PrintFamily(const char* title, const std::vector<corpus::OpSpec>& ops,
                 core::ApiKind kind, const char* paper_100,
                 const char* paper_note) {
  const auto& dataset = *bench::FullStudy().dataset;
  PrintBanner(std::cout, title);
  TableWriter table({"Operation", "Importance"});
  size_t at_100 = 0;
  size_t above_20 = 0;
  for (const auto& op : ops) {
    double imp = dataset.ApiImportance(core::ApiId{kind, op.code});
    at_100 += imp > 0.995 ? 1 : 0;
    above_20 += imp > 0.20 ? 1 : 0;
    table.AddRow({op.name, lapis::bench::Pct(imp)});
  }
  table.Print(std::cout);
  std::printf("ops at ~100%%: %zu (paper: %s); ops above 20%%: %zu (%s)\n",
              at_100, paper_100, above_20, paper_note);
}

}  // namespace

int main() {
  bench::PrintStudyBanner("Figure 5: fcntl and prctl opcode importance");
  PrintFamily("fcntl operations (18 defined)", corpus::FcntlOps(),
              core::ApiKind::kFcntlOp, "11 of 18", "paper: n/a");
  PrintFamily("prctl operations (44 defined)", corpus::PrctlOps(),
              core::ApiKind::kPrctlOp, "9 of 44", "paper: 18 of 44");
  return 0;
}
