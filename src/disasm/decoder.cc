#include "src/disasm/decoder.h"

namespace lapis::disasm {

namespace {

// Immediate classes attached to an opcode.
enum class ImmClass : uint8_t {
  kNone,
  kIb,    // 1 byte
  kIw,    // 2 bytes
  kIz,    // 2 or 4 bytes depending on operand size (never 8)
  kIv,    // 2, 4, or 8 bytes depending on operand size (mov r64, imm64)
  kRel8,  // 1-byte branch displacement
  kRel32, // 4-byte branch displacement (rel16 with 66 is not emitted on x86-64)
  kMoffs, // address-size offset (8 bytes in 64-bit mode)
  kIwIb,  // enter: imm16 + imm8
};

struct OpcodeInfo {
  bool valid = false;
  bool has_modrm = false;
  ImmClass imm = ImmClass::kNone;
};

// Decoder working state for one instruction.
struct DecodeState {
  std::span<const uint8_t> bytes;
  size_t pos = 0;
  bool opsize16 = false;  // 66 prefix
  uint8_t rex = 0;        // 0 if absent

  bool RexW() const { return (rex & 0x08) != 0; }
  bool RexR() const { return (rex & 0x04) != 0; }
  bool RexB() const { return (rex & 0x01) != 0; }

  Result<uint8_t> Next() {
    if (pos >= bytes.size()) {
      return OutOfRangeError("truncated instruction");
    }
    return bytes[pos++];
  }

  Result<uint32_t> NextU32() {
    if (pos + 4 > bytes.size()) {
      return OutOfRangeError("truncated instruction");
    }
    uint32_t v = static_cast<uint32_t>(bytes[pos]) |
                 static_cast<uint32_t>(bytes[pos + 1]) << 8 |
                 static_cast<uint32_t>(bytes[pos + 2]) << 16 |
                 static_cast<uint32_t>(bytes[pos + 3]) << 24;
    pos += 4;
    return v;
  }

  Result<uint64_t> NextU64() {
    LAPIS_ASSIGN_OR_RETURN(uint32_t lo, NextU32());
    LAPIS_ASSIGN_OR_RETURN(uint32_t hi, NextU32());
    return static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  }

  Result<uint16_t> NextU16() {
    LAPIS_ASSIGN_OR_RETURN(uint8_t lo, Next());
    LAPIS_ASSIGN_OR_RETURN(uint8_t hi, Next());
    return static_cast<uint16_t>(lo | (hi << 8));
  }
};

// Result of ModRM/SIB/displacement parsing.
struct ModRm {
  uint8_t mod = 0;
  uint8_t reg = 0;    // extended with REX.R
  uint8_t rm = 0;     // extended with REX.B (register operand only)
  bool rip_relative = false;
  int32_t disp = 0;
};

Result<ModRm> ParseModRm(DecodeState& s) {
  LAPIS_ASSIGN_OR_RETURN(uint8_t byte, s.Next());
  ModRm m;
  m.mod = byte >> 6;
  m.reg = static_cast<uint8_t>(((byte >> 3) & 7) | (s.RexR() ? 8 : 0));
  uint8_t rm_raw = byte & 7;
  m.rm = static_cast<uint8_t>(rm_raw | (s.RexB() ? 8 : 0));

  if (m.mod == 3) {
    return m;  // register operand, no memory
  }
  // Memory operand.
  bool has_sib = rm_raw == 4;
  uint8_t sib_base = 0xff;
  if (has_sib) {
    LAPIS_ASSIGN_OR_RETURN(uint8_t sib, s.Next());
    sib_base = sib & 7;
  }
  int disp_size = 0;
  if (m.mod == 0) {
    if (!has_sib && rm_raw == 5) {
      m.rip_relative = true;  // [rip + disp32] in 64-bit mode
      disp_size = 4;
    } else if (has_sib && sib_base == 5) {
      disp_size = 4;
    }
  } else if (m.mod == 1) {
    disp_size = 1;
  } else {  // mod == 2
    disp_size = 4;
  }
  if (disp_size == 1) {
    LAPIS_ASSIGN_OR_RETURN(uint8_t d, s.Next());
    m.disp = static_cast<int8_t>(d);
  } else if (disp_size == 4) {
    LAPIS_ASSIGN_OR_RETURN(uint32_t d, s.NextU32());
    m.disp = static_cast<int32_t>(d);
  }
  return m;
}

// One-byte opcode map attributes. Prefixes (26 2e 36 3e 40-4f 64-67 f0 f2 f3)
// are consumed before lookup and marked invalid here.
OpcodeInfo OneByteInfo(uint8_t op) {
  OpcodeInfo info;
  info.valid = true;
  // ALU block 00-3f: add/or/adc/sbb/and/sub/xor/cmp share the same 8-slot
  // pattern; slots 6 and 7 of each group (and segment prefixes) are invalid
  // or handled as prefixes in 64-bit mode.
  if (op < 0x40) {
    uint8_t low = op & 7;
    switch (low) {
      case 0:
      case 1:
      case 2:
      case 3:
        info.has_modrm = true;
        return info;
      case 4:
        info.imm = ImmClass::kIb;
        return info;
      case 5:
        info.imm = ImmClass::kIz;
        return info;
      default:
        info.valid = false;  // 0x06/0x07-style slots; prefixes pre-consumed
        return info;
    }
  }
  if (op >= 0x40 && op <= 0x4f) {  // REX — consumed as prefix, never here
    info.valid = false;
    return info;
  }
  if (op >= 0x50 && op <= 0x5f) {  // push/pop r64
    return info;
  }
  switch (op) {
    case 0x63:  // movsxd
      info.has_modrm = true;
      return info;
    case 0x68:  // push iz
      info.imm = ImmClass::kIz;
      return info;
    case 0x69:  // imul r, r/m, iz
      info.has_modrm = true;
      info.imm = ImmClass::kIz;
      return info;
    case 0x6a:  // push ib
      info.imm = ImmClass::kIb;
      return info;
    case 0x6b:  // imul r, r/m, ib
      info.has_modrm = true;
      info.imm = ImmClass::kIb;
      return info;
    case 0x6c:
    case 0x6d:
    case 0x6e:
    case 0x6f:  // ins/outs
      return info;
    default:
      break;
  }
  if (op >= 0x70 && op <= 0x7f) {  // jcc rel8
    info.imm = ImmClass::kRel8;
    return info;
  }
  switch (op) {
    case 0x80:
      info.has_modrm = true;
      info.imm = ImmClass::kIb;
      return info;
    case 0x81:
      info.has_modrm = true;
      info.imm = ImmClass::kIz;
      return info;
    case 0x83:
      info.has_modrm = true;
      info.imm = ImmClass::kIb;
      return info;
    case 0x84:
    case 0x85:
    case 0x86:
    case 0x87:
    case 0x88:
    case 0x89:
    case 0x8a:
    case 0x8b:
    case 0x8c:
    case 0x8d:
    case 0x8e:
    case 0x8f:
      info.has_modrm = true;
      return info;
    default:
      break;
  }
  if (op >= 0x90 && op <= 0x9f) {
    // xchg/nop, cbw/cwd, wait, pushf/popf, sahf/lahf; 0x9a invalid in 64-bit.
    info.valid = op != 0x9a;
    return info;
  }
  if (op >= 0xa0 && op <= 0xa3) {  // mov moffs (64-bit offset)
    info.imm = ImmClass::kMoffs;
    return info;
  }
  if (op >= 0xa4 && op <= 0xa7) {  // movs/cmps
    return info;
  }
  if (op == 0xa8) {
    info.imm = ImmClass::kIb;
    return info;
  }
  if (op == 0xa9) {
    info.imm = ImmClass::kIz;
    return info;
  }
  if (op >= 0xaa && op <= 0xaf) {  // stos/lods/scas
    return info;
  }
  if (op >= 0xb0 && op <= 0xb7) {  // mov r8, ib
    info.imm = ImmClass::kIb;
    return info;
  }
  if (op >= 0xb8 && op <= 0xbf) {  // mov r, iz/iv
    info.imm = ImmClass::kIv;
    return info;
  }
  switch (op) {
    case 0xc0:
    case 0xc1:
      info.has_modrm = true;
      info.imm = ImmClass::kIb;
      return info;
    case 0xc2:
      info.imm = ImmClass::kIw;
      return info;
    case 0xc3:
      return info;
    case 0xc6:
      info.has_modrm = true;
      info.imm = ImmClass::kIb;
      return info;
    case 0xc7:
      info.has_modrm = true;
      info.imm = ImmClass::kIz;
      return info;
    case 0xc8:
      info.imm = ImmClass::kIwIb;
      return info;
    case 0xc9:  // leave
      return info;
    case 0xca:
      info.imm = ImmClass::kIw;
      return info;
    case 0xcb:
    case 0xcc:
      return info;
    case 0xcd:  // int ib
      info.imm = ImmClass::kIb;
      return info;
    case 0xcf:
      return info;
    case 0xd0:
    case 0xd1:
    case 0xd2:
    case 0xd3:
      info.has_modrm = true;
      return info;
    case 0xd7:
      return info;
    default:
      break;
  }
  if (op >= 0xd8 && op <= 0xdf) {  // x87
    info.has_modrm = true;
    return info;
  }
  if (op >= 0xe0 && op <= 0xe3) {  // loop/jcxz rel8
    info.imm = ImmClass::kRel8;
    return info;
  }
  switch (op) {
    case 0xe4:
    case 0xe5:
    case 0xe6:
    case 0xe7:  // in/out ib
      info.imm = ImmClass::kIb;
      return info;
    case 0xe8:  // call rel32
    case 0xe9:  // jmp rel32
      info.imm = ImmClass::kRel32;
      return info;
    case 0xeb:  // jmp rel8
      info.imm = ImmClass::kRel8;
      return info;
    case 0xec:
    case 0xed:
    case 0xee:
    case 0xef:
      return info;
    case 0xf1:
    case 0xf4:
    case 0xf5:
      return info;
    case 0xf6:  // group3 8-bit: imm only when /0 or /1 (handled specially)
    case 0xf7:
      info.has_modrm = true;
      return info;
    case 0xf8:
    case 0xf9:
    case 0xfa:
    case 0xfb:
    case 0xfc:
    case 0xfd:
      return info;
    case 0xfe:
    case 0xff:
      info.has_modrm = true;
      return info;
    default:
      info.valid = false;
      return info;
  }
}

// Two-byte (0f xx) opcode map attributes for the subset we accept.
OpcodeInfo TwoByteInfo(uint8_t op) {
  OpcodeInfo info;
  info.valid = true;
  switch (op) {
    case 0x05:  // syscall
    case 0x34:  // sysenter
    case 0x0b:  // ud2
    case 0x31:  // rdtsc
    case 0xa2:  // cpuid
    case 0x77:  // emms
      return info;
    case 0x80:
    case 0x81:
    case 0x82:
    case 0x83:
    case 0x84:
    case 0x85:
    case 0x86:
    case 0x87:
    case 0x88:
    case 0x89:
    case 0x8a:
    case 0x8b:
    case 0x8c:
    case 0x8d:
    case 0x8e:
    case 0x8f:  // jcc rel32
      info.imm = ImmClass::kRel32;
      return info;
    case 0x70:
    case 0x71:
    case 0x72:
    case 0x73:
    case 0xba:  // bt group
    case 0xc2:
    case 0xc4:
    case 0xc5:
    case 0xc6:  // SSE compares/shuffles with ib
      info.has_modrm = true;
      info.imm = ImmClass::kIb;
      return info;
    default:
      // setcc (90-9f), cmov (40-4f), movzx/movsx (b6/b7/be/bf), SSE moves,
      // prefetch/nop (0d/18/1f), xadd, cmpxchg, bsf/bsr, shld/shrd (a4/ac
      // carry ib — handled below), etc. Default to ModRM, no immediate.
      if (op == 0xa4 || op == 0xac) {  // shld/shrd r/m, r, ib
        info.has_modrm = true;
        info.imm = ImmClass::kIb;
        return info;
      }
      info.has_modrm = true;
      return info;
  }
}

}  // namespace

Result<Insn> DecodeOne(std::span<const uint8_t> bytes, uint64_t vaddr) {
  DecodeState s{bytes};
  Insn insn;
  insn.vaddr = vaddr;

  // ---- Prefixes ----
  bool done_prefixes = false;
  while (!done_prefixes) {
    if (s.pos >= bytes.size()) {
      return OutOfRangeError("truncated instruction (prefixes)");
    }
    uint8_t b = bytes[s.pos];
    switch (b) {
      case 0x26:
      case 0x2e:
      case 0x36:
      case 0x3e:
      case 0x64:
      case 0x65:  // segment overrides
      case 0x67:  // address size
      case 0xf0:  // lock
      case 0xf2:
      case 0xf3:  // rep/repne (also SSE mandatory prefixes)
        ++s.pos;
        break;
      case 0x66:
        s.opsize16 = true;
        ++s.pos;
        break;
      default:
        if (b >= 0x40 && b <= 0x4f) {
          s.rex = b;
          ++s.pos;
          // REX must be the last prefix before the opcode.
          done_prefixes = true;
        } else {
          done_prefixes = true;
        }
        break;
    }
  }

  // ---- VEX prefixes (AVX) ----
  // In 64-bit mode 0xc4/0xc5 always introduce VEX (LES/LDS are invalid).
  // We only need lengths: VEX replaces REX + mandatory/escape prefixes and
  // is followed by opcode + ModRM (+ imm8 for map 3).
  if (s.pos < bytes.size() &&
      (bytes[s.pos] == 0xc4 || bytes[s.pos] == 0xc5) && s.rex == 0 &&
      !s.opsize16) {
    bool three_byte_vex = bytes[s.pos] == 0xc4;
    ++s.pos;
    uint8_t map = 1;
    if (three_byte_vex) {
      LAPIS_ASSIGN_OR_RETURN(uint8_t byte1, s.Next());
      map = byte1 & 0x1f;
      LAPIS_ASSIGN_OR_RETURN(uint8_t byte2, s.Next());
      (void)byte2;
    } else {
      LAPIS_ASSIGN_OR_RETURN(uint8_t byte1, s.Next());
      (void)byte1;
    }
    LAPIS_ASSIGN_OR_RETURN(uint8_t vex_op, s.Next());
    insn.opcode = vex_op;
    insn.two_byte = true;
    ModRm vex_modrm;
    LAPIS_ASSIGN_OR_RETURN(vex_modrm, ParseModRm(s));
    (void)vex_modrm;
    if (map == 3) {  // 0f 3a map carries an imm8
      LAPIS_ASSIGN_OR_RETURN(uint8_t ib, s.Next());
      insn.imm = static_cast<int8_t>(ib);
    }
    insn.length = static_cast<uint8_t>(s.pos);
    insn.kind = InsnKind::kOther;
    return insn;
  }

  // ---- Opcode ----
  LAPIS_ASSIGN_OR_RETURN(uint8_t op, s.Next());
  bool two_byte = false;
  bool three_byte_imm8 = false;
  if (op == 0x0f) {
    two_byte = true;
    LAPIS_ASSIGN_OR_RETURN(op, s.Next());
    // Three-byte maps: 0f 38 xx (ModRM, no immediate) and 0f 3a xx
    // (ModRM + imm8). The third byte selects the instruction; we only
    // need the length.
    if (op == 0x38 || op == 0x3a) {
      three_byte_imm8 = op == 0x3a;
      LAPIS_ASSIGN_OR_RETURN(op, s.Next());
      insn.opcode = op;
      insn.two_byte = true;
      OpcodeInfo info3;
      info3.valid = true;
      info3.has_modrm = true;
      info3.imm = three_byte_imm8 ? ImmClass::kIb : ImmClass::kNone;
      ModRm modrm3;
      LAPIS_ASSIGN_OR_RETURN(modrm3, ParseModRm(s));
      (void)modrm3;
      if (three_byte_imm8) {
        LAPIS_ASSIGN_OR_RETURN(uint8_t ib, s.Next());
        insn.imm = static_cast<int8_t>(ib);
      }
      insn.length = static_cast<uint8_t>(s.pos);
      insn.kind = InsnKind::kOther;
      return insn;
    }
  }
  insn.opcode = op;
  insn.two_byte = two_byte;

  OpcodeInfo info = two_byte ? TwoByteInfo(op) : OneByteInfo(op);
  if (!info.valid) {
    return UnimplementedError("invalid or unsupported opcode");
  }

  // ---- ModRM ----
  ModRm modrm;
  bool have_modrm = info.has_modrm;
  if (have_modrm) {
    LAPIS_ASSIGN_OR_RETURN(modrm, ParseModRm(s));
  }

  // group3 (f6/f7): /0 and /1 take an immediate.
  ImmClass imm_class = info.imm;
  if (!two_byte && (op == 0xf6 || op == 0xf7)) {
    uint8_t regop = modrm.reg & 7;
    if (regop == 0 || regop == 1) {
      imm_class = op == 0xf6 ? ImmClass::kIb : ImmClass::kIz;
    }
  }

  // ---- Immediates ----
  int64_t imm = 0;
  int64_t rel = 0;
  bool have_rel = false;
  switch (imm_class) {
    case ImmClass::kNone:
      break;
    case ImmClass::kIb: {
      LAPIS_ASSIGN_OR_RETURN(uint8_t v, s.Next());
      imm = static_cast<int8_t>(v);
      break;
    }
    case ImmClass::kIw: {
      LAPIS_ASSIGN_OR_RETURN(uint16_t v, s.NextU16());
      imm = static_cast<int16_t>(v);
      break;
    }
    case ImmClass::kIz: {
      if (s.opsize16) {
        LAPIS_ASSIGN_OR_RETURN(uint16_t v, s.NextU16());
        imm = static_cast<int16_t>(v);
      } else {
        LAPIS_ASSIGN_OR_RETURN(uint32_t v, s.NextU32());
        imm = static_cast<int32_t>(v);
      }
      break;
    }
    case ImmClass::kIv: {
      if (s.RexW()) {
        LAPIS_ASSIGN_OR_RETURN(uint64_t v, s.NextU64());
        imm = static_cast<int64_t>(v);
      } else if (s.opsize16) {
        LAPIS_ASSIGN_OR_RETURN(uint16_t v, s.NextU16());
        imm = static_cast<int16_t>(v);
      } else {
        LAPIS_ASSIGN_OR_RETURN(uint32_t v, s.NextU32());
        // mov r32, imm32 zero-extends; keep the unsigned value.
        imm = static_cast<int64_t>(static_cast<uint64_t>(v));
      }
      break;
    }
    case ImmClass::kRel8: {
      LAPIS_ASSIGN_OR_RETURN(uint8_t v, s.Next());
      rel = static_cast<int8_t>(v);
      have_rel = true;
      break;
    }
    case ImmClass::kRel32: {
      LAPIS_ASSIGN_OR_RETURN(uint32_t v, s.NextU32());
      rel = static_cast<int32_t>(v);
      have_rel = true;
      break;
    }
    case ImmClass::kMoffs: {
      LAPIS_ASSIGN_OR_RETURN(uint64_t v, s.NextU64());
      imm = static_cast<int64_t>(v);
      break;
    }
    case ImmClass::kIwIb: {
      LAPIS_ASSIGN_OR_RETURN(uint16_t w, s.NextU16());
      LAPIS_ASSIGN_OR_RETURN(uint8_t b, s.Next());
      imm = w;
      (void)b;
      break;
    }
  }

  insn.length = static_cast<uint8_t>(s.pos);
  uint64_t next_vaddr = vaddr + insn.length;
  if (have_rel) {
    insn.target = next_vaddr + static_cast<uint64_t>(rel);
  }
  insn.imm = imm;

  // ---- Classification ----
  if (two_byte) {
    if (op == 0x05) {
      insn.kind = InsnKind::kSyscall;
    } else if (op == 0x34) {
      insn.kind = InsnKind::kSysenter;
    } else if (op >= 0x80 && op <= 0x8f) {
      insn.kind = InsnKind::kJccRel;
    } else if (op == 0x1f) {
      insn.kind = InsnKind::kNop;
    }
    return insn;
  }

  if (op == 0xcd) {
    insn.kind = InsnKind::kInt;
    return insn;
  }
  if (op == 0xe8) {
    insn.kind = InsnKind::kCallRel32;
    return insn;
  }
  if (op == 0xe9 || op == 0xeb) {
    insn.kind = InsnKind::kJmpRel;
    return insn;
  }
  if (op >= 0x70 && op <= 0x7f) {
    insn.kind = InsnKind::kJccRel;
    return insn;
  }
  if (op == 0xc3 || op == 0xc2) {
    insn.kind = InsnKind::kRet;
    return insn;
  }
  if (op == 0x90) {
    insn.kind = InsnKind::kNop;
    return insn;
  }
  if (op >= 0xb8 && op <= 0xbf) {
    insn.kind = InsnKind::kMovRegImm;
    insn.reg = static_cast<uint8_t>((op - 0xb8) | (s.RexB() ? 8 : 0));
    return insn;
  }
  if (op == 0xc7 && have_modrm && modrm.mod == 3 && (modrm.reg & 7) == 0) {
    insn.kind = InsnKind::kMovRegImm;  // c7 /0: mov r/m, imm32
    insn.reg = modrm.rm;
    return insn;
  }
  if ((op == 0x31 || op == 0x33) && have_modrm && modrm.mod == 3 &&
      modrm.reg == modrm.rm) {
    insn.kind = InsnKind::kXorRegReg;  // xor reg, reg == zeroing idiom
    insn.reg = modrm.rm;
    return insn;
  }
  if (op == 0x8d && have_modrm && modrm.rip_relative) {
    insn.kind = InsnKind::kLeaRipRel;
    insn.reg = modrm.reg;
    insn.target = next_vaddr + static_cast<uint64_t>(
        static_cast<int64_t>(modrm.disp));
    return insn;
  }
  if ((op == 0x89 || op == 0x8b) && have_modrm && modrm.mod == 3) {
    insn.kind = InsnKind::kMovRegReg;
    if (op == 0x89) {  // mov r/m, r: dest = rm
      insn.reg = modrm.rm;
      insn.reg2 = modrm.reg;
    } else {  // 8b: mov r, r/m
      insn.reg = modrm.reg;
      insn.reg2 = modrm.rm;
    }
    return insn;
  }
  if (op == 0xff && have_modrm) {
    uint8_t regop = modrm.reg & 7;
    if (regop == 2 || regop == 3) {
      insn.kind = InsnKind::kCallIndirect;
    } else if (regop == 4 || regop == 5) {
      insn.kind = InsnKind::kJmpIndirect;
    }
    if (modrm.rip_relative &&
        (insn.kind == InsnKind::kCallIndirect ||
         insn.kind == InsnKind::kJmpIndirect)) {
      insn.target = next_vaddr + static_cast<uint64_t>(
          static_cast<int64_t>(modrm.disp));
    }
    return insn;
  }

  return insn;  // kOther, length-only
}

SweepResult LinearSweep(std::span<const uint8_t> bytes, uint64_t vaddr) {
  SweepResult result;
  LinearSweepInto(bytes, vaddr, result);
  return result;
}

void LinearSweepInto(std::span<const uint8_t> bytes, uint64_t vaddr,
                     SweepResult& out) {
  out.insns.clear();
  out.complete = true;
  size_t pos = 0;
  while (pos < bytes.size()) {
    auto decoded = DecodeOne(bytes.subspan(pos), vaddr + pos);
    if (!decoded.ok()) {
      out.complete = false;
      break;
    }
    pos += decoded.value().length;
    out.insns.push_back(decoded.take());
  }
  out.decoded_bytes = pos;
}

}  // namespace lapis::disasm
