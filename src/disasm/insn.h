// x86-64 instruction model produced by the decoder.
//
// The study's analysis needs a small amount of semantic information per
// instruction — enough to find system-call sites, back-track immediate
// register values, follow direct calls, and resolve rip-relative data
// references. Everything else only needs a correct instruction *length* so
// linear sweep stays in sync.

#ifndef LAPIS_SRC_DISASM_INSN_H_
#define LAPIS_SRC_DISASM_INSN_H_

#include <cstdint>
#include <string>

namespace lapis::disasm {

// General-purpose register numbers (x86-64 encoding order).
enum Reg : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
  kRegNone = 0xff,
};

const char* RegName64(uint8_t reg);

enum class InsnKind : uint8_t {
  kSyscall,        // 0f 05
  kSysenter,       // 0f 34
  kInt,            // cd ib (imm==0x80 -> legacy syscall gate)
  kCallRel32,      // e8; `target` = absolute destination
  kJmpRel,         // e9 / eb; `target` = absolute destination
  kJccRel,         // 70-7f / 0f 80-8f; `target` = absolute destination
  kCallIndirect,   // ff /2; `target` set if rip-relative memory operand
  kJmpIndirect,    // ff /4; `target` set if rip-relative memory operand
  kRet,            // c3 / c2
  kMovRegImm,      // b8+r iz/iv, c7 /0 iz: `reg` <- `imm`
  kXorRegReg,      // 31/33 with mod=11 and same reg: `reg` <- 0
  kLeaRipRel,      // 8d with rip-relative operand: `reg` <- &[`target`]
  kMovRegReg,      // 89/8b with mod=11: `reg` <- `reg2`
  kNop,
  kOther,          // decoded for length only
};

const char* InsnKindName(InsnKind kind);

struct Insn {
  uint64_t vaddr = 0;
  uint8_t length = 0;
  InsnKind kind = InsnKind::kOther;
  uint8_t reg = kRegNone;   // destination register where meaningful
  uint8_t reg2 = kRegNone;  // source register for kMovRegReg
  int64_t imm = 0;          // immediate value where meaningful
  uint64_t target = 0;      // absolute branch target / rip-relative address
  uint8_t opcode = 0;       // primary opcode byte (after prefixes/0f)
  bool two_byte = false;    // opcode was in the 0f map

  // Debug rendering, e.g. "401000: mov eax, 0x10".
  std::string ToString() const;
};

}  // namespace lapis::disasm

#endif  // LAPIS_SRC_DISASM_INSN_H_
