// AT&T-style instruction and listing formatting (the study's equivalent of
// `objdump -d`, which the paper used as its disassembler front end).

#ifndef LAPIS_SRC_DISASM_FORMATTER_H_
#define LAPIS_SRC_DISASM_FORMATTER_H_

#include <functional>
#include <span>
#include <string>

#include "src/disasm/insn.h"

namespace lapis::disasm {

// Optional symbolizer: maps a virtual address to a label ("<main>",
// "<read@plt>"); return an empty string for unknown addresses.
using Symbolizer = std::function<std::string(uint64_t)>;

// One instruction in AT&T-flavoured syntax, e.g.
//   "  401000:  b8 10 00 00 00   mov $0x10, %eax".
// `bytes` must cover the instruction (used for the hex column).
std::string FormatInsn(const Insn& insn, std::span<const uint8_t> bytes,
                       const Symbolizer& symbolizer = nullptr);

// Disassembles a byte range into an objdump-style listing. Undecodable
// bytes produce a single "(bad)" line and stop the listing.
std::string FormatListing(std::span<const uint8_t> bytes, uint64_t vaddr,
                          const Symbolizer& symbolizer = nullptr);

}  // namespace lapis::disasm

#endif  // LAPIS_SRC_DISASM_FORMATTER_H_
