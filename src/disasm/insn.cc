#include "src/disasm/insn.h"

#include <cstdio>

namespace lapis::disasm {

const char* RegName64(uint8_t reg) {
  static const char* kNames[16] = {
      "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
  };
  if (reg < 16) {
    return kNames[reg];
  }
  return "?";
}

const char* InsnKindName(InsnKind kind) {
  switch (kind) {
    case InsnKind::kSyscall:
      return "syscall";
    case InsnKind::kSysenter:
      return "sysenter";
    case InsnKind::kInt:
      return "int";
    case InsnKind::kCallRel32:
      return "call";
    case InsnKind::kJmpRel:
      return "jmp";
    case InsnKind::kJccRel:
      return "jcc";
    case InsnKind::kCallIndirect:
      return "call*";
    case InsnKind::kJmpIndirect:
      return "jmp*";
    case InsnKind::kRet:
      return "ret";
    case InsnKind::kMovRegImm:
      return "mov-imm";
    case InsnKind::kXorRegReg:
      return "xor-zero";
    case InsnKind::kLeaRipRel:
      return "lea-rip";
    case InsnKind::kMovRegReg:
      return "mov-reg";
    case InsnKind::kNop:
      return "nop";
    case InsnKind::kOther:
      return "other";
  }
  return "?";
}

std::string Insn::ToString() const {
  char buf[128];
  switch (kind) {
    case InsnKind::kMovRegImm:
      std::snprintf(buf, sizeof(buf), "%llx: mov %s, 0x%llx",
                    static_cast<unsigned long long>(vaddr), RegName64(reg),
                    static_cast<unsigned long long>(imm));
      break;
    case InsnKind::kXorRegReg:
      std::snprintf(buf, sizeof(buf), "%llx: xor %s, %s",
                    static_cast<unsigned long long>(vaddr), RegName64(reg),
                    RegName64(reg));
      break;
    case InsnKind::kLeaRipRel:
      std::snprintf(buf, sizeof(buf), "%llx: lea %s, [rip -> 0x%llx]",
                    static_cast<unsigned long long>(vaddr), RegName64(reg),
                    static_cast<unsigned long long>(target));
      break;
    case InsnKind::kMovRegReg:
      std::snprintf(buf, sizeof(buf), "%llx: mov %s, %s",
                    static_cast<unsigned long long>(vaddr), RegName64(reg),
                    RegName64(reg2));
      break;
    case InsnKind::kCallRel32:
    case InsnKind::kJmpRel:
    case InsnKind::kJccRel:
      std::snprintf(buf, sizeof(buf), "%llx: %s 0x%llx",
                    static_cast<unsigned long long>(vaddr),
                    InsnKindName(kind),
                    static_cast<unsigned long long>(target));
      break;
    case InsnKind::kInt:
      std::snprintf(buf, sizeof(buf), "%llx: int 0x%llx",
                    static_cast<unsigned long long>(vaddr),
                    static_cast<unsigned long long>(imm));
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%llx: %s",
                    static_cast<unsigned long long>(vaddr),
                    InsnKindName(kind));
      break;
  }
  return buf;
}

}  // namespace lapis::disasm
