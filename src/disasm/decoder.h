// x86-64 instruction decoder (length + selective semantics).
//
// Covers the one-byte opcode map and the common two-byte (0f) map: legacy
// prefixes, REX, ModRM/SIB/displacement forms, and every immediate class.
// Instructions the analysis cares about (syscall/sysenter/int, direct and
// indirect calls and jumps, mov-immediate, xor-zeroing, rip-relative lea) are
// classified; everything else is decoded for length only (InsnKind::kOther).
//
// Unknown or truncated encodings return an error rather than guessing, so a
// linear sweep cannot silently desynchronize.

#ifndef LAPIS_SRC_DISASM_DECODER_H_
#define LAPIS_SRC_DISASM_DECODER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/disasm/insn.h"
#include "src/util/status.h"

namespace lapis::disasm {

// Decodes the instruction at bytes[0]; `vaddr` is its virtual address (used
// to compute absolute targets for relative branches and rip-relative
// operands).
Result<Insn> DecodeOne(std::span<const uint8_t> bytes, uint64_t vaddr);

// Linear sweep over a byte range (typically one function body). Stops at the
// end of the range; on an undecodable byte sequence returns what was decoded
// so far plus ok=false.
struct SweepResult {
  std::vector<Insn> insns;
  bool complete = true;       // false if decoding stopped early
  uint64_t decoded_bytes = 0;
};

SweepResult LinearSweep(std::span<const uint8_t> bytes, uint64_t vaddr);

// Sweeps into caller-owned storage: `out.insns` is cleared but keeps its
// capacity, so a loop over many function bodies reuses one allocation.
void LinearSweepInto(std::span<const uint8_t> bytes, uint64_t vaddr,
                     SweepResult& out);

}  // namespace lapis::disasm

#endif  // LAPIS_SRC_DISASM_DECODER_H_
