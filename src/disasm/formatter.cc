#include "src/disasm/formatter.h"

#include <cstdio>

#include "src/disasm/decoder.h"

namespace lapis::disasm {

namespace {

std::string Hex(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string Target(uint64_t vaddr, const Symbolizer& symbolizer) {
  std::string out = Hex(vaddr);
  if (symbolizer) {
    std::string label = symbolizer(vaddr);
    if (!label.empty()) {
      out += " <" + label + ">";
    }
  }
  return out;
}

// The mnemonic + operands column.
std::string Mnemonic(const Insn& insn, const Symbolizer& symbolizer) {
  char buf[96];
  switch (insn.kind) {
    case InsnKind::kSyscall:
      return "syscall";
    case InsnKind::kSysenter:
      return "sysenter";
    case InsnKind::kInt:
      std::snprintf(buf, sizeof(buf), "int $%s",
                    Hex(static_cast<uint64_t>(insn.imm & 0xff)).c_str());
      return buf;
    case InsnKind::kCallRel32:
      return "call " + Target(insn.target, symbolizer);
    case InsnKind::kJmpRel:
      return "jmp " + Target(insn.target, symbolizer);
    case InsnKind::kJccRel:
      return "jcc " + Target(insn.target, symbolizer);
    case InsnKind::kCallIndirect:
      return insn.target != 0
                 ? "call *" + Target(insn.target, symbolizer)
                 : "call *%reg";
    case InsnKind::kJmpIndirect:
      return insn.target != 0 ? "jmp *" + Target(insn.target, symbolizer)
                              : "jmp *%reg";
    case InsnKind::kRet:
      return "ret";
    case InsnKind::kMovRegImm:
      std::snprintf(buf, sizeof(buf), "mov $%s, %%%s",
                    Hex(static_cast<uint64_t>(insn.imm)).c_str(),
                    RegName64(insn.reg));
      return buf;
    case InsnKind::kXorRegReg:
      std::snprintf(buf, sizeof(buf), "xor %%%s, %%%s", RegName64(insn.reg),
                    RegName64(insn.reg));
      return buf;
    case InsnKind::kLeaRipRel:
      return std::string("lea ") + Target(insn.target, symbolizer) +
             "(%rip), %" + RegName64(insn.reg);
    case InsnKind::kMovRegReg:
      std::snprintf(buf, sizeof(buf), "mov %%%s, %%%s",
                    RegName64(insn.reg2), RegName64(insn.reg));
      return buf;
    case InsnKind::kNop:
      return "nop";
    case InsnKind::kOther:
      // A few common no-operand-display forms keep listings readable.
      if (!insn.two_byte) {
        if (insn.opcode >= 0x50 && insn.opcode <= 0x57) {
          std::snprintf(buf, sizeof(buf), "push %%%s",
                        RegName64(insn.opcode - 0x50));
          return buf;
        }
        if (insn.opcode >= 0x58 && insn.opcode <= 0x5f) {
          std::snprintf(buf, sizeof(buf), "pop %%%s",
                        RegName64(insn.opcode - 0x58));
          return buf;
        }
        switch (insn.opcode) {
          case 0xc9:
            return "leave";
          case 0xcc:
            return "int3";
          case 0xf4:
            return "hlt";
          case 0x83:
            return "alu $imm8, r/m";
          case 0x81:
            return "alu $imm32, r/m";
          default:
            break;
        }
      } else if (insn.opcode == 0xa2) {
        return "cpuid";
      } else if (insn.opcode == 0x31) {
        return "rdtsc";
      }
      std::snprintf(buf, sizeof(buf), ".insn %s0x%02x",
                    insn.two_byte ? "0x0f," : "", insn.opcode);
      return buf;
  }
  return "?";
}

}  // namespace

std::string FormatInsn(const Insn& insn, std::span<const uint8_t> bytes,
                       const Symbolizer& symbolizer) {
  char addr[32];
  std::snprintf(addr, sizeof(addr), "%8llx:\t",
                static_cast<unsigned long long>(insn.vaddr));
  std::string out = addr;
  for (size_t i = 0; i < insn.length && i < bytes.size(); ++i) {
    char byte[8];
    std::snprintf(byte, sizeof(byte), "%02x ", bytes[i]);
    out += byte;
  }
  // Pad the hex column to a fixed width (objdump uses 7 byte slots).
  size_t hex_width = 3 * 11;
  size_t hex_len = 3 * insn.length;
  if (hex_len < hex_width) {
    out += std::string(hex_width - hex_len, ' ');
  }
  out += Mnemonic(insn, symbolizer);
  return out;
}

std::string FormatListing(std::span<const uint8_t> bytes, uint64_t vaddr,
                          const Symbolizer& symbolizer) {
  std::string out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    auto decoded = DecodeOne(bytes.subspan(pos), vaddr + pos);
    if (!decoded.ok()) {
      char bad[64];
      std::snprintf(bad, sizeof(bad), "%8llx:\t%02x (bad)\n",
                    static_cast<unsigned long long>(vaddr + pos),
                    bytes[pos]);
      out += bad;
      break;
    }
    if (symbolizer) {
      std::string label = symbolizer(vaddr + pos);
      if (!label.empty()) {
        out += "\n" + Hex(vaddr + pos) + " <" + label + ">:\n";
      }
    }
    out += FormatInsn(decoded.value(), bytes.subspan(pos), symbolizer);
    out += "\n";
    pos += decoded.value().length;
  }
  return out;
}

}  // namespace lapis::disasm
