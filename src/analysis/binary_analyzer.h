// Per-binary static analysis (paper §2.3, §7).
//
// For each ELF binary:
//   1. Build the function table from .symtab (defined STT_FUNC symbols).
//   2. Disassemble each function, split it into basic blocks (cfg.h), and
//      run constant propagation over the abstract register lattice
//      (dataflow.h) — a CFG worklist fixpoint by default, or the paper's
//      single-pass linear back-tracking as an ablation baseline
//      (AnalyzerOptions::use_dataflow).
//   3. At `syscall` / `sysenter` / `int 0x80` sites, recover the system-call
//      number from the propagated rax fact; at vectored calls (ioctl/fcntl/
//      prctl, direct or via their libc PLT wrappers) recover the opcode from
//      the argument register; at PLT calls record the imported symbol; at
//      rip-relative string loads record hard-coded pseudo-file paths.
//   4. Build the intra-binary call graph (call/jmp rel32 between functions,
//      plus rip-relative-resolvable indirect calls under use_ipa).
//   5. Under AnalyzerOptions::use_ipa, run the interprocedural constant
//      back-tracking pass (ipa.h): sites whose deciding register is an
//      incoming argument are resolved through wrapper chains from their
//      call sites instead of counted unknown.
//
// Reachability and cross-library resolution live in library_resolver.h; the
// differential soundness audit against the dynamic tracer lives in audit.h.

#ifndef LAPIS_SRC_ANALYSIS_BINARY_ANALYZER_H_
#define LAPIS_SRC_ANALYSIS_BINARY_ANALYZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/footprint.h"
#include "src/elf/elf_image.h"
#include "src/util/status.h"

namespace lapis::runtime {
class Executor;
}  // namespace lapis::runtime

namespace lapis::cache {
class AnalysisCodec;
}  // namespace lapis::cache

namespace lapis::analysis {

// Analysis result for one function.
struct FunctionInfo {
  std::string name;
  uint64_t vaddr = 0;
  uint64_t size = 0;

  Footprint local;                       // APIs requested directly here
  std::set<std::string> plt_calls;       // imported symbols called
  std::set<uint64_t> local_callees;      // vaddrs of intra-binary callees
  size_t basic_block_count = 0;          // CFG size (diagnostics)
  bool decode_complete = true;           // linear sweep covered whole body
};

// Analysis result for one binary.
class BinaryAnalysis {
 public:
  const std::vector<FunctionInfo>& functions() const { return functions_; }
  const std::vector<std::string>& needed() const { return needed_; }
  const std::string& soname() const { return soname_; }
  bool is_executable() const { return is_executable_; }
  uint64_t entry() const { return entry_; }

  // Function lookup by start vaddr; nullptr if absent.
  const FunctionInfo* FunctionAt(uint64_t vaddr) const;
  const FunctionInfo* FunctionNamed(std::string_view name) const;

  // Union of local footprints + plt_calls over everything reachable from
  // `roots` (function start vaddrs) through the intra-binary call graph.
  struct ReachableResult {
    Footprint footprint;
    std::set<std::string> plt_calls;
    size_t function_count = 0;
  };
  ReachableResult Reachable(const std::vector<uint64_t>& roots) const;

  // Executable entry-point reachability (paper: "reachable from e_entry").
  ReachableResult FromEntry() const;

  // For a shared library: per exported function, its within-library
  // reachable result. Exported names map to dynsym definitions. With an
  // executor, per-export reachability fans out across worker shards; the
  // result map is identical at any thread count (merged in export order).
  std::map<std::string, ReachableResult> PerExportReachable() const;
  std::map<std::string, ReachableResult> PerExportReachable(
      runtime::Executor* executor) const;

  // Names exported via .dynsym (defined global functions).
  const std::vector<std::string>& exports() const { return exports_; }

  // Total call sites inspected / sites with undeterminable numbers.
  int total_syscall_sites = 0;
  int unknown_syscall_sites = 0;

 private:
  friend class BinaryAnalyzer;
  // The incremental-analysis cache serializes/restores whole analyses so a
  // warm run can skip parse → CFG → dataflow (src/cache/analysis_codec.h).
  friend class lapis::cache::AnalysisCodec;

  std::vector<FunctionInfo> functions_;
  std::map<uint64_t, size_t> by_vaddr_;
  std::map<std::string, size_t, std::less<>> by_name_;
  std::vector<std::string> exports_;
  std::vector<std::string> needed_;
  std::string soname_;
  bool is_executable_ = false;
  uint64_t entry_ = 0;
};

// Methodology switches, mirroring the paper's.
struct AnalyzerOptions {
  // Recognize libc wrapper calls (ioctl/fcntl/prctl/syscall) and recover
  // opcodes / numbers from their argument registers.
  bool resolve_wrapper_opcodes = true;
  // Collect hard-coded /proc, /sys, /dev paths from rip-relative loads.
  bool collect_pseudo_paths = true;
  // Propagate register constants with the CFG worklist fixpoint
  // (dataflow.h). false = the paper's single-pass linear back-tracking,
  // kept benchmarkable as the ablation baseline: sound after the
  // branch-target fix, but every merge point degrades to unknown.
  bool use_dataflow = true;
  // Interprocedural constant back-tracking over the intra-binary call
  // graph (ipa.h): argument facts are seeded at function entries, wrapper
  // summaries computed bottom-up over the SCC condensation, and call-site
  // constants propagated through wrapper chains. Implies CFG dataflow
  // propagation regardless of use_dataflow.
  bool use_ipa = false;
  // Wrapper-chain hops a deferred site may be re-exposed through before
  // the interprocedural pass gives up (ablation lever for use_ipa).
  int ipa_max_depth = 4;
};

class BinaryAnalyzer {
 public:
  using Options = AnalyzerOptions;

  static Result<BinaryAnalysis> Analyze(const elf::ElfImage& image,
                                        const Options& options = Options());
};

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_BINARY_ANALYZER_H_
