// Interpreted-program classification (paper Fig 1: "Interpreters are
// detected by shebangs of the files").
//
// The study separates ELF binaries from interpreted programs and buckets
// the latter by interpreter. ClassifyScript inspects a file's first line
// and resolves the interpreter through the usual forms:
//   #!/bin/sh          #!/usr/bin/python2.7        #!/usr/bin/env perl

#ifndef LAPIS_SRC_ANALYSIS_SCRIPT_SCANNER_H_
#define LAPIS_SRC_ANALYSIS_SCRIPT_SCANNER_H_

#include <span>
#include <string>

#include "src/package/repository.h"
#include "src/util/status.h"

namespace lapis::analysis {

struct ScriptInfo {
  package::ProgramKind kind = package::ProgramKind::kOtherInterpreted;
  // The resolved interpreter program name ("sh", "python2.7", ...).
  std::string interpreter;
};

// Classifies a file's contents. Fails with kInvalidArgument if the file
// has no shebang line (e.g. it is an ELF binary or data).
Result<ScriptInfo> ClassifyScript(std::span<const uint8_t> contents);

// Maps an interpreter program name to the study's buckets:
// sh/dash -> kShellDash, bash -> kShellBash, python* -> kPython,
// perl* -> kPerl, ruby* -> kRuby, anything else -> kOtherInterpreted.
package::ProgramKind KindForInterpreter(const std::string& interpreter);

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_SCRIPT_SCANNER_H_
