#include "src/analysis/binary_analyzer.h"

#include <algorithm>
#include <deque>

#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/ipa.h"
#include "src/disasm/decoder.h"
#include "src/runtime/parallel.h"
#include "src/util/strings.h"

namespace lapis::analysis {

namespace {

using disasm::Insn;
using disasm::InsnKind;

// Reads the NUL-terminated string at `vaddr` from the image, if printable.
std::optional<std::string> ReadStringAt(const elf::ElfImage& image,
                                        uint64_t vaddr) {
  auto s = image.CStringAtVaddr(vaddr);
  if (s.has_value() && lapis::IsPrintableAscii(*s)) {
    return s;
  }
  return std::nullopt;
}

}  // namespace

const FunctionInfo* BinaryAnalysis::FunctionAt(uint64_t vaddr) const {
  auto it = by_vaddr_.find(vaddr);
  if (it == by_vaddr_.end()) {
    return nullptr;
  }
  return &functions_[it->second];
}

const FunctionInfo* BinaryAnalysis::FunctionNamed(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return nullptr;
  }
  return &functions_[it->second];
}

BinaryAnalysis::ReachableResult BinaryAnalysis::Reachable(
    const std::vector<uint64_t>& roots) const {
  ReachableResult result;
  std::set<uint64_t> visited;
  std::deque<uint64_t> queue(roots.begin(), roots.end());
  while (!queue.empty()) {
    uint64_t vaddr = queue.front();
    queue.pop_front();
    if (!visited.insert(vaddr).second) {
      continue;
    }
    const FunctionInfo* fn = FunctionAt(vaddr);
    if (fn == nullptr) {
      continue;
    }
    ++result.function_count;
    result.footprint.MergeFrom(fn->local);
    result.plt_calls.insert(fn->plt_calls.begin(), fn->plt_calls.end());
    for (uint64_t callee : fn->local_callees) {
      if (visited.find(callee) == visited.end()) {
        queue.push_back(callee);
      }
    }
  }
  return result;
}

BinaryAnalysis::ReachableResult BinaryAnalysis::FromEntry() const {
  return Reachable({entry_});
}

std::map<std::string, BinaryAnalysis::ReachableResult>
BinaryAnalysis::PerExportReachable() const {
  return PerExportReachable(nullptr);
}

std::map<std::string, BinaryAnalysis::ReachableResult>
BinaryAnalysis::PerExportReachable(runtime::Executor* executor) const {
  // Shard per export, then merge in canonical (export-list) order so the
  // result is independent of scheduling; duplicate export names keep
  // first-shard-wins semantics just like the sequential emplace loop.
  struct Shard {
    bool valid = false;
    ReachableResult reach;
  };
  std::vector<Shard> shards = runtime::ParallelMap(
      executor, exports_.size(), [this](size_t i) {
        Shard shard;
        const FunctionInfo* fn = FunctionNamed(exports_[i]);
        if (fn != nullptr) {
          shard.valid = true;
          shard.reach = Reachable({fn->vaddr});
        }
        return shard;
      });
  std::map<std::string, ReachableResult> out;
  runtime::FoldInOrder(shards, [&](size_t i, Shard& shard) {
    if (shard.valid) {
      out.emplace(exports_[i], std::move(shard.reach));
    }
  });
  return out;
}

namespace {

// System V argument registers, slot order matching IpaCallEdge::args.
constexpr uint8_t kSysVArgRegs[6] = {disasm::kRdi, disasm::kRsi, disasm::kRdx,
                                     disasm::kRcx, disasm::kR8,  disasm::kR9};

// Interprets one function's decoded body against the per-instruction
// register facts from the propagation pass: recovers syscall numbers and
// vectored-call opcodes, records PLT calls, intra-binary callees, and
// hard-coded pseudo paths. All state questions go through `states`; this
// loop carries none of its own. With `ipa` non-null (use_ipa), sites whose
// deciding register holds an argument fact are deferred as pending sites
// instead of counted unknown, and call edges carry argument bindings for
// the interprocedural pass.
void CollectFunctionFacts(const elf::ElfImage& image,
                          const AnalyzerOptions& options,
                          const disasm::SweepResult& sweep,
                          const std::vector<RegState>& states,
                          const std::vector<uint64_t>& function_starts,
                          FunctionInfo& info, BinaryAnalysis& analysis,
                          IpaFunctionFacts* ipa) {
  auto defer_site = [&](const RegState& state, IpaPendingSite::Kind kind,
                        const AbsVal& number) {
    IpaPendingSite site;
    site.kind = kind;
    site.number = number;
    site.op_rsi = state.regs[disasm::kRsi];
    site.op_rdi = state.regs[disasm::kRdi];
    ipa->sites.push_back(site);
  };
  auto add_call_edge = [&](const RegState& state, uint64_t callee) {
    IpaCallEdge edge;
    edge.callee_vaddr = callee;
    for (int s = 0; s < 6; ++s) {
      edge.args[s] = state.regs[kSysVArgRegs[s]];
    }
    ipa->edges.push_back(edge);
  };
  for (size_t i = 0; i < sweep.insns.size(); ++i) {
    const Insn& insn = sweep.insns[i];
    const RegState& state = states[i];
    switch (insn.kind) {
      case InsnKind::kLeaRipRel: {
        if (options.collect_pseudo_paths) {
          auto s = ReadStringAt(image, insn.target);
          if (s.has_value() && lapis::IsPseudoFilePath(*s)) {
            info.local.pseudo_paths.insert(lapis::CanonicalizePseudoPath(*s));
          }
        }
        break;
      }
      case InsnKind::kSyscall:
      case InsnKind::kSysenter: {
        ++analysis.total_syscall_sites;
        const AbsVal& rax = state.regs[disasm::kRax];
        if (rax.is_const()) {
          int nr = static_cast<int>(rax.value);
          info.local.syscalls.insert(nr);
          if (options.resolve_wrapper_opcodes) {
            auto record_op = [&](uint8_t arg_reg, std::set<uint32_t>& ops,
                                 IpaPendingSite::Kind kind) {
              const AbsVal& arg = state.regs[arg_reg];
              if (arg.is_const()) {
                ops.insert(static_cast<uint32_t>(arg.value));
              } else if (ipa != nullptr && arg.is_arg()) {
                defer_site(state, kind, AbsVal::Top());
              } else {
                ++info.local.unknown_opcode_sites;
              }
            };
            if (nr == kSysIoctl) {
              record_op(disasm::kRsi, info.local.ioctl_ops,
                        IpaPendingSite::Kind::kIoctlOp);
            } else if (nr == kSysFcntl) {
              record_op(disasm::kRsi, info.local.fcntl_ops,
                        IpaPendingSite::Kind::kFcntlOp);
            } else if (nr == kSysPrctl) {
              record_op(disasm::kRdi, info.local.prctl_ops,
                        IpaPendingSite::Kind::kPrctlOp);
            }
          }
        } else if (ipa != nullptr && rax.is_arg()) {
          defer_site(state, IpaPendingSite::Kind::kSyscallNumber, rax);
        } else {
          ++info.local.unknown_syscall_sites;
          ++analysis.unknown_syscall_sites;
        }
        break;
      }
      case InsnKind::kInt: {
        if ((insn.imm & 0xff) == 0x80) {
          ++info.local.int80_sites;
          ++analysis.total_syscall_sites;
          // The legacy gate takes its number in eax with i386 numbering.
          const AbsVal& rax = state.regs[disasm::kRax];
          if (rax.is_const()) {
            info.local.int80_syscalls.insert(static_cast<int>(rax.value));
          } else if (ipa != nullptr && rax.is_arg()) {
            defer_site(state, IpaPendingSite::Kind::kInt80Number, rax);
          } else {
            ++info.local.unknown_syscall_sites;
            ++analysis.unknown_syscall_sites;
          }
        }
        break;
      }
      case InsnKind::kCallRel32:
      case InsnKind::kJmpRel: {
        auto plt_symbol = image.ResolvePltCall(insn.target);
        if (plt_symbol.has_value()) {
          info.plt_calls.insert(*plt_symbol);
          if (options.resolve_wrapper_opcodes) {
            auto record_op = [&](uint8_t arg_reg, std::set<uint32_t>& ops,
                                 IpaPendingSite::Kind kind) {
              const AbsVal& arg = state.regs[arg_reg];
              if (arg.is_const()) {
                ops.insert(static_cast<uint32_t>(arg.value));
              } else if (ipa != nullptr && arg.is_arg()) {
                defer_site(state, kind, AbsVal::Top());
              } else {
                ++info.local.unknown_opcode_sites;
              }
            };
            if (*plt_symbol == "ioctl") {
              record_op(disasm::kRsi, info.local.ioctl_ops,
                        IpaPendingSite::Kind::kIoctlOp);
            } else if (*plt_symbol == "fcntl" || *plt_symbol == "fcntl64") {
              record_op(disasm::kRsi, info.local.fcntl_ops,
                        IpaPendingSite::Kind::kFcntlOp);
            } else if (*plt_symbol == "prctl") {
              record_op(disasm::kRdi, info.local.prctl_ops,
                        IpaPendingSite::Kind::kPrctlOp);
            } else if (*plt_symbol == "syscall") {
              // long syscall(long number, ...): number in rdi.
              ++analysis.total_syscall_sites;
              const AbsVal& rdi = state.regs[disasm::kRdi];
              if (rdi.is_const()) {
                info.local.syscalls.insert(static_cast<int>(rdi.value));
              } else if (ipa != nullptr && rdi.is_arg()) {
                defer_site(state, IpaPendingSite::Kind::kPltSyscallNumber,
                           rdi);
              } else {
                ++info.local.unknown_syscall_sites;
                ++analysis.unknown_syscall_sites;
              }
            }
          }
        } else if (std::binary_search(function_starts.begin(),
                                      function_starts.end(), insn.target)) {
          if (insn.target != info.vaddr) {
            info.local_callees.insert(insn.target);
          }
          if (ipa != nullptr) {
            // Self edges are recorded too: they make the recursion visible
            // to the SCC condensation.
            add_call_edge(state, insn.target);
          }
        }
        break;
      }
      case InsnKind::kCallIndirect:
        if (ipa != nullptr && insn.target != 0) {
          // Rip-relative `call [rip+disp]`: the callee pointer lives at a
          // link-time-constant address. If the slot holds a known function
          // start, the edge is as good as a direct call.
          auto slot = image.DataAtVaddr(insn.target, 8);
          if (slot.size() == 8) {
            uint64_t ptr = 0;
            for (int b = 7; b >= 0; --b) {
              ptr = (ptr << 8) | slot[static_cast<size_t>(b)];
            }
            if (std::binary_search(function_starts.begin(),
                                   function_starts.end(), ptr)) {
              if (ptr != info.vaddr) {
                info.local_callees.insert(ptr);
              }
              add_call_edge(state, ptr);
            }
          }
        }
        ++info.local.indirect_call_sites;
        break;
      case InsnKind::kJmpIndirect:
        ++info.local.indirect_call_sites;
        break;
      default:
        break;
    }
  }
}

}  // namespace

Result<BinaryAnalysis> BinaryAnalyzer::Analyze(const elf::ElfImage& image,
                                               const Options& options) {
  BinaryAnalysis analysis;
  analysis.is_executable_ = image.IsExecutable();
  analysis.entry_ = image.entry();
  analysis.needed_ = image.needed();
  analysis.soname_ = image.soname();

  for (const auto* sym : image.ExportedFunctions()) {
    analysis.exports_.push_back(sym->name);
  }

  // ---- Function table from .symtab ----
  std::vector<const elf::Symbol*> funcs = image.DefinedFunctions();
  std::sort(funcs.begin(), funcs.end(),
            [](const elf::Symbol* a, const elf::Symbol* b) {
              return a->value < b->value;
            });
  // `funcs` is sorted by vaddr, so the start list is already in binary-search
  // order (duplicates from aliased symbols are harmless).
  std::vector<uint64_t> function_starts;
  function_starts.reserve(funcs.size());
  for (const auto* sym : funcs) {
    function_starts.push_back(sym->value);
  }

  // The IPA tier needs merge-correct intra-function states to trust an
  // argument fact on every path, so use_ipa implies the dataflow fixpoint.
  const PropagationMode mode = options.use_dataflow || options.use_ipa
                                   ? PropagationMode::kDataflow
                                   : PropagationMode::kLinear;
  RegState entry_state = RegState::AllTop();
  if (options.use_ipa) {
    for (uint8_t reg : kSysVArgRegs) {
      entry_state.regs[reg] = AbsVal::Arg(reg);
    }
  }

  // One set of decode/CFG/dataflow buffers serves every function body; the
  // Into-variants clear but never shrink, so the per-function allocation
  // churn of the old per-iteration locals disappears.
  disasm::SweepResult sweep;
  ControlFlowGraph cfg;
  std::vector<RegState> states;
  DataflowScratch scratch;
  analysis.functions_.reserve(funcs.size());
  std::vector<IpaFunctionFacts> ipa_facts;
  if (options.use_ipa) {
    ipa_facts.reserve(funcs.size());
  }

  for (const auto* sym : funcs) {
    FunctionInfo info;
    info.name = sym->name;
    info.vaddr = sym->value;
    info.size = sym->size;
    if (options.use_ipa) {
      ipa_facts.emplace_back();  // stays parallel even for skipped bodies
    }

    auto body = image.DataAtVaddr(sym->value, sym->size);
    if (body.empty() && sym->size > 0) {
      // Symbol points outside mapped sections: skip but keep the record.
      info.decode_complete = false;
      analysis.functions_.push_back(std::move(info));
      continue;
    }

    disasm::LinearSweepInto(body, sym->value, sweep);
    info.decode_complete = sweep.complete;

    ControlFlowGraph::BuildInto(sweep, cfg);
    info.basic_block_count = cfg.block_count();
    ComputeInsnStatesInto(sweep, cfg, mode, entry_state, scratch, states);
    CollectFunctionFacts(image, options, sweep, states, function_starts,
                         info, analysis,
                         options.use_ipa ? &ipa_facts.back() : nullptr);

    analysis.functions_.push_back(std::move(info));
  }

  if (options.use_ipa) {
    IpaStats ipa_stats = PropagateInterprocedural(
        ipa_facts, analysis.functions_, analysis.exports_,
        analysis.is_executable_, analysis.entry_,
        std::max(0, options.ipa_max_depth));
    analysis.unknown_syscall_sites += ipa_stats.unknown_syscall_sites_added;
  }

  for (size_t i = 0; i < analysis.functions_.size(); ++i) {
    analysis.by_vaddr_.emplace(analysis.functions_[i].vaddr, i);
    analysis.by_name_.emplace(analysis.functions_[i].name, i);
  }
  return analysis;
}

}  // namespace lapis::analysis
