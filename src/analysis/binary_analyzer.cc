#include "src/analysis/binary_analyzer.h"

#include <algorithm>
#include <deque>

#include "src/disasm/decoder.h"
#include "src/runtime/parallel.h"
#include "src/util/strings.h"

namespace lapis::analysis {

namespace {

using disasm::Insn;
using disasm::InsnKind;

// Abstract value for one register along straight-line code.
struct AbsVal {
  enum class Kind : uint8_t { kUnknown, kConst, kRodataPtr };
  Kind kind = Kind::kUnknown;
  int64_t value = 0;
};

struct RegState {
  AbsVal regs[16];

  void Reset() {
    for (auto& r : regs) {
      r = AbsVal{};
    }
  }

  void ClobberCallerSaved() {
    // System V AMD64: rax, rcx, rdx, rsi, rdi, r8-r11 are caller-saved.
    static constexpr uint8_t kVolatile[] = {0, 1, 2, 6, 7, 8, 9, 10, 11};
    for (uint8_t r : kVolatile) {
      regs[r] = AbsVal{};
    }
  }
};

// Reads the NUL-terminated string at `vaddr` from the image, if printable.
std::optional<std::string> ReadStringAt(const elf::ElfImage& image,
                                        uint64_t vaddr) {
  auto s = image.CStringAtVaddr(vaddr);
  if (s.has_value() && lapis::IsPrintableAscii(*s)) {
    return s;
  }
  return std::nullopt;
}

}  // namespace

const FunctionInfo* BinaryAnalysis::FunctionAt(uint64_t vaddr) const {
  auto it = by_vaddr_.find(vaddr);
  if (it == by_vaddr_.end()) {
    return nullptr;
  }
  return &functions_[it->second];
}

const FunctionInfo* BinaryAnalysis::FunctionNamed(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return nullptr;
  }
  return &functions_[it->second];
}

BinaryAnalysis::ReachableResult BinaryAnalysis::Reachable(
    const std::vector<uint64_t>& roots) const {
  ReachableResult result;
  std::set<uint64_t> visited;
  std::deque<uint64_t> queue(roots.begin(), roots.end());
  while (!queue.empty()) {
    uint64_t vaddr = queue.front();
    queue.pop_front();
    if (!visited.insert(vaddr).second) {
      continue;
    }
    const FunctionInfo* fn = FunctionAt(vaddr);
    if (fn == nullptr) {
      continue;
    }
    ++result.function_count;
    result.footprint.MergeFrom(fn->local);
    result.plt_calls.insert(fn->plt_calls.begin(), fn->plt_calls.end());
    for (uint64_t callee : fn->local_callees) {
      if (visited.find(callee) == visited.end()) {
        queue.push_back(callee);
      }
    }
  }
  return result;
}

BinaryAnalysis::ReachableResult BinaryAnalysis::FromEntry() const {
  return Reachable({entry_});
}

std::map<std::string, BinaryAnalysis::ReachableResult>
BinaryAnalysis::PerExportReachable() const {
  return PerExportReachable(nullptr);
}

std::map<std::string, BinaryAnalysis::ReachableResult>
BinaryAnalysis::PerExportReachable(runtime::Executor* executor) const {
  // Shard per export, then merge in canonical (export-list) order so the
  // result is independent of scheduling; duplicate export names keep
  // first-shard-wins semantics just like the sequential emplace loop.
  struct Shard {
    bool valid = false;
    ReachableResult reach;
  };
  std::vector<Shard> shards = runtime::ParallelMap(
      executor, exports_.size(), [this](size_t i) {
        Shard shard;
        const FunctionInfo* fn = FunctionNamed(exports_[i]);
        if (fn != nullptr) {
          shard.valid = true;
          shard.reach = Reachable({fn->vaddr});
        }
        return shard;
      });
  std::map<std::string, ReachableResult> out;
  runtime::FoldInOrder(shards, [&](size_t i, Shard& shard) {
    if (shard.valid) {
      out.emplace(exports_[i], std::move(shard.reach));
    }
  });
  return out;
}

Result<BinaryAnalysis> BinaryAnalyzer::Analyze(const elf::ElfImage& image,
                                               const Options& options) {
  BinaryAnalysis analysis;
  analysis.is_executable_ = image.IsExecutable();
  analysis.entry_ = image.entry();
  analysis.needed_ = image.needed();
  analysis.soname_ = image.soname();

  for (const auto& name : image.ImportedSymbolNames()) {
    (void)name;  // imports are discovered per call site below
  }
  for (const auto* sym : image.ExportedFunctions()) {
    analysis.exports_.push_back(sym->name);
  }

  // ---- Function table from .symtab ----
  std::vector<const elf::Symbol*> funcs = image.DefinedFunctions();
  std::sort(funcs.begin(), funcs.end(),
            [](const elf::Symbol* a, const elf::Symbol* b) {
              return a->value < b->value;
            });
  std::set<uint64_t> function_starts;
  for (const auto* sym : funcs) {
    function_starts.insert(sym->value);
  }

  for (const auto* sym : funcs) {
    FunctionInfo info;
    info.name = sym->name;
    info.vaddr = sym->value;
    info.size = sym->size;

    auto body = image.DataAtVaddr(sym->value, sym->size);
    if (body.empty() && sym->size > 0) {
      // Symbol points outside mapped sections: skip but keep the record.
      info.decode_complete = false;
      analysis.functions_.push_back(std::move(info));
      continue;
    }

    disasm::SweepResult sweep = disasm::LinearSweep(body, sym->value);
    info.decode_complete = sweep.complete;

    RegState state;
    for (const Insn& insn : sweep.insns) {
      switch (insn.kind) {
        case InsnKind::kMovRegImm:
          state.regs[insn.reg] = AbsVal{AbsVal::Kind::kConst, insn.imm};
          break;
        case InsnKind::kXorRegReg:
          state.regs[insn.reg] = AbsVal{AbsVal::Kind::kConst, 0};
          break;
        case InsnKind::kMovRegReg:
          state.regs[insn.reg] = state.regs[insn.reg2];
          break;
        case InsnKind::kLeaRipRel: {
          state.regs[insn.reg] =
              AbsVal{AbsVal::Kind::kRodataPtr,
                     static_cast<int64_t>(insn.target)};
          if (options.collect_pseudo_paths) {
            auto s = ReadStringAt(image, insn.target);
            if (s.has_value() && lapis::IsPseudoFilePath(*s)) {
              info.local.pseudo_paths.insert(
                  lapis::CanonicalizePseudoPath(*s));
            }
          }
          break;
        }
        case InsnKind::kSyscall:
        case InsnKind::kSysenter: {
          ++analysis.total_syscall_sites;
          const AbsVal& rax = state.regs[disasm::kRax];
          if (rax.kind == AbsVal::Kind::kConst) {
            int nr = static_cast<int>(rax.value);
            info.local.syscalls.insert(nr);
            if (options.resolve_wrapper_opcodes) {
              auto record_op = [&](uint8_t arg_reg, std::set<uint32_t>& ops) {
                const AbsVal& arg = state.regs[arg_reg];
                if (arg.kind == AbsVal::Kind::kConst) {
                  ops.insert(static_cast<uint32_t>(arg.value));
                } else {
                  ++info.local.unknown_opcode_sites;
                }
              };
              if (nr == kSysIoctl) {
                record_op(disasm::kRsi, info.local.ioctl_ops);
              } else if (nr == kSysFcntl) {
                record_op(disasm::kRsi, info.local.fcntl_ops);
              } else if (nr == kSysPrctl) {
                record_op(disasm::kRdi, info.local.prctl_ops);
              }
            }
          } else {
            ++info.local.unknown_syscall_sites;
            ++analysis.unknown_syscall_sites;
          }
          break;
        }
        case InsnKind::kInt: {
          if ((insn.imm & 0xff) == 0x80) {
            ++info.local.int80_sites;
            ++analysis.total_syscall_sites;
            // The legacy gate takes its number in eax with i386 numbering.
            const AbsVal& rax = state.regs[disasm::kRax];
            if (rax.kind == AbsVal::Kind::kConst) {
              info.local.int80_syscalls.insert(static_cast<int>(rax.value));
            } else {
              ++info.local.unknown_syscall_sites;
              ++analysis.unknown_syscall_sites;
            }
          }
          break;
        }
        case InsnKind::kCallRel32:
        case InsnKind::kJmpRel: {
          auto plt_symbol = image.ResolvePltCall(insn.target);
          if (plt_symbol.has_value()) {
            info.plt_calls.insert(*plt_symbol);
            if (options.resolve_wrapper_opcodes) {
              auto record_op = [&](uint8_t arg_reg, std::set<uint32_t>& ops) {
                const AbsVal& arg = state.regs[arg_reg];
                if (arg.kind == AbsVal::Kind::kConst) {
                  ops.insert(static_cast<uint32_t>(arg.value));
                } else {
                  ++info.local.unknown_opcode_sites;
                }
              };
              if (*plt_symbol == "ioctl") {
                record_op(disasm::kRsi, info.local.ioctl_ops);
              } else if (*plt_symbol == "fcntl" || *plt_symbol == "fcntl64") {
                record_op(disasm::kRsi, info.local.fcntl_ops);
              } else if (*plt_symbol == "prctl") {
                record_op(disasm::kRdi, info.local.prctl_ops);
              } else if (*plt_symbol == "syscall") {
                // long syscall(long number, ...): number in rdi.
                ++analysis.total_syscall_sites;
                const AbsVal& rdi = state.regs[disasm::kRdi];
                if (rdi.kind == AbsVal::Kind::kConst) {
                  info.local.syscalls.insert(static_cast<int>(rdi.value));
                } else {
                  ++info.local.unknown_syscall_sites;
                  ++analysis.unknown_syscall_sites;
                }
              }
            }
          } else if (function_starts.count(insn.target) != 0 &&
                     insn.target != info.vaddr) {
            info.local_callees.insert(insn.target);
          }
          if (insn.kind == InsnKind::kCallRel32) {
            state.ClobberCallerSaved();
          } else {
            // Unconditional jump ends the block: later code may be reached
            // from elsewhere with different register contents.
            state.Reset();
          }
          break;
        }
        case InsnKind::kCallIndirect:
        case InsnKind::kJmpIndirect:
          ++info.local.indirect_call_sites;
          if (insn.kind == InsnKind::kCallIndirect) {
            state.ClobberCallerSaved();
          } else {
            state.Reset();
          }
          break;
        case InsnKind::kRet:
          state.Reset();
          break;
        case InsnKind::kJccRel:
        case InsnKind::kNop:
          break;
        case InsnKind::kOther:
          // Unmodeled instruction: any register it wrote is stale. We only
          // track a small instruction vocabulary, so conservatively drop
          // rax (the syscall-number register) on arithmetic-looking ops.
          if (!insn.two_byte && insn.opcode != 0x89 && insn.opcode != 0x8b) {
            state.regs[disasm::kRax] = AbsVal{};
          }
          break;
      }
    }

    analysis.functions_.push_back(std::move(info));
  }

  for (size_t i = 0; i < analysis.functions_.size(); ++i) {
    analysis.by_vaddr_.emplace(analysis.functions_[i].vaddr, i);
    analysis.by_name_.emplace(analysis.functions_[i].name, i);
  }
  return analysis;
}

}  // namespace lapis::analysis
