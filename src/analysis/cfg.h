// Intra-function control-flow graph over a linear-sweep disassembly.
//
// The constant-propagation analysis (dataflow.h) needs real control flow:
// a `jcc` both falls through and branches, a `jmp` only branches, and any
// instruction that is the target of a branch starts a join point where
// register states from every predecessor meet. ControlFlowGraph::Build
// splits one function's SweepResult into basic blocks — leaders are the
// first instruction, every in-function branch target, and every
// instruction following a terminator — and records predecessor/successor
// edges between them.
//
// Branch targets that do not land on a decoded instruction boundary (tail
// jumps into the PLT, cross-function jumps, or targets beyond an
// incomplete sweep) simply contribute no edge; the analysis stays
// intra-function, exactly like the paper's per-function back-tracking.

#ifndef LAPIS_SRC_ANALYSIS_CFG_H_
#define LAPIS_SRC_ANALYSIS_CFG_H_

#include <cstdint>
#include <vector>

#include "src/disasm/decoder.h"

namespace lapis::analysis {

struct BasicBlock {
  size_t first_insn = 0;   // index into SweepResult::insns
  size_t insn_count = 0;
  uint64_t start_vaddr = 0;
  std::vector<uint32_t> succs;  // successor block ids
  std::vector<uint32_t> preds;  // predecessor block ids
};

class ControlFlowGraph {
 public:
  // Splits `sweep` (one function body) into basic blocks. An empty sweep
  // yields an empty graph. Block 0, when present, contains the function's
  // first instruction (the entry block).
  static ControlFlowGraph Build(const disasm::SweepResult& sweep);

  // Build into caller-owned storage: `cfg`'s vectors are cleared but keep
  // their capacity, so a loop over many function bodies reuses allocations.
  static void BuildInto(const disasm::SweepResult& sweep,
                        ControlFlowGraph& cfg);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  size_t block_count() const { return blocks_.size(); }
  size_t insn_count() const { return block_of_insn_.size(); }

  // Id of the block containing instruction `insn_index`.
  uint32_t BlockOfInsn(size_t insn_index) const {
    return block_of_insn_[insn_index];
  }

  // True if instruction `insn_index` is the target of at least one
  // in-function branch (jmp or jcc). The entry instruction is not a branch
  // target unless something actually jumps back to it.
  bool IsBranchTarget(size_t insn_index) const {
    return is_branch_target_[insn_index];
  }

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<uint32_t> block_of_insn_;
  std::vector<bool> is_branch_target_;
};

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_CFG_H_
