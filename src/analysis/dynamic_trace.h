// Dynamic system-call tracing of synthesized binaries (the study's strace
// cross-check, §2.3: "we spot check that static analysis returns a superset
// of strace results").
//
// DynamicTracer is a small abstract-machine interpreter over the x86-64
// subset the code generator emits: it walks instructions from the entry
// point, maintains concrete register values where known, follows direct
// calls (local and through the PLT into registered libraries), and records
// every system call actually "executed" with its arguments. Being an
// execution (one concrete path), its observations must be a subset of the
// static footprint — the property tests enforce exactly that.

#ifndef LAPIS_SRC_ANALYSIS_DYNAMIC_TRACE_H_
#define LAPIS_SRC_ANALYSIS_DYNAMIC_TRACE_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/analysis/footprint.h"
#include "src/elf/elf_image.h"
#include "src/util/status.h"

namespace lapis::analysis {

// Recorded observations of one traced run.
struct TraceResult {
  Footprint observed;            // syscalls / opcodes / paths actually hit
  size_t instructions_executed = 0;
  size_t calls_followed = 0;
  // Imported symbols that could not be resolved in any registered library
  // (treated as no-ops, like a stub returning 0).
  std::set<std::string> stubbed_imports;
  bool hit_step_limit = false;
};

class DynamicTracer {
 public:
  // `step_limit` bounds execution (recursion in synthesized code is rare
  // but the tracer must terminate regardless).
  explicit DynamicTracer(size_t step_limit = 1 << 20)
      : step_limit_(step_limit) {}

  // Registers a shared library; its exports become call targets for
  // PLT-resolved calls of traced executables (and other libraries).
  Status AddLibrary(std::shared_ptr<const elf::ElfImage> library);

  // Runs the executable from its entry point.
  Result<TraceResult> Trace(const elf::ElfImage& executable) const;

  size_t library_count() const { return libraries_.size(); }

 private:
  struct ExportSite {
    const elf::ElfImage* image;
    uint64_t vaddr;
  };

  size_t step_limit_;
  std::vector<std::shared_ptr<const elf::ElfImage>> libraries_;
  std::map<std::string, ExportSite> exports_;
};

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_DYNAMIC_TRACE_H_
