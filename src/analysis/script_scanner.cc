#include "src/analysis/script_scanner.h"

namespace lapis::analysis {

namespace {

// Last path component: "/usr/bin/python2.7" -> "python2.7".
std::string Basename(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

package::ProgramKind KindForInterpreter(const std::string& interpreter) {
  if (interpreter == "sh" || interpreter == "dash") {
    return package::ProgramKind::kShellDash;
  }
  if (interpreter == "bash") {
    return package::ProgramKind::kShellBash;
  }
  if (interpreter.rfind("python", 0) == 0) {
    return package::ProgramKind::kPython;
  }
  if (interpreter.rfind("perl", 0) == 0) {
    return package::ProgramKind::kPerl;
  }
  if (interpreter.rfind("ruby", 0) == 0) {
    return package::ProgramKind::kRuby;
  }
  return package::ProgramKind::kOtherInterpreted;
}

Result<ScriptInfo> ClassifyScript(std::span<const uint8_t> contents) {
  if (contents.size() < 3 || contents[0] != '#' || contents[1] != '!') {
    return InvalidArgumentError("no shebang");
  }
  // Extract the first line (bounded; shebang lines are short by spec).
  std::string line;
  for (size_t i = 2; i < contents.size() && i < 256; ++i) {
    if (contents[i] == '\n' || contents[i] == '\r') {
      break;
    }
    line.push_back(static_cast<char>(contents[i]));
  }
  // Trim leading spaces, split "interpreter [arg]".
  size_t start = line.find_first_not_of(' ');
  if (start == std::string::npos) {
    return InvalidArgumentError("empty shebang");
  }
  size_t end = line.find(' ', start);
  std::string interpreter_path = line.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
  std::string interpreter = Basename(interpreter_path);
  // "#!/usr/bin/env python" resolves through env's first argument.
  if (interpreter == "env" && end != std::string::npos) {
    size_t arg_start = line.find_first_not_of(' ', end);
    if (arg_start == std::string::npos) {
      return InvalidArgumentError("env shebang without interpreter");
    }
    size_t arg_end = line.find(' ', arg_start);
    interpreter = Basename(line.substr(
        arg_start,
        arg_end == std::string::npos ? std::string::npos
                                     : arg_end - arg_start));
  }
  if (interpreter.empty()) {
    return InvalidArgumentError("empty interpreter in shebang");
  }
  ScriptInfo info;
  info.interpreter = interpreter;
  info.kind = KindForInterpreter(interpreter);
  return info;
}

}  // namespace lapis::analysis
