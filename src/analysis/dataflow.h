// Register constant propagation for the per-binary analysis (paper §2.3).
//
// The lattice per register is flat: ⊥ (kBottom — no path reaches here yet)
// below the two incomparable known facts kConst(n) and kRodataPtr(addr),
// with ⊤ (kTop — any value) above everything.
//
// Two propagation modes share one transfer function:
//
//  * kLinear — the paper's single-pass back-tracking. State flows along the
//    sweep order only; any instruction that is an in-function branch target
//    may be reached from elsewhere with different register contents, so the
//    state is conservatively dropped to ⊤ there (this is the fix for the
//    historical kJccRel fall-through leak: `mov eax,N1; jcc L; mov eax,N2;
//    L: syscall` must not claim the site is confidently N2).
//
//  * kDataflow — a worklist fixpoint over the ControlFlowGraph: block entry
//    states join (per register) over all predecessors, block exit states
//    are memoized so unchanged blocks never re-propagate, and loops iterate
//    to convergence (the flat lattice bounds each register to two drops, so
//    termination is immediate). Merge points where every path agrees keep
//    the constant; disagreeing paths join to ⊤ and the site is counted
//    unknown instead of confidently wrong.
//
// Both modes return the register state *before* every instruction, which is
// what BinaryAnalyzer consumes at syscall / vectored-call / PLT sites.

#ifndef LAPIS_SRC_ANALYSIS_DATAFLOW_H_
#define LAPIS_SRC_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/disasm/insn.h"

namespace lapis::analysis {

// Abstract value of one register.
//
// kArg(r) is the interprocedural fact "still exactly the value the caller
// passed in argument register r". It is seeded into the entry state only by
// the IPA tier (binary_analyzer with AnalyzerOptions::use_ipa); the join is
// structural, so two paths agreeing on the same incoming argument keep the
// fact and disagreeing paths drop to ⊤ like any other mismatch.
struct AbsVal {
  enum class Kind : uint8_t { kBottom, kConst, kRodataPtr, kTop, kArg };
  Kind kind = Kind::kTop;
  int64_t value = 0;

  static AbsVal Bottom() { return AbsVal{Kind::kBottom, 0}; }
  static AbsVal Top() { return AbsVal{Kind::kTop, 0}; }
  static AbsVal Const(int64_t v) { return AbsVal{Kind::kConst, v}; }
  static AbsVal Rodata(uint64_t vaddr) {
    return AbsVal{Kind::kRodataPtr, static_cast<int64_t>(vaddr)};
  }
  static AbsVal Arg(uint8_t reg) { return AbsVal{Kind::kArg, reg}; }

  bool is_const() const { return kind == Kind::kConst; }
  bool is_rodata() const { return kind == Kind::kRodataPtr; }
  bool is_arg() const { return kind == Kind::kArg; }

  bool operator==(const AbsVal& other) const {
    return kind == other.kind &&
           (kind == Kind::kBottom || kind == Kind::kTop ||
            value == other.value);
  }

  // Least upper bound of two lattice values.
  static AbsVal Join(const AbsVal& a, const AbsVal& b);
};

// Abstract state of the 16 general-purpose registers.
struct RegState {
  AbsVal regs[16];

  static RegState AllBottom();
  static RegState AllTop();

  void SetAllTop();
  // System V AMD64 caller-saved registers become ⊤ across a call.
  void ClobberCallerSaved();
  // Joins `other` into this state; returns true if anything changed.
  bool JoinFrom(const RegState& other);
  bool operator==(const RegState& other) const;
};

// Applies one instruction's register effects to `state`. This is the single
// transfer function shared by both propagation modes (and mirrored by the
// DynamicTracer's concrete machine): mov-imm / xor-zero / reg-reg moves /
// rip-relative lea produce facts; calls clobber caller-saved registers;
// syscall-family instructions clobber the kernel-written registers
// (rax/rcx/r11); unmodeled instructions conservatively drop rax.
void ApplyTransfer(const disasm::Insn& insn, RegState& state);

enum class PropagationMode : uint8_t {
  kLinear,    // paper-faithful single pass (ablation baseline)
  kDataflow,  // CFG worklist fixpoint (default)
};

// Computes the register state immediately before each instruction of one
// function body. `cfg` must have been built from `sweep`. Instructions in
// blocks no in-function path reaches keep all-⊥ states; call-site consumers
// treat non-const values as unknown either way, so ⊥ stays conservative.
std::vector<RegState> ComputeInsnStates(const disasm::SweepResult& sweep,
                                        const ControlFlowGraph& cfg,
                                        PropagationMode mode);

// Reusable fixpoint buffers (one per analysis worker). The analyzer calls
// the propagation once per function; without scratch reuse every call
// reallocates four vectors sized by the block count.
struct DataflowScratch {
  std::vector<RegState> block_in;
  std::vector<RegState> block_out;
  std::vector<uint32_t> worklist;
  std::vector<bool> queued;
};

// Same result as ComputeInsnStates, written into `states` (cleared but
// capacity kept) using `scratch` for the fixpoint's working set.
void ComputeInsnStatesInto(const disasm::SweepResult& sweep,
                           const ControlFlowGraph& cfg, PropagationMode mode,
                           DataflowScratch& scratch,
                           std::vector<RegState>& states);

// Variant with an explicit function-entry register state (the IPA tier
// seeds AbsVal::Arg facts for the six System V argument registers; the
// plain overloads seed all-⊤). In linear mode the entry state survives
// only until the first branch target — the conservative ⊤ reset applies
// to argument facts like any other.
void ComputeInsnStatesInto(const disasm::SweepResult& sweep,
                           const ControlFlowGraph& cfg, PropagationMode mode,
                           const RegState& entry_state,
                           DataflowScratch& scratch,
                           std::vector<RegState>& states);

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_DATAFLOW_H_
