#include "src/analysis/db_pipeline.h"

#include "src/db/transitive_closure.h"

namespace lapis::analysis {

namespace {

// Fact encoding tags (self-contained; decoded only inside this module).
constexpr int64_t kTagSyscall = 0;
constexpr int64_t kTagIoctl = 1;
constexpr int64_t kTagFcntl = 2;
constexpr int64_t kTagPrctl = 3;
constexpr int64_t kTagPath = 4;

int64_t Encode(int64_t tag, uint32_t value) {
  return (tag << 32) | value;
}

}  // namespace

DbPipeline::DbPipeline(runtime::Executor* executor) : executor_(executor) {
  // String-valued attributes (binary names, symbol names) live once in the
  // symbols table; every other table references them by interned id.
  functions_ = database_
                   .CreateTable("functions",
                                {{"node", db::ColumnType::kInt64},
                                 {"binary", db::ColumnType::kInt64},
                                 {"vaddr", db::ColumnType::kInt64},
                                 {"name", db::ColumnType::kInt64}})
                   .value();
  calls_ = database_
               .CreateTable("calls", {{"src", db::ColumnType::kInt64},
                                      {"dst", db::ColumnType::kInt64}})
               .value();
  imports_ = database_
                 .CreateTable("imports",
                              {{"src", db::ColumnType::kInt64},
                               {"symbol", db::ColumnType::kInt64}})
                 .value();
  exports_ = database_
                 .CreateTable("exports",
                              {{"symbol", db::ColumnType::kInt64},
                               {"node", db::ColumnType::kInt64}})
                 .value();
  facts_ = database_
               .CreateTable("facts", {{"node", db::ColumnType::kInt64},
                                      {"fact", db::ColumnType::kInt64}})
               .value();
  paths_ = database_
               .CreateTable("paths", {{"id", db::ColumnType::kInt64},
                                      {"path", db::ColumnType::kString}})
               .value();
  symbols_ = database_
                 .CreateTable("symbols", {{"id", db::ColumnType::kInt64},
                                          {"name", db::ColumnType::kString}})
                 .value();
}

uint32_t DbPipeline::InternString(std::string_view s) {
  const size_t before = strings_.size();
  const uint32_t id = strings_.Intern(s);
  if (strings_.size() > before) {
    (void)symbols_->Insert({static_cast<int64_t>(id), std::string(s)});
  }
  return id;
}

int64_t DbPipeline::EncodePath(const std::string& path) {
  const size_t before = strings_.size();
  const uint32_t id = InternString(path);
  if (strings_.size() > before) {
    (void)paths_->Insert({static_cast<int64_t>(id), path});
  }
  return Encode(kTagPath, id);
}

Status DbPipeline::AddBinary(const std::string& binary_name,
                             const BinaryAnalysis& analysis) {
  aggregated_ = false;
  const int64_t binary_id = InternString(binary_name);
  // Assign node ids to every function.
  std::map<uint64_t, uint32_t> node_of_vaddr;
  for (const auto& fn : analysis.functions()) {
    uint32_t node = next_node_++;
    node_of_vaddr.emplace(fn.vaddr, node);
    LAPIS_RETURN_IF_ERROR(functions_->Insert(
        {static_cast<int64_t>(node), binary_id,
         static_cast<int64_t>(fn.vaddr),
         static_cast<int64_t>(InternString(fn.name))}));
  }
  for (const auto& fn : analysis.functions()) {
    uint32_t node = node_of_vaddr.at(fn.vaddr);
    for (uint64_t callee : fn.local_callees) {
      auto target = node_of_vaddr.find(callee);
      if (target != node_of_vaddr.end()) {
        LAPIS_RETURN_IF_ERROR(
            calls_->Insert({static_cast<int64_t>(node),
                            static_cast<int64_t>(target->second)}));
      }
    }
    for (const auto& symbol : fn.plt_calls) {
      const uint32_t symbol_id = InternString(symbol);
      LAPIS_RETURN_IF_ERROR(imports_->Insert(
          {static_cast<int64_t>(node), static_cast<int64_t>(symbol_id)}));
      pending_imports_.emplace_back(node, symbol_id);
    }
    for (int nr : fn.local.syscalls) {
      LAPIS_RETURN_IF_ERROR(facts_->Insert(
          {static_cast<int64_t>(node),
           Encode(kTagSyscall, static_cast<uint32_t>(nr))}));
    }
    for (uint32_t op : fn.local.ioctl_ops) {
      LAPIS_RETURN_IF_ERROR(facts_->Insert(
          {static_cast<int64_t>(node), Encode(kTagIoctl, op)}));
    }
    for (uint32_t op : fn.local.fcntl_ops) {
      LAPIS_RETURN_IF_ERROR(facts_->Insert(
          {static_cast<int64_t>(node), Encode(kTagFcntl, op)}));
    }
    for (uint32_t op : fn.local.prctl_ops) {
      LAPIS_RETURN_IF_ERROR(facts_->Insert(
          {static_cast<int64_t>(node), Encode(kTagPrctl, op)}));
    }
    for (const auto& path : fn.local.pseudo_paths) {
      LAPIS_RETURN_IF_ERROR(facts_->Insert(
          {static_cast<int64_t>(node), EncodePath(path)}));
    }
  }
  if (analysis.is_executable()) {
    auto entry = node_of_vaddr.find(analysis.entry());
    if (entry == node_of_vaddr.end()) {
      return InvalidArgumentError("entry point is not a known function in " +
                                  binary_name);
    }
    entry_nodes_.emplace(binary_name, entry->second);
  } else {
    for (const auto& symbol : analysis.exports()) {
      const FunctionInfo* fn = analysis.FunctionNamed(symbol);
      if (fn == nullptr) {
        continue;
      }
      auto node = node_of_vaddr.at(fn->vaddr);
      const uint32_t symbol_id = InternString(symbol);
      if (export_nodes_.emplace(symbol_id, node).second) {
        LAPIS_RETURN_IF_ERROR(exports_->Insert(
            {static_cast<int64_t>(symbol_id), static_cast<int64_t>(node)}));
      }
    }
  }
  return Status::Ok();
}

Status DbPipeline::Aggregate() {
  db::TransitiveAggregator aggregator(next_node_);
  for (size_t row = 0; row < calls_->row_count(); ++row) {
    LAPIS_RETURN_IF_ERROR(aggregator.AddEdge(
        static_cast<uint32_t>(calls_->GetInt(row, 0)),
        static_cast<uint32_t>(calls_->GetInt(row, 1))));
  }
  for (const auto& [src, symbol_id] : pending_imports_) {
    auto target = export_nodes_.find(symbol_id);
    if (target != export_nodes_.end()) {
      LAPIS_RETURN_IF_ERROR(aggregator.AddEdge(src, target->second));
    }
  }
  for (size_t row = 0; row < facts_->row_count(); ++row) {
    LAPIS_RETURN_IF_ERROR(aggregator.AddFact(
        static_cast<uint32_t>(facts_->GetInt(row, 0)),
        facts_->GetInt(row, 1)));
  }
  closure_ = aggregator.Aggregate(executor_);
  aggregated_ = true;
  return Status::Ok();
}

Result<Footprint> DbPipeline::ExecutableFootprint(
    const std::string& binary_name) {
  auto entry = entry_nodes_.find(binary_name);
  if (entry == entry_nodes_.end()) {
    return NotFoundError("unknown executable: " + binary_name);
  }
  if (!aggregated_) {
    LAPIS_RETURN_IF_ERROR(Aggregate());
  }
  Footprint footprint;
  for (int64_t fact : closure_[entry->second]) {
    int64_t tag = fact >> 32;
    uint32_t value = static_cast<uint32_t>(fact & 0xffffffff);
    switch (tag) {
      case kTagSyscall:
        footprint.syscalls.insert(static_cast<int>(value));
        break;
      case kTagIoctl:
        footprint.ioctl_ops.insert(value);
        break;
      case kTagFcntl:
        footprint.fcntl_ops.insert(value);
        break;
      case kTagPrctl:
        footprint.prctl_ops.insert(value);
        break;
      case kTagPath:
        footprint.pseudo_paths.insert(std::string(strings_.NameOf(value)));
        break;
      default:
        return CorruptDataError("unknown fact tag");
    }
  }
  return footprint;
}

}  // namespace lapis::analysis
