#include "src/analysis/footprint.h"

namespace lapis::analysis {

void Footprint::MergeFrom(const Footprint& other) {
  syscalls.insert(other.syscalls.begin(), other.syscalls.end());
  ioctl_ops.insert(other.ioctl_ops.begin(), other.ioctl_ops.end());
  fcntl_ops.insert(other.fcntl_ops.begin(), other.fcntl_ops.end());
  prctl_ops.insert(other.prctl_ops.begin(), other.prctl_ops.end());
  pseudo_paths.insert(other.pseudo_paths.begin(), other.pseudo_paths.end());
  int80_syscalls.insert(other.int80_syscalls.begin(),
                        other.int80_syscalls.end());
  unknown_syscall_sites += other.unknown_syscall_sites;
  unknown_opcode_sites += other.unknown_opcode_sites;
  indirect_call_sites += other.indirect_call_sites;
  int80_sites += other.int80_sites;
}

bool Footprint::Empty() const {
  return syscalls.empty() && ioctl_ops.empty() && fcntl_ops.empty() &&
         prctl_ops.empty() && pseudo_paths.empty();
}

size_t Footprint::ApiCount() const {
  return syscalls.size() + ioctl_ops.size() + fcntl_ops.size() +
         prctl_ops.size() + pseudo_paths.size();
}

bool Footprint::operator==(const Footprint& other) const {
  return syscalls == other.syscalls && ioctl_ops == other.ioctl_ops &&
         fcntl_ops == other.fcntl_ops && prctl_ops == other.prctl_ops &&
         pseudo_paths == other.pseudo_paths;
}

}  // namespace lapis::analysis
