// API footprint types shared by the analysis pipeline and the metrics core.
//
// A footprint is "every system API a binary could possibly request" (paper
// §2.3): system-call numbers, vectored-call opcodes (ioctl/fcntl/prctl),
// and hard-coded pseudo-file paths (/proc, /sys, /dev).

#ifndef LAPIS_SRC_ANALYSIS_FOOTPRINT_H_
#define LAPIS_SRC_ANALYSIS_FOOTPRINT_H_

#include <cstdint>
#include <set>
#include <string>

namespace lapis::analysis {

// System-call numbers of the vectored system calls (x86-64 Linux).
inline constexpr int kSysIoctl = 16;
inline constexpr int kSysFcntl = 72;
inline constexpr int kSysPrctl = 157;

struct Footprint {
  std::set<int> syscalls;
  std::set<uint32_t> ioctl_ops;
  std::set<uint32_t> fcntl_ops;
  std::set<uint32_t> prctl_ops;
  std::set<std::string> pseudo_paths;  // canonicalized, e.g. "/proc/%/cmdline"
  // Legacy 32-bit gate numbers (i386 table; distinct numbering from the
  // x86-64 `syscalls` set above).
  std::set<int> int80_syscalls;

  // Call sites whose system-call number / opcode could not be statically
  // determined (the paper reports 2,454 such sites, ~4%).
  int unknown_syscall_sites = 0;
  int unknown_opcode_sites = 0;
  // Indirect calls through registers (over-approximation boundary).
  int indirect_call_sites = 0;
  // Legacy 32-bit gate (int $0x80) sites; numbers use the i386 table so they
  // are counted but not merged into `syscalls`.
  int int80_sites = 0;

  void MergeFrom(const Footprint& other);
  bool Empty() const;
  size_t ApiCount() const;
  bool operator==(const Footprint& other) const;
};

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_FOOTPRINT_H_
