#include "src/analysis/library_resolver.h"

#include <vector>

namespace lapis::analysis {

Status LibraryResolver::AddLibrary(
    std::shared_ptr<const BinaryAnalysis> library) {
  if (library == nullptr) {
    return InvalidArgumentError("null library");
  }
  ExportReach reach = library->PerExportReachable(executor_);
  return AddLibrary(std::move(library), std::move(reach));
}

Status LibraryResolver::AddLibrary(std::shared_ptr<const BinaryAnalysis> library,
                                   ExportReach export_reach) {
  if (library == nullptr) {
    return InvalidArgumentError("null library");
  }
  const std::string& soname = library->soname();
  if (soname.empty()) {
    return InvalidArgumentError("library has no soname");
  }
  if (libraries_.contains(soname)) {
    return FailedPreconditionError("library already registered: " + soname);
  }
  LibEntry entry;
  entry.analysis = std::move(library);
  entry.export_reach = std::move(export_reach);
  const uint32_t soname_index = static_cast<uint32_t>(sonames_.size());
  auto [lib_it, inserted] = libraries_.emplace(soname, std::move(entry));
  (void)inserted;
  sonames_.push_back(soname);
  for (const auto& [symbol, reach] : lib_it->second.export_reach) {
    const uint32_t symbol_id = symbols_.Intern(symbol);
    if (symbol_id >= ref_of_symbol_.size()) {
      ref_of_symbol_.resize(symbol_id + 1, kNoRef);
    }
    if (ref_of_symbol_[symbol_id] != kNoRef) {
      continue;  // first registration wins
    }
    ReachRef ref;
    ref.reach = &reach;
    ref.soname_index = soname_index;
    ref.plt_call_ids.reserve(reach.plt_calls.size());
    for (const std::string& callee : reach.plt_calls) {
      ref.plt_call_ids.push_back(symbols_.Intern(callee));
    }
    ref_of_symbol_[symbol_id] = static_cast<uint32_t>(reach_refs_.size());
    reach_refs_.push_back(std::move(ref));
  }
  // Interning plt callees may have grown the pool past ref_of_symbol_.
  if (ref_of_symbol_.size() < symbols_.size()) {
    ref_of_symbol_.resize(symbols_.size(), kNoRef);
  }
  return Status::Ok();
}

const LibraryResolver::ExportReach* LibraryResolver::ExportReachOf(
    const std::string& soname) const {
  auto it = libraries_.find(soname);
  return it == libraries_.end() ? nullptr : &it->second.export_reach;
}

std::string LibraryResolver::ExporterOf(const std::string& symbol) const {
  const uint32_t id = symbols_.Find(symbol);
  if (id == StringPool::kNotFound || id >= ref_of_symbol_.size() ||
      ref_of_symbol_[id] == kNoRef) {
    return std::string();
  }
  return sonames_[reach_refs_[ref_of_symbol_[id]].soname_index];
}

void LibraryResolver::Expand(const std::set<std::string>& initial_symbols,
                             Resolution& resolution) const {
  // The fixpoint runs over interned ids: a vector worklist plus a dense
  // visited bitmap, no per-step string allocation. Symbols never interned at
  // registration time cannot resolve, so they go straight to
  // unresolved_imports without touching the pool (Resolve* stays const and
  // concurrency-safe).
  std::vector<uint32_t> worklist;
  worklist.reserve(initial_symbols.size());
  for (const std::string& symbol : initial_symbols) {
    const uint32_t id = symbols_.Find(symbol);
    if (id == StringPool::kNotFound) {
      resolution.unresolved_imports.insert(symbol);
    } else {
      worklist.push_back(id);
    }
  }
  std::vector<bool> visited(ref_of_symbol_.size(), false);
  while (!worklist.empty()) {
    const uint32_t id = worklist.back();
    worklist.pop_back();
    if (visited[id]) {
      continue;
    }
    visited[id] = true;
    const uint32_t ref_index = ref_of_symbol_[id];
    if (ref_index == kNoRef) {
      resolution.unresolved_imports.insert(std::string(symbols_.NameOf(id)));
      continue;
    }
    const ReachRef& ref = reach_refs_[ref_index];
    resolution.used_exports[sonames_[ref.soname_index]].insert(
        std::string(symbols_.NameOf(id)));
    resolution.footprint.MergeFrom(ref.reach->footprint);
    resolution.reachable_function_count += ref.reach->function_count;
    for (const uint32_t next : ref.plt_call_ids) {
      if (!visited[next]) {
        worklist.push_back(next);
      }
    }
  }
}

LibraryResolver::Resolution LibraryResolver::ResolveExecutable(
    const BinaryAnalysis& exe) const {
  Resolution resolution;
  BinaryAnalysis::ReachableResult entry_reach = exe.FromEntry();
  resolution.footprint.MergeFrom(entry_reach.footprint);
  resolution.reachable_function_count = entry_reach.function_count;
  Expand(entry_reach.plt_calls, resolution);
  return resolution;
}

LibraryResolver::Resolution LibraryResolver::ResolveFromSymbols(
    const std::vector<std::string>& symbols) const {
  Resolution resolution;
  Expand(std::set<std::string>(symbols.begin(), symbols.end()), resolution);
  return resolution;
}

Result<LibraryResolver::Resolution> LibraryResolver::ResolveWholeLibrary(
    const std::string& soname) const {
  auto it = libraries_.find(soname);
  if (it == libraries_.end()) {
    return NotFoundError("library not registered: " + soname);
  }
  Resolution resolution;
  std::set<std::string> roots;
  for (const auto& [symbol, reach] : it->second.export_reach) {
    (void)reach;
    roots.insert(symbol);
  }
  Expand(roots, resolution);
  return resolution;
}

}  // namespace lapis::analysis
