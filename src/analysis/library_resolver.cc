#include "src/analysis/library_resolver.h"

#include <deque>

namespace lapis::analysis {

Status LibraryResolver::AddLibrary(
    std::shared_ptr<const BinaryAnalysis> library) {
  if (library == nullptr) {
    return InvalidArgumentError("null library");
  }
  const std::string& soname = library->soname();
  if (soname.empty()) {
    return InvalidArgumentError("library has no soname");
  }
  if (libraries_.count(soname) != 0) {
    return FailedPreconditionError("library already registered: " + soname);
  }
  LibEntry entry;
  entry.analysis = library;
  entry.export_reach = library->PerExportReachable(executor_);
  for (const auto& [symbol, reach] : entry.export_reach) {
    symbol_to_soname_.emplace(symbol, soname);  // first wins
  }
  libraries_.emplace(soname, std::move(entry));
  sonames_.push_back(soname);
  return Status::Ok();
}

std::string LibraryResolver::ExporterOf(const std::string& symbol) const {
  auto it = symbol_to_soname_.find(symbol);
  return it == symbol_to_soname_.end() ? std::string() : it->second;
}

void LibraryResolver::Expand(const std::set<std::string>& initial_symbols,
                             Resolution& resolution) const {
  std::deque<std::string> queue(initial_symbols.begin(),
                                initial_symbols.end());
  std::set<std::string> visited;
  while (!queue.empty()) {
    std::string symbol = std::move(queue.front());
    queue.pop_front();
    if (!visited.insert(symbol).second) {
      continue;
    }
    auto soname_it = symbol_to_soname_.find(symbol);
    if (soname_it == symbol_to_soname_.end()) {
      resolution.unresolved_imports.insert(symbol);
      continue;
    }
    const LibEntry& lib = libraries_.at(soname_it->second);
    auto reach_it = lib.export_reach.find(symbol);
    if (reach_it == lib.export_reach.end()) {
      resolution.unresolved_imports.insert(symbol);
      continue;
    }
    resolution.used_exports[soname_it->second].insert(symbol);
    const auto& reach = reach_it->second;
    resolution.footprint.MergeFrom(reach.footprint);
    resolution.reachable_function_count += reach.function_count;
    for (const auto& next : reach.plt_calls) {
      if (visited.find(next) == visited.end()) {
        queue.push_back(next);
      }
    }
  }
}

LibraryResolver::Resolution LibraryResolver::ResolveExecutable(
    const BinaryAnalysis& exe) const {
  Resolution resolution;
  BinaryAnalysis::ReachableResult entry_reach = exe.FromEntry();
  resolution.footprint.MergeFrom(entry_reach.footprint);
  resolution.reachable_function_count = entry_reach.function_count;
  Expand(entry_reach.plt_calls, resolution);
  return resolution;
}

LibraryResolver::Resolution LibraryResolver::ResolveFromSymbols(
    const std::vector<std::string>& symbols) const {
  Resolution resolution;
  Expand(std::set<std::string>(symbols.begin(), symbols.end()), resolution);
  return resolution;
}

Result<LibraryResolver::Resolution> LibraryResolver::ResolveWholeLibrary(
    const std::string& soname) const {
  auto it = libraries_.find(soname);
  if (it == libraries_.end()) {
    return NotFoundError("library not registered: " + soname);
  }
  Resolution resolution;
  std::set<std::string> roots;
  for (const auto& [symbol, reach] : it->second.export_reach) {
    (void)reach;
    roots.insert(symbol);
  }
  Expand(roots, resolution);
  return resolution;
}

}  // namespace lapis::analysis
