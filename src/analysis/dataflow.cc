#include "src/analysis/dataflow.h"

namespace lapis::analysis {

namespace {

using disasm::Insn;
using disasm::InsnKind;

}  // namespace

AbsVal AbsVal::Join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == Kind::kBottom) {
    return b;
  }
  if (b.kind == Kind::kBottom) {
    return a;
  }
  if (a == b) {
    return a;
  }
  return Top();
}

RegState RegState::AllBottom() {
  RegState state;
  for (auto& r : state.regs) {
    r = AbsVal::Bottom();
  }
  return state;
}

RegState RegState::AllTop() {
  RegState state;
  for (auto& r : state.regs) {
    r = AbsVal::Top();
  }
  return state;
}

void RegState::SetAllTop() {
  for (auto& r : regs) {
    r = AbsVal::Top();
  }
}

void RegState::ClobberCallerSaved() {
  // System V AMD64: rax, rcx, rdx, rsi, rdi, r8-r11 are caller-saved.
  static constexpr uint8_t kVolatile[] = {0, 1, 2, 6, 7, 8, 9, 10, 11};
  for (uint8_t r : kVolatile) {
    regs[r] = AbsVal::Top();
  }
}

bool RegState::JoinFrom(const RegState& other) {
  bool changed = false;
  for (int r = 0; r < 16; ++r) {
    AbsVal joined = AbsVal::Join(regs[r], other.regs[r]);
    if (!(joined == regs[r])) {
      regs[r] = joined;
      changed = true;
    }
  }
  return changed;
}

bool RegState::operator==(const RegState& other) const {
  for (int r = 0; r < 16; ++r) {
    if (!(regs[r] == other.regs[r])) {
      return false;
    }
  }
  return true;
}

void ApplyTransfer(const Insn& insn, RegState& state) {
  switch (insn.kind) {
    case InsnKind::kMovRegImm:
      state.regs[insn.reg] = AbsVal::Const(insn.imm);
      break;
    case InsnKind::kXorRegReg:
      state.regs[insn.reg] = AbsVal::Const(0);
      break;
    case InsnKind::kMovRegReg:
      state.regs[insn.reg] = state.regs[insn.reg2];
      break;
    case InsnKind::kLeaRipRel:
      state.regs[insn.reg] = AbsVal::Rodata(insn.target);
      break;
    case InsnKind::kSyscall:
    case InsnKind::kSysenter:
      // The kernel returns in rax and clobbers rcx/r11.
      state.regs[disasm::kRax] = AbsVal::Top();
      state.regs[disasm::kRcx] = AbsVal::Top();
      state.regs[disasm::kR11] = AbsVal::Top();
      break;
    case InsnKind::kInt:
      if ((insn.imm & 0xff) == 0x80) {
        state.regs[disasm::kRax] = AbsVal::Top();
      }
      break;
    case InsnKind::kCallRel32:
    case InsnKind::kCallIndirect:
      state.ClobberCallerSaved();
      break;
    case InsnKind::kJmpRel:
    case InsnKind::kJccRel:
    case InsnKind::kJmpIndirect:
    case InsnKind::kRet:
    case InsnKind::kNop:
      break;
    case InsnKind::kOther:
      // Unmodeled instruction: any register it wrote is stale. We only
      // track a small instruction vocabulary, so conservatively drop
      // rax (the syscall-number register) on arithmetic-looking ops.
      if (!insn.two_byte && insn.opcode != 0x89 && insn.opcode != 0x8b) {
        state.regs[disasm::kRax] = AbsVal::Top();
      }
      break;
  }
}

namespace {

// The paper's single-pass mode: state flows along sweep order; it drops to
// ⊤ at every in-function branch target (code reachable from elsewhere) and
// after instructions that never fall through.
void LinearStates(const disasm::SweepResult& sweep, const ControlFlowGraph& cfg,
                  const RegState& entry_state, std::vector<RegState>& states) {
  states.assign(sweep.insns.size(), RegState::AllTop());
  RegState state = entry_state;
  for (size_t i = 0; i < sweep.insns.size(); ++i) {
    if (cfg.IsBranchTarget(i)) {
      state.SetAllTop();
    }
    states[i] = state;
    ApplyTransfer(sweep.insns[i], state);
    switch (sweep.insns[i].kind) {
      case InsnKind::kJmpRel:
      case InsnKind::kJmpIndirect:
      case InsnKind::kRet:
        // The next instruction, if any, is only reachable from elsewhere.
        state.SetAllTop();
        break;
      default:
        break;
    }
  }
}

// Worklist constant propagation over the CFG with per-block-exit
// memoization: a block whose exit state did not change never re-enqueues
// its successors. The worklist is a LIFO stack — the fixpoint converges to
// the same answer under any processing order (joins are monotone on a
// finite lattice), and a stack needs no deque segment allocations.
void DataflowStates(const disasm::SweepResult& sweep,
                    const ControlFlowGraph& cfg, const RegState& entry_state,
                    DataflowScratch& scratch, std::vector<RegState>& states) {
  const size_t block_count = cfg.block_count();
  states.clear();
  if (block_count == 0) {
    return;
  }
  scratch.block_in.assign(block_count, RegState::AllBottom());
  scratch.block_out.assign(block_count, RegState::AllBottom());
  // Register contents at function entry are the caller's: all-⊤, unless the
  // IPA tier asked for argument facts to be threaded through.
  scratch.block_in[0] = entry_state;

  scratch.worklist.clear();
  scratch.queued.assign(block_count, false);
  scratch.worklist.push_back(0);
  scratch.queued[0] = true;

  while (!scratch.worklist.empty()) {
    uint32_t b = scratch.worklist.back();
    scratch.worklist.pop_back();
    scratch.queued[b] = false;
    const BasicBlock& block = cfg.blocks()[b];

    RegState state = scratch.block_in[b];
    for (size_t i = 0; i < block.insn_count; ++i) {
      ApplyTransfer(sweep.insns[block.first_insn + i], state);
    }
    if (state == scratch.block_out[b]) {
      continue;  // memoized exit state: successors already saw these facts
    }
    scratch.block_out[b] = state;
    for (uint32_t succ : block.succs) {
      if (scratch.block_in[succ].JoinFrom(state) && !scratch.queued[succ]) {
        scratch.worklist.push_back(succ);
        scratch.queued[succ] = true;
      }
    }
  }

  // Final pass: expand per-block entry states to per-instruction states.
  states.assign(sweep.insns.size(), RegState::AllBottom());
  for (uint32_t b = 0; b < block_count; ++b) {
    const BasicBlock& block = cfg.blocks()[b];
    RegState state = scratch.block_in[b];
    for (size_t i = 0; i < block.insn_count; ++i) {
      states[block.first_insn + i] = state;
      ApplyTransfer(sweep.insns[block.first_insn + i], state);
    }
  }
}

}  // namespace

std::vector<RegState> ComputeInsnStates(const disasm::SweepResult& sweep,
                                        const ControlFlowGraph& cfg,
                                        PropagationMode mode) {
  DataflowScratch scratch;
  std::vector<RegState> states;
  ComputeInsnStatesInto(sweep, cfg, mode, scratch, states);
  return states;
}

void ComputeInsnStatesInto(const disasm::SweepResult& sweep,
                           const ControlFlowGraph& cfg, PropagationMode mode,
                           DataflowScratch& scratch,
                           std::vector<RegState>& states) {
  ComputeInsnStatesInto(sweep, cfg, mode, RegState::AllTop(), scratch, states);
}

void ComputeInsnStatesInto(const disasm::SweepResult& sweep,
                           const ControlFlowGraph& cfg, PropagationMode mode,
                           const RegState& entry_state,
                           DataflowScratch& scratch,
                           std::vector<RegState>& states) {
  if (mode == PropagationMode::kLinear) {
    LinearStates(sweep, cfg, entry_state, states);
    return;
  }
  DataflowStates(sweep, cfg, entry_state, scratch, states);
}

}  // namespace lapis::analysis
