#include "src/analysis/dataflow.h"

#include <deque>

namespace lapis::analysis {

namespace {

using disasm::Insn;
using disasm::InsnKind;

}  // namespace

AbsVal AbsVal::Join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == Kind::kBottom) {
    return b;
  }
  if (b.kind == Kind::kBottom) {
    return a;
  }
  if (a == b) {
    return a;
  }
  return Top();
}

RegState RegState::AllBottom() {
  RegState state;
  for (auto& r : state.regs) {
    r = AbsVal::Bottom();
  }
  return state;
}

RegState RegState::AllTop() {
  RegState state;
  for (auto& r : state.regs) {
    r = AbsVal::Top();
  }
  return state;
}

void RegState::SetAllTop() {
  for (auto& r : regs) {
    r = AbsVal::Top();
  }
}

void RegState::ClobberCallerSaved() {
  // System V AMD64: rax, rcx, rdx, rsi, rdi, r8-r11 are caller-saved.
  static constexpr uint8_t kVolatile[] = {0, 1, 2, 6, 7, 8, 9, 10, 11};
  for (uint8_t r : kVolatile) {
    regs[r] = AbsVal::Top();
  }
}

bool RegState::JoinFrom(const RegState& other) {
  bool changed = false;
  for (int r = 0; r < 16; ++r) {
    AbsVal joined = AbsVal::Join(regs[r], other.regs[r]);
    if (!(joined == regs[r])) {
      regs[r] = joined;
      changed = true;
    }
  }
  return changed;
}

bool RegState::operator==(const RegState& other) const {
  for (int r = 0; r < 16; ++r) {
    if (!(regs[r] == other.regs[r])) {
      return false;
    }
  }
  return true;
}

void ApplyTransfer(const Insn& insn, RegState& state) {
  switch (insn.kind) {
    case InsnKind::kMovRegImm:
      state.regs[insn.reg] = AbsVal::Const(insn.imm);
      break;
    case InsnKind::kXorRegReg:
      state.regs[insn.reg] = AbsVal::Const(0);
      break;
    case InsnKind::kMovRegReg:
      state.regs[insn.reg] = state.regs[insn.reg2];
      break;
    case InsnKind::kLeaRipRel:
      state.regs[insn.reg] = AbsVal::Rodata(insn.target);
      break;
    case InsnKind::kSyscall:
    case InsnKind::kSysenter:
      // The kernel returns in rax and clobbers rcx/r11.
      state.regs[disasm::kRax] = AbsVal::Top();
      state.regs[disasm::kRcx] = AbsVal::Top();
      state.regs[disasm::kR11] = AbsVal::Top();
      break;
    case InsnKind::kInt:
      if ((insn.imm & 0xff) == 0x80) {
        state.regs[disasm::kRax] = AbsVal::Top();
      }
      break;
    case InsnKind::kCallRel32:
    case InsnKind::kCallIndirect:
      state.ClobberCallerSaved();
      break;
    case InsnKind::kJmpRel:
    case InsnKind::kJccRel:
    case InsnKind::kJmpIndirect:
    case InsnKind::kRet:
    case InsnKind::kNop:
      break;
    case InsnKind::kOther:
      // Unmodeled instruction: any register it wrote is stale. We only
      // track a small instruction vocabulary, so conservatively drop
      // rax (the syscall-number register) on arithmetic-looking ops.
      if (!insn.two_byte && insn.opcode != 0x89 && insn.opcode != 0x8b) {
        state.regs[disasm::kRax] = AbsVal::Top();
      }
      break;
  }
}

namespace {

// The paper's single-pass mode: state flows along sweep order; it drops to
// ⊤ at every in-function branch target (code reachable from elsewhere) and
// after instructions that never fall through.
std::vector<RegState> LinearStates(const disasm::SweepResult& sweep,
                                   const ControlFlowGraph& cfg) {
  std::vector<RegState> states(sweep.insns.size(), RegState::AllTop());
  RegState state = RegState::AllTop();
  for (size_t i = 0; i < sweep.insns.size(); ++i) {
    if (cfg.IsBranchTarget(i)) {
      state.SetAllTop();
    }
    states[i] = state;
    ApplyTransfer(sweep.insns[i], state);
    switch (sweep.insns[i].kind) {
      case InsnKind::kJmpRel:
      case InsnKind::kJmpIndirect:
      case InsnKind::kRet:
        // The next instruction, if any, is only reachable from elsewhere.
        state.SetAllTop();
        break;
      default:
        break;
    }
  }
  return states;
}

// Worklist constant propagation over the CFG with per-block-exit
// memoization: a block whose exit state did not change never re-enqueues
// its successors.
std::vector<RegState> DataflowStates(const disasm::SweepResult& sweep,
                                     const ControlFlowGraph& cfg) {
  const size_t block_count = cfg.block_count();
  std::vector<RegState> in_states(block_count, RegState::AllBottom());
  std::vector<RegState> out_states(block_count, RegState::AllBottom());
  if (block_count == 0) {
    return {};
  }
  // Register contents at function entry are the caller's: unknown.
  in_states[0] = RegState::AllTop();

  std::deque<uint32_t> worklist;
  std::vector<bool> queued(block_count, false);
  worklist.push_back(0);
  queued[0] = true;

  while (!worklist.empty()) {
    uint32_t b = worklist.front();
    worklist.pop_front();
    queued[b] = false;
    const BasicBlock& block = cfg.blocks()[b];

    RegState state = in_states[b];
    for (size_t i = 0; i < block.insn_count; ++i) {
      ApplyTransfer(sweep.insns[block.first_insn + i], state);
    }
    if (state == out_states[b]) {
      continue;  // memoized exit state: successors already saw these facts
    }
    out_states[b] = state;
    for (uint32_t succ : block.succs) {
      if (in_states[succ].JoinFrom(state) && !queued[succ]) {
        worklist.push_back(succ);
        queued[succ] = true;
      }
    }
  }

  // Final pass: expand per-block entry states to per-instruction states.
  std::vector<RegState> states(sweep.insns.size(), RegState::AllBottom());
  for (uint32_t b = 0; b < block_count; ++b) {
    const BasicBlock& block = cfg.blocks()[b];
    RegState state = in_states[b];
    for (size_t i = 0; i < block.insn_count; ++i) {
      states[block.first_insn + i] = state;
      ApplyTransfer(sweep.insns[block.first_insn + i], state);
    }
  }
  return states;
}

}  // namespace

std::vector<RegState> ComputeInsnStates(const disasm::SweepResult& sweep,
                                        const ControlFlowGraph& cfg,
                                        PropagationMode mode) {
  if (mode == PropagationMode::kLinear) {
    return LinearStates(sweep, cfg);
  }
  return DataflowStates(sweep, cfg);
}

}  // namespace lapis::analysis
