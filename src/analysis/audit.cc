#include "src/analysis/audit.h"

#include <cstdio>

namespace lapis::analysis {

namespace {

const char* ApiClassName(AuditFinding::ApiClass api_class) {
  switch (api_class) {
    case AuditFinding::ApiClass::kSyscall:
      return "syscall";
    case AuditFinding::ApiClass::kIoctlOp:
      return "ioctl op";
    case AuditFinding::ApiClass::kFcntlOp:
      return "fcntl op";
    case AuditFinding::ApiClass::kPrctlOp:
      return "prctl op";
    case AuditFinding::ApiClass::kInt80Syscall:
      return "int80 syscall";
    case AuditFinding::ApiClass::kPseudoPath:
      return "pseudo path";
  }
  return "api";
}

// Compares one API class: everything in `observed` must appear in `claimed`
// or be excused by `unknown_sites` of the same class.
template <typename T>
void CompareClass(const std::set<T>& observed, const std::set<T>& claimed,
                  int unknown_sites, AuditFinding::ApiClass api_class,
                  BinaryAuditResult& out) {
  for (const T& api : observed) {
    if (claimed.contains(api)) {
      continue;
    }
    if (unknown_sites > 0) {
      ++out.masked_by_unknown_sites;
      continue;
    }
    AuditFinding finding;
    finding.api_class = api_class;
    finding.code = static_cast<int64_t>(api);
    out.violations.push_back(std::move(finding));
  }
  for (const T& api : claimed) {
    if (!observed.contains(api)) {
      ++out.static_only_apis;
    }
  }
}

}  // namespace

std::string AuditFinding::Describe() const {
  char buffer[96];
  if (api_class == ApiClass::kPseudoPath) {
    return std::string("pseudo path ") + path +
           " observed but not in static footprint";
  }
  std::snprintf(buffer, sizeof(buffer),
                "%s %lld observed but not in static footprint",
                ApiClassName(api_class), static_cast<long long>(code));
  return buffer;
}

void AuditReport::Fold(BinaryAuditResult result) {
  ++executables_audited;
  observed_union.MergeFrom(result.observed);
  soundness_violations += result.violations.size();
  masked_by_unknown_sites += result.masked_by_unknown_sites;
  static_only_apis += result.static_only_apis;
  observed_apis += result.observed_apis;
  if (result.hit_step_limit) {
    ++traces_hit_step_limit;
  }
  if (!result.violations.empty()) {
    flagged.push_back(std::move(result));
  }
}

std::string AuditReport::Summary() const {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "audit: %zu executables replayed, %zu observed APIs, "
      "%zu soundness violations, %zu observed-but-unknown-masked, "
      "%zu static-only (over-approximation margin)",
      executables_audited, observed_apis, soundness_violations,
      masked_by_unknown_sites, static_only_apis);
  std::string out = buffer;
  if (traces_hit_step_limit > 0) {
    std::snprintf(buffer, sizeof(buffer), ", %zu traces hit the step limit",
                  traces_hit_step_limit);
    out += buffer;
  }
  return out;
}

FootprintAuditor::FootprintAuditor(AnalyzerOptions options,
                                   runtime::Executor* executor)
    : options_(options),
      resolver_(&owned_resolver_),
      owned_resolver_(executor) {}

FootprintAuditor::FootprintAuditor(const LibraryResolver* resolver,
                                   AnalyzerOptions options,
                                   runtime::Executor* executor)
    : options_(options), resolver_(resolver), owned_resolver_(executor) {}

Status FootprintAuditor::AddLibrary(
    std::shared_ptr<const elf::ElfImage> library) {
  if (library == nullptr) {
    return InvalidArgumentError("auditor library must not be null");
  }
  if (resolver_ == &owned_resolver_) {
    LAPIS_ASSIGN_OR_RETURN(auto analysis,
                           BinaryAnalyzer::Analyze(*library, options_));
    LAPIS_RETURN_IF_ERROR(owned_resolver_.AddLibrary(
        std::make_shared<BinaryAnalysis>(std::move(analysis))));
  }
  return tracer_.AddLibrary(std::move(library));
}

Result<BinaryAuditResult> FootprintAuditor::AuditExecutable(
    const elf::ElfImage& executable, const std::string& name) const {
  LAPIS_ASSIGN_OR_RETURN(auto analysis,
                         BinaryAnalyzer::Analyze(executable, options_));
  LibraryResolver::Resolution resolution =
      resolver_->ResolveExecutable(analysis);
  LAPIS_ASSIGN_OR_RETURN(auto trace, tracer_.Trace(executable));

  const Footprint& claimed = resolution.footprint;
  const Footprint& observed = trace.observed;

  BinaryAuditResult out;
  out.name = name;
  out.observed = observed;
  out.instructions_executed = trace.instructions_executed;
  out.hit_step_limit = trace.hit_step_limit;
  out.stubbed_imports = trace.stubbed_imports;
  out.observed_apis = observed.ApiCount() + observed.int80_syscalls.size();
  out.static_apis = claimed.ApiCount() + claimed.int80_syscalls.size();

  CompareClass(observed.syscalls, claimed.syscalls,
               claimed.unknown_syscall_sites,
               AuditFinding::ApiClass::kSyscall, out);
  // A vectored opcode can go missing at an opcode-unknown site or behind a
  // number-unknown syscall site; either counter excuses it.
  const int opcode_unknowns =
      claimed.unknown_opcode_sites + claimed.unknown_syscall_sites;
  CompareClass(observed.ioctl_ops, claimed.ioctl_ops, opcode_unknowns,
               AuditFinding::ApiClass::kIoctlOp, out);
  CompareClass(observed.fcntl_ops, claimed.fcntl_ops, opcode_unknowns,
               AuditFinding::ApiClass::kFcntlOp, out);
  CompareClass(observed.prctl_ops, claimed.prctl_ops, opcode_unknowns,
               AuditFinding::ApiClass::kPrctlOp, out);
  CompareClass(observed.int80_syscalls, claimed.int80_syscalls,
               claimed.unknown_syscall_sites,
               AuditFinding::ApiClass::kInt80Syscall, out);
  // Paths have no unknown-site escape hatch: the static side sees every
  // rip-relative rodata load the tracer can dereference.
  for (const auto& path : observed.pseudo_paths) {
    if (claimed.pseudo_paths.contains(path)) {
      continue;
    }
    AuditFinding finding;
    finding.api_class = AuditFinding::ApiClass::kPseudoPath;
    finding.path = path;
    out.violations.push_back(std::move(finding));
  }
  for (const auto& path : claimed.pseudo_paths) {
    if (!observed.pseudo_paths.contains(path)) {
      ++out.static_only_apis;
    }
  }
  return out;
}

}  // namespace lapis::analysis
