// Database-backed footprint aggregation — the paper's PostgreSQL pipeline
// (§7: raw per-function facts inserted into a relational store, whole-
// program footprints computed with recursive queries).
//
// DbPipeline loads BinaryAnalysis results into lapis::db tables (functions,
// call edges, import edges, exports, API facts) and computes executable
// footprints with one TransitiveAggregator pass over the cross-binary call
// graph. It is an independent implementation of the same aggregation the
// in-memory LibraryResolver performs; tests assert both agree exactly.

#ifndef LAPIS_SRC_ANALYSIS_DB_PIPELINE_H_
#define LAPIS_SRC_ANALYSIS_DB_PIPELINE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/binary_analyzer.h"
#include "src/db/table.h"
#include "src/util/status.h"
#include "src/util/string_pool.h"

namespace lapis::analysis {

class DbPipeline {
 public:
  // With an executor, the closure aggregation runs its SCC levels in
  // parallel; footprints are identical at any thread count.
  explicit DbPipeline(runtime::Executor* executor = nullptr);

  // Loads one analyzed binary under `binary_name` (executable name or
  // library soname). Library exports become linkable symbols; first
  // registration of a symbol wins.
  Status AddBinary(const std::string& binary_name,
                   const BinaryAnalysis& analysis);

  // Footprint of a previously added executable: the fact union over the
  // transitive closure of its entry function across all loaded binaries.
  Result<Footprint> ExecutableFootprint(const std::string& binary_name);

  // Underlying store (inspectable; also serializable via db::Database).
  const db::Database& database() const { return database_; }
  size_t node_count() const { return next_node_; }

 private:
  int64_t EncodeSyscall(int nr) const;
  int64_t EncodeOp(int family, uint32_t op) const;
  int64_t EncodePath(const std::string& path);
  // Interns into `strings_`, appending a row to the symbols table on first
  // sight so the store stays self-describing.
  uint32_t InternString(std::string_view s);

  runtime::Executor* executor_ = nullptr;
  db::Database database_;
  db::Table* functions_;  // node, binary string id, vaddr, name string id
  db::Table* calls_;      // src node, dst node (intra-binary)
  db::Table* imports_;    // src node, symbol string id
  db::Table* exports_;    // symbol string id, node
  db::Table* facts_;      // node, encoded fact
  db::Table* paths_;      // path string id, path string (distinct paths)
  db::Table* symbols_;    // string id, string (one row per distinct string)

  // Every symbol name, binary name, and pseudo path is stored once here;
  // all tables reference strings by dense pool id. The paper's PostgreSQL
  // schema used raw text columns — at corpus scale the same libc symbol
  // names were copied into tens of thousands of rows.
  StringPool strings_;

  uint32_t next_node_ = 0;
  std::map<std::string, uint32_t> entry_nodes_;  // executable -> node
  std::map<uint32_t, uint32_t> export_nodes_;    // symbol id -> node
  // Unresolved import edges (src node, symbol id) kept until aggregation.
  std::vector<std::pair<uint32_t, uint32_t>> pending_imports_;
  // Cached aggregation (invalidated by AddBinary).
  bool aggregated_ = false;
  std::vector<std::vector<int64_t>> closure_;
  Status Aggregate();
};

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_DB_PIPELINE_H_
