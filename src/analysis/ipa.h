// Interprocedural constant back-tracking (the `--analysis=ipa` tier,
// paper §2.3's "call graph → constant back-tracking" step).
//
// The intra-function tiers stop at call boundaries: a `syscall(2)`-style
// wrapper receives its number in rdi, so its `syscall` site sees ⊤ in rax
// and is counted unknown even though every caller passes a constant. The
// IPA tier closes that gap in three steps:
//
//  1. Call graph. BinaryAnalyzer (use_ipa) records one IpaCallEdge per
//     direct call/jmp to a known function start — plus rip-relative
//     `call [rip+disp]` sites whose pointer slot holds a function start —
//     carrying the abstract values of the six System V argument registers
//     at the call site.
//
//  2. Wrapper summaries, bottom-up. Function entry states are seeded with
//     AbsVal::Arg facts, so a site whose deciding register still holds
//     Arg(r) at the site means "the number/opcode is exactly incoming
//     argument r, un-clobbered on every path". Such sites are deferred as
//     IpaPendingSites instead of counted unknown. Functions are processed
//     callees-first over the Tarjan SCC condensation; every function in a
//     nontrivial SCC (recursion) conservatively drops its deferred sites
//     to unknown and exposes nothing.
//
//  3. Top-down resolution. Each caller evaluates its callees' exposed
//     sites under the call edge's argument bindings: a constant resolves
//     the site and is attributed to the *caller's* local footprint (so
//     reachability, vectored-opcode breakdowns, and the auditor all see
//     it at the call site that pinned the value); a still-argument value
//     re-exposes the site one level up, bounded by ipa_max_depth; ⊤ marks
//     it unknown. Sites still exposed at exported / entry / caller-less
//     functions are unknown — external callers are out of scope.
//
// Everything is deterministic: edges are evaluated in collection order,
// SCCs in Tarjan completion order, and the pass runs after the (already
// deterministic) per-function loop, so exports stay byte-identical at any
// --jobs value.

#ifndef LAPIS_SRC_ANALYSIS_IPA_H_
#define LAPIS_SRC_ANALYSIS_IPA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/dataflow.h"

namespace lapis::analysis {

// One syscall-number or vectored-opcode site whose deciding register held
// an argument fact (AbsVal::Arg) instead of a constant: resolution is
// deferred to the interprocedural pass.
struct IpaPendingSite {
  enum class Kind : uint8_t {
    kSyscallNumber,     // syscall/sysenter: number = rax
    kPltSyscallNumber,  // syscall@plt: number = rdi
    kInt80Number,       // int 0x80: number = eax (i386 numbering)
    kIoctlOp,           // ioctl (direct nr or @plt): opcode = rsi
    kFcntlOp,           // fcntl/fcntl64: opcode = rsi
    kPrctlOp,           // prctl: opcode = rdi
  };
  Kind kind = Kind::kSyscallNumber;
  // Number-kind sites: the Arg fact for the syscall number. Opcode-kind
  // sites leave it defaulted and are decided by op_rsi / op_rdi.
  AbsVal number = AbsVal::Top();
  AbsVal op_rsi = AbsVal::Top();  // rsi at the site (ioctl/fcntl opcode)
  AbsVal op_rdi = AbsVal::Top();  // rdi at the site (prctl opcode)
};

// One call-graph edge with the abstract argument-register values at the
// call site (System V order: rdi, rsi, rdx, rcx, r8, r9).
struct IpaCallEdge {
  uint64_t callee_vaddr = 0;
  AbsVal args[6];
};

// Facts one function contributes to the interprocedural pass; collected by
// BinaryAnalyzer under use_ipa, parallel to BinaryAnalysis::functions().
struct IpaFunctionFacts {
  std::vector<IpaPendingSite> sites;
  std::vector<IpaCallEdge> edges;
};

// Diagnostics from one PropagateInterprocedural run.
struct IpaStats {
  size_t call_graph_edges = 0;  // edges that resolved to a known function
  size_t cyclic_functions = 0;  // members of nontrivial SCCs (⊤ at recursion)
  size_t pending_sites = 0;     // sites deferred by the collection pass
  size_t resolved_sites = 0;    // pending sites fully pinned to constants
  size_t unresolved_sites = 0;  // pending sites counted unknown after all
  int unknown_syscall_sites_added = 0;  // binary-level counter delta
};

// Runs the bottom-up summary / top-down resolution pass over one binary's
// collected facts, attributing recovered constants (and residual unknown
// counters) into the owning/resolving functions' local footprints.
// `facts` must be parallel to `functions`; `max_depth` bounds wrapper-chain
// re-exposure (AnalyzerOptions::ipa_max_depth).
IpaStats PropagateInterprocedural(const std::vector<IpaFunctionFacts>& facts,
                                  std::vector<FunctionInfo>& functions,
                                  const std::vector<std::string>& exports,
                                  bool is_executable, uint64_t entry_vaddr,
                                  int max_depth);

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_IPA_H_
