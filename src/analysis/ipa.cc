#include "src/analysis/ipa.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/analysis/footprint.h"
#include "src/disasm/insn.h"

namespace lapis::analysis {

namespace {

// System V argument registers, slot order matching IpaCallEdge::args.
constexpr uint8_t kArgRegs[6] = {disasm::kRdi, disasm::kRsi, disasm::kRdx,
                                 disasm::kRcx, disasm::kR8,  disasm::kR9};

int ArgSlot(uint8_t reg) {
  for (int s = 0; s < 6; ++s) {
    if (kArgRegs[s] == reg) {
      return s;
    }
  }
  return -1;
}

// Rewrites a summary value from the callee's argument space into the
// caller's value space under one call edge's bindings.
AbsVal EvalUnderEdge(const AbsVal& v, const IpaCallEdge& edge) {
  if (!v.is_arg()) {
    return v;
  }
  int slot = ArgSlot(static_cast<uint8_t>(v.value));
  if (slot < 0) {
    return AbsVal::Top();
  }
  return edge.args[slot];
}

bool IsNumberKind(IpaPendingSite::Kind kind) {
  return kind == IpaPendingSite::Kind::kSyscallNumber ||
         kind == IpaPendingSite::Kind::kPltSyscallNumber ||
         kind == IpaPendingSite::Kind::kInt80Number;
}

// A pending site re-exposed in some function's summary: the same global
// site record, with its deciding values rewritten into this function's
// argument space, `depth` wrapper hops away from the original site.
struct Exposure {
  uint32_t site_id = 0;
  AbsVal number;
  AbsVal op_rsi;
  AbsVal op_rdi;
  int depth = 0;
};

// Global per-site resolution state; flags are idempotent so a site that is
// unknown through several call paths is still counted exactly once.
struct SiteRecord {
  uint32_t owner = 0;  // function index owning the instruction
  IpaPendingSite::Kind kind = IpaPendingSite::Kind::kSyscallNumber;
  bool resolved_once = false;   // >= 1 call path pinned a constant
  bool number_unknown = false;  // counts as an unknown syscall site
  bool opcode_unknown = false;  // counts as an unknown opcode site
};

struct Edge {
  uint32_t callee = 0;
  const IpaCallEdge* bind = nullptr;
};

// Iterative Tarjan over the function-index call graph. Emits SCCs in
// completion order — every SCC only after all SCCs it can reach — which is
// exactly the callees-first order the summary pass needs. Deterministic
// given the (index-ordered) adjacency lists.
struct SccResult {
  std::vector<uint32_t> comp;            // node -> SCC id (emission order)
  std::vector<std::vector<uint32_t>> members;  // SCC id -> nodes (pop order)
  std::vector<bool> cyclic;              // SCC id -> nontrivial or self-loop
};

SccResult CondenseSccs(size_t n, const std::vector<std::vector<Edge>>& out) {
  SccResult r;
  r.comp.assign(n, UINT32_MAX);
  std::vector<uint32_t> index(n, UINT32_MAX);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  struct Frame {
    uint32_t node;
    size_t next_edge;
  };
  std::vector<Frame> frames;
  uint32_t next_index = 0;

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) {
      continue;
    }
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_edge < out[f.node].size()) {
        uint32_t w = out[f.node][f.next_edge++].callee;
        if (index[w] == UINT32_MAX) {
          frames.push_back({w, 0});
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        uint32_t v = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          uint32_t id = static_cast<uint32_t>(r.members.size());
          r.members.emplace_back();
          uint32_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            r.comp[w] = id;
            r.members[id].push_back(w);
          } while (w != v);
          bool self_loop = false;
          if (r.members[id].size() == 1) {
            for (const Edge& e : out[v]) {
              if (e.callee == v) {
                self_loop = true;
                break;
              }
            }
          }
          r.cyclic.push_back(r.members[id].size() > 1 || self_loop);
        }
      }
    }
  }
  return r;
}

}  // namespace

IpaStats PropagateInterprocedural(const std::vector<IpaFunctionFacts>& facts,
                                  std::vector<FunctionInfo>& functions,
                                  const std::vector<std::string>& exports,
                                  bool is_executable, uint64_t entry_vaddr,
                                  int max_depth) {
  IpaStats stats;
  const size_t n = functions.size();

  // vaddr -> function index, first definition wins (matching by_vaddr_).
  std::map<uint64_t, uint32_t> by_vaddr;
  for (uint32_t i = 0; i < n; ++i) {
    by_vaddr.emplace(functions[i].vaddr, i);
  }

  std::vector<std::vector<Edge>> out(n);
  std::vector<uint32_t> in_degree(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (const IpaCallEdge& e : facts[i].edges) {
      auto it = by_vaddr.find(e.callee_vaddr);
      if (it == by_vaddr.end()) {
        continue;
      }
      out[i].push_back({it->second, &e});
      ++in_degree[it->second];
      ++stats.call_graph_edges;
    }
  }

  // Global site records, in (function, site) collection order.
  std::vector<SiteRecord> sites;
  std::vector<uint32_t> first_site(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    first_site[i] = static_cast<uint32_t>(sites.size());
    for (const IpaPendingSite& s : facts[i].sites) {
      SiteRecord rec;
      rec.owner = i;
      rec.kind = s.kind;
      sites.push_back(rec);
    }
  }
  stats.pending_sites = sites.size();

  SccResult scc = CondenseSccs(n, out);

  // Attributes a resolved vectored opcode (or its absence) at the caller.
  auto attach_op = [](const AbsVal& op, std::set<uint32_t>& ops,
                      SiteRecord& rec) {
    if (op.is_const()) {
      ops.insert(static_cast<uint32_t>(op.value));
    } else {
      rec.opcode_unknown = true;
    }
  };

  std::vector<std::vector<Exposure>> summary(n);
  for (uint32_t id = 0; id < scc.members.size(); ++id) {
    const bool cyclic = scc.cyclic[id];
    for (uint32_t f : scc.members[id]) {
      if (cyclic) {
        // ⊤ at recursion: the function's own deferred sites are unknown
        // and nothing propagates through it.
        ++stats.cyclic_functions;
        for (size_t j = 0; j < facts[f].sites.size(); ++j) {
          SiteRecord& rec = sites[first_site[f] + j];
          if (IsNumberKind(rec.kind)) {
            rec.number_unknown = true;
          } else {
            rec.opcode_unknown = true;
          }
        }
      } else {
        for (size_t j = 0; j < facts[f].sites.size(); ++j) {
          const IpaPendingSite& s = facts[f].sites[j];
          summary[f].push_back(Exposure{first_site[f] + static_cast<uint32_t>(j),
                                        s.number, s.op_rsi, s.op_rdi, 0});
        }
      }
      for (const Edge& e : out[f]) {
        if (scc.comp[e.callee] == id) {
          continue;  // SCC-internal edge: the callee's sites are already ⊤'d
        }
        for (const Exposure& x : summary[e.callee]) {
          SiteRecord& rec = sites[x.site_id];
          AbsVal number = EvalUnderEdge(x.number, *e.bind);
          AbsVal rsi = EvalUnderEdge(x.op_rsi, *e.bind);
          AbsVal rdi = EvalUnderEdge(x.op_rdi, *e.bind);
          Footprint& fp = functions[f].local;
          if (IsNumberKind(rec.kind)) {
            if (number.is_const()) {
              int nr = static_cast<int>(number.value);
              if (rec.kind == IpaPendingSite::Kind::kInt80Number) {
                fp.int80_syscalls.insert(nr);
              } else {
                fp.syscalls.insert(nr);
              }
              rec.resolved_once = true;
              if (rec.kind == IpaPendingSite::Kind::kSyscallNumber) {
                // The number pins a vectored family: the opcode must be
                // decided here too (no further re-exposure for the mixed
                // const-number/argument-opcode case — sound, just counted).
                if (nr == kSysIoctl) {
                  attach_op(rsi, fp.ioctl_ops, rec);
                } else if (nr == kSysFcntl) {
                  attach_op(rsi, fp.fcntl_ops, rec);
                } else if (nr == kSysPrctl) {
                  attach_op(rdi, fp.prctl_ops, rec);
                }
              }
            } else if (number.is_arg() && !cyclic && x.depth + 1 <= max_depth) {
              summary[f].push_back(
                  Exposure{x.site_id, number, rsi, rdi, x.depth + 1});
            } else {
              rec.number_unknown = true;
            }
          } else {
            const AbsVal& op =
                rec.kind == IpaPendingSite::Kind::kPrctlOp ? rdi : rsi;
            if (op.is_const()) {
              uint32_t code = static_cast<uint32_t>(op.value);
              if (rec.kind == IpaPendingSite::Kind::kIoctlOp) {
                fp.ioctl_ops.insert(code);
              } else if (rec.kind == IpaPendingSite::Kind::kFcntlOp) {
                fp.fcntl_ops.insert(code);
              } else {
                fp.prctl_ops.insert(code);
              }
              rec.resolved_once = true;
            } else if (op.is_arg() && !cyclic && x.depth + 1 <= max_depth) {
              summary[f].push_back(
                  Exposure{x.site_id, number, rsi, rdi, x.depth + 1});
            } else {
              rec.opcode_unknown = true;
            }
          }
        }
      }
    }
  }

  // Sites still exposed where external callers can enter (or nobody calls
  // at all) stay unknown: the constant, if any, lives outside this binary.
  std::set<std::string> exported(exports.begin(), exports.end());
  for (uint32_t f = 0; f < n; ++f) {
    if (summary[f].empty()) {
      continue;
    }
    const bool open_to_outside =
        in_degree[f] == 0 || exported.contains(functions[f].name) ||
        (is_executable && functions[f].vaddr == entry_vaddr);
    if (!open_to_outside) {
      continue;
    }
    for (const Exposure& x : summary[f]) {
      SiteRecord& rec = sites[x.site_id];
      if (IsNumberKind(rec.kind)) {
        rec.number_unknown = true;
      } else {
        rec.opcode_unknown = true;
      }
    }
  }

  // Fold the per-site verdicts into the owners' footprints exactly once.
  for (const SiteRecord& rec : sites) {
    Footprint& fp = functions[rec.owner].local;
    if (IsNumberKind(rec.kind) && rec.number_unknown) {
      ++fp.unknown_syscall_sites;
      ++stats.unknown_syscall_sites_added;
    }
    if (rec.opcode_unknown) {
      ++fp.unknown_opcode_sites;
    }
    if (rec.number_unknown || rec.opcode_unknown) {
      ++stats.unresolved_sites;
    } else if (rec.resolved_once) {
      ++stats.resolved_sites;
    }
  }
  return stats;
}

}  // namespace lapis::analysis
