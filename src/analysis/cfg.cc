#include "src/analysis/cfg.h"

#include <map>

namespace lapis::analysis {

namespace {

using disasm::Insn;
using disasm::InsnKind;

// Control leaves the instruction sideways (never falls through for kJmpRel /
// kRet / kJmpIndirect; conditionally for kJccRel). The instruction after any
// of these starts a new block.
bool IsTerminator(const Insn& insn) {
  switch (insn.kind) {
    case InsnKind::kJmpRel:
    case InsnKind::kJccRel:
    case InsnKind::kRet:
    case InsnKind::kJmpIndirect:
      return true;
    default:
      return false;
  }
}

bool FallsThrough(const Insn& insn) {
  switch (insn.kind) {
    case InsnKind::kJmpRel:
    case InsnKind::kRet:
    case InsnKind::kJmpIndirect:
      return false;
    default:
      return true;  // kJccRel falls through on the not-taken path
  }
}

bool HasBranchTarget(const Insn& insn) {
  return insn.kind == InsnKind::kJmpRel || insn.kind == InsnKind::kJccRel;
}

}  // namespace

ControlFlowGraph ControlFlowGraph::Build(const disasm::SweepResult& sweep) {
  ControlFlowGraph cfg;
  const std::vector<Insn>& insns = sweep.insns;
  if (insns.empty()) {
    return cfg;
  }

  std::map<uint64_t, size_t> insn_at_vaddr;
  for (size_t i = 0; i < insns.size(); ++i) {
    insn_at_vaddr.emplace(insns[i].vaddr, i);
  }

  // ---- Leaders ----
  std::vector<bool> leader(insns.size(), false);
  cfg.is_branch_target_.assign(insns.size(), false);
  leader[0] = true;
  for (size_t i = 0; i < insns.size(); ++i) {
    if (HasBranchTarget(insns[i])) {
      auto it = insn_at_vaddr.find(insns[i].target);
      if (it != insn_at_vaddr.end()) {
        leader[it->second] = true;
        cfg.is_branch_target_[it->second] = true;
      }
    }
    if (IsTerminator(insns[i]) && i + 1 < insns.size()) {
      leader[i + 1] = true;
    }
  }

  // ---- Blocks ----
  cfg.block_of_insn_.assign(insns.size(), 0);
  for (size_t i = 0; i < insns.size(); ++i) {
    if (leader[i]) {
      BasicBlock block;
      block.first_insn = i;
      block.start_vaddr = insns[i].vaddr;
      cfg.blocks_.push_back(block);
    }
    BasicBlock& current = cfg.blocks_.back();
    ++current.insn_count;
    cfg.block_of_insn_[i] = static_cast<uint32_t>(cfg.blocks_.size() - 1);
  }

  // ---- Edges ----
  for (uint32_t b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& block = cfg.blocks_[b];
    const Insn& last = insns[block.first_insn + block.insn_count - 1];
    if (HasBranchTarget(last)) {
      auto it = insn_at_vaddr.find(last.target);
      if (it != insn_at_vaddr.end()) {
        block.succs.push_back(cfg.block_of_insn_[it->second]);
      }
    }
    if (FallsThrough(last) && b + 1 < cfg.blocks_.size()) {
      block.succs.push_back(b + 1);
    }
  }
  for (uint32_t b = 0; b < cfg.blocks_.size(); ++b) {
    for (uint32_t succ : cfg.blocks_[b].succs) {
      cfg.blocks_[succ].preds.push_back(b);
    }
  }
  return cfg;
}

}  // namespace lapis::analysis
