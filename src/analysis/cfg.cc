#include "src/analysis/cfg.h"

#include <algorithm>

namespace lapis::analysis {

namespace {

using disasm::Insn;
using disasm::InsnKind;

constexpr size_t kNoInsn = static_cast<size_t>(-1);

// Control leaves the instruction sideways (never falls through for kJmpRel /
// kRet / kJmpIndirect; conditionally for kJccRel). The instruction after any
// of these starts a new block.
bool IsTerminator(const Insn& insn) {
  switch (insn.kind) {
    case InsnKind::kJmpRel:
    case InsnKind::kJccRel:
    case InsnKind::kRet:
    case InsnKind::kJmpIndirect:
      return true;
    default:
      return false;
  }
}

bool FallsThrough(const Insn& insn) {
  switch (insn.kind) {
    case InsnKind::kJmpRel:
    case InsnKind::kRet:
    case InsnKind::kJmpIndirect:
      return false;
    default:
      return true;  // kJccRel falls through on the not-taken path
  }
}

bool HasBranchTarget(const Insn& insn) {
  return insn.kind == InsnKind::kJmpRel || insn.kind == InsnKind::kJccRel;
}

// Index of the instruction starting exactly at `vaddr`, or kNoInsn. A linear
// sweep decodes at strictly increasing addresses, so a binary search replaces
// the vaddr->index std::map the builder used to allocate per function.
size_t FindInsnAt(const std::vector<Insn>& insns, uint64_t vaddr) {
  auto it = std::lower_bound(
      insns.begin(), insns.end(), vaddr,
      [](const Insn& insn, uint64_t v) { return insn.vaddr < v; });
  if (it == insns.end() || it->vaddr != vaddr) {
    return kNoInsn;
  }
  return static_cast<size_t>(it - insns.begin());
}

}  // namespace

ControlFlowGraph ControlFlowGraph::Build(const disasm::SweepResult& sweep) {
  ControlFlowGraph cfg;
  BuildInto(sweep, cfg);
  return cfg;
}

void ControlFlowGraph::BuildInto(const disasm::SweepResult& sweep,
                                 ControlFlowGraph& cfg) {
  cfg.blocks_.clear();
  cfg.block_of_insn_.clear();
  cfg.is_branch_target_.clear();
  const std::vector<Insn>& insns = sweep.insns;
  if (insns.empty()) {
    return;
  }

  // ---- Branch targets ----
  cfg.is_branch_target_.resize(insns.size(), false);
  for (const Insn& insn : insns) {
    if (HasBranchTarget(insn)) {
      size_t target = FindInsnAt(insns, insn.target);
      if (target != kNoInsn) {
        cfg.is_branch_target_[target] = true;
      }
    }
  }

  // ---- Blocks ----
  // Leaders are the first instruction, every branch target, and every
  // instruction following a terminator; the latter is tracked on the fly.
  cfg.block_of_insn_.resize(insns.size(), 0);
  bool prev_was_terminator = false;
  for (size_t i = 0; i < insns.size(); ++i) {
    if (i == 0 || cfg.is_branch_target_[i] || prev_was_terminator) {
      BasicBlock block;
      block.first_insn = i;
      block.start_vaddr = insns[i].vaddr;
      cfg.blocks_.push_back(std::move(block));
    }
    BasicBlock& current = cfg.blocks_.back();
    ++current.insn_count;
    cfg.block_of_insn_[i] = static_cast<uint32_t>(cfg.blocks_.size() - 1);
    prev_was_terminator = IsTerminator(insns[i]);
  }

  // ---- Edges ----
  for (uint32_t b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& block = cfg.blocks_[b];
    const Insn& last = insns[block.first_insn + block.insn_count - 1];
    if (HasBranchTarget(last)) {
      size_t target = FindInsnAt(insns, last.target);
      if (target != kNoInsn) {
        block.succs.push_back(cfg.block_of_insn_[target]);
      }
    }
    if (FallsThrough(last) && b + 1 < cfg.blocks_.size()) {
      block.succs.push_back(b + 1);
    }
  }
  for (uint32_t b = 0; b < cfg.blocks_.size(); ++b) {
    for (uint32_t succ : cfg.blocks_[b].succs) {
      cfg.blocks_[succ].preds.push_back(b);
    }
  }
}

}  // namespace lapis::analysis
