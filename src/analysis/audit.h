// Footprint soundness auditor (paper §2.3: "we spot check that static
// analysis returns a superset of strace results" — here made a
// machine-checked, corpus-wide invariant).
//
// For each executable the auditor (a) resolves the full static footprint —
// entry-reachable code plus the import closure through every registered
// library — and (b) replays the same binary in the DynamicTracer, then
// differentially compares the two:
//
//   * soundness violation — an API observed during execution that the
//     static footprint neither claims nor excuses. This must never happen;
//     one violation means the analyzer confidently reported a wrong/partial
//     fact somewhere (e.g. the historical kJccRel state leak).
//   * masked by unknown sites — observed but statically absent, while the
//     footprint carries unknown-site counters of the same class: the
//     analyzer knew it lost track. Precision debt, not unsoundness.
//   * static-only APIs — claimed statically, never observed. Expected: one
//     concrete trace covers a single path through an over-approximation.
//
// The auditor runs with the same AnalyzerOptions as the study pipeline, so
// the `use_dataflow` ablation switch (and the methodology switches) are
// audited exactly as configured; `lapis_study --audit` and the
// bench_dataflow_precision benchmark report both modes side by side.

#ifndef LAPIS_SRC_ANALYSIS_AUDIT_H_
#define LAPIS_SRC_ANALYSIS_AUDIT_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/dynamic_trace.h"
#include "src/analysis/footprint.h"
#include "src/analysis/library_resolver.h"
#include "src/util/status.h"

namespace lapis::analysis {

// One observed-but-unclaimed API (a soundness violation).
struct AuditFinding {
  enum class ApiClass : uint8_t {
    kSyscall,
    kIoctlOp,
    kFcntlOp,
    kPrctlOp,
    kInt80Syscall,
    kPseudoPath,
  };
  ApiClass api_class = ApiClass::kSyscall;
  int64_t code = 0;   // syscall number / opcode (unused for paths)
  std::string path;   // pseudo path (kPseudoPath only)

  // "syscall 16 observed but not in static footprint".
  std::string Describe() const;
};

// Differential result for one executable.
struct BinaryAuditResult {
  std::string name;
  // Everything the dynamic replay actually touched (the trace's footprint).
  // Downstream planning separates these "must-implement" APIs from
  // claimed-but-never-observed "stub-safe" ones.
  Footprint observed;
  std::vector<AuditFinding> violations;
  size_t masked_by_unknown_sites = 0;  // observed, absent, but excused
  size_t static_only_apis = 0;         // over-approximation margin
  size_t observed_apis = 0;
  size_t static_apis = 0;
  size_t instructions_executed = 0;
  bool hit_step_limit = false;
  std::set<std::string> stubbed_imports;

  bool sound() const { return violations.empty(); }
};

// Corpus-wide aggregate. Fold per-binary results in canonical order so the
// report is deterministic at any worker count.
struct AuditReport {
  size_t executables_audited = 0;
  size_t soundness_violations = 0;
  size_t masked_by_unknown_sites = 0;
  size_t static_only_apis = 0;
  size_t observed_apis = 0;
  size_t traces_hit_step_limit = 0;
  // Union of every audited executable's observed footprint — the corpus-wide
  // dynamic-replay evidence the support planner consumes.
  Footprint observed_union;
  // Per-binary diagnostics for every binary with at least one violation.
  std::vector<BinaryAuditResult> flagged;

  void Fold(BinaryAuditResult result);
  bool sound() const { return soundness_violations == 0; }
  // One-paragraph human summary for the study banner / CLI.
  std::string Summary() const;
};

class FootprintAuditor {
 public:
  // Self-contained auditor: AddLibrary analyzes each library and registers
  // it on both the static (LibraryResolver) and dynamic (DynamicTracer)
  // sides. With an executor, per-export reachability fans out.
  explicit FootprintAuditor(AnalyzerOptions options = {},
                            runtime::Executor* executor = nullptr);

  // Shares a prebuilt resolver (must outlive the auditor and have been
  // built with the same analyzer options); AddLibrary then feeds only the
  // tracer side. Saves re-deriving per-export reachability when the study
  // pipeline already holds a fully-registered resolver.
  FootprintAuditor(const LibraryResolver* resolver, AnalyzerOptions options,
                   runtime::Executor* executor = nullptr);

  Status AddLibrary(std::shared_ptr<const elf::ElfImage> library);

  // Analyzes, resolves, traces, and compares one executable. Safe to call
  // concurrently once every library is registered.
  Result<BinaryAuditResult> AuditExecutable(const elf::ElfImage& executable,
                                            const std::string& name) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
  const LibraryResolver* resolver_ = nullptr;  // shared or &owned_resolver_
  LibraryResolver owned_resolver_;
  DynamicTracer tracer_;
};

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_AUDIT_H_
