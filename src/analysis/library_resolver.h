// Cross-binary footprint resolution (paper §7).
//
// Executables rarely make system calls directly — they call library exports
// (mostly libc) that do. LibraryResolver holds the per-export reachability
// results of every registered shared library and resolves a binary's full
// footprint by fixpoint over the imported-symbol graph:
//
//   exe entry ──reach──▶ plt calls ──▶ (lib, export) ──reach──▶ plt calls ─▶ …
//
// The result also records which exports of which library were touched; the
// libc slice of that drives the libc-importance study (§3.5) and the libc
// variant evaluation (Table 7).

#ifndef LAPIS_SRC_ANALYSIS_LIBRARY_RESOLVER_H_
#define LAPIS_SRC_ANALYSIS_LIBRARY_RESOLVER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/binary_analyzer.h"
#include "src/util/status.h"
#include "src/util/string_pool.h"

namespace lapis::analysis {

class LibraryResolver {
 public:
  // With an executor, AddLibrary fans per-export reachability out across
  // worker shards (libc registers 1,274 exports); resolution results are
  // identical either way. Registration itself stays single-threaded; the
  // const Resolve* methods are safe to call concurrently once every
  // library is registered.
  explicit LibraryResolver(runtime::Executor* executor = nullptr)
      : executor_(executor) {}

  using ExportReach = std::map<std::string, BinaryAnalysis::ReachableResult>;

  // Registers an analyzed shared library under its soname; precomputes and
  // memoizes per-export reachability. First registration of a symbol wins
  // (mirrors linker search order).
  Status AddLibrary(std::shared_ptr<const BinaryAnalysis> library);

  // Same, but with per-export reachability already computed (a warm-cache
  // hit decodes it instead of recomputing; libc alone has 1,274 exports).
  Status AddLibrary(std::shared_ptr<const BinaryAnalysis> library,
                    ExportReach export_reach);

  // The memoized per-export reachability of a registered library, for cache
  // write-back. nullptr if the soname is not registered.
  const ExportReach* ExportReachOf(const std::string& soname) const;

  struct Resolution {
    Footprint footprint;
    // Exports actually pulled in, grouped by soname. The "libc.so.6" slice
    // is each package's libc API footprint.
    std::map<std::string, std::set<std::string>> used_exports;
    // Imported symbols no registered library exports.
    std::set<std::string> unresolved_imports;
    size_t reachable_function_count = 0;
  };

  // Full footprint of an executable: entry-reachable code plus the closure
  // of everything it (transitively) imports.
  Resolution ResolveExecutable(const BinaryAnalysis& exe) const;

  // Closure starting from a set of symbol names (used for interpreter
  // packages, where the interpreter's public entry points over-approximate
  // the scripts' footprints — paper §2.3).
  Resolution ResolveFromSymbols(const std::vector<std::string>& symbols) const;

  // Closure over every export of one registered library (the library's own
  // total footprint; used for site attribution, not package footprints).
  Result<Resolution> ResolveWholeLibrary(const std::string& soname) const;

  size_t library_count() const { return libraries_.size(); }
  const std::vector<std::string>& sonames() const { return sonames_; }

  // The registered library exporting `symbol`, or empty string.
  std::string ExporterOf(const std::string& symbol) const;

 private:
  struct LibEntry {
    std::shared_ptr<const BinaryAnalysis> analysis;
    ExportReach export_reach;
  };

  // Id-keyed view of one export's memoized reachability. `reach` points into
  // a LibEntry's map (std::map nodes are address-stable); `plt_call_ids` are
  // the interned ids of reach->plt_calls so the Expand fixpoint never touches
  // a std::string.
  struct ReachRef {
    const BinaryAnalysis::ReachableResult* reach = nullptr;
    uint32_t soname_index = 0;
    std::vector<uint32_t> plt_call_ids;
  };

  void Expand(const std::set<std::string>& initial_symbols,
              Resolution& resolution) const;

  runtime::Executor* executor_ = nullptr;
  std::map<std::string, LibEntry> libraries_;  // by soname
  std::vector<std::string> sonames_;
  // Symbol interner. Registration is single-threaded and in canonical
  // library order, so ids are deterministic; they never leak into exports.
  StringPool symbols_;
  // Dense symbol id -> index into reach_refs_, or kNoRef. First registration
  // of a symbol wins (linker search order).
  std::vector<uint32_t> ref_of_symbol_;
  std::vector<ReachRef> reach_refs_;
  static constexpr uint32_t kNoRef = 0xffffffffu;
};

}  // namespace lapis::analysis

#endif  // LAPIS_SRC_ANALYSIS_LIBRARY_RESOLVER_H_
