#include "src/analysis/dynamic_trace.h"

#include <vector>

#include "src/disasm/decoder.h"
#include "src/util/strings.h"

namespace lapis::analysis {

namespace {

using disasm::Insn;
using disasm::InsnKind;

// A concrete-or-unknown register value, tagged with the image its address
// points into (each ET_DYN library has its own address space at base 0).
struct Val {
  bool known = false;
  int64_t value = 0;
  const elf::ElfImage* space = nullptr;
};

struct Machine {
  Val regs[16];

  void ClobberCallerSaved() {
    static constexpr uint8_t kVolatile[] = {0, 1, 2, 6, 7, 8, 9, 10, 11};
    for (uint8_t r : kVolatile) {
      regs[r] = Val{};
    }
  }
};

// Reads the pseudo path a register points to, if any.
void MaybeRecordPath(const Val& reg, Footprint& observed) {
  if (!reg.known || reg.space == nullptr) {
    return;
  }
  auto s = reg.space->CStringAtVaddr(static_cast<uint64_t>(reg.value));
  if (s.has_value() && lapis::IsPseudoFilePath(*s)) {
    observed.pseudo_paths.insert(lapis::CanonicalizePseudoPath(*s));
  }
}

}  // namespace

Status DynamicTracer::AddLibrary(
    std::shared_ptr<const elf::ElfImage> library) {
  if (library == nullptr || !library->IsSharedLibrary()) {
    return InvalidArgumentError("tracer libraries must be shared objects");
  }
  for (const auto* symbol : library->ExportedFunctions()) {
    exports_.emplace(symbol->name,
                     ExportSite{library.get(), symbol->value});
  }
  libraries_.push_back(std::move(library));
  return Status::Ok();
}

Result<TraceResult> DynamicTracer::Trace(
    const elf::ElfImage& executable) const {
  if (!executable.IsExecutable()) {
    return InvalidArgumentError("tracer entry point must be an executable");
  }
  TraceResult result;
  Machine machine;

  struct Frame {
    const elf::ElfImage* image;
    uint64_t return_vaddr;
  };
  std::vector<Frame> stack;
  const elf::ElfImage* image = &executable;
  uint64_t pc = executable.entry();

  // Returns from the current frame; false if the call stack is empty.
  auto do_return = [&]() {
    if (stack.empty()) {
      return false;
    }
    image = stack.back().image;
    pc = stack.back().return_vaddr;
    stack.pop_back();
    return true;
  };

  // Handles a call/jump that resolved to the imported symbol `name`:
  // either transfers control into a registered library or simulates a
  // stub. `is_call` distinguishes call sites from PLT trampoline jumps.
  auto enter_import = [&](const std::string& name, uint64_t return_vaddr,
                          bool is_call) {
    auto target = exports_.find(name);
    if (target != exports_.end()) {
      if (is_call) {
        stack.push_back(Frame{image, return_vaddr});
      }
      ++result.calls_followed;
      image = target->second.image;
      pc = target->second.vaddr;
      return true;
    }
    // Unresolved: simulate a stub with the static analyzer's semantics for
    // the syscall-family wrappers, then return to the caller.
    result.stubbed_imports.insert(name);
    if (name == "ioctl" && machine.regs[disasm::kRsi].known) {
      result.observed.ioctl_ops.insert(
          static_cast<uint32_t>(machine.regs[disasm::kRsi].value));
    } else if ((name == "fcntl" || name == "fcntl64") &&
               machine.regs[disasm::kRsi].known) {
      result.observed.fcntl_ops.insert(
          static_cast<uint32_t>(machine.regs[disasm::kRsi].value));
    } else if (name == "prctl" && machine.regs[disasm::kRdi].known) {
      result.observed.prctl_ops.insert(
          static_cast<uint32_t>(machine.regs[disasm::kRdi].value));
    } else if (name == "syscall" && machine.regs[disasm::kRdi].known) {
      result.observed.syscalls.insert(
          static_cast<int>(machine.regs[disasm::kRdi].value));
    } else if (name == "open" || name == "fopen") {
      MaybeRecordPath(machine.regs[disasm::kRdi], result.observed);
    } else if (name == "sprintf") {
      MaybeRecordPath(machine.regs[disasm::kRsi], result.observed);
    }
    machine.ClobberCallerSaved();
    machine.regs[disasm::kRax] = Val{true, 0, nullptr};  // stub returns 0
    if (is_call) {
      pc = return_vaddr;
      return true;
    }
    return do_return();  // jmp into a stub: unwind to the caller
  };

  while (result.instructions_executed < step_limit_) {
    auto bytes = image->SpanFrom(pc);
    if (bytes.empty()) {
      return InternalError("trace fell off mapped sections");
    }
    auto decoded = disasm::DecodeOne(bytes, pc);
    if (!decoded.ok()) {
      return InternalError("trace hit undecodable bytes: " +
                           decoded.status().message());
    }
    const Insn& insn = decoded.value();
    ++result.instructions_executed;
    uint64_t next = pc + insn.length;
    bool advance = true;

    switch (insn.kind) {
      case InsnKind::kMovRegImm:
        machine.regs[insn.reg] = Val{true, insn.imm, nullptr};
        break;
      case InsnKind::kXorRegReg:
        machine.regs[insn.reg] = Val{true, 0, nullptr};
        break;
      case InsnKind::kMovRegReg:
        machine.regs[insn.reg] = machine.regs[insn.reg2];
        break;
      case InsnKind::kLeaRipRel:
        machine.regs[insn.reg] =
            Val{true, static_cast<int64_t>(insn.target), image};
        break;
      case InsnKind::kSyscall:
      case InsnKind::kSysenter: {
        const Val& rax = machine.regs[disasm::kRax];
        if (!rax.known) {
          ++result.observed.unknown_syscall_sites;
          break;
        }
        int nr = static_cast<int>(rax.value);
        result.observed.syscalls.insert(nr);
        auto record_op = [&](uint8_t reg, std::set<uint32_t>& ops) {
          if (machine.regs[reg].known) {
            ops.insert(static_cast<uint32_t>(machine.regs[reg].value));
          }
        };
        if (nr == kSysIoctl) {
          record_op(disasm::kRsi, result.observed.ioctl_ops);
        } else if (nr == kSysFcntl) {
          record_op(disasm::kRsi, result.observed.fcntl_ops);
        } else if (nr == kSysPrctl) {
          record_op(disasm::kRdi, result.observed.prctl_ops);
        } else if (nr == 2 /* open */) {
          MaybeRecordPath(machine.regs[disasm::kRdi], result.observed);
        } else if (nr == 257 /* openat */) {
          MaybeRecordPath(machine.regs[disasm::kRsi], result.observed);
        }
        // The kernel clobbers rax (return value) and rcx/r11.
        machine.regs[disasm::kRax] = Val{true, 0, nullptr};
        machine.regs[disasm::kRcx] = Val{};
        machine.regs[disasm::kR11] = Val{};
        break;
      }
      case InsnKind::kInt:
        if ((insn.imm & 0xff) == 0x80) {
          ++result.observed.int80_sites;
          if (machine.regs[disasm::kRax].known) {
            result.observed.int80_syscalls.insert(
                static_cast<int>(machine.regs[disasm::kRax].value));
          }
          machine.regs[disasm::kRax] = Val{true, 0, nullptr};
        }
        break;
      case InsnKind::kCallRel32: {
        auto plt_symbol = image->ResolvePltCall(insn.target);
        if (plt_symbol.has_value()) {
          if (!enter_import(*plt_symbol, next, /*is_call=*/true)) {
            return result;
          }
        } else {
          stack.push_back(Frame{image, next});
          ++result.calls_followed;
          pc = insn.target;
        }
        advance = false;
        break;
      }
      case InsnKind::kJmpRel: {
        auto plt_symbol = image->ResolvePltCall(insn.target);
        if (plt_symbol.has_value()) {
          if (!enter_import(*plt_symbol, next, /*is_call=*/false)) {
            return result;
          }
        } else {
          pc = insn.target;
        }
        advance = false;
        break;
      }
      case InsnKind::kJccRel:
        // Generated code carries no conditional control flow that changes
        // API behaviour; take the fall-through path.
        break;
      case InsnKind::kJmpIndirect: {
        // A PLT trampoline: `jmp *[rip + got]`. Resolve by stub address.
        auto plt_symbol = image->ResolvePltCall(insn.vaddr);
        if (!plt_symbol.has_value()) {
          return result;  // unknown indirect target: halt this path
        }
        if (!enter_import(*plt_symbol, 0, /*is_call=*/false)) {
          return result;
        }
        advance = false;
        break;
      }
      case InsnKind::kCallIndirect:
        ++result.observed.indirect_call_sites;
        machine.ClobberCallerSaved();
        break;
      case InsnKind::kRet:
        if (!do_return()) {
          return result;  // returned from _start: program exit
        }
        advance = false;
        break;
      case InsnKind::kNop:
        break;
      case InsnKind::kOther:
        // Unmodeled instruction (e.g. the obfuscated `add eax, imm`):
        // conservatively forget rax, mirroring the static analyzer.
        machine.regs[disasm::kRax] = Val{};
        break;
    }
    if (advance) {
      pc = next;
    }
  }
  result.hit_step_limit = true;
  return result;
}

}  // namespace lapis::analysis
