#include "src/util/string_pool.h"

#include <mutex>

namespace lapis {

uint32_t StringPool::Intern(std::string_view s) {
  {
    std::shared_lock lock(mutex_);
    auto it = ids_.find(s);
    if (it != ids_.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto it = ids_.find(s);  // racer may have interned it meanwhile
  if (it != ids_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(std::string_view(names_.back()), id);
  payload_bytes_ += s.size();
  return id;
}

uint32_t StringPool::Find(std::string_view s) const {
  std::shared_lock lock(mutex_);
  auto it = ids_.find(s);
  return it == ids_.end() ? kNotFound : it->second;
}

std::string_view StringPool::NameOf(uint32_t id) const {
  std::shared_lock lock(mutex_);
  return names_[id];
}

size_t StringPool::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

size_t StringPool::payload_bytes() const {
  std::shared_lock lock(mutex_);
  return payload_bytes_;
}

}  // namespace lapis
