// Lightweight error-handling primitives used throughout lapis.
//
// lapis avoids exceptions on hot analysis paths; fallible operations return
// Status (or Result<T>) and callers propagate with LAPIS_RETURN_IF_ERROR /
// LAPIS_ASSIGN_OR_RETURN.

#ifndef LAPIS_SRC_UTIL_STATUS_H_
#define LAPIS_SRC_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace lapis {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCorruptData,
  kUnimplemented,
  kInternal,
  kIoError,
  kUnavailable,  // transient overload/busy: safe to retry with backoff
};

// Returns a stable human-readable name, e.g. "CORRUPT_DATA".
const char* StatusCodeName(StatusCode code);

// A success-or-error value: code plus a context message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CORRUPT_DATA: bad magic" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status CorruptDataError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status UnavailableError(std::string message);

// Holds either a T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(value_);
  }

  // Precondition: ok().
  T& value() { return std::get<T>(value_); }
  const T& value() const { return std::get<T>(value_); }

  // Moves the value out, returning by value so `for (auto& x : r.take())`
  // over a temporary Result is lifetime-safe. Precondition: ok().
  T take() { return std::move(std::get<T>(value_)); }

  T value_or(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> value_;
};

#define LAPIS_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::lapis::Status lapis_status_ = (expr);  \
    if (!lapis_status_.ok()) {               \
      return lapis_status_;                  \
    }                                        \
  } while (0)

#define LAPIS_CONCAT_INNER_(a, b) a##b
#define LAPIS_CONCAT_(a, b) LAPIS_CONCAT_INNER_(a, b)

#define LAPIS_ASSIGN_OR_RETURN(lhs, expr)                           \
  auto LAPIS_CONCAT_(lapis_result_, __LINE__) = (expr);             \
  if (!LAPIS_CONCAT_(lapis_result_, __LINE__).ok()) {               \
    return LAPIS_CONCAT_(lapis_result_, __LINE__).status();         \
  }                                                                 \
  lhs = LAPIS_CONCAT_(lapis_result_, __LINE__).take()

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_STATUS_H_
