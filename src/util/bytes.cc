#include "src/util/bytes.h"

namespace lapis {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutBytes(std::span<const uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void ByteWriter::PutString(std::string_view s) {
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::PutCString(std::string_view s) {
  PutString(s);
  PutU8(0);
}

void ByteWriter::PutLengthPrefixedString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutString(s);
}

void ByteWriter::AlignTo(size_t alignment) {
  if (alignment == 0) {
    return;
  }
  while (bytes_.size() % alignment != 0) {
    bytes_.push_back(0);
  }
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void ByteWriter::PatchU64(size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

Status ByteReader::Seek(size_t position) {
  if (position > data_.size()) {
    return OutOfRangeError("seek past end of buffer");
  }
  pos_ = position;
  return Status::Ok();
}

Status ByteReader::Skip(size_t count) {
  if (count > remaining()) {
    return OutOfRangeError("skip past end of buffer");
  }
  pos_ += count;
  return Status::Ok();
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) {
    return OutOfRangeError("read past end of buffer");
  }
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  if (remaining() < 2) {
    return OutOfRangeError("read past end of buffer");
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) {
    return OutOfRangeError("read past end of buffer");
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) {
    return OutOfRangeError("read past end of buffer");
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
  }
  pos_ += 8;
  return v;
}

Result<int32_t> ByteReader::ReadI32() {
  LAPIS_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> ByteReader::ReadI64() {
  LAPIS_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes(size_t count) {
  if (count > remaining()) {
    return OutOfRangeError("read past end of buffer");
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

Result<std::string> ByteReader::ReadLengthPrefixedString() {
  LAPIS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  if (len > remaining()) {
    return CorruptDataError("string length exceeds buffer");
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Result<std::string> ByteReader::ReadCStringAt(size_t offset) const {
  if (offset >= data_.size()) {
    return OutOfRangeError("cstring offset past end of buffer");
  }
  size_t end = offset;
  while (end < data_.size() && data_[end] != 0) {
    ++end;
  }
  if (end == data_.size()) {
    return CorruptDataError("unterminated cstring");
  }
  return std::string(reinterpret_cast<const char*>(data_.data() + offset),
                     end - offset);
}

}  // namespace lapis
