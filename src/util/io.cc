#include "src/util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/util/fault.h"

namespace lapis {
namespace io {

namespace {

fault::Site OpenSite(Profile profile) {
  return profile == Profile::kCacheIo ? fault::Site::kCacheOpen
                                      : fault::Site::kArtifactOpen;
}
fault::Site ReadSite(Profile profile) {
  return profile == Profile::kCacheIo ? fault::Site::kCacheRead
                                      : fault::Site::kArtifactRead;
}
fault::Site WriteSite(Profile profile) {
  return profile == Profile::kCacheIo ? fault::Site::kCacheWrite
                                      : fault::Site::kArtifactWrite;
}
fault::Site SyncSite(Profile profile) {
  return profile == Profile::kCacheIo ? fault::Site::kCacheSync
                                      : fault::Site::kArtifactSync;
}

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  std::string message = op + " " + path + ": " + std::strerror(err);
  if (err == ENOENT) {
    return NotFoundError(std::move(message));
  }
  return IoError(std::move(message));
}

}  // namespace

// Opens with injected open-site faults mapped to errno failures.
Result<File> File::OpenWithFlags(const std::string& path, int flags,
                                 Profile profile) {
  fault::Site site = OpenSite(profile);
  for (;;) {
    fault::Injected injected = fault::Check(site, 0);
    switch (injected.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kEintr:
        continue;  // retry, like a real interrupted open(2)
      default:
        return ErrnoStatus("open", path, fault::InjectedErrno(injected.kind));
    }
    int fd;
    do {
      fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return ErrnoStatus("open", path, errno);
    }
    return File(fd, path, profile);
  }
}

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), profile_(other.profile_) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    profile_ = other.profile_;
    other.fd_ = -1;
  }
  return *this;
}

File::~File() { Close(); }

void File::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<File> File::OpenAppend(const std::string& path, Profile profile) {
  return OpenWithFlags(path, O_WRONLY | O_CREAT | O_APPEND, profile);
}

Result<File> File::OpenRead(const std::string& path, Profile profile) {
  return OpenWithFlags(path, O_RDONLY, profile);
}

Result<File> File::CreateTruncated(const std::string& path, Profile profile) {
  return OpenWithFlags(path, O_WRONLY | O_CREAT | O_TRUNC, profile);
}

Status File::WriteAll(const void* data, size_t len) {
  if (fd_ < 0) {
    return FailedPreconditionError("write on closed file " + path_);
  }
  const uint8_t* cursor = static_cast<const uint8_t*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    fault::Injected injected = fault::Check(WriteSite(profile_), remaining);
    size_t attempt = remaining;
    bool fail_after = false;
    std::string fail_message;
    switch (injected.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kEintr:
        continue;  // retry the op, as the EINTR loop in real code would
      case fault::Kind::kEio:
      case fault::Kind::kEnospc:
        return ErrnoStatus("write", path_, fault::InjectedErrno(injected.kind));
      case fault::Kind::kShort:
        // A prefix lands on disk, then the write fails — the torn state a
        // half-written record leaves behind.
        attempt = injected.short_bytes;
        fail_after = true;
        fail_message = "short write (" + std::to_string(injected.short_bytes) +
                       " of " + std::to_string(remaining) + " bytes) to " +
                       path_;
        break;
      case fault::Kind::kCrash:
        attempt = injected.short_bytes < remaining ? injected.short_bytes
                                                   : remaining;
        fail_after = true;
        fail_message = "simulated crash after writing " +
                       std::to_string(attempt) + " bytes to " + path_;
        break;
    }
    while (attempt > 0) {
      ssize_t n = ::write(fd_, cursor, attempt);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("write", path_, errno);
      }
      cursor += n;
      attempt -= static_cast<size_t>(n);
      remaining -= static_cast<size_t>(n);
    }
    if (fail_after) {
      return IoError(std::move(fail_message));
    }
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> File::ReadToEnd() {
  if (fd_ < 0) {
    return FailedPreconditionError("read on closed file " + path_);
  }
  std::vector<uint8_t> bytes;
  constexpr size_t kChunk = 1 << 20;
  for (;;) {
    fault::Injected injected = fault::Check(ReadSite(profile_), kChunk);
    switch (injected.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kEintr:
        continue;
      case fault::Kind::kShort:
        // Simulates a torn/truncated file: the caller sees a clean EOF
        // after a prefix and must treat the tail as missing.
        return bytes;
      default:
        return ErrnoStatus("read", path_, fault::InjectedErrno(injected.kind));
    }
    size_t old_size = bytes.size();
    bytes.resize(old_size + kChunk);
    ssize_t n = ::read(fd_, bytes.data() + old_size, kChunk);
    if (n < 0) {
      if (errno == EINTR) {
        bytes.resize(old_size);
        continue;
      }
      return ErrnoStatus("read", path_, errno);
    }
    bytes.resize(old_size + static_cast<size_t>(n));
    if (n == 0) {
      return bytes;
    }
  }
}

Status File::Sync() {
  if (fd_ < 0) {
    return FailedPreconditionError("fsync on closed file " + path_);
  }
  for (;;) {
    fault::Injected injected = fault::Check(SyncSite(profile_), 0);
    switch (injected.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kEintr:
        continue;
      default:
        return ErrnoStatus("fsync", path_, fault::InjectedErrno(injected.kind));
    }
    if (::fsync(fd_) != 0) {
      return ErrnoStatus("fsync", path_, errno);
    }
    return Status::Ok();
  }
}

Status File::Truncate(uint64_t len) {
  if (fd_ < 0) {
    return FailedPreconditionError("ftruncate on closed file " + path_);
  }
  for (;;) {
    // Repair I/O is still I/O: a crashed "process" cannot truncate either,
    // so this routes through the write site.
    fault::Injected injected = fault::Check(WriteSite(profile_), 0);
    switch (injected.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kEintr:
        continue;
      default:
        return ErrnoStatus("ftruncate", path_,
                           fault::InjectedErrno(injected.kind));
    }
    if (::ftruncate(fd_, static_cast<off_t>(len)) != 0) {
      return ErrnoStatus("ftruncate", path_, errno);
    }
    return Status::Ok();
  }
}

Result<uint64_t> File::Size() const {
  if (fd_ < 0) {
    return FailedPreconditionError("fstat on closed file " + path_);
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return ErrnoStatus("fstat", path_, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path,
                                           Profile profile) {
  LAPIS_ASSIGN_OR_RETURN(File file, File::OpenRead(path, profile));
  return file.ReadToEnd();
}

Status AtomicWriteFile(const std::string& path, const void* data, size_t len) {
  std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  Status status = [&]() -> Status {
    LAPIS_ASSIGN_OR_RETURN(
        File file, File::CreateTruncated(tmp_path, Profile::kArtifactIo));
    LAPIS_RETURN_IF_ERROR(file.WriteAll(data, len));
    LAPIS_RETURN_IF_ERROR(file.Sync());
    file.Close();

    fault::Injected injected = fault::Check(fault::Site::kArtifactRename, 0);
    while (injected.kind == fault::Kind::kEintr) {
      injected = fault::Check(fault::Site::kArtifactRename, 0);
    }
    if (injected.kind != fault::Kind::kNone) {
      return ErrnoStatus("rename", path, fault::InjectedErrno(injected.kind));
    }
    if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
      return ErrnoStatus("rename", path, errno);
    }

    // Durability of the rename itself: fsync the containing directory.
    // Best-effort — some filesystems reject directory fsync.
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
    return Status::Ok();
  }();
  if (!status.ok()) {
    // A real dead process leaves its temp file behind; only clean up when
    // the failure was an ordinary error.
    if (!(fault::Enabled() && fault::GlobalStats().crashed)) {
      ::unlink(tmp_path.c_str());
    }
  }
  return status;
}

}  // namespace io
}  // namespace lapis
