// Little-endian byte buffer reader/writer.
//
// Used by the ELF reader/writer, the x86-64 encoder, and the database
// serializer. All multi-byte integers are little-endian (ELF64 x86-64 and our
// on-disk formats share that convention).

#ifndef LAPIS_SRC_UTIL_BYTES_H_
#define LAPIS_SRC_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace lapis {

// Append-only little-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBytes(std::span<const uint8_t> data);
  void PutString(std::string_view s);        // raw bytes, no terminator
  void PutCString(std::string_view s);       // bytes + NUL
  void PutLengthPrefixedString(std::string_view s);  // u32 length + bytes

  // Pad with zero bytes until size() % alignment == 0.
  void AlignTo(size_t alignment);

  // Overwrite previously-written bytes (for back-patching offsets).
  void PatchU32(size_t offset, uint32_t v);
  void PatchU64(size_t offset, uint64_t v);

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Bounds-checked little-endian byte source over a non-owning span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

  Status Seek(size_t position);
  Status Skip(size_t count);

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<std::vector<uint8_t>> ReadBytes(size_t count);
  Result<std::string> ReadLengthPrefixedString();

  // Reads a NUL-terminated string starting at absolute `offset` without
  // moving the cursor. Fails if no NUL before end of data.
  Result<std::string> ReadCStringAt(size_t offset) const;

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_BYTES_H_
