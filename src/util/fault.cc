#include "src/util/fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lapis {
namespace fault {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct SiteEntry {
  const char* name;
  Site site;
};

constexpr SiteEntry kSites[] = {
    {"cache_open", Site::kCacheOpen},
    {"cache_read", Site::kCacheRead},
    {"cache_write", Site::kCacheWrite},
    {"cache_sync", Site::kCacheSync},
    {"artifact_open", Site::kArtifactOpen},
    {"artifact_read", Site::kArtifactRead},
    {"artifact_write", Site::kArtifactWrite},
    {"artifact_sync", Site::kArtifactSync},
    {"artifact_rename", Site::kArtifactRename},
    {"sock_read", Site::kSockRead},
    {"sock_write", Site::kSockWrite},
};

struct KindEntry {
  const char* name;
  Kind kind;
};

constexpr KindEntry kKinds[] = {
    {"eintr", Kind::kEintr},   {"eio", Kind::kEio},
    {"enospc", Kind::kEnospc}, {"short", Kind::kShort},
    {"crash", Kind::kCrash},
};

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const char* SiteName(Site site) {
  for (const SiteEntry& entry : kSites) {
    if (entry.site == site) {
      return entry.name;
    }
  }
  return "unknown";
}

const char* KindName(Kind kind) {
  for (const KindEntry& entry : kKinds) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "none";
}

int InjectedErrno(Kind kind) {
  switch (kind) {
    case Kind::kEintr:
      return EINTR;
    case Kind::kEnospc:
      return ENOSPC;
    default:
      return EIO;
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::ParseClause(const std::string& text, Clause* out) {
  size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) {
    return InvalidArgumentError("fault clause needs 'site:kind...': " + text);
  }
  std::string site_str = text.substr(0, colon);
  std::string rest = text.substr(colon + 1);

  Clause clause;
  if (site_str == "*") {
    clause.all_sites = true;
  } else {
    bool found = false;
    for (const SiteEntry& entry : kSites) {
      if (site_str == entry.name) {
        clause.site = entry.site;
        found = true;
        break;
      }
    }
    if (!found) {
      return InvalidArgumentError("unknown fault site: " + site_str);
    }
  }

  size_t sep = rest.find_first_of("@~#");
  if (sep == std::string::npos || sep == 0 || sep + 1 >= rest.size()) {
    return InvalidArgumentError(
        "fault clause needs a trigger (@N, @N+, ~P, or #N): " + text);
  }
  std::string kind_str = rest.substr(0, sep);
  char trigger_char = rest[sep];
  std::string arg = rest.substr(sep + 1);

  bool found_kind = false;
  for (const KindEntry& entry : kKinds) {
    if (kind_str == entry.name) {
      clause.kind = entry.kind;
      found_kind = true;
      break;
    }
  }
  if (!found_kind) {
    return InvalidArgumentError("unknown fault kind: " + kind_str);
  }

  switch (trigger_char) {
    case '@': {
      if (!arg.empty() && arg.back() == '+') {
        clause.trigger = Clause::Trigger::kFromIndex;
        arg.pop_back();
      } else {
        clause.trigger = Clause::Trigger::kAtIndex;
      }
      if (!ParseUint64(arg, &clause.index)) {
        return InvalidArgumentError("bad fault op index: " + text);
      }
      break;
    }
    case '~': {
      clause.trigger = Clause::Trigger::kProbability;
      char* end = nullptr;
      clause.probability = std::strtod(arg.c_str(), &end);
      if (end == arg.c_str() || *end != '\0' || clause.probability < 0.0 ||
          clause.probability > 1.0) {
        return InvalidArgumentError("bad fault probability: " + text);
      }
      break;
    }
    case '#': {
      if (clause.kind != Kind::kCrash) {
        return InvalidArgumentError(
            "#N (cumulative-byte) trigger is only valid for crash: " + text);
      }
      clause.trigger = Clause::Trigger::kCrashBytes;
      if (!ParseUint64(arg, &clause.crash_bytes)) {
        return InvalidArgumentError("bad crash byte offset: " + text);
      }
      break;
    }
    default:
      return InvalidArgumentError("bad fault trigger: " + text);
  }

  *out = clause;
  return Status::Ok();
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  std::vector<Clause> clauses;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    std::string clause_text = spec.substr(start, end - start);
    if (!clause_text.empty()) {
      Clause clause;
      LAPIS_RETURN_IF_ERROR(ParseClause(clause_text, &clause));
      clauses.push_back(clause);
    }
    start = end + 1;
  }

  std::lock_guard<std::mutex> lock(mu_);
  clauses_ = std::move(clauses);
  std::memset(op_index_, 0, sizeof(op_index_));
  std::memset(site_bytes_, 0, sizeof(site_bytes_));
  clause_bytes_.assign(clauses_.size(), 0);
  prng_ = Prng(seed);
  stats_ = FaultStats{};
  internal::g_enabled.store(!clauses_.empty(), std::memory_order_relaxed);
  return Status::Ok();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  clauses_.clear();
  clause_bytes_.clear();
  std::memset(op_index_, 0, sizeof(op_index_));
  std::memset(site_bytes_, 0, sizeof(site_bytes_));
  stats_ = FaultStats{};
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

Injected FaultInjector::OnOp(Site site, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.ops_observed;
  if (stats_.crashed) {
    // The simulated process is dead: nothing — not even repair I/O like
    // ftruncate or rename — succeeds from here on.
    ++stats_.eio_injected;
    return Injected{Kind::kEio, 0};
  }
  size_t site_idx = static_cast<size_t>(site);
  uint64_t index = op_index_[site_idx]++;
  site_bytes_[site_idx] += bytes;

  for (size_t i = 0; i < clauses_.size(); ++i) {
    const Clause& clause = clauses_[i];
    if (!clause.all_sites && clause.site != site) {
      continue;
    }
    Injected result;
    switch (clause.trigger) {
      case Clause::Trigger::kAtIndex:
        if (index != clause.index) {
          continue;
        }
        break;
      case Clause::Trigger::kFromIndex:
        if (index < clause.index) {
          continue;
        }
        break;
      case Clause::Trigger::kProbability:
        if (!prng_.NextBool(clause.probability)) {
          continue;
        }
        break;
      case Clause::Trigger::kCrashBytes: {
        uint64_t seen = clause_bytes_[i];
        clause_bytes_[i] += bytes;
        if (clause_bytes_[i] < clause.crash_bytes) {
          continue;
        }
        // Crash lands inside (or exactly at the end of) this operation:
        // only the bytes up to the boundary reach the kernel.
        result.short_bytes = static_cast<size_t>(
            clause.crash_bytes > seen ? clause.crash_bytes - seen : 0);
        break;
      }
    }
    result.kind = clause.kind;
    switch (clause.kind) {
      case Kind::kEintr:
        ++stats_.eintr_injected;
        break;
      case Kind::kEio:
        ++stats_.eio_injected;
        break;
      case Kind::kEnospc:
        ++stats_.enospc_injected;
        break;
      case Kind::kShort:
        if (bytes == 0) {
          continue;  // nothing to shorten; fall through to later clauses
        }
        result.short_bytes = static_cast<size_t>(prng_.NextBelow(bytes));
        ++stats_.short_injected;
        break;
      case Kind::kCrash:
        ++stats_.crash_injected;
        stats_.crashed = true;
        break;
      case Kind::kNone:
        continue;
    }
    return result;
  }
  return Injected{};
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultStats GlobalStats() {
  if (!Enabled()) {
    return FaultStats{};
  }
  return FaultInjector::Global().stats();
}

ScopedFaultInjection::ScopedFaultInjection(const std::string& spec,
                                           uint64_t seed) {
  Status status = FaultInjector::Global().Configure(spec, seed);
  if (!status.ok()) {
    std::fprintf(stderr, "ScopedFaultInjection: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Global().Reset();
}

namespace {

void InitFromEnv() {
  const char* spec = std::getenv("LAPIS_FAULT_SPEC");
  if (spec == nullptr || spec[0] == '\0') {
    return;
  }
  uint64_t seed = 0;
  const char* seed_str = std::getenv("LAPIS_FAULT_SEED");
  if (seed_str != nullptr && seed_str[0] != '\0') {
    if (!ParseUint64(seed_str, &seed)) {
      std::fprintf(stderr, "lapis: bad LAPIS_FAULT_SEED '%s'\n", seed_str);
      std::exit(2);
    }
  }
  Status status = FaultInjector::Global().Configure(spec, seed);
  if (!status.ok()) {
    std::fprintf(stderr, "lapis: bad LAPIS_FAULT_SPEC: %s\n",
                 status.ToString().c_str());
    std::exit(2);
  }
  std::fprintf(stderr, "lapis: fault injection armed (spec='%s' seed=%llu)\n",
               spec, static_cast<unsigned long long>(seed));
}

// File-scope initializer: arms the injector from the environment before
// main() in any binary that links lapis_util.
struct EnvInitializer {
  EnvInitializer() { InitFromEnv(); }
};
const EnvInitializer g_env_initializer;

}  // namespace

void InitFromEnvForTest() { InitFromEnv(); }

}  // namespace fault
}  // namespace lapis
