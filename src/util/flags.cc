#include "src/util/flags.h"

#include <cstdlib>

namespace lapis {

void FlagParser::AddString(const std::string& name,
                           std::string default_value, std::string help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.string_value = std::move(default_value);
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        std::string help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::move(help);
  flag.int_value = default_value;
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         std::string help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           std::string help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

Status FlagParser::SetValue(Flag& flag, const std::string& name,
                            const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kString:
      flag.string_value = value;
      return Status::Ok();
    case Type::kInt:
      flag.int_value = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("--" + name + " expects an integer, got '" +
                                    value + "'");
      }
      return Status::Ok();
    case Type::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        return InvalidArgumentError("--" + name + " expects true/false");
      }
      return Status::Ok();
    case Type::kDouble:
      flag.double_value = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("--" + name + " expects a number");
      }
      return Status::Ok();
  }
  return InternalError("bad flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  bool positional_only = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (positional_only || arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      positional_only = true;
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      return Status::Ok();
    }
    std::string name = body;
    std::string value;
    bool have_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + name);
    }
    if (!have_value) {
      if (it->second.type == Type::kBool) {
        it->second.bool_value = true;  // bare --flag
        continue;
      }
      if (i + 1 >= argc) {
        return InvalidArgumentError("--" + name + " needs a value");
      }
      value = argv[++i];
    }
    LAPIS_RETURN_IF_ERROR(SetValue(it->second, name, value));
  }
  return Status::Ok();
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return flags_.at(name).string_value;
}
int64_t FlagParser::GetInt(const std::string& name) const {
  return flags_.at(name).int_value;
}
bool FlagParser::GetBool(const std::string& name) const {
  return flags_.at(name).bool_value;
}
double FlagParser::GetDouble(const std::string& name) const {
  return flags_.at(name).double_value;
}

std::string FlagParser::Usage() const {
  std::string out = description_ + "\n\nflags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name;
    switch (flag.type) {
      case Type::kString:
        out += "=<string> (default \"" + flag.string_value + "\")";
        break;
      case Type::kInt:
        out += "=<int> (default " + std::to_string(flag.int_value) + ")";
        break;
      case Type::kBool:
        out += std::string(" (default ") +
               (flag.bool_value ? "true" : "false") + ")";
        break;
      case Type::kDouble:
        out += "=<number>";
        break;
    }
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace lapis
