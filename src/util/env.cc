#include "src/util/env.h"

#include <cstdlib>

namespace lapis {

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || parsed <= 0) {
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

std::string EnvStringOr(const char* name, std::string_view fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return std::string(fallback);
  }
  return value;
}

}  // namespace lapis
