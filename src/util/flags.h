// Minimal command-line flag parsing for the lapis tools.
//
// Supports --name=value, --name value, bare boolean --name, and --help.
// Unknown flags are errors; everything after "--" (or not starting with
// "--") is collected as positional arguments.

#ifndef LAPIS_SRC_UTIL_FLAGS_H_
#define LAPIS_SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lapis {

class FlagParser {
 public:
  explicit FlagParser(std::string program_description)
      : description_(std::move(program_description)) {}

  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt(const std::string& name, int64_t default_value,
              std::string help);
  void AddBool(const std::string& name, bool default_value,
               std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);

  // Parses argv (excluding argv[0]). On "--help", returns ok with
  // help_requested() set.
  Status Parse(int argc, const char* const* argv);

  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }

  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kBool, kDouble };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    bool bool_value = false;
    double double_value = 0.0;
  };

  Status SetValue(Flag& flag, const std::string& name,
                  const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_FLAGS_H_
