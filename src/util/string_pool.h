// Shared append-only string interner for the analysis hot path.
//
// The pipeline shuttles the same few thousand symbol names and pseudo-file
// paths through every stage: libc exports its 1,274 symbols, every package
// imports a subset of them, and the db-backed aggregation used to copy each
// name into every row that mentioned it. StringPool stores each distinct
// string once and hands out dense 32-bit ids; consumers (LibraryResolver,
// DbPipeline) key their maps by id instead of by std::string.
//
// Thread-safety: Intern and NameOf are safe to call concurrently from any
// worker (shared_mutex; the TSan suite hammers this). The pool is
// append-only — ids are never reused or remapped, and NameOf's
// string_view stays valid for the pool's lifetime (deque storage never
// moves existing elements). Determinism caveat: id values depend on
// interning order, so pipelines that fold ids into exported output must
// intern from a canonical-order stage (registration order), exactly like
// core::StringInterner.

#ifndef LAPIS_SRC_UTIL_STRING_POOL_H_
#define LAPIS_SRC_UTIL_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lapis {

class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the id of `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  // Returns the id if present, or kNotFound.
  uint32_t Find(std::string_view s) const;

  // The interned string for a valid id. The view remains valid for the
  // pool's lifetime.
  std::string_view NameOf(uint32_t id) const;

  size_t size() const;

  // Total bytes of distinct string payload stored (diet accounting).
  size_t payload_bytes() const;

  static constexpr uint32_t kNotFound = UINT32_MAX;

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;  // stable element addresses
  std::unordered_map<std::string_view, uint32_t> ids_;  // views into names_
  size_t payload_bytes_ = 0;
};

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_STRING_POOL_H_
