// Deterministic fault injection for the lapis I/O stack.
//
// Every cache, artifact, and socket I/O primitive consults this module
// before touching the kernel. When injection is disabled (the default) the
// check is a single relaxed atomic load; when enabled, a seeded injector
// replays a declarative fault schedule so that error paths — EINTR storms,
// short writes, ENOSPC, mid-record crashes — become deterministic,
// repeatable test inputs instead of flaky production surprises.
//
// Configuration comes from the environment (read once at process start):
//
//   LAPIS_FAULT_SPEC   semicolon-separated clause list (grammar below)
//   LAPIS_FAULT_SEED   uint64 seed for probabilistic clauses and short-write
//                      lengths (default 0)
//
// Clause grammar (whitespace-free):
//
//   site:kind@N        inject `kind` at the site's N-th operation (0-based)
//   site:kind@N+       inject at every operation from index N onward
//   site:kind~P        inject with probability P in [0,1] per operation
//   site:crash#N       crash after N cumulative bytes have flowed through
//                      the site: the op in flight completes only up to the
//                      crash boundary, and every later faultable operation
//                      in the process fails with EIO (a dead process cannot
//                      fsync, truncate, or rename)
//
// Sites: cache_open cache_read cache_write cache_sync artifact_open
//        artifact_read artifact_write artifact_sync artifact_rename
//        sock_read sock_write, or `*` to match every site.
// Kinds: eintr eio enospc short crash.
//
// Example: LAPIS_FAULT_SPEC='cache_write:short@3;sock_read:eintr~0.05'
// injects one short write on the 4th cache append and retries ~5% of
// socket reads through their EINTR path.

#ifndef LAPIS_SRC_UTIL_FAULT_H_
#define LAPIS_SRC_UTIL_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/prng.h"
#include "src/util/status.h"

namespace lapis {
namespace fault {

enum class Site : uint8_t {
  kCacheOpen = 0,
  kCacheRead,
  kCacheWrite,
  kCacheSync,
  kArtifactOpen,
  kArtifactRead,
  kArtifactWrite,
  kArtifactSync,
  kArtifactRename,
  kSockRead,
  kSockWrite,
  kSiteCount,  // sentinel, not a real site
};

enum class Kind : uint8_t {
  kNone = 0,
  kEintr,   // transient: caller should retry the operation
  kEio,     // hard I/O error
  kEnospc,  // device full
  kShort,   // partial transfer: only `short_bytes` of the request complete
  kCrash,   // process "dies" mid-operation; all later ops fail with EIO
};

const char* SiteName(Site site);
const char* KindName(Kind kind);

// What the injector decided for one operation. kind == kNone means proceed
// normally. For kShort and kCrash, `short_bytes` is how much of the request
// actually transfers before the fault lands (always < requested bytes).
struct Injected {
  Kind kind = Kind::kNone;
  size_t short_bytes = 0;
};

// Cumulative counters, readable at any time (e.g. for banners and tests).
struct FaultStats {
  uint64_t ops_observed = 0;
  uint64_t eintr_injected = 0;
  uint64_t eio_injected = 0;
  uint64_t enospc_injected = 0;
  uint64_t short_injected = 0;
  uint64_t crash_injected = 0;
  bool crashed = false;  // a crash clause has fired; everything fails now
};

// The process-wide injector. All methods are thread-safe: worker threads in
// the study pipeline and serve frame handlers hit the same instance.
class FaultInjector {
 public:
  static FaultInjector& Global();

  // Parses `spec` and arms the injector. An empty spec disarms it. Returns
  // InvalidArgument (leaving the previous schedule in place) on a malformed
  // clause.
  Status Configure(const std::string& spec, uint64_t seed);

  // Disarms and clears all schedules, counters, and crash state.
  void Reset();

  // Decides the fate of one operation of `bytes` bytes at `site`.
  // Precondition: injection is enabled (callers use fault::Check below,
  // which guards with the fast path).
  Injected OnOp(Site site, size_t bytes);

  FaultStats stats() const;

 private:
  struct Clause {
    bool all_sites = false;
    Site site = Site::kSiteCount;
    Kind kind = Kind::kNone;
    // Trigger: exactly one of the following shapes.
    enum class Trigger : uint8_t { kAtIndex, kFromIndex, kProbability,
                                   kCrashBytes } trigger = Trigger::kAtIndex;
    uint64_t index = 0;        // kAtIndex / kFromIndex
    double probability = 0.0;  // kProbability
    uint64_t crash_bytes = 0;  // kCrashBytes: cumulative byte threshold
  };

  FaultInjector() : prng_(0) {}

  static Status ParseClause(const std::string& text, Clause* out);

  mutable std::mutex mu_;
  std::vector<Clause> clauses_;
  std::vector<uint64_t> clause_bytes_;  // per-clause cumulative bytes (crash#)
  uint64_t op_index_[static_cast<size_t>(Site::kSiteCount)] = {};
  uint64_t site_bytes_[static_cast<size_t>(Site::kSiteCount)] = {};
  Prng prng_;
  FaultStats stats_;
};

namespace internal {
// True only while a non-empty schedule is armed. Relaxed is fine: arming
// happens before threads that care are spawned (env init or test setup).
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// The single hook I/O wrappers call. No-op fast path when disabled.
inline Injected Check(Site site, size_t bytes) {
  if (!Enabled()) {
    return Injected{};
  }
  return FaultInjector::Global().OnOp(site, bytes);
}

// Maps an injected fault to the errno the real syscall would have set, and
// a human-readable message fragment. kNone/kShort/kCrash are handled by the
// caller (they are not plain errno failures).
int InjectedErrno(Kind kind);

// Snapshot of the global injector's counters (zeroed struct when disabled).
FaultStats GlobalStats();

// Test-only RAII: arms the global injector with (spec, seed) on
// construction and fully resets it on destruction. Aborts on a malformed
// spec — tests should not silently run fault-free.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(const std::string& spec, uint64_t seed);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// Called once from a file-scope initializer to arm the injector from
// LAPIS_FAULT_SPEC / LAPIS_FAULT_SEED. Exposed for tests.
void InitFromEnvForTest();

}  // namespace fault
}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_FAULT_H_
