// Small string utilities shared across lapis modules.

#ifndef LAPIS_SRC_UTIL_STRINGS_H_
#define LAPIS_SRC_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lapis {

// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char delim);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// "12,345,678" — thousands separators, for report output.
std::string FormatWithCommas(uint64_t value);

// "12.3%" with the given number of decimals.
std::string FormatPercent(double fraction, int decimals = 1);

// Fixed-point decimal, e.g. FormatDouble(1.2345, 2) == "1.23".
std::string FormatDouble(double value, int decimals);

// True if `s` looks like a printable-ASCII string (used when scanning
// .rodata for hard-coded paths).
bool IsPrintableAscii(std::string_view s);

// True if `path` is a pseudo-filesystem path the study tracks
// (/proc, /sys, /dev), including printf-style templates like
// "/proc/%d/cmdline".
bool IsPseudoFilePath(std::string_view path);

// Canonicalizes a printf-style pseudo-file template: every %-conversion
// becomes "%"; e.g. "/proc/%d/cmdline" -> "/proc/%/cmdline". Non-template
// paths are returned unchanged.
std::string CanonicalizePseudoPath(std::string_view path);

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_STRINGS_H_
