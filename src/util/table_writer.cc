#include "src/util/table_writer.h"

#include <algorithm>

namespace lapis {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TableWriter::PrintTsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << '\t';
      }
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace lapis
