// Fault-aware POSIX file I/O used by the cache and artifact layers.
//
// io::File is a thin fd-based wrapper (not FILE*: stdio buffering would
// decouple "bytes the caller wrote" from "bytes on disk", which breaks the
// short-write and crash-point simulation). Every operation consults the
// fault injector (src/util/fault.h) before touching the kernel, under one
// of two site families:
//
//   Profile::kCacheIo    → cache_open / cache_read / cache_write / cache_sync
//   Profile::kArtifactIo → artifact_open / artifact_read / artifact_write /
//                          artifact_sync / artifact_rename
//
// With injection disabled each check is one relaxed atomic load.

#ifndef LAPIS_SRC_UTIL_IO_H_
#define LAPIS_SRC_UTIL_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lapis {
namespace io {

enum class Profile : uint8_t { kCacheIo, kArtifactIo };

// Move-only owning fd. All methods are safe to call on an invalid (moved-
// from or failed-open) File and return FailedPrecondition.
class File {
 public:
  File() = default;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  // O_WRONLY|O_CREAT|O_APPEND — the cache's shard-log mode.
  static Result<File> OpenAppend(const std::string& path, Profile profile);
  // O_RDONLY. Returns NotFound when the path does not exist.
  static Result<File> OpenRead(const std::string& path, Profile profile);
  // O_WRONLY|O_CREAT|O_TRUNC.
  static Result<File> CreateTruncated(const std::string& path,
                                      Profile profile);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Writes all of [data, data+len), retrying real and injected EINTR. On an
  // injected short write or crash, a prefix of the buffer reaches the file
  // and an IoError is returned — exactly the torn state a caller's recovery
  // path must handle.
  Status WriteAll(const void* data, size_t len);

  // Reads the remaining bytes of the file from the current offset. An
  // injected short read returns successfully with a truncated buffer
  // (indistinguishable from a torn file, by design).
  Result<std::vector<uint8_t>> ReadToEnd();

  Status Sync();                  // fsync
  Status Truncate(uint64_t len);  // ftruncate (faultable: crash blocks repair)
  Result<uint64_t> Size() const;  // fstat, not faultable (metadata only)

  // Close the fd. Safe to call twice; the destructor closes too.
  void Close();

 private:
  File(int fd, std::string path, Profile profile)
      : fd_(fd), path_(std::move(path)), profile_(profile) {}

  static Result<File> OpenWithFlags(const std::string& path, int flags,
                                    Profile profile);

  int fd_ = -1;
  std::string path_;
  Profile profile_ = Profile::kCacheIo;
};

// Reads an entire file. NotFound when the path does not exist.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path,
                                           Profile profile);

// Publishes `len` bytes at `path` atomically: write to a same-directory
// temp file, fsync it, rename over the destination, fsync the directory.
// Readers see either the old complete file or the new complete file, never
// a torn prefix. On failure the temp file is removed — unless a simulated
// crash fired, in which case it lingers exactly as a real dead process
// would leave it.
Status AtomicWriteFile(const std::string& path, const void* data, size_t len);

}  // namespace io
}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_IO_H_
