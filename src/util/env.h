// Environment-variable helpers shared by the tools, benches, and runtime.

#ifndef LAPIS_SRC_UTIL_ENV_H_
#define LAPIS_SRC_UTIL_ENV_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace lapis {

// Parses environment variable `name` as a positive size; returns `fallback`
// when unset, empty, non-numeric, or non-positive.
size_t EnvSizeOr(const char* name, size_t fallback);

// Returns environment variable `name`, or `fallback` when unset or empty.
std::string EnvStringOr(const char* name, std::string_view fallback);

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_ENV_H_
