#include "src/util/strings.h"

#include <cmath>
#include <cstdio>

namespace lapis {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

bool IsPrintableAscii(std::string_view s) {
  for (char c : s) {
    if (c < 0x20 || c > 0x7e) {
      return false;
    }
  }
  return true;
}

bool IsPseudoFilePath(std::string_view path) {
  return path.starts_with("/proc/") || path.starts_with("/sys/") ||
         path.starts_with("/dev/") || path == "/proc" || path == "/sys" ||
         path == "/dev";
}

std::string CanonicalizePseudoPath(std::string_view path) {
  std::string out;
  out.reserve(path.size());
  for (size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '%' && i + 1 < path.size()) {
      // Swallow a printf conversion: optional flags/width then one
      // conversion character.
      out.push_back('%');
      size_t j = i + 1;
      while (j < path.size() &&
             (path[j] == '-' || path[j] == '0' || path[j] == '+' ||
              (path[j] >= '0' && path[j] <= '9') || path[j] == '.' ||
              path[j] == 'l' || path[j] == 'z' || path[j] == 'h')) {
        ++j;
      }
      if (j < path.size()) {
        ++j;  // conversion char (d, s, u, x, ...)
      }
      i = j - 1;
    } else {
      out.push_back(path[i]);
    }
  }
  return out;
}

}  // namespace lapis
