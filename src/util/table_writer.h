// Aligned plain-text table rendering for bench/report output.
//
// Every bench binary prints "paper value vs. measured value" rows; this
// writer keeps them readable and diffable.

#ifndef LAPIS_SRC_UTIL_TABLE_WRITER_H_
#define LAPIS_SRC_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace lapis {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule and column padding.
  void Print(std::ostream& os) const;

  // Tab-separated output for machine consumption.
  void PrintTsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner: "== title ==".
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_TABLE_WRITER_H_
