// Deterministic pseudo-random number generation for the corpus simulator.
//
// The corpus generator and popularity-contest simulator must be reproducible
// bit-for-bit across runs and platforms, so lapis carries its own PRNG
// (xoshiro256**, seeded via SplitMix64) rather than relying on <random>'s
// implementation-defined distributions.

#ifndef LAPIS_SRC_UTIL_PRNG_H_
#define LAPIS_SRC_UTIL_PRNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lapis {

// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next();

 private:
  uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna), public domain reference algorithm.
class Prng {
 public:
  explicit Prng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound), bias-corrected. bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) {
      return;
    }
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap(items[i], items[j]);
    }
  }

  // Split off an independent child stream (for per-package determinism that
  // is robust against reordering of generation steps).
  Prng Fork(uint64_t stream_id);

 private:
  uint64_t state_[4];
};

// Bounded Zipf(s) sampler over ranks 1..n using inverse-CDF with a
// precomputed table. Used to model package installation popularity, which
// the Debian popcon data shows to be heavy-tailed.
class ZipfSampler {
 public:
  // n >= 1; s > 0 (s ~1.0 matches popcon-like popularity decay).
  ZipfSampler(uint64_t n, double s);

  // Returns a rank in [1, n]; rank 1 is the most popular.
  uint64_t Sample(Prng& prng) const;

  // Probability mass of a given rank.
  double Pmf(uint64_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace lapis

#endif  // LAPIS_SRC_UTIL_PRNG_H_
