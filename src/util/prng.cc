#include "src/util/prng.h"

#include <algorithm>
#include <cmath>

namespace lapis {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Prng::Prng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.Next();
  }
  // Avoid the all-zero state (probability ~0 but cheap to guard).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x853c49e6748fea9bULL;
  }
}

uint64_t Prng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Prng::NextBelow(uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Prng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Prng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Prng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Prng Prng::Fork(uint64_t stream_id) {
  // Derive a child seed from our own stream plus the id; consuming two
  // values keeps sibling forks decorrelated.
  uint64_t a = Next();
  uint64_t b = Next();
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  return Prng(sm.Next());
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_[i - 1] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
}

uint64_t ZipfSampler::Sample(Prng& prng) const {
  double u = prng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size();
  }
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(uint64_t rank) const {
  if (rank == 0 || rank > cdf_.size()) {
    return 0.0;
  }
  if (rank == 1) {
    return cdf_[0];
  }
  return cdf_[rank - 1] - cdf_[rank - 2];
}

}  // namespace lapis
