#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>

#include "src/util/env.h"

namespace lapis::runtime {

namespace {

// Which executor (and worker slot) the current thread belongs to. Worker
// threads set this for their lifetime; every other thread sees nullptr and
// routes submissions through the injector queue.
thread_local const Executor* tls_executor = nullptr;
thread_local size_t tls_worker_index = 0;

constexpr auto kIdleWait = std::chrono::milliseconds(2);
constexpr auto kJoinWait = std::chrono::milliseconds(1);

}  // namespace

Executor::Executor(size_t thread_count) {
  if (thread_count == 0) {
    thread_count = DefaultJobs();
  }
  // Cap absurd requests (e.g. -1 coerced to size_t) instead of trying to
  // reserve billions of worker slots.
  constexpr size_t kMaxThreads = 512;
  thread_count_ = std::clamp<size_t>(thread_count, 1, kMaxThreads);
  const size_t spawn = thread_count_ - 1;
  workers_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

size_t Executor::SelfIndex() const {
  return tls_executor == this ? tls_worker_index : kNoWorker;
}

TaskId Executor::Submit(std::function<void()> fn) {
  return SubmitInternal(std::move(fn), {}, /*skip_on_cancel=*/true);
}

TaskId Executor::Submit(std::function<void()> fn,
                        const std::vector<TaskId>& deps) {
  return SubmitInternal(std::move(fn), deps, /*skip_on_cancel=*/true);
}

TaskId Executor::SubmitInternal(std::function<void()> fn,
                                const std::vector<TaskId>& deps,
                                bool skip_on_cancel) {
  auto task = std::make_shared<Task>();
  task->fn = std::move(fn);
  task->skip_on_cancel = skip_on_cancel;
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    task->id = next_id_++;
    for (TaskId dep : deps) {
      auto it = tasks_.find(dep);
      if (it != tasks_.end()) {  // absent => already finished => satisfied
        it->second->dependents.push_back(task->id);
        ++task->unmet_deps;
      }
    }
    tasks_.emplace(task->id, task);
    ++in_flight_;
    ready = task->unmet_deps == 0;
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  TaskId id = task->id;
  if (ready) {
    PushReady(std::move(task));
  }
  return id;
}

void Executor::PushReady(TaskPtr task) {
  size_t depth = 0;
  const size_t self = SelfIndex();
  if (self != kNoWorker) {
    Worker& worker = *workers_[self];
    std::lock_guard<std::mutex> lock(worker.mutex);
    worker.deque.push_back(std::move(task));
    depth = worker.deque.size();
  } else {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    injector_.push_back(std::move(task));
    depth = injector_.size();
  }
  uint64_t prev = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > prev && !max_queue_depth_.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
  ready_count_.fetch_add(1, std::memory_order_release);
  NotifyWork();
}

void Executor::NotifyWork() {
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
  }
  work_cv_.notify_one();
}

Executor::TaskPtr Executor::TryGetTask(size_t self) {
  if (self != kNoWorker) {
    Worker& worker = *workers_[self];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.deque.empty()) {
      TaskPtr task = std::move(worker.deque.back());
      worker.deque.pop_back();
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (!injector_.empty()) {
      TaskPtr task = std::move(injector_.front());
      injector_.pop_front();
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  const size_t n = workers_.size();
  const size_t start = self == kNoWorker ? 0 : self + 1;
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (start + k) % n;
    if (victim == self) {
      continue;
    }
    Worker& worker = *workers_[victim];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.deque.empty()) {
      TaskPtr task = std::move(worker.deque.front());
      worker.deque.pop_front();
      ready_count_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void Executor::RunTask(const TaskPtr& task) {
  const bool skip =
      cancelled_.load(std::memory_order_relaxed) && task->skip_on_cancel;
  if (skip) {
    tasks_skipped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    try {
      task->fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(graph_mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<TaskPtr> newly_ready;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    tasks_.erase(task->id);
    --in_flight_;
    for (TaskId dependent : task->dependents) {
      auto it = tasks_.find(dependent);
      if (it != tasks_.end() && --it->second->unmet_deps == 0) {
        newly_ready.push_back(it->second);
      }
    }
  }
  for (auto& ready : newly_ready) {
    PushReady(std::move(ready));
  }
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
  }
  completion_cv_.notify_all();
}

bool Executor::RunOne(size_t self) {
  TaskPtr task = TryGetTask(self);
  if (task == nullptr) {
    return false;
  }
  RunTask(task);
  return true;
}

void Executor::WorkerLoop(size_t index) {
  tls_executor = this;
  tls_worker_index = index;
  for (;;) {
    TaskPtr task = TryGetTask(index);
    if (task != nullptr) {
      RunTask(task);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      break;  // TryGetTask just confirmed there is nothing left to drain
    }
    std::unique_lock<std::mutex> lock(cv_mutex_);
    work_cv_.wait_for(lock, kIdleWait, [this] {
      return stop_.load(std::memory_order_acquire) ||
             ready_count_.load(std::memory_order_acquire) > 0;
    });
  }
  tls_executor = nullptr;
}

void Executor::Wait(TaskId id) {
  const size_t self = SelfIndex();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(graph_mutex_);
      if (tasks_.find(id) == tasks_.end()) {
        break;
      }
    }
    if (!RunOne(self)) {
      std::unique_lock<std::mutex> lock(cv_mutex_);
      completion_cv_.wait_for(lock, kJoinWait);
    }
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    std::swap(error, first_error_);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void Executor::WaitAll() {
  const size_t self = SelfIndex();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(graph_mutex_);
      if (in_flight_ == 0) {
        break;
      }
    }
    if (!RunOne(self)) {
      std::unique_lock<std::mutex> lock(cv_mutex_);
      completion_cv_.wait_for(lock, kJoinWait);
    }
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    std::swap(error, first_error_);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void Executor::ParallelFor(size_t begin, size_t end, size_t grain,
                           const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) {
    return;
  }
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  const size_t n = end - begin;
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (thread_count_ * 8));
  }
  const size_t chunks = (n + grain - 1) / grain;
  if (thread_count_ <= 1 || chunks <= 1) {
    // Same chunk boundaries as the parallel path, executed in order, so
    // the body observes identical (begin, end) pairs at any thread count.
    for (size_t c = 0; c < chunks; ++c) {
      if (cancelled_.load(std::memory_order_relaxed)) {
        break;
      }
      const size_t chunk_begin = begin + c * grain;
      body(chunk_begin, std::min(end, chunk_begin + grain));
    }
    return;
  }

  struct Group {
    std::atomic<size_t> remaining{0};
    std::mutex mutex;
    std::exception_ptr error;
  } group;
  group.remaining.store(chunks, std::memory_order_relaxed);

  for (size_t c = 0; c < chunks; ++c) {
    const size_t chunk_begin = begin + c * grain;
    const size_t chunk_end = std::min(end, chunk_begin + grain);
    SubmitInternal(
        [this, &group, &body, chunk_begin, chunk_end] {
          if (!cancelled_.load(std::memory_order_relaxed)) {
            try {
              body(chunk_begin, chunk_end);
            } catch (...) {
              std::lock_guard<std::mutex> lock(group.mutex);
              if (!group.error) {
                group.error = std::current_exception();
              }
            }
          }
          group.remaining.fetch_sub(1, std::memory_order_acq_rel);
        },
        {}, /*skip_on_cancel=*/false);
  }

  const size_t self = SelfIndex();
  while (group.remaining.load(std::memory_order_acquire) > 0) {
    if (!RunOne(self)) {
      std::unique_lock<std::mutex> lock(cv_mutex_);
      completion_cv_.wait_for(lock, kJoinWait);
    }
  }
  if (group.error) {
    std::rethrow_exception(group.error);
  }
}

void Executor::Cancel() {
  cancelled_.store(true, std::memory_order_relaxed);
}

void Executor::ResetCancellation() {
  cancelled_.store(false, std::memory_order_relaxed);
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.thread_count = thread_count_;
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_skipped = tasks_skipped_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
  return s;
}

size_t DefaultJobs() {
  size_t env = EnvSizeOr("LAPIS_JOBS", 0);
  if (env > 0) {
    return env;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<Executor> g_global_executor;
size_t g_global_jobs = 0;  // 0 = DefaultJobs()

}  // namespace

Executor& GlobalExecutor() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global_executor == nullptr) {
    g_global_executor = std::make_unique<Executor>(
        g_global_jobs == 0 ? DefaultJobs() : g_global_jobs);
  }
  return *g_global_executor;
}

void SetGlobalJobs(size_t jobs) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_jobs = jobs;
  g_global_executor.reset();
}

}  // namespace lapis::runtime
