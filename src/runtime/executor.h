// Work-stealing parallel executor — the substrate every pipeline stage
// runs on (corpus synthesis, per-binary analysis, footprint resolution,
// SCC-condensed aggregation).
//
// Design:
//   * N logical threads: the constructor spawns N-1 workers; the calling
//     thread joins the pool whenever it waits (Wait / WaitAll /
//     ParallelFor), so Executor(1) spawns nothing and executes every task
//     inline — bit-for-bit the sequential pipeline.
//   * Each worker owns a deque: it pushes/pops at the back (LIFO, cache
//     warm) and thieves steal from the front (FIFO, oldest first). External
//     submissions land in a shared injector queue.
//   * Tasks form a graph: Submit() takes dependency edges; a task becomes
//     ready once every dependency finished. Completed ids are forgotten —
//     waiting on an unknown id returns immediately.
//   * Exceptions: the first exception thrown by a Submit()ed task is
//     captured and rethrown at the next WaitAll()/Wait(). ParallelFor
//     captures its own first exception and rethrows at its join.
//   * Cancel() skips every not-yet-started Submit()ed task (dependents
//     still unblock) and makes in-flight ParallelFor calls return early.
//
// Determinism: scheduling is nondeterministic by nature; deterministic
// *output* comes from the reduction layer in parallel.h (shard results
// addressed by canonical index, merged in index order).

#ifndef LAPIS_SRC_RUNTIME_EXECUTOR_H_
#define LAPIS_SRC_RUNTIME_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lapis::runtime {

using TaskId = uint64_t;
inline constexpr TaskId kInvalidTaskId = 0;

// Monotonic counters; a coherent snapshot is returned by Executor::stats().
struct ExecutorStats {
  size_t thread_count = 0;        // logical threads (workers + caller)
  uint64_t tasks_submitted = 0;   // Submit() calls + ParallelFor chunks
  uint64_t tasks_executed = 0;    // task bodies actually run
  uint64_t tasks_skipped = 0;     // skipped because of Cancel()
  uint64_t steals = 0;            // tasks taken from another thread's deque
  uint64_t max_queue_depth = 0;   // high-water mark over all deques
  uint64_t parallel_for_calls = 0;
};

class Executor {
 public:
  // thread_count == 0 picks DefaultJobs(); thread_count == 1 runs inline.
  explicit Executor(size_t thread_count = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Enqueues a task, optionally gated on dependencies. Ids of already-
  // finished (or never-issued) dependencies count as satisfied.
  TaskId Submit(std::function<void()> fn);
  TaskId Submit(std::function<void()> fn, const std::vector<TaskId>& deps);

  // Blocks until `id` finished, executing queued tasks meanwhile.
  void Wait(TaskId id);

  // Blocks until every submitted task finished; rethrows the first
  // captured task exception, if any.
  void WaitAll();

  // Calls body(chunk_begin, chunk_end) over [begin, end) partitioned into
  // chunks of at most `grain` indices (grain == 0 picks one proportional
  // to the thread count). The calling thread participates; nested calls
  // from inside a body are fine. Rethrows the first body exception.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  // Marks every not-yet-started task skippable and stops new ParallelFor
  // chunks from running their bodies. Sticky until ResetCancellation().
  void Cancel();
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void ResetCancellation();

  size_t thread_count() const { return thread_count_; }
  ExecutorStats stats() const;

 private:
  struct Task {
    TaskId id = kInvalidTaskId;
    std::function<void()> fn;
    uint32_t unmet_deps = 0;
    std::vector<TaskId> dependents;
    // ParallelFor chunks manage cancellation themselves (they must always
    // decrement their group counter); plain submissions are skippable.
    bool skip_on_cancel = true;
  };
  using TaskPtr = std::shared_ptr<Task>;

  struct Worker {
    std::mutex mutex;
    std::deque<TaskPtr> deque;
  };

  static constexpr size_t kNoWorker = static_cast<size_t>(-1);

  TaskId SubmitInternal(std::function<void()> fn,
                        const std::vector<TaskId>& deps, bool skip_on_cancel);
  // Index of the current thread's worker slot in *this* executor.
  size_t SelfIndex() const;
  void PushReady(TaskPtr task);
  TaskPtr TryGetTask(size_t self);
  void RunTask(const TaskPtr& task);
  bool RunOne(size_t self);
  void WorkerLoop(size_t index);
  void NotifyWork();

  size_t thread_count_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;  // one per spawned thread
  std::vector<std::thread> threads_;

  std::mutex injector_mutex_;
  std::deque<TaskPtr> injector_;

  // Task graph: pending (not yet finished) tasks by id.
  mutable std::mutex graph_mutex_;
  std::unordered_map<TaskId, TaskPtr> tasks_;
  std::exception_ptr first_error_;
  TaskId next_id_ = 1;
  uint64_t in_flight_ = 0;  // submitted, not yet finished

  std::mutex cv_mutex_;
  std::condition_variable work_cv_;        // workers: "a task became ready"
  std::condition_variable completion_cv_;  // waiters: "a task finished"

  std::atomic<bool> stop_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> ready_count_{0};

  // Stats.
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_skipped_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> parallel_for_calls_{0};
};

// Thread count used when none is specified: the LAPIS_JOBS environment
// variable if set and positive, else hardware_concurrency() (min 1).
size_t DefaultJobs();

// Process-wide executor, built lazily with SetGlobalJobs()'s value (or
// DefaultJobs()). Reconfigure before parallel work starts; SetGlobalJobs
// tears down the old pool and the next GlobalExecutor() call rebuilds it.
Executor& GlobalExecutor();
void SetGlobalJobs(size_t jobs);

}  // namespace lapis::runtime

#endif  // LAPIS_SRC_RUNTIME_EXECUTOR_H_
