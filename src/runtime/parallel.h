// Deterministic reduction layer over the work-stealing executor.
//
// Scheduling is nondeterministic; output determinism comes from addressing:
// every shard result lands at its canonical index, and merges fold shards
// in ascending index order. A pipeline built from ParallelMap + FoldInOrder
// is therefore bit-identical at any thread count — the property the study
// exports are tested for.

#ifndef LAPIS_SRC_RUNTIME_PARALLEL_H_
#define LAPIS_SRC_RUNTIME_PARALLEL_H_

#include <type_traits>
#include <utility>
#include <vector>

#include "src/runtime/executor.h"

namespace lapis::runtime {

// Computes fn(i) for i in [0, count) — in parallel when `executor` has
// more than one thread, inline otherwise — and returns the results in
// index order. R must be default-constructible and move-assignable; fn
// must not touch shared mutable state.
template <typename Fn>
auto ParallelMap(Executor* executor, size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using R = std::invoke_result_t<Fn&, size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "ParallelMap shard results must be default-constructible");
  std::vector<R> out(count);
  if (executor == nullptr || executor->thread_count() <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      out[i] = fn(i);
    }
    return out;
  }
  executor->ParallelFor(0, count, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = fn(i);
    }
  });
  return out;
}

// Canonical-order merge: fold(index, shard) over ascending indices. The
// deliberate sequential pass that makes sharded aggregation deterministic.
template <typename R, typename Fold>
void FoldInOrder(std::vector<R>& shards, Fold&& fold) {
  for (size_t i = 0; i < shards.size(); ++i) {
    fold(i, shards[i]);
  }
}

}  // namespace lapis::runtime

#endif  // LAPIS_SRC_RUNTIME_PARALLEL_H_
