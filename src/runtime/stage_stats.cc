#include "src/runtime/stage_stats.h"

#include <sys/resource.h>

#include <chrono>
#include <ctime>

namespace lapis::runtime {

void PipelineStats::Record(const std::string& stage, double wall_seconds,
                           double cpu_seconds, uint64_t items) {
  for (auto& [name, record] : stages_) {
    if (name == stage) {
      record.wall_seconds += wall_seconds;
      record.cpu_seconds += cpu_seconds;
      record.items += items;
      ++record.calls;
      return;
    }
  }
  StageRecord record;
  record.wall_seconds = wall_seconds;
  record.cpu_seconds = cpu_seconds;
  record.items = items;
  record.calls = 1;
  stages_.emplace_back(stage, record);
}

const StageRecord* PipelineStats::Find(std::string_view stage) const {
  for (const auto& [name, record] : stages_) {
    if (name == stage) {
      return &record;
    }
  }
  return nullptr;
}

double PipelineStats::TotalWallSeconds() const {
  double total = 0.0;
  for (const auto& [name, record] : stages_) {
    total += record.wall_seconds;
  }
  return total;
}

double PipelineStats::TotalCpuSeconds() const {
  double total = 0.0;
  for (const auto& [name, record] : stages_) {
    total += record.cpu_seconds;
  }
  return total;
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ProcessCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) {
    return 0.0;
  }
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

uint64_t PeakRssKib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0 || usage.ru_maxrss < 0) {
    return 0;
  }
  // Linux reports ru_maxrss in kilobytes already.
  return static_cast<uint64_t>(usage.ru_maxrss);
}

StageTimer::StageTimer(PipelineStats* stats, std::string stage)
    : stats_(stats),
      stage_(std::move(stage)),
      wall_start_(MonotonicSeconds()),
      cpu_start_(ProcessCpuSeconds()) {}

StageTimer::~StageTimer() {
  if (stats_ != nullptr) {
    stats_->Record(stage_, MonotonicSeconds() - wall_start_,
                   ProcessCpuSeconds() - cpu_start_, items_);
  }
}

}  // namespace lapis::runtime
