// Per-stage pipeline accounting: wall time, process CPU time, and item
// counts for each named stage, plus an RAII timer. The study runner fills
// one PipelineStats per run; bench_tab12_framework and the bench fixture
// print it next to the executor's task/steal counters.

#ifndef LAPIS_SRC_RUNTIME_STAGE_STATS_H_
#define LAPIS_SRC_RUNTIME_STAGE_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lapis::runtime {

struct StageRecord {
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;  // process CPU: > wall when threads overlap
  uint64_t items = 0;
  uint32_t calls = 0;
};

// Stage records in first-recorded order. Not thread-safe: stages are
// recorded by the orchestrating thread between parallel regions.
class PipelineStats {
 public:
  void Record(const std::string& stage, double wall_seconds,
              double cpu_seconds, uint64_t items);

  const std::vector<std::pair<std::string, StageRecord>>& stages() const {
    return stages_;
  }
  const StageRecord* Find(std::string_view stage) const;
  double TotalWallSeconds() const;
  double TotalCpuSeconds() const;

 private:
  std::vector<std::pair<std::string, StageRecord>> stages_;
};

// Monotonic wall clock / cumulative process CPU clock, in seconds.
double MonotonicSeconds();
double ProcessCpuSeconds();

// Peak resident set size of this process in KiB (getrusage ru_maxrss), or
// 0 if unavailable. Note: a process-lifetime high-water mark — it never
// decreases, so per-phase deltas need a fresh process.
uint64_t PeakRssKib();

// Records the enclosing scope as one stage invocation.
class StageTimer {
 public:
  StageTimer(PipelineStats* stats, std::string stage);
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void AddItems(uint64_t n) { items_ += n; }

 private:
  PipelineStats* stats_;
  std::string stage_;
  double wall_start_;
  double cpu_start_;
  uint64_t items_ = 0;
};

}  // namespace lapis::runtime

#endif  // LAPIS_SRC_RUNTIME_STAGE_STATS_H_
