// APT-style package model (paper §2).
//
// A package is the smallest installation unit: it carries binaries
// (executables and shared libraries) and depends on other packages. The
// repository validates dependency edges and answers closure queries, which
// the metrics core needs for weighted completeness ("if a supported package
// depends on an unsupported package, both are unsupported").

#ifndef LAPIS_SRC_PACKAGE_REPOSITORY_H_
#define LAPIS_SRC_PACKAGE_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lapis::package {

using PackageId = uint32_t;
inline constexpr PackageId kInvalidPackage = 0xffffffffu;

// How a package's programs are written (drives the Fig 1 breakdown and the
// interpreter over-approximation of §2.3).
enum class ProgramKind : uint8_t {
  kElf,           // native executables / shared libraries
  kShellDash,     // #!/bin/sh scripts
  kShellBash,     // #!/bin/bash scripts
  kPython,
  kPerl,
  kRuby,
  kOtherInterpreted,
};

const char* ProgramKindName(ProgramKind kind);

struct Package {
  std::string name;
  ProgramKind kind = ProgramKind::kElf;
  // Names of binaries shipped in this package (keys into the corpus's
  // binary store). Empty for pure-script packages.
  std::vector<std::string> executables;
  std::vector<std::string> shared_libraries;
  // Interpreted programs shipped (scripts are not ELF; they count toward
  // the Fig 1 executable breakdown only).
  size_t script_count = 0;
  // Direct APT dependencies (package names resolved to ids by Repository).
  std::vector<PackageId> depends;
  // For interpreted packages: the package providing the interpreter.
  PackageId interpreter = kInvalidPackage;
};

class Repository {
 public:
  // Adds a package; name must be unique. Dependencies may reference ids
  // returned by earlier AddPackage calls only.
  Result<PackageId> AddPackage(Package package);

  size_t size() const { return packages_.size(); }
  const Package& package(PackageId id) const { return packages_[id]; }
  const std::vector<Package>& packages() const { return packages_; }

  // kInvalidPackage if absent.
  PackageId FindByName(std::string_view name) const;

  // Transitive dependency closure including `id` itself (cycle-safe;
  // interpreter edges are treated as dependencies).
  std::vector<PackageId> DependencyClosure(PackageId id) const;

  // Packages whose closure includes `id` (including `id` itself).
  std::vector<PackageId> ReverseDependencyClosure(PackageId id) const;

  // Total number of ELF binaries across all packages.
  size_t CountBinaries() const;

 private:
  std::vector<Package> packages_;
  std::map<std::string, PackageId, std::less<>> by_name_;
};

}  // namespace lapis::package

#endif  // LAPIS_SRC_PACKAGE_REPOSITORY_H_
