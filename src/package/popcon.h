// Popularity-contest survey simulation.
//
// The paper weighs API usage by per-package installation counts from the
// Debian/Ubuntu "popularity contest" (2,935,744 opt-in installations). That
// dataset only publishes marginal counts — no joint information — which
// forces the paper's independence assumption (§A.2). This simulator
// reproduces the data-generating process: it samples whole installations
// (package sets honouring dependency closures), then tallies the marginal
// counts an opt-in survey would report. Retained joint samples let the
// ablation bench quantify the error of the independence assumption.

#ifndef LAPIS_SRC_PACKAGE_POPCON_H_
#define LAPIS_SRC_PACKAGE_POPCON_H_

#include <cstdint>
#include <vector>

#include "src/package/repository.h"
#include "src/util/prng.h"
#include "src/util/status.h"

namespace lapis::package {

// A sampled installation as a package-id bitset.
class InstallationSet {
 public:
  explicit InstallationSet(size_t package_count)
      : bits_((package_count + 63) / 64, 0) {}

  void Add(PackageId id) { bits_[id / 64] |= 1ULL << (id % 64); }
  bool Contains(PackageId id) const {
    return (bits_[id / 64] >> (id % 64)) & 1;
  }
  size_t CountInstalled() const;

  // Raw bitset words, for serialization (src/cache survey codec).
  const std::vector<uint64_t>& words() const { return bits_; }
  static InstallationSet FromWords(std::vector<uint64_t> words) {
    InstallationSet set(0);
    set.bits_ = std::move(words);
    return set;
  }

 private:
  std::vector<uint64_t> bits_;
};

struct PopconOptions {
  uint64_t installation_count = 100000;
  // Fraction of installations that opt into reporting (popcon is opt-in).
  double report_rate = 1.0;
  // Keep at most this many joint samples for the independence ablation
  // (0 = keep none).
  uint64_t retain_samples = 0;
  uint64_t seed = 0x1a915;

  // Installation profiles (server / desktop / developer ...): when
  // profile_count > 0, each installation draws one profile uniformly and
  // packages belonging to that profile (package id % profile_count) are
  // `profile_boost`x more likely to be picked, others proportionally less,
  // preserving each package's average marginal. This induces positive
  // correlation between same-profile packages — the joint structure the
  // real popcon data hides and the paper's §A.2 independence assumption
  // ignores. Only packages with target marginal <= 0.5 participate
  // (essentials stay unconditional).
  uint32_t profile_count = 0;
  double profile_boost = 3.0;
};

struct PopconSurvey {
  // Reported installation count per package id.
  std::vector<uint64_t> install_counts;
  // Number of installations that reported.
  uint64_t total_reporting = 0;
  // Retained joint samples (among reporting installations).
  std::vector<InstallationSet> samples;

  double InstallProbability(PackageId id) const {
    if (total_reporting == 0) {
      return 0.0;
    }
    return static_cast<double>(install_counts[id]) /
           static_cast<double>(total_reporting);
  }
};

class PopconSimulator {
 public:
  // `target_marginals[i]` is the probability an installation picks package i
  // directly; the final marginal is inflated by reverse-dependency pulls
  // (installing an app installs its libraries). Values are clamped to [0,1].
  static Result<PopconSurvey> Run(const Repository& repository,
                                  const std::vector<double>& target_marginals,
                                  const PopconOptions& options);
};

}  // namespace lapis::package

#endif  // LAPIS_SRC_PACKAGE_POPCON_H_
