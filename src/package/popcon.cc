#include "src/package/popcon.h"

#include <algorithm>

namespace lapis::package {

size_t InstallationSet::CountInstalled() const {
  size_t count = 0;
  for (uint64_t word : bits_) {
    count += static_cast<size_t>(__builtin_popcountll(word));
  }
  return count;
}

Result<PopconSurvey> PopconSimulator::Run(
    const Repository& repository, const std::vector<double>& target_marginals,
    const PopconOptions& options) {
  const size_t n = repository.size();
  if (target_marginals.size() != n) {
    return InvalidArgumentError("marginals size mismatch");
  }
  if (options.installation_count == 0) {
    return InvalidArgumentError("installation_count must be positive");
  }

  // Precompute dependency closures once; sampling touches them constantly.
  std::vector<std::vector<PackageId>> closures(n);
  for (PackageId id = 0; id < n; ++id) {
    closures[id] = repository.DependencyClosure(id);
  }

  const uint32_t profiles = options.profile_count;
  double boost = options.profile_boost;
  if (profiles > 1 && boost > static_cast<double>(profiles)) {
    boost = static_cast<double>(profiles);  // keep the dampened arm >= 0
  }
  const double dampen =
      profiles > 1 ? (static_cast<double>(profiles) - boost) /
                         (static_cast<double>(profiles) - 1.0)
                   : 1.0;

  PopconSurvey survey;
  survey.install_counts.assign(n, 0);
  Prng prng(options.seed);

  std::vector<uint8_t> installed(n, 0);
  for (uint64_t inst = 0; inst < options.installation_count; ++inst) {
    std::fill(installed.begin(), installed.end(), 0);
    uint32_t profile =
        profiles > 1 ? static_cast<uint32_t>(prng.NextBelow(profiles)) : 0;
    for (PackageId id = 0; id < n; ++id) {
      double marginal = target_marginals[id];
      if (profiles > 1 && marginal <= 0.5) {
        marginal = std::min(
            1.0, marginal * (id % profiles == profile ? boost : dampen));
      }
      if (installed[id] == 0 && prng.NextBool(marginal)) {
        for (PackageId member : closures[id]) {
          installed[member] = 1;
        }
      }
    }
    bool reports = prng.NextBool(options.report_rate);
    if (!reports) {
      continue;
    }
    ++survey.total_reporting;
    for (PackageId id = 0; id < n; ++id) {
      if (installed[id] != 0) {
        ++survey.install_counts[id];
      }
    }
    if (survey.samples.size() < options.retain_samples) {
      InstallationSet sample(n);
      for (PackageId id = 0; id < n; ++id) {
        if (installed[id] != 0) {
          sample.Add(id);
        }
      }
      survey.samples.push_back(std::move(sample));
    }
  }
  return survey;
}

}  // namespace lapis::package
