#include "src/package/repository.h"

#include <deque>

namespace lapis::package {

const char* ProgramKindName(ProgramKind kind) {
  switch (kind) {
    case ProgramKind::kElf:
      return "ELF binary";
    case ProgramKind::kShellDash:
      return "Shell (dash)";
    case ProgramKind::kShellBash:
      return "Shell (bash)";
    case ProgramKind::kPython:
      return "Python";
    case ProgramKind::kPerl:
      return "Perl";
    case ProgramKind::kRuby:
      return "Ruby";
    case ProgramKind::kOtherInterpreted:
      return "Others";
  }
  return "?";
}

Result<PackageId> Repository::AddPackage(Package package) {
  if (package.name.empty()) {
    return InvalidArgumentError("package name must not be empty");
  }
  if (by_name_.contains(package.name)) {
    return FailedPreconditionError("duplicate package: " + package.name);
  }
  PackageId id = static_cast<PackageId>(packages_.size());
  for (PackageId dep : package.depends) {
    if (dep >= id) {
      return InvalidArgumentError("dependency id out of range in " +
                                  package.name);
    }
  }
  if (package.interpreter != kInvalidPackage && package.interpreter >= id) {
    return InvalidArgumentError("interpreter id out of range in " +
                                package.name);
  }
  by_name_.emplace(package.name, id);
  packages_.push_back(std::move(package));
  return id;
}

PackageId Repository::FindByName(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidPackage : it->second;
}

std::vector<PackageId> Repository::DependencyClosure(PackageId id) const {
  std::vector<PackageId> out;
  std::vector<bool> visited(packages_.size(), false);
  std::deque<PackageId> queue = {id};
  while (!queue.empty()) {
    PackageId current = queue.front();
    queue.pop_front();
    if (current >= packages_.size() || visited[current]) {
      continue;
    }
    visited[current] = true;
    out.push_back(current);
    const Package& pkg = packages_[current];
    for (PackageId dep : pkg.depends) {
      if (!visited[dep]) {
        queue.push_back(dep);
      }
    }
    if (pkg.interpreter != kInvalidPackage && !visited[pkg.interpreter]) {
      queue.push_back(pkg.interpreter);
    }
  }
  return out;
}

std::vector<PackageId> Repository::ReverseDependencyClosure(
    PackageId id) const {
  std::vector<PackageId> out;
  for (PackageId candidate = 0; candidate < packages_.size(); ++candidate) {
    for (PackageId member : DependencyClosure(candidate)) {
      if (member == id) {
        out.push_back(candidate);
        break;
      }
    }
  }
  return out;
}

size_t Repository::CountBinaries() const {
  size_t count = 0;
  for (const auto& pkg : packages_) {
    count += pkg.executables.size() + pkg.shared_libraries.size();
  }
  return count;
}

}  // namespace lapis::package
