// Parsed, queryable representation of an ELF64 binary.
//
// ElfImage owns a copy of the file bytes; section data views point into that
// buffer. Produced by ElfReader (elf_reader.h), consumed by the static
// analyzer (src/analysis) and by tests.

#ifndef LAPIS_SRC_ELF_ELF_IMAGE_H_
#define LAPIS_SRC_ELF_ELF_IMAGE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/elf/elf_defs.h"
#include "src/util/status.h"

namespace lapis::elf {

struct Section {
  std::string name;
  uint32_t type = kShtNull;
  uint64_t flags = 0;
  uint64_t addr = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t link = 0;
  uint64_t entsize = 0;
  // View into ElfImage's file buffer; empty for SHT_NOBITS.
  std::span<const uint8_t> data;
};

struct Symbol {
  std::string name;
  uint64_t value = 0;
  uint64_t size = 0;
  uint8_t info = 0;
  uint16_t shndx = kShnUndef;

  uint8_t bind() const { return StBind(info); }
  uint8_t type() const { return StType(info); }
  bool IsFunction() const { return type() == kSttFunc; }
  bool IsDefined() const { return shndx != kShnUndef; }
};

// Resolved PLT stub: a call to plt_vaddr is a call to `symbol_name` in some
// DT_NEEDED library.
struct PltEntry {
  uint64_t plt_vaddr = 0;
  std::string symbol_name;
};

// Program header (loader view).
struct Segment {
  uint32_t type = kPtNull;
  uint32_t flags = 0;
  uint64_t offset = 0;
  uint64_t vaddr = 0;
  uint64_t filesz = 0;
  uint64_t memsz = 0;
  uint64_t align = 0;

  bool IsLoad() const { return type == kPtLoad; }
  bool Executable() const { return (flags & kPfX) != 0; }
  bool Writable() const { return (flags & kPfW) != 0; }
  bool ContainsVaddr(uint64_t address) const {
    return address >= vaddr && address < vaddr + memsz;
  }
};

class ElfImage {
 public:
  ElfImage() = default;

  // Identity / headers.
  uint16_t type() const { return type_; }
  bool IsExecutable() const { return type_ == kEtExec; }
  bool IsSharedLibrary() const { return type_ == kEtDyn; }
  uint64_t entry() const { return entry_; }

  // Sections.
  const std::vector<Section>& sections() const { return sections_; }
  // Returns nullptr if absent.
  const Section* FindSection(std::string_view name) const;

  // Segments (program headers).
  const std::vector<Segment>& segments() const { return segments_; }
  // The LOAD segment covering `vaddr`, or nullptr.
  const Segment* LoadSegmentFor(uint64_t vaddr) const;

  // Loader-view consistency: every allocated section lies inside a LOAD
  // segment with compatible permissions (text in an executable segment,
  // writable data in a writable one), and file ranges are in bounds.
  Status ValidateLayout() const;

  // Symbols.
  const std::vector<Symbol>& symtab() const { return symtab_; }
  const std::vector<Symbol>& dynsym() const { return dynsym_; }
  // Defined STT_FUNC symbols from .symtab (the analyzer's function table).
  std::vector<const Symbol*> DefinedFunctions() const;
  // Exported (global, defined) function names from .dynsym.
  std::vector<const Symbol*> ExportedFunctions() const;
  // Undefined .dynsym entries: symbols imported from needed libraries.
  std::vector<std::string> ImportedSymbolNames() const;

  // Dynamic info.
  const std::vector<std::string>& needed() const { return needed_; }
  const std::string& soname() const { return soname_; }

  // PLT resolution.
  const std::vector<PltEntry>& plt_entries() const { return plt_entries_; }
  // Returns the imported symbol a call to `vaddr` lands on, or nullopt.
  std::optional<std::string> ResolvePltCall(uint64_t vaddr) const;

  // Address translation: bytes at a virtual address (within one section),
  // or empty span if unmapped.
  std::span<const uint8_t> DataAtVaddr(uint64_t vaddr, uint64_t size) const;

  // NUL-terminated string at a virtual address; nullopt if unmapped or
  // unterminated before the end of the containing section.
  std::optional<std::string> CStringAtVaddr(uint64_t vaddr) const;

  // Bytes from `vaddr` to the end of its containing section (empty if
  // unmapped). Used by consumers that read instruction streams of unknown
  // length, e.g. the dynamic tracer.
  std::span<const uint8_t> SpanFrom(uint64_t vaddr) const;

  // All NUL-terminated printable strings (length >= min_length) in sections
  // named .rodata / .data.
  std::vector<std::string> RodataStrings(size_t min_length = 4) const;

  const std::vector<uint8_t>& file_bytes() const { return file_; }

 private:
  friend class ElfReader;

  std::vector<uint8_t> file_;
  uint16_t type_ = kEtNone;
  uint64_t entry_ = 0;
  std::vector<Segment> segments_;
  std::vector<Section> sections_;
  std::vector<Symbol> symtab_;
  std::vector<Symbol> dynsym_;
  std::vector<std::string> needed_;
  std::string soname_;
  std::vector<PltEntry> plt_entries_;
};

}  // namespace lapis::elf

#endif  // LAPIS_SRC_ELF_ELF_IMAGE_H_
