// ELF64 (x86-64) parser.
//
// Parses headers, sections, symbol tables, the dynamic section, and resolves
// PLT stubs to imported symbol names — everything the static analyzer needs.
// Robust against truncated or corrupt inputs: every access is bounds-checked
// and failures come back as Status.

#ifndef LAPIS_SRC_ELF_ELF_READER_H_
#define LAPIS_SRC_ELF_ELF_READER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/elf/elf_image.h"
#include "src/util/status.h"

namespace lapis::elf {

class ElfReader {
 public:
  // Parses `bytes` (copied into the returned image).
  static Result<ElfImage> Parse(std::span<const uint8_t> bytes);

  // Convenience: load from a file on disk.
  static Result<ElfImage> ParseFile(const std::string& path);
};

}  // namespace lapis::elf

#endif  // LAPIS_SRC_ELF_ELF_READER_H_
