#include "src/elf/elf_reader.h"

#include <cstdio>
#include <map>

#include "src/util/bytes.h"

namespace lapis::elf {

namespace {

struct RawShdr {
  Shdr h;
};

Result<Ehdr> ParseEhdr(ByteReader& reader) {
  Ehdr ehdr{};
  LAPIS_ASSIGN_OR_RETURN(auto ident, reader.ReadBytes(kEiNident));
  for (int i = 0; i < kEiNident; ++i) {
    ehdr.e_ident[i] = ident[static_cast<size_t>(i)];
  }
  if (ehdr.e_ident[0] != kMag0 || ehdr.e_ident[1] != kMag1 ||
      ehdr.e_ident[2] != kMag2 || ehdr.e_ident[3] != kMag3) {
    return CorruptDataError("bad ELF magic");
  }
  if (ehdr.e_ident[4] != kClass64) {
    return UnimplementedError("only ELF64 is supported");
  }
  if (ehdr.e_ident[5] != kData2Lsb) {
    return UnimplementedError("only little-endian ELF is supported");
  }
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_type, reader.ReadU16());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_machine, reader.ReadU16());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_version, reader.ReadU32());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_entry, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_phoff, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_shoff, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_flags, reader.ReadU32());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_ehsize, reader.ReadU16());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_phentsize, reader.ReadU16());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_phnum, reader.ReadU16());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_shentsize, reader.ReadU16());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_shnum, reader.ReadU16());
  LAPIS_ASSIGN_OR_RETURN(ehdr.e_shstrndx, reader.ReadU16());
  if (ehdr.e_machine != kEmX8664) {
    return UnimplementedError("only x86-64 ELF is supported");
  }
  return ehdr;
}

Result<Shdr> ParseShdr(ByteReader& reader) {
  Shdr h{};
  LAPIS_ASSIGN_OR_RETURN(h.sh_name, reader.ReadU32());
  LAPIS_ASSIGN_OR_RETURN(h.sh_type, reader.ReadU32());
  LAPIS_ASSIGN_OR_RETURN(h.sh_flags, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(h.sh_addr, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(h.sh_offset, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(h.sh_size, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(h.sh_link, reader.ReadU32());
  uint32_t sh_info = 0;
  LAPIS_ASSIGN_OR_RETURN(sh_info, reader.ReadU32());
  (void)sh_info;
  uint64_t addralign = 0;
  LAPIS_ASSIGN_OR_RETURN(addralign, reader.ReadU64());
  (void)addralign;
  LAPIS_ASSIGN_OR_RETURN(h.sh_entsize, reader.ReadU64());
  h.sh_info = sh_info;
  h.sh_addralign = addralign;
  return h;
}

// Parses a symbol table section into Symbol records, resolving names via the
// linked string table.
Status ParseSymbols(const ElfImage& image, const Section& symtab_section,
                    uint32_t strtab_index, std::vector<Symbol>& out) {
  if (strtab_index >= image.sections().size()) {
    return CorruptDataError("symtab sh_link out of range");
  }
  const Section& strtab = image.sections()[strtab_index];
  ByteReader names(strtab.data);
  ByteReader reader(symtab_section.data);
  size_t count = symtab_section.data.size() / kSymSize;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Sym raw{};
    LAPIS_ASSIGN_OR_RETURN(raw.st_name, reader.ReadU32());
    LAPIS_ASSIGN_OR_RETURN(raw.st_info, reader.ReadU8());
    LAPIS_ASSIGN_OR_RETURN(raw.st_other, reader.ReadU8());
    LAPIS_ASSIGN_OR_RETURN(raw.st_shndx, reader.ReadU16());
    LAPIS_ASSIGN_OR_RETURN(raw.st_value, reader.ReadU64());
    LAPIS_ASSIGN_OR_RETURN(raw.st_size, reader.ReadU64());
    Symbol sym;
    if (raw.st_name != 0) {
      LAPIS_ASSIGN_OR_RETURN(sym.name, names.ReadCStringAt(raw.st_name));
    }
    sym.value = raw.st_value;
    sym.size = raw.st_size;
    sym.info = raw.st_info;
    sym.shndx = raw.st_shndx;
    out.push_back(std::move(sym));
  }
  return Status::Ok();
}

}  // namespace

Result<ElfImage> ElfReader::Parse(std::span<const uint8_t> bytes) {
  ElfImage image;
  image.file_.assign(bytes.begin(), bytes.end());
  std::span<const uint8_t> file(image.file_);
  ByteReader reader(file);

  LAPIS_ASSIGN_OR_RETURN(Ehdr ehdr, ParseEhdr(reader));
  image.type_ = ehdr.e_type;
  image.entry_ = ehdr.e_entry;

  // ---- Program headers ----
  if (ehdr.e_phoff != 0 && ehdr.e_phnum != 0) {
    LAPIS_RETURN_IF_ERROR(reader.Seek(ehdr.e_phoff));
    image.segments_.reserve(ehdr.e_phnum);
    for (uint16_t i = 0; i < ehdr.e_phnum; ++i) {
      Segment segment;
      LAPIS_ASSIGN_OR_RETURN(segment.type, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(segment.flags, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(segment.offset, reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(segment.vaddr, reader.ReadU64());
      uint64_t paddr = 0;
      LAPIS_ASSIGN_OR_RETURN(paddr, reader.ReadU64());
      (void)paddr;
      LAPIS_ASSIGN_OR_RETURN(segment.filesz, reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(segment.memsz, reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(segment.align, reader.ReadU64());
      image.segments_.push_back(segment);
    }
  }

  // ---- Section headers ----
  if (ehdr.e_shoff == 0 || ehdr.e_shnum == 0) {
    return CorruptDataError("missing section headers");
  }
  std::vector<Shdr> shdrs;
  shdrs.reserve(ehdr.e_shnum);
  LAPIS_RETURN_IF_ERROR(reader.Seek(ehdr.e_shoff));
  for (uint16_t i = 0; i < ehdr.e_shnum; ++i) {
    LAPIS_ASSIGN_OR_RETURN(Shdr h, ParseShdr(reader));
    shdrs.push_back(h);
  }
  if (ehdr.e_shstrndx >= shdrs.size()) {
    return CorruptDataError("e_shstrndx out of range");
  }
  const Shdr& shstr = shdrs[ehdr.e_shstrndx];
  if (shstr.sh_offset + shstr.sh_size > file.size()) {
    return CorruptDataError("shstrtab out of bounds");
  }
  ByteReader shstr_reader(file.subspan(shstr.sh_offset, shstr.sh_size));

  image.sections_.reserve(shdrs.size());
  for (const Shdr& h : shdrs) {
    Section s;
    LAPIS_ASSIGN_OR_RETURN(s.name, shstr_reader.ReadCStringAt(h.sh_name));
    s.type = h.sh_type;
    s.flags = h.sh_flags;
    s.addr = h.sh_addr;
    s.offset = h.sh_offset;
    s.size = h.sh_size;
    s.link = h.sh_link;
    s.entsize = h.sh_entsize;
    if (h.sh_type != kShtNull && h.sh_type != kShtNobits && h.sh_size > 0) {
      if (h.sh_offset + h.sh_size > file.size()) {
        return CorruptDataError("section '" + s.name + "' out of bounds");
      }
      s.data = file.subspan(h.sh_offset, h.sh_size);
    }
    image.sections_.push_back(std::move(s));
  }

  // ---- Symbol tables ----
  for (size_t i = 0; i < image.sections_.size(); ++i) {
    const Section& s = image.sections_[i];
    if (s.type == kShtSymtab) {
      LAPIS_RETURN_IF_ERROR(ParseSymbols(image, s, s.link, image.symtab_));
    } else if (s.type == kShtDynsym) {
      LAPIS_RETURN_IF_ERROR(ParseSymbols(image, s, s.link, image.dynsym_));
    }
  }

  // ---- Dynamic section (DT_NEEDED, DT_SONAME) ----
  const Section* dynamic = image.FindSection(".dynamic");
  const Section* dynstr = image.FindSection(".dynstr");
  if (dynamic != nullptr && dynstr != nullptr) {
    ByteReader dyn_reader(dynamic->data);
    ByteReader str_reader(dynstr->data);
    size_t count = dynamic->data.size() / kDynSize;
    for (size_t i = 0; i < count; ++i) {
      LAPIS_ASSIGN_OR_RETURN(int64_t tag, dyn_reader.ReadI64());
      LAPIS_ASSIGN_OR_RETURN(uint64_t val, dyn_reader.ReadU64());
      if (tag == kDtNull) {
        break;
      }
      if (tag == kDtNeeded) {
        LAPIS_ASSIGN_OR_RETURN(std::string name, str_reader.ReadCStringAt(val));
        image.needed_.push_back(std::move(name));
      } else if (tag == kDtSoname) {
        LAPIS_ASSIGN_OR_RETURN(image.soname_, str_reader.ReadCStringAt(val));
      }
    }
  }

  // ---- PLT resolution ----
  // Each PLT stub is 16 bytes starting with `ff 25 rel32` (jmp *[rip+disp]);
  // the GOT slot it dereferences carries an R_X86_64_JUMP_SLOT relocation
  // naming the imported symbol.
  const Section* plt = image.FindSection(".plt");
  const Section* relaplt = image.FindSection(".rela.plt");
  if (plt != nullptr && relaplt != nullptr && !image.dynsym_.empty()) {
    // Map GOT slot vaddr -> dynsym index.
    std::map<uint64_t, uint32_t> got_to_sym;
    ByteReader rela_reader(relaplt->data);
    size_t rela_count = relaplt->data.size() / kRelaSize;
    for (size_t i = 0; i < rela_count; ++i) {
      LAPIS_ASSIGN_OR_RETURN(uint64_t r_offset, rela_reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(uint64_t r_info, rela_reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(int64_t r_addend, rela_reader.ReadI64());
      (void)r_addend;
      if (RType(r_info) == kRX8664JumpSlot) {
        got_to_sym[r_offset] = RSym(r_info);
      }
    }
    for (uint64_t off = 0; off + 6 <= plt->size; off += 16) {
      const uint8_t* stub = plt->data.data() + off;
      if (stub[0] != 0xff || stub[1] != 0x25) {
        continue;
      }
      int32_t disp = static_cast<int32_t>(
          static_cast<uint32_t>(stub[2]) | static_cast<uint32_t>(stub[3]) << 8 |
          static_cast<uint32_t>(stub[4]) << 16 |
          static_cast<uint32_t>(stub[5]) << 24);
      uint64_t stub_vaddr = plt->addr + off;
      uint64_t got_vaddr = stub_vaddr + 6 + static_cast<uint64_t>(
          static_cast<int64_t>(disp));
      auto it = got_to_sym.find(got_vaddr);
      if (it == got_to_sym.end()) {
        continue;
      }
      if (it->second >= image.dynsym_.size()) {
        return CorruptDataError("rela.plt symbol index out of range");
      }
      image.plt_entries_.push_back(
          PltEntry{stub_vaddr, image.dynsym_[it->second].name});
    }
  }

  return image;
}

Result<ElfImage> ElfReader::ParseFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return Parse(bytes);
}

}  // namespace lapis::elf
