#include "src/elf/elf_image.h"

#include "src/util/strings.h"

namespace lapis::elf {

const Segment* ElfImage::LoadSegmentFor(uint64_t vaddr) const {
  for (const auto& segment : segments_) {
    if (segment.IsLoad() && segment.ContainsVaddr(vaddr)) {
      return &segment;
    }
  }
  return nullptr;
}

Status ElfImage::ValidateLayout() const {
  for (const auto& segment : segments_) {
    if (segment.filesz > segment.memsz) {
      return CorruptDataError("segment filesz exceeds memsz");
    }
    if (segment.offset + segment.filesz > file_.size()) {
      return CorruptDataError("segment extends past end of file");
    }
  }
  for (const auto& section : sections_) {
    if ((section.flags & kShfAlloc) == 0 || section.size == 0) {
      continue;
    }
    const Segment* segment = LoadSegmentFor(section.addr);
    if (segment == nullptr ||
        !segment->ContainsVaddr(section.addr + section.size - 1)) {
      return CorruptDataError("allocated section '" + section.name +
                              "' is not covered by a LOAD segment");
    }
    if ((section.flags & kShfExecinstr) != 0 && !segment->Executable()) {
      return CorruptDataError("executable section '" + section.name +
                              "' in a non-executable segment");
    }
    if ((section.flags & kShfWrite) != 0 && !segment->Writable()) {
      return CorruptDataError("writable section '" + section.name +
                              "' in a read-only segment");
    }
  }
  return Status::Ok();
}

const Section* ElfImage::FindSection(std::string_view name) const {
  for (const auto& s : sections_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const Symbol*> ElfImage::DefinedFunctions() const {
  std::vector<const Symbol*> out;
  for (const auto& sym : symtab_) {
    if (sym.IsFunction() && sym.IsDefined()) {
      out.push_back(&sym);
    }
  }
  return out;
}

std::vector<const Symbol*> ElfImage::ExportedFunctions() const {
  std::vector<const Symbol*> out;
  for (const auto& sym : dynsym_) {
    if (sym.IsFunction() && sym.IsDefined() && sym.bind() == kStbGlobal) {
      out.push_back(&sym);
    }
  }
  return out;
}

std::vector<std::string> ElfImage::ImportedSymbolNames() const {
  std::vector<std::string> out;
  for (const auto& sym : dynsym_) {
    if (!sym.IsDefined() && !sym.name.empty()) {
      out.push_back(sym.name);
    }
  }
  return out;
}

std::optional<std::string> ElfImage::ResolvePltCall(uint64_t vaddr) const {
  for (const auto& entry : plt_entries_) {
    if (entry.plt_vaddr == vaddr) {
      return entry.symbol_name;
    }
  }
  return std::nullopt;
}

std::span<const uint8_t> ElfImage::DataAtVaddr(uint64_t vaddr,
                                               uint64_t size) const {
  for (const auto& s : sections_) {
    if ((s.flags & kShfAlloc) == 0 || s.type == kShtNobits) {
      continue;
    }
    if (vaddr >= s.addr && vaddr + size <= s.addr + s.size) {
      return s.data.subspan(vaddr - s.addr, size);
    }
  }
  return {};
}

std::span<const uint8_t> ElfImage::SpanFrom(uint64_t vaddr) const {
  for (const auto& s : sections_) {
    if ((s.flags & kShfAlloc) == 0 || s.type == kShtNobits) {
      continue;
    }
    if (vaddr >= s.addr && vaddr < s.addr + s.size) {
      return s.data.subspan(vaddr - s.addr);
    }
  }
  return {};
}

std::optional<std::string> ElfImage::CStringAtVaddr(uint64_t vaddr) const {
  for (const auto& s : sections_) {
    if ((s.flags & kShfAlloc) == 0 || s.type == kShtNobits) {
      continue;
    }
    if (vaddr >= s.addr && vaddr < s.addr + s.size) {
      uint64_t offset = vaddr - s.addr;
      for (uint64_t i = offset; i < s.size; ++i) {
        if (s.data[i] == 0) {
          return std::string(
              reinterpret_cast<const char*>(s.data.data() + offset),
              i - offset);
        }
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::vector<std::string> ElfImage::RodataStrings(size_t min_length) const {
  std::vector<std::string> out;
  for (const auto& s : sections_) {
    if (s.name != ".rodata" && s.name != ".data") {
      continue;
    }
    size_t start = 0;
    const auto& data = s.data;
    for (size_t i = 0; i <= data.size(); ++i) {
      if (i == data.size() || data[i] == 0) {
        size_t len = i - start;
        if (len >= min_length) {
          std::string candidate(
              reinterpret_cast<const char*>(data.data() + start), len);
          if (IsPrintableAscii(candidate)) {
            out.push_back(std::move(candidate));
          }
        }
        start = i + 1;
      }
    }
  }
  return out;
}

}  // namespace lapis::elf
