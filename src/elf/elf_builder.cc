#include "src/elf/elf_builder.h"

#include <algorithm>

#include "src/elf/elf_defs.h"
#include "src/util/bytes.h"

namespace lapis::elf {

namespace {

constexpr uint64_t kExecBase = 0x400000;
constexpr uint64_t kPltStubSize = 16;
constexpr uint64_t kGotEntrySize = 8;

// Accumulates a string table (index 0 is the empty string).
class StringTable {
 public:
  StringTable() { data_.push_back(0); }

  uint32_t Add(std::string_view s) {
    if (s.empty()) {
      return 0;
    }
    auto it = offsets_.find(std::string(s));
    if (it != offsets_.end()) {
      return it->second;
    }
    uint32_t off = static_cast<uint32_t>(data_.size());
    data_.insert(data_.end(), s.begin(), s.end());
    data_.push_back(0);
    offsets_.emplace(std::string(s), off);
    return off;
  }

  const std::vector<uint8_t>& data() const { return data_; }

 private:
  std::vector<uint8_t> data_;
  std::unordered_map<std::string, uint32_t> offsets_;
};

void WriteSym(ByteWriter& w, uint32_t name, uint8_t info, uint16_t shndx,
              uint64_t value, uint64_t size) {
  w.PutU32(name);
  w.PutU8(info);
  w.PutU8(0);  // st_other
  w.PutU16(shndx);
  w.PutU64(value);
  w.PutU64(size);
}

struct SectionPlan {
  std::string name;
  uint32_t type = kShtProgbits;
  uint64_t flags = 0;
  uint64_t align = 8;
  uint64_t entsize = 0;
  uint32_t link = 0;
  std::vector<uint8_t> data;
  // Filled during layout:
  uint64_t offset = 0;
  uint64_t addr = 0;
};

}  // namespace

uint32_t ElfBuilder::AddImport(const std::string& symbol) {
  auto it = import_index_.find(symbol);
  if (it != import_index_.end()) {
    return it->second;
  }
  uint32_t index = static_cast<uint32_t>(imports_.size());
  imports_.push_back(symbol);
  import_index_.emplace(symbol, index);
  return index;
}

uint32_t ElfBuilder::AddRodata(std::span<const uint8_t> data) {
  uint32_t off = static_cast<uint32_t>(rodata_.size());
  rodata_.insert(rodata_.end(), data.begin(), data.end());
  return off;
}

uint32_t ElfBuilder::AddRodataString(std::string_view s) {
  uint32_t off = static_cast<uint32_t>(rodata_.size());
  rodata_.insert(rodata_.end(), s.begin(), s.end());
  rodata_.push_back(0);
  return off;
}

uint32_t ElfBuilder::AddFunction(FunctionDef fn) {
  functions_.push_back(std::move(fn));
  return static_cast<uint32_t>(functions_.size() - 1);
}

Status ElfBuilder::SetEntryFunction(uint32_t function_index) {
  if (function_index >= functions_.size()) {
    return InvalidArgumentError("entry function index out of range");
  }
  entry_function_ = function_index;
  return Status::Ok();
}

Result<std::vector<uint8_t>> ElfBuilder::Build() const {
  if (type_ == BinaryType::kExecutable && entry_function_ < 0) {
    return FailedPreconditionError("executable requires an entry function");
  }
  for (const auto& fn : functions_) {
    for (const auto& reloc : fn.relocs) {
      if (reloc.offset + 4 > fn.body.size()) {
        return InvalidArgumentError("relocation outside function body in " +
                                    fn.name);
      }
      switch (reloc.kind) {
        case TextReloc::Kind::kPltCall:
          if (reloc.target >= imports_.size()) {
            return InvalidArgumentError("plt reloc target out of range");
          }
          break;
        case TextReloc::Kind::kLocalCall:
          if (reloc.target >= functions_.size()) {
            return InvalidArgumentError("local call target out of range");
          }
          break;
        case TextReloc::Kind::kRodataRef:
          if (reloc.target >= rodata_.size()) {
            return InvalidArgumentError("rodata reloc target out of range");
          }
          break;
      }
    }
  }

  const uint64_t base = type_ == BinaryType::kExecutable ? kExecBase : 0;

  // ---- String tables ----
  StringTable dynstr;
  for (const auto& lib : needed_) {
    dynstr.Add(lib);
  }
  if (!soname_.empty()) {
    dynstr.Add(soname_);
  }
  std::vector<uint32_t> import_names;
  import_names.reserve(imports_.size());
  for (const auto& sym : imports_) {
    import_names.push_back(dynstr.Add(sym));
  }
  std::vector<uint32_t> export_names;
  for (const auto& fn : functions_) {
    export_names.push_back(fn.exported ? dynstr.Add(fn.name) : 0);
  }

  StringTable strtab;
  std::vector<uint32_t> symtab_names;
  symtab_names.reserve(functions_.size());
  for (const auto& fn : functions_) {
    symtab_names.push_back(strtab.Add(fn.name));
  }

  // ---- .text layout: functions 16-byte aligned ----
  std::vector<uint64_t> fn_text_offset(functions_.size());
  uint64_t text_size = 0;
  for (size_t i = 0; i < functions_.size(); ++i) {
    text_size = (text_size + 15) & ~15ULL;
    fn_text_offset[i] = text_size;
    text_size += functions_[i].body.size();
  }

  // ---- Section plans, in file order ----
  // Order: .dynsym .dynstr .rela.plt .plt .text .rodata .got.plt .dynamic
  //        .symtab .strtab .shstrtab  (+ leading null section header).
  enum SectionIndex : uint32_t {
    kIdxNull = 0,
    kIdxDynsym,
    kIdxDynstr,
    kIdxRelaPlt,
    kIdxPlt,
    kIdxText,
    kIdxRodata,
    kIdxGotPlt,
    kIdxDynamic,
    kIdxSymtab,
    kIdxStrtab,
    kIdxShstrtab,
    kSectionCount,
  };

  std::vector<SectionPlan> plans(kSectionCount);
  plans[kIdxNull].name = "";
  plans[kIdxNull].type = kShtNull;
  plans[kIdxNull].align = 0;

  // .dynsym: null + imports (UND) + exported functions.
  {
    SectionPlan& p = plans[kIdxDynsym];
    p.name = ".dynsym";
    p.type = kShtDynsym;
    p.flags = kShfAlloc;
    p.entsize = kSymSize;
    p.link = kIdxDynstr;
    ByteWriter w;
    WriteSym(w, 0, 0, kShnUndef, 0, 0);
    for (size_t i = 0; i < imports_.size(); ++i) {
      WriteSym(w, import_names[i], StInfo(kStbGlobal, kSttFunc), kShnUndef, 0,
               0);
    }
    // Export values patched after layout (need .text addr); remember where.
    for (size_t i = 0; i < functions_.size(); ++i) {
      if (functions_[i].exported) {
        WriteSym(w, export_names[i], StInfo(kStbGlobal, kSttFunc), kIdxText, 0,
                 functions_[i].body.size());
      }
    }
    p.data = w.Take();
  }

  plans[kIdxDynstr] = SectionPlan{
      .name = ".dynstr", .type = kShtStrtab, .flags = kShfAlloc, .align = 1,
      .entsize = 0, .link = 0, .data = dynstr.data()};

  // .rela.plt: filled after layout (needs .got.plt addr); size known now.
  {
    SectionPlan& p = plans[kIdxRelaPlt];
    p.name = ".rela.plt";
    p.type = kShtRela;
    p.flags = kShfAlloc;
    p.entsize = kRelaSize;
    p.link = kIdxDynsym;
    p.data.resize(imports_.size() * kRelaSize);
  }

  // .plt: stubs filled after layout; size known now.
  {
    SectionPlan& p = plans[kIdxPlt];
    p.name = ".plt";
    p.type = kShtProgbits;
    p.flags = kShfAlloc | kShfExecinstr;
    p.align = 16;
    p.data.resize(imports_.size() * kPltStubSize);
  }

  // .text: bodies placed; relocations patched after layout.
  {
    SectionPlan& p = plans[kIdxText];
    p.name = ".text";
    p.type = kShtProgbits;
    p.flags = kShfAlloc | kShfExecinstr;
    p.align = 16;
    p.data.assign(text_size, 0x90);  // nop padding between functions
    for (size_t i = 0; i < functions_.size(); ++i) {
      std::copy(functions_[i].body.begin(), functions_[i].body.end(),
                p.data.begin() + static_cast<ptrdiff_t>(fn_text_offset[i]));
    }
  }

  plans[kIdxRodata] = SectionPlan{
      .name = ".rodata", .type = kShtProgbits, .flags = kShfAlloc, .align = 8,
      .entsize = 0, .link = 0, .data = rodata_};

  {
    SectionPlan& p = plans[kIdxGotPlt];
    p.name = ".got.plt";
    p.type = kShtProgbits;
    p.flags = kShfAlloc | kShfWrite;
    p.data.resize(imports_.size() * kGotEntrySize);
  }

  // .dynamic: filled after layout; count entries now.
  {
    size_t entries = needed_.size() + (soname_.empty() ? 0 : 1) +
                     /* STRTAB SYMTAB STRSZ SYMENT */ 4 +
                     (imports_.empty() ? 0 : 3) /* JMPREL PLTRELSZ/PLTREL */ +
                     (imports_.empty() ? 0 : 1) /* PLTGOT */ + 1 /* NULL */;
    SectionPlan& p = plans[kIdxDynamic];
    p.name = ".dynamic";
    p.type = kShtDynamic;
    p.flags = kShfAlloc | kShfWrite;
    p.entsize = kDynSize;
    p.link = kIdxDynstr;
    p.data.resize(entries * kDynSize);
  }

  // .symtab: null + all functions; values patched after layout.
  {
    SectionPlan& p = plans[kIdxSymtab];
    p.name = ".symtab";
    p.type = kShtSymtab;
    p.entsize = kSymSize;
    p.link = kIdxStrtab;
    ByteWriter w;
    WriteSym(w, 0, 0, kShnUndef, 0, 0);
    // Locals first (required ordering), then globals.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < functions_.size(); ++i) {
        bool global = functions_[i].exported;
        if ((pass == 0) == global) {
          continue;
        }
        WriteSym(w, symtab_names[i],
                 StInfo(global ? kStbGlobal : kStbLocal, kSttFunc), kIdxText, 0,
                 functions_[i].body.size());
      }
    }
    p.data = w.Take();
  }

  plans[kIdxStrtab] = SectionPlan{
      .name = ".strtab", .type = kShtStrtab, .flags = 0, .align = 1,
      .entsize = 0, .link = 0, .data = strtab.data()};

  // .shstrtab built from plan names.
  StringTable shstr;
  std::vector<uint32_t> section_name_offsets(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    if (i == kIdxShstrtab) {
      section_name_offsets[i] = shstr.Add(".shstrtab");
    } else {
      section_name_offsets[i] = shstr.Add(plans[i].name);
    }
  }
  plans[kIdxShstrtab] = SectionPlan{
      .name = ".shstrtab", .type = kShtStrtab, .flags = 0, .align = 1,
      .entsize = 0, .link = 0, .data = shstr.data()};

  // ---- Layout: ehdr, phdrs, then sections in order; vaddr = base + offset.
  const uint16_t phnum = 3;  // LOAD(RX) LOAD(RW) DYNAMIC
  uint64_t cursor = kEhdrSize + static_cast<uint64_t>(phnum) * kPhdrSize;
  for (size_t i = 1; i < plans.size(); ++i) {
    SectionPlan& p = plans[i];
    uint64_t align = std::max<uint64_t>(p.align, 1);
    cursor = (cursor + align - 1) & ~(align - 1);
    p.offset = cursor;
    if ((p.flags & kShfAlloc) != 0) {
      p.addr = base + cursor;
    }
    cursor += p.data.size();
  }
  uint64_t shoff = (cursor + 7) & ~7ULL;

  // ---- Patch .dynsym export values ----
  {
    auto& data = plans[kIdxDynsym].data;
    size_t record = 1 + imports_.size();
    for (size_t i = 0; i < functions_.size(); ++i) {
      if (!functions_[i].exported) {
        continue;
      }
      uint64_t value = plans[kIdxText].addr + fn_text_offset[i];
      size_t field = record * kSymSize + 8;  // st_value at offset 8
      for (int b = 0; b < 8; ++b) {
        data[field + static_cast<size_t>(b)] =
            static_cast<uint8_t>(value >> (8 * b));
      }
      ++record;
    }
  }

  // ---- Patch .symtab values (locals then globals, matching the emit order).
  {
    auto& data = plans[kIdxSymtab].data;
    size_t record = 1;
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < functions_.size(); ++i) {
        bool global = functions_[i].exported;
        if ((pass == 0) == global) {
          continue;
        }
        uint64_t value = plans[kIdxText].addr + fn_text_offset[i];
        size_t field = record * kSymSize + 8;
        for (int b = 0; b < 8; ++b) {
          data[field + static_cast<size_t>(b)] =
              static_cast<uint8_t>(value >> (8 * b));
        }
        ++record;
      }
    }
  }

  // ---- Fill .plt stubs and .rela.plt ----
  {
    auto& plt = plans[kIdxPlt].data;
    ByteWriter rela;
    for (size_t i = 0; i < imports_.size(); ++i) {
      uint64_t stub_vaddr = plans[kIdxPlt].addr + i * kPltStubSize;
      uint64_t got_vaddr = plans[kIdxGotPlt].addr + i * kGotEntrySize;
      int64_t disp = static_cast<int64_t>(got_vaddr) -
                     static_cast<int64_t>(stub_vaddr + 6);
      size_t off = i * kPltStubSize;
      plt[off] = 0xff;
      plt[off + 1] = 0x25;
      for (int b = 0; b < 4; ++b) {
        plt[off + 2 + static_cast<size_t>(b)] =
            static_cast<uint8_t>(static_cast<uint64_t>(disp) >> (8 * b));
      }
      // Pad remainder with nops.
      for (size_t b = 6; b < kPltStubSize; ++b) {
        plt[off + b] = 0x90;
      }
      rela.PutU64(got_vaddr);
      rela.PutU64(RInfo(static_cast<uint32_t>(i + 1), kRX8664JumpSlot));
      rela.PutI64(0);
    }
    plans[kIdxRelaPlt].data = rela.Take();
  }

  // ---- Patch .text relocations ----
  {
    auto& text = plans[kIdxText].data;
    uint64_t text_addr = plans[kIdxText].addr;
    for (size_t i = 0; i < functions_.size(); ++i) {
      for (const auto& reloc : functions_[i].relocs) {
        uint64_t field_vaddr = text_addr + fn_text_offset[i] + reloc.offset;
        uint64_t target_vaddr = 0;
        switch (reloc.kind) {
          case TextReloc::Kind::kPltCall:
            target_vaddr = plans[kIdxPlt].addr + reloc.target * kPltStubSize;
            break;
          case TextReloc::Kind::kLocalCall:
            target_vaddr = text_addr + fn_text_offset[reloc.target];
            break;
          case TextReloc::Kind::kRodataRef:
            target_vaddr = plans[kIdxRodata].addr + reloc.target;
            break;
        }
        int64_t rel = static_cast<int64_t>(target_vaddr) -
                      static_cast<int64_t>(field_vaddr + 4);
        size_t field = static_cast<size_t>(fn_text_offset[i]) + reloc.offset;
        for (int b = 0; b < 4; ++b) {
          text[field + static_cast<size_t>(b)] =
              static_cast<uint8_t>(static_cast<uint64_t>(rel) >> (8 * b));
        }
      }
    }
  }

  // ---- Fill .dynamic ----
  {
    ByteWriter w;
    auto put = [&w](int64_t tag, uint64_t val) {
      w.PutI64(tag);
      w.PutU64(val);
    };
    StringTable dynstr_lookup;  // same insertion order as `dynstr` above
    for (const auto& lib : needed_) {
      put(kDtNeeded, dynstr_lookup.Add(lib));
    }
    if (!soname_.empty()) {
      put(kDtSoname, dynstr_lookup.Add(soname_));
    }
    put(kDtStrtab, plans[kIdxDynstr].addr);
    put(kDtSymtab, plans[kIdxDynsym].addr);
    put(kDtStrsz, plans[kIdxDynstr].data.size());
    put(kDtSyment, kSymSize);
    if (!imports_.empty()) {
      put(kDtJmprel, plans[kIdxRelaPlt].addr);
      put(kDtPltrelsz, plans[kIdxRelaPlt].data.size());
      put(kDtPltrel, 7 /* DT_RELA */);
      put(kDtPltgot, plans[kIdxGotPlt].addr);
    }
    put(kDtNull, 0);
    plans[kIdxDynamic].data = w.Take();
  }

  // ---- Serialize ----
  ByteWriter out;
  // ehdr
  out.PutU8(kMag0);
  out.PutU8(kMag1);
  out.PutU8(kMag2);
  out.PutU8(kMag3);
  out.PutU8(kClass64);
  out.PutU8(kData2Lsb);
  out.PutU8(kEvCurrent);
  out.PutU8(kOsabiSysv);
  for (int i = 8; i < kEiNident; ++i) {
    out.PutU8(0);
  }
  out.PutU16(type_ == BinaryType::kExecutable ? kEtExec : kEtDyn);
  out.PutU16(kEmX8664);
  out.PutU32(1);  // e_version
  uint64_t entry = 0;
  if (type_ == BinaryType::kExecutable) {
    entry = plans[kIdxText].addr +
            fn_text_offset[static_cast<size_t>(entry_function_)];
  }
  out.PutU64(entry);
  out.PutU64(kEhdrSize);  // e_phoff: phdrs follow the ehdr
  out.PutU64(shoff);
  out.PutU32(0);          // e_flags
  out.PutU16(kEhdrSize);
  out.PutU16(kPhdrSize);
  out.PutU16(phnum);
  out.PutU16(kShdrSize);
  out.PutU16(static_cast<uint16_t>(plans.size()));
  out.PutU16(kIdxShstrtab);

  // phdrs
  auto put_phdr = [&out](uint32_t type, uint32_t flags, uint64_t offset,
                         uint64_t vaddr, uint64_t size) {
    out.PutU32(type);
    out.PutU32(flags);
    out.PutU64(offset);
    out.PutU64(vaddr);
    out.PutU64(vaddr);  // p_paddr
    out.PutU64(size);
    out.PutU64(size);
    out.PutU64(0x1000);
  };
  // RX: file start through end of .rodata.
  uint64_t rx_end = plans[kIdxRodata].offset + plans[kIdxRodata].data.size();
  put_phdr(kPtLoad, kPfR | kPfX, 0, base, rx_end);
  // RW: .got.plt + .dynamic.
  uint64_t rw_off = plans[kIdxGotPlt].offset;
  uint64_t rw_end = plans[kIdxDynamic].offset + plans[kIdxDynamic].data.size();
  put_phdr(kPtLoad, kPfR | kPfW, rw_off, base + rw_off, rw_end - rw_off);
  put_phdr(kPtDynamic, kPfR | kPfW, plans[kIdxDynamic].offset,
           plans[kIdxDynamic].addr,
           plans[kIdxDynamic].data.size());

  // section bodies
  for (size_t i = 1; i < plans.size(); ++i) {
    while (out.size() < plans[i].offset) {
      out.PutU8(0);
    }
    out.PutBytes(plans[i].data);
  }

  // section headers
  while (out.size() < shoff) {
    out.PutU8(0);
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    const SectionPlan& p = plans[i];
    out.PutU32(section_name_offsets[i]);
    out.PutU32(p.type);
    out.PutU64(p.flags);
    out.PutU64(p.addr);
    out.PutU64(i == 0 ? 0 : p.offset);
    out.PutU64(p.data.size());
    out.PutU32(p.link);
    out.PutU32(0);  // sh_info
    out.PutU64(p.align);
    out.PutU64(p.entsize);
  }

  return out.Take();
}

}  // namespace lapis::elf
