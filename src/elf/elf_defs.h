// ELF64 on-disk structures and constants (x86-64 subset).
//
// lapis carries its own definitions rather than including <elf.h> so the
// reader/writer are self-contained and the subset we support is explicit.
// Field names follow the ELF specification (e_*, p_*, sh_*, st_*, r_*, d_*).

#ifndef LAPIS_SRC_ELF_ELF_DEFS_H_
#define LAPIS_SRC_ELF_ELF_DEFS_H_

#include <cstdint>

namespace lapis::elf {

// ---- e_ident ----
inline constexpr uint8_t kMag0 = 0x7f;
inline constexpr uint8_t kMag1 = 'E';
inline constexpr uint8_t kMag2 = 'L';
inline constexpr uint8_t kMag3 = 'F';
inline constexpr uint8_t kClass64 = 2;        // ELFCLASS64
inline constexpr uint8_t kData2Lsb = 1;       // ELFDATA2LSB
inline constexpr uint8_t kEvCurrent = 1;      // EV_CURRENT
inline constexpr uint8_t kOsabiSysv = 0;      // ELFOSABI_SYSV
inline constexpr int kEiNident = 16;

// ---- e_type ----
inline constexpr uint16_t kEtNone = 0;
inline constexpr uint16_t kEtRel = 1;
inline constexpr uint16_t kEtExec = 2;
inline constexpr uint16_t kEtDyn = 3;

// ---- e_machine ----
inline constexpr uint16_t kEmX8664 = 62;  // EM_X86_64

// ---- Section types ----
inline constexpr uint32_t kShtNull = 0;
inline constexpr uint32_t kShtProgbits = 1;
inline constexpr uint32_t kShtSymtab = 2;
inline constexpr uint32_t kShtStrtab = 3;
inline constexpr uint32_t kShtRela = 4;
inline constexpr uint32_t kShtDynamic = 6;
inline constexpr uint32_t kShtNobits = 8;
inline constexpr uint32_t kShtDynsym = 11;

// ---- Section flags ----
inline constexpr uint64_t kShfWrite = 0x1;
inline constexpr uint64_t kShfAlloc = 0x2;
inline constexpr uint64_t kShfExecinstr = 0x4;

// ---- Program header types ----
inline constexpr uint32_t kPtNull = 0;
inline constexpr uint32_t kPtLoad = 1;
inline constexpr uint32_t kPtDynamic = 2;

// ---- Program header flags ----
inline constexpr uint32_t kPfX = 0x1;
inline constexpr uint32_t kPfW = 0x2;
inline constexpr uint32_t kPfR = 0x4;

// ---- Symbol binding / type (st_info) ----
inline constexpr uint8_t kStbLocal = 0;
inline constexpr uint8_t kStbGlobal = 1;
inline constexpr uint8_t kSttNotype = 0;
inline constexpr uint8_t kSttObject = 1;
inline constexpr uint8_t kSttFunc = 2;
inline constexpr uint16_t kShnUndef = 0;

constexpr uint8_t StInfo(uint8_t bind, uint8_t type) {
  return static_cast<uint8_t>((bind << 4) | (type & 0xf));
}
constexpr uint8_t StBind(uint8_t info) { return info >> 4; }
constexpr uint8_t StType(uint8_t info) { return info & 0xf; }

// ---- Dynamic tags ----
inline constexpr int64_t kDtNull = 0;
inline constexpr int64_t kDtNeeded = 1;
inline constexpr int64_t kDtPltrelsz = 2;
inline constexpr int64_t kDtPltgot = 3;
inline constexpr int64_t kDtStrtab = 5;
inline constexpr int64_t kDtSymtab = 6;
inline constexpr int64_t kDtStrsz = 10;
inline constexpr int64_t kDtSyment = 11;
inline constexpr int64_t kDtSoname = 14;
inline constexpr int64_t kDtRela = 7;
inline constexpr int64_t kDtPltrel = 20;
inline constexpr int64_t kDtJmprel = 23;

// ---- Relocation types (x86-64) ----
inline constexpr uint32_t kRX8664JumpSlot = 7;

constexpr uint64_t RInfo(uint32_t sym, uint32_t type) {
  return (static_cast<uint64_t>(sym) << 32) | type;
}
constexpr uint32_t RSym(uint64_t info) { return static_cast<uint32_t>(info >> 32); }
constexpr uint32_t RType(uint64_t info) { return static_cast<uint32_t>(info); }

// ---- Structure sizes (on-disk, ELF64) ----
inline constexpr uint16_t kEhdrSize = 64;
inline constexpr uint16_t kPhdrSize = 56;
inline constexpr uint16_t kShdrSize = 64;
inline constexpr uint64_t kSymSize = 24;
inline constexpr uint64_t kRelaSize = 24;
inline constexpr uint64_t kDynSize = 16;

// In-memory mirrors of the on-disk structures. Serialization goes through
// ByteWriter/ByteReader, so these need not be layout-identical, but field
// order matches the spec for clarity.
struct Ehdr {
  uint8_t e_ident[kEiNident];
  uint16_t e_type;
  uint16_t e_machine;
  uint32_t e_version;
  uint64_t e_entry;
  uint64_t e_phoff;
  uint64_t e_shoff;
  uint32_t e_flags;
  uint16_t e_ehsize;
  uint16_t e_phentsize;
  uint16_t e_phnum;
  uint16_t e_shentsize;
  uint16_t e_shnum;
  uint16_t e_shstrndx;
};

struct Phdr {
  uint32_t p_type;
  uint32_t p_flags;
  uint64_t p_offset;
  uint64_t p_vaddr;
  uint64_t p_paddr;
  uint64_t p_filesz;
  uint64_t p_memsz;
  uint64_t p_align;
};

struct Shdr {
  uint32_t sh_name;
  uint32_t sh_type;
  uint64_t sh_flags;
  uint64_t sh_addr;
  uint64_t sh_offset;
  uint64_t sh_size;
  uint32_t sh_link;
  uint32_t sh_info;
  uint64_t sh_addralign;
  uint64_t sh_entsize;
};

struct Sym {
  uint32_t st_name;
  uint8_t st_info;
  uint8_t st_other;
  uint16_t st_shndx;
  uint64_t st_value;
  uint64_t st_size;
};

struct Rela {
  uint64_t r_offset;
  uint64_t r_info;
  int64_t r_addend;
};

struct Dyn {
  int64_t d_tag;
  uint64_t d_val;
};

}  // namespace lapis::elf

#endif  // LAPIS_SRC_ELF_ELF_DEFS_H_
