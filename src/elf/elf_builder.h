// ELF64 (x86-64) binary synthesis.
//
// ElfBuilder assembles a valid ELF executable or shared library from function
// bodies produced by the code generator (src/codegen). Function bodies carry
// symbolic relocations (PLT call / local call / rodata reference) that the
// builder resolves once the final layout is known, so the code generator never
// needs to know absolute addresses.
//
// The emitted binaries carry everything the study's analysis pipeline consumes
// in real distribution binaries: .text, .rodata, .plt + .rela.plt + .got.plt,
// .dynsym/.dynstr with imports and exports, DT_NEEDED entries, and a full
// .symtab giving function boundaries.

#ifndef LAPIS_SRC_ELF_ELF_BUILDER_H_
#define LAPIS_SRC_ELF_ELF_BUILDER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace lapis::elf {

enum class BinaryType {
  kExecutable,     // ET_EXEC, base vaddr 0x400000
  kSharedLibrary,  // ET_DYN, base vaddr 0
};

// A fix-up within a function body: a rel32 field to be patched once layout
// is final. `offset` addresses the 4-byte displacement itself (not the
// opcode), relative to the function start.
struct TextReloc {
  enum class Kind {
    kPltCall,    // target = import index returned by AddImport()
    kLocalCall,  // target = function index returned by AddFunction()
    kRodataRef,  // target = byte offset into .rodata (rip-relative lea etc.)
  };
  Kind kind;
  uint32_t offset = 0;
  uint32_t target = 0;
};

struct FunctionDef {
  std::string name;
  std::vector<uint8_t> body;
  bool exported = false;  // also placed in .dynsym as a global definition
  std::vector<TextReloc> relocs;
};

class ElfBuilder {
 public:
  explicit ElfBuilder(BinaryType type) : type_(type) {}

  void SetSoname(std::string soname) { soname_ = std::move(soname); }
  void AddNeeded(std::string library) { needed_.push_back(std::move(library)); }

  // Registers an imported symbol; idempotent. Returns the PLT slot index.
  uint32_t AddImport(const std::string& symbol);

  // Appends raw bytes / a NUL-terminated string to .rodata; returns its
  // offset within the section.
  uint32_t AddRodata(std::span<const uint8_t> data);
  uint32_t AddRodataString(std::string_view s);

  // Adds a function (appended to .text in call order, 16-byte aligned).
  // Returns the function index used by TextReloc::kLocalCall.
  uint32_t AddFunction(FunctionDef fn);

  // Marks the executable entry point (required for kExecutable).
  Status SetEntryFunction(uint32_t function_index);

  size_t import_count() const { return imports_.size(); }
  size_t function_count() const { return functions_.size(); }

  // Produces the final ELF file bytes. The builder may be reused afterwards
  // (Build is const).
  Result<std::vector<uint8_t>> Build() const;

 private:
  BinaryType type_;
  std::string soname_;
  std::vector<std::string> needed_;
  std::vector<std::string> imports_;
  std::unordered_map<std::string, uint32_t> import_index_;
  std::vector<uint8_t> rodata_;
  std::vector<FunctionDef> functions_;
  int64_t entry_function_ = -1;
};

}  // namespace lapis::elf

#endif  // LAPIS_SRC_ELF_ELF_BUILDER_H_
