#include "src/db/table.h"

namespace lapis::db {

const std::vector<size_t> Table::kEmptyRowList;

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  storage_index_.reserve(columns_.size());
  for (const auto& col : columns_) {
    if (col.type == ColumnType::kInt64) {
      storage_index_.push_back(int_columns_.size());
      int_columns_.emplace_back();
    } else {
      storage_index_.push_back(string_columns_.size());
      string_columns_.emplace_back();
    }
  }
}

int Table::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Table::Insert(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return InvalidArgumentError("row arity mismatch in table " + name_);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    bool is_int = std::holds_alternative<int64_t>(values[i]);
    if (is_int != (columns_[i].type == ColumnType::kInt64)) {
      return InvalidArgumentError("type mismatch in column " +
                                  columns_[i].name);
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (columns_[i].type == ColumnType::kInt64) {
      int64_t v = std::get<int64_t>(values[i]);
      int_columns_[storage_index_[i]].push_back(v);
      auto idx = indexes_.find(i);
      if (idx != indexes_.end()) {
        idx->second[v].push_back(row_count_);
      }
    } else {
      string_columns_[storage_index_[i]].push_back(
          std::get<std::string>(values[i]));
    }
  }
  ++row_count_;
  return Status::Ok();
}

int64_t Table::GetInt(size_t row, size_t col) const {
  return int_columns_[storage_index_[col]][row];
}

const std::string& Table::GetString(size_t row, size_t col) const {
  return string_columns_[storage_index_[col]][row];
}

Status Table::BuildIndex(size_t col) {
  if (col >= columns_.size() || columns_[col].type != ColumnType::kInt64) {
    return InvalidArgumentError("index requires an int64 column");
  }
  auto& index = indexes_[col];
  index.clear();
  const auto& data = int_columns_[storage_index_[col]];
  for (size_t row = 0; row < data.size(); ++row) {
    index[data[row]].push_back(row);
  }
  return Status::Ok();
}

bool Table::HasIndex(size_t col) const { return indexes_.contains(col); }

const std::vector<size_t>& Table::Lookup(size_t col, int64_t key) const {
  auto idx = indexes_.find(col);
  if (idx == indexes_.end()) {
    return kEmptyRowList;
  }
  auto it = idx->second.find(key);
  return it == idx->second.end() ? kEmptyRowList : it->second;
}

std::vector<size_t> Table::ScanEqual(size_t col, int64_t key) const {
  std::vector<size_t> out;
  const auto& data = int_columns_[storage_index_[col]];
  for (size_t row = 0; row < data.size(); ++row) {
    if (data[row] == key) {
      out.push_back(row);
    }
  }
  return out;
}

void Table::Serialize(ByteWriter& writer) const {
  writer.PutLengthPrefixedString(name_);
  writer.PutU32(static_cast<uint32_t>(columns_.size()));
  for (const auto& col : columns_) {
    writer.PutLengthPrefixedString(col.name);
    writer.PutU8(static_cast<uint8_t>(col.type));
  }
  writer.PutU64(row_count_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].type == ColumnType::kInt64) {
      for (int64_t v : int_columns_[storage_index_[c]]) {
        writer.PutI64(v);
      }
    } else {
      for (const auto& s : string_columns_[storage_index_[c]]) {
        writer.PutLengthPrefixedString(s);
      }
    }
  }
}

Result<Table> Table::Deserialize(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(std::string name, reader.ReadLengthPrefixedString());
  LAPIS_ASSIGN_OR_RETURN(uint32_t column_count, reader.ReadU32());
  std::vector<ColumnDef> columns;
  columns.reserve(column_count);
  for (uint32_t i = 0; i < column_count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(std::string col_name,
                           reader.ReadLengthPrefixedString());
    LAPIS_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
    if (type > static_cast<uint8_t>(ColumnType::kString)) {
      return CorruptDataError("bad column type");
    }
    columns.push_back(ColumnDef{std::move(col_name),
                                static_cast<ColumnType>(type)});
  }
  Table table(std::move(name), std::move(columns));
  LAPIS_ASSIGN_OR_RETURN(uint64_t rows, reader.ReadU64());
  for (size_t c = 0; c < table.columns_.size(); ++c) {
    if (table.columns_[c].type == ColumnType::kInt64) {
      auto& col = table.int_columns_[table.storage_index_[c]];
      col.reserve(rows);
      for (uint64_t r = 0; r < rows; ++r) {
        LAPIS_ASSIGN_OR_RETURN(int64_t v, reader.ReadI64());
        col.push_back(v);
      }
    } else {
      auto& col = table.string_columns_[table.storage_index_[c]];
      col.reserve(rows);
      for (uint64_t r = 0; r < rows; ++r) {
        LAPIS_ASSIGN_OR_RETURN(std::string s,
                               reader.ReadLengthPrefixedString());
        col.push_back(std::move(s));
      }
    }
  }
  table.row_count_ = rows;
  return table;
}

Result<Table*> Database::CreateTable(std::string table_name,
                                     std::vector<ColumnDef> columns) {
  if (by_name_.contains(table_name)) {
    return FailedPreconditionError("duplicate table: " + table_name);
  }
  auto table = std::make_unique<Table>(table_name, std::move(columns));
  Table* ptr = table.get();
  by_name_.emplace(std::move(table_name), tables_.size());
  tables_.push_back(std::move(table));
  return ptr;
}

Table* Database::GetTable(std::string_view table_name) {
  auto it = by_name_.find(table_name);
  return it == by_name_.end() ? nullptr : tables_[it->second].get();
}

const Table* Database::GetTable(std::string_view table_name) const {
  auto it = by_name_.find(table_name);
  return it == by_name_.end() ? nullptr : tables_[it->second].get();
}

uint64_t Database::TotalRows() const {
  uint64_t total = 0;
  for (const auto& table : tables_) {
    total += table->row_count();
  }
  return total;
}

void Database::Serialize(ByteWriter& writer) const {
  writer.PutU32(0x4c415044);  // "LAPD"
  writer.PutU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& table : tables_) {
    table->Serialize(writer);
  }
}

Result<Database> Database::Deserialize(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != 0x4c415044) {
    return CorruptDataError("bad database magic");
  }
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  Database db;
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(Table table, Table::Deserialize(reader));
    auto owned = std::make_unique<Table>(std::move(table));
    db.by_name_.emplace(owned->name(), db.tables_.size());
    db.tables_.push_back(std::move(owned));
  }
  return db;
}

}  // namespace lapis::db
