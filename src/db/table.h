// Minimal typed, columnar table store.
//
// The paper's last-mile aggregation ran as recursive SQL over a PostgreSQL
// database (48 tables, 428M rows). lapis::db is the in-process equivalent:
// typed tables with hash indexes plus a transitive-closure aggregator
// (transitive_closure.h). The analysis pipeline can run either through the
// in-memory resolver or through this store; tests assert both agree.

#ifndef LAPIS_SRC_DB_TABLE_H_
#define LAPIS_SRC_DB_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace lapis::db {

enum class ColumnType : uint8_t { kInt64, kString };

struct ColumnDef {
  std::string name;
  ColumnType type;
};

using Value = std::variant<int64_t, std::string>;

class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t row_count() const { return row_count_; }

  // Column index by name; -1 if absent.
  int ColumnIndex(std::string_view column_name) const;

  // Appends a row; values must match the schema arity and types.
  Status Insert(const std::vector<Value>& values);

  // Typed cell accessors (no bounds forgiveness: callers own validity).
  int64_t GetInt(size_t row, size_t col) const;
  const std::string& GetString(size_t row, size_t col) const;

  // Builds (or rebuilds) a hash index over an int64 column.
  Status BuildIndex(size_t col);
  // Row ids matching `key` via the index on `col` (must be indexed).
  const std::vector<size_t>& Lookup(size_t col, int64_t key) const;
  bool HasIndex(size_t col) const;

  // Full scan helper: rows where int column `col` equals `key`.
  std::vector<size_t> ScanEqual(size_t col, int64_t key) const;

  void Serialize(ByteWriter& writer) const;
  static Result<Table> Deserialize(ByteReader& reader);

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  size_t row_count_ = 0;
  // Column storage: one vector per column.
  std::vector<std::vector<int64_t>> int_columns_;
  std::vector<std::vector<std::string>> string_columns_;
  // Per-schema-column pointer into the storage vectors.
  std::vector<size_t> storage_index_;
  // col -> (key -> row ids)
  std::map<size_t, std::unordered_map<int64_t, std::vector<size_t>>> indexes_;
  static const std::vector<size_t> kEmptyRowList;
};

// A named collection of tables with whole-database serialization.
class Database {
 public:
  Result<Table*> CreateTable(std::string table_name,
                             std::vector<ColumnDef> columns);
  Table* GetTable(std::string_view table_name);
  const Table* GetTable(std::string_view table_name) const;
  size_t table_count() const { return tables_.size(); }
  uint64_t TotalRows() const;

  void Serialize(ByteWriter& writer) const;
  static Result<Database> Deserialize(ByteReader& reader);

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::string, size_t, std::less<>> by_name_;
};

}  // namespace lapis::db

#endif  // LAPIS_SRC_DB_TABLE_H_
