#include "src/db/transitive_closure.h"

#include <algorithm>

#include "src/runtime/executor.h"

namespace lapis::db {

TransitiveAggregator::TransitiveAggregator(uint32_t node_count)
    : node_count_(node_count),
      adjacency_(node_count),
      facts_(node_count) {}

Status TransitiveAggregator::AddEdge(uint32_t src, uint32_t dst) {
  if (src >= node_count_ || dst >= node_count_) {
    return InvalidArgumentError("edge endpoint out of range");
  }
  adjacency_[src].push_back(dst);
  edge_dst_.push_back(dst);
  return Status::Ok();
}

Status TransitiveAggregator::AddFact(uint32_t node, int64_t fact) {
  if (node >= node_count_) {
    return InvalidArgumentError("fact node out of range");
  }
  facts_[node].push_back(fact);
  return Status::Ok();
}

namespace {

// Iterative Tarjan SCC (recursion would overflow on deep call chains).
struct TarjanState {
  std::vector<uint32_t> index;
  std::vector<uint32_t> lowlink;
  std::vector<uint8_t> on_stack;
  std::vector<uint32_t> stack;
  std::vector<int32_t> component;  // -1 until assigned
  uint32_t next_index = 0;
  uint32_t component_count = 0;
};

void TarjanFrom(uint32_t root, const std::vector<std::vector<uint32_t>>& adj,
                TarjanState& s) {
  struct Frame {
    uint32_t node;
    size_t edge = 0;
  };
  std::vector<Frame> frames = {{root}};
  s.index[root] = s.lowlink[root] = s.next_index++;
  s.stack.push_back(root);
  s.on_stack[root] = 1;

  while (!frames.empty()) {
    Frame& frame = frames.back();
    uint32_t v = frame.node;
    if (frame.edge < adj[v].size()) {
      uint32_t w = adj[v][frame.edge++];
      if (s.index[w] == UINT32_MAX) {
        s.index[w] = s.lowlink[w] = s.next_index++;
        s.stack.push_back(w);
        s.on_stack[w] = 1;
        frames.push_back({w});
      } else if (s.on_stack[w] != 0) {
        s.lowlink[v] = std::min(s.lowlink[v], s.index[w]);
      }
    } else {
      if (s.lowlink[v] == s.index[v]) {
        for (;;) {
          uint32_t w = s.stack.back();
          s.stack.pop_back();
          s.on_stack[w] = 0;
          s.component[w] = static_cast<int32_t>(s.component_count);
          if (w == v) {
            break;
          }
        }
        ++s.component_count;
      }
      frames.pop_back();
      if (!frames.empty()) {
        uint32_t parent = frames.back().node;
        s.lowlink[parent] = std::min(s.lowlink[parent], s.lowlink[v]);
      }
    }
  }
}

}  // namespace

std::vector<std::vector<int64_t>> TransitiveAggregator::Aggregate() const {
  return Aggregate(nullptr);
}

std::vector<std::vector<int64_t>> TransitiveAggregator::Aggregate(
    runtime::Executor* executor) const {
  // 1. Condense into SCCs (inherently sequential; cheap relative to the
  // merge work below).
  TarjanState s;
  s.index.assign(node_count_, UINT32_MAX);
  s.lowlink.assign(node_count_, 0);
  s.on_stack.assign(node_count_, 0);
  s.component.assign(node_count_, -1);
  for (uint32_t v = 0; v < node_count_; ++v) {
    if (s.index[v] == UINT32_MAX) {
      TarjanFrom(v, adjacency_, s);
    }
  }
  const uint32_t scc_count = s.component_count;

  // 2. Gather facts per SCC; build condensed edges. Tarjan numbers SCCs in
  // reverse topological order (all successors of C have smaller ids).
  std::vector<std::vector<int64_t>> scc_facts(scc_count);
  for (uint32_t v = 0; v < node_count_; ++v) {
    auto& dst = scc_facts[static_cast<uint32_t>(s.component[v])];
    dst.insert(dst.end(), facts_[v].begin(), facts_[v].end());
  }
  std::vector<std::vector<uint32_t>> scc_edges(scc_count);
  for (uint32_t v = 0; v < node_count_; ++v) {
    uint32_t cv = static_cast<uint32_t>(s.component[v]);
    for (uint32_t w : adjacency_[v]) {
      uint32_t cw = static_cast<uint32_t>(s.component[w]);
      if (cv != cw) {
        scc_edges[cv].push_back(cw);
      }
    }
  }
  for (auto& edges : scc_edges) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  // 3. Topological levels over the condensation: an SCC's level is one
  // past its deepest successor, so every SCC only depends on lower levels.
  // Successors have smaller ids, so one ascending pass suffices.
  std::vector<uint32_t> level(scc_count, 0);
  uint32_t level_count = 0;
  for (uint32_t c = 0; c < scc_count; ++c) {
    for (uint32_t succ : scc_edges[c]) {
      level[c] = std::max(level[c], level[succ] + 1);
    }
    level_count = std::max(level_count, level[c] + 1);
  }
  std::vector<std::vector<uint32_t>> by_level(level_count);
  for (uint32_t c = 0; c < scc_count; ++c) {
    by_level[level[c]].push_back(c);
  }

  // 4. Propagate level by level; SCCs within a level have no edges between
  // each other, so they merge in parallel. Each SCC's closure is sorted
  // and deduplicated on its own, making the result independent of the
  // schedule (and of the thread count).
  std::vector<std::vector<int64_t>> scc_closure(scc_count);
  const auto merge_scc = [&](uint32_t c) {
    std::vector<int64_t> merged = scc_facts[c];
    for (uint32_t succ : scc_edges[c]) {
      merged.insert(merged.end(), scc_closure[succ].begin(),
                    scc_closure[succ].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    scc_closure[c] = std::move(merged);
  };
  for (const auto& members : by_level) {
    if (executor == nullptr || executor->thread_count() <= 1 ||
        members.size() <= 1) {
      for (uint32_t c : members) {
        merge_scc(c);
      }
    } else {
      executor->ParallelFor(0, members.size(), 0,
                            [&](size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                merge_scc(members[i]);
                              }
                            });
    }
  }

  // 5. Fan back out to nodes.
  std::vector<std::vector<int64_t>> out(node_count_);
  const auto fan_out = [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      out[v] = scc_closure[static_cast<uint32_t>(s.component[v])];
    }
  };
  if (executor == nullptr || executor->thread_count() <= 1) {
    fan_out(0, node_count_);
  } else {
    executor->ParallelFor(0, node_count_, 0, fan_out);
  }
  return out;
}

Result<TransitiveAggregator> TransitiveAggregator::FromTables(
    const Table& edges, const Table& facts, uint32_t node_count) {
  if (edges.columns().size() < 2 || facts.columns().size() < 2) {
    return InvalidArgumentError("edges/facts tables need two columns");
  }
  TransitiveAggregator agg(node_count);
  for (size_t row = 0; row < edges.row_count(); ++row) {
    LAPIS_RETURN_IF_ERROR(
        agg.AddEdge(static_cast<uint32_t>(edges.GetInt(row, 0)),
                    static_cast<uint32_t>(edges.GetInt(row, 1))));
  }
  for (size_t row = 0; row < facts.row_count(); ++row) {
    LAPIS_RETURN_IF_ERROR(
        agg.AddFact(static_cast<uint32_t>(facts.GetInt(row, 0)),
                    facts.GetInt(row, 1)));
  }
  return agg;
}

}  // namespace lapis::db
