// Transitive-closure fact aggregation.
//
// The paper's footprint aggregation is a recursive SQL query: "for each
// executable, the union of API facts over every function reachable through
// the call graph". TransitiveAggregator computes exactly that, using Tarjan
// SCC condensation + reverse-topological propagation so cyclic call graphs
// (mutual recursion) terminate and each strongly-connected component is
// processed once.

#ifndef LAPIS_SRC_DB_TRANSITIVE_CLOSURE_H_
#define LAPIS_SRC_DB_TRANSITIVE_CLOSURE_H_

#include <cstdint>
#include <vector>

#include "src/db/table.h"
#include "src/util/status.h"

namespace lapis::runtime {
class Executor;
}  // namespace lapis::runtime

namespace lapis::db {

class TransitiveAggregator {
 public:
  explicit TransitiveAggregator(uint32_t node_count);

  // Adds a call-graph edge: facts of `dst` flow into `src`'s closure.
  Status AddEdge(uint32_t src, uint32_t dst);

  // Attaches a fact (an opaque id, e.g. an encoded ApiId) to a node.
  Status AddFact(uint32_t node, int64_t fact);

  // Computes, for every node, the sorted, deduplicated union of facts over
  // its forward transitive closure (including itself). With an executor,
  // SCC condensation levels are propagated in parallel (all SCCs of a
  // topological level merge concurrently); each SCC's closure is sorted
  // and deduplicated independently, so the output is bit-identical at any
  // thread count.
  std::vector<std::vector<int64_t>> Aggregate() const;
  std::vector<std::vector<int64_t>> Aggregate(
      runtime::Executor* executor) const;

  // Convenience: builds the aggregator from two tables —
  //   edges(src:int, dst:int), facts(node:int, fact:int)
  // as the analysis pipeline lays them out in a Database.
  static Result<TransitiveAggregator> FromTables(const Table& edges,
                                                 const Table& facts,
                                                 uint32_t node_count);

  uint32_t node_count() const { return node_count_; }
  size_t edge_count() const { return edge_dst_.size(); }

 private:
  uint32_t node_count_;
  std::vector<std::vector<uint32_t>> adjacency_;
  std::vector<uint32_t> edge_dst_;  // flat list, for stats only
  std::vector<std::vector<int64_t>> facts_;
};

}  // namespace lapis::db

#endif  // LAPIS_SRC_DB_TRANSITIVE_CLOSURE_H_
