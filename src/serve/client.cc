#include "src/serve/client.h"

#include <cerrno>
#include <ctime>
#include <unistd.h>

#include <utility>

#include "src/serve/socket_io.h"
#include "src/util/prng.h"

namespace lapis::serve {

Result<QueryClient> QueryClient::ConnectUnix(const std::string& path,
                                             int timeout_ms) {
  LAPIS_ASSIGN_OR_RETURN(int fd, ConnectUnixSocket(path, timeout_ms));
  Status status = SetSocketTimeouts(fd, timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return QueryClient(fd, timeout_ms);
}

Result<QueryClient> QueryClient::ConnectTcp(const std::string& host,
                                            uint16_t port, int timeout_ms) {
  LAPIS_ASSIGN_OR_RETURN(int fd, ConnectTcpSocket(host, port, timeout_ms));
  Status status = SetSocketTimeouts(fd, timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return QueryClient(fd, timeout_ms);
}

QueryClient::QueryClient(QueryClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeout_ms_(std::exchange(other.timeout_ms_, 0)) {}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    timeout_ms_ = std::exchange(other.timeout_ms_, 0);
  }
  return *this;
}

QueryClient::~QueryClient() { Close(); }

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::vector<QueryResponse>> QueryClient::Call(
    std::span<const QueryRequest> batch) {
  if (fd_ < 0) {
    return FailedPreconditionError("client is not connected");
  }
  if (!WriteFully(fd_, EncodeRequestFrame(batch))) {
    int saved_errno = errno;
    if (ErrnoIsTimeout(saved_errno)) {
      Close();
      return IoError("send timed out after " + std::to_string(timeout_ms_) +
                     "ms");
    }
    // An accept-time shed races our send: the server writes one busy frame
    // and closes, so the send can fail (EPIPE/ECONNRESET) while the busy
    // frame already sits in our receive buffer. Drain it so the caller
    // sees the retryable busy, not a generic send error.
    auto pending = ReadResponseFrame(batch.size());
    if (!pending.ok() &&
        pending.status().code() == StatusCode::kUnavailable) {
      Close();  // the connection is dead either way; retries reconnect
      return pending.status();
    }
    Close();
    return IoError("send failed (server closed the connection?)");
  }
  return ReadResponseFrame(batch.size());
}

Result<std::vector<QueryResponse>> QueryClient::ReadResponseFrame(
    size_t expected) {
  uint8_t header[kFrameHeaderSize];
  ssize_t n = ReadFully(fd_, header, sizeof(header));
  if (n != static_cast<ssize_t>(sizeof(header))) {
    int saved_errno = errno;
    Close();
    if (n < 0 && ErrnoIsTimeout(saved_errno)) {
      return IoError("response timed out after " +
                     std::to_string(timeout_ms_) + "ms");
    }
    return IoError("connection closed before a response frame arrived");
  }
  auto payload_len = DecodeFrameHeader(header, kResponseMagic);
  if (!payload_len.ok()) {
    Close();
    return payload_len.status();
  }
  std::vector<uint8_t> payload(payload_len.value());
  n = ReadFully(fd_, payload.data(), payload.size());
  if (n != static_cast<ssize_t>(payload.size())) {
    int saved_errno = errno;
    Close();
    if (n < 0 && ErrnoIsTimeout(saved_errno)) {
      return IoError("response timed out after " +
                     std::to_string(timeout_ms_) + "ms");
    }
    return IoError("truncated response payload");
  }
  auto responses = DecodeResponsePayload(payload);
  if (!responses.ok()) {
    Close();
    return responses.status();
  }
  // A frame-level rejection means the server is about to close on us;
  // surface it as an error with the server's diagnostic. A kBusy shed is
  // different: it is retryable, and when the in-flight frame cap (rather
  // than the connection cap) shed us the connection is still good.
  if (responses.value().size() == 1 &&
      responses.value()[0].opcode == Opcode::kFrameError) {
    std::string error = responses.value()[0].error;
    if (responses.value()[0].status == WireStatus::kBusy) {
      return UnavailableError("server shed the request: " + error);
    }
    Close();
    return CorruptDataError("server rejected frame: " + error);
  }
  if (responses.value().size() != expected) {
    Close();
    return CorruptDataError("response count mismatch: sent " +
                            std::to_string(expected) + ", got " +
                            std::to_string(responses.value().size()));
  }
  return responses;
}

Result<QueryResponse> QueryClient::CallOne(const QueryRequest& request) {
  LAPIS_ASSIGN_OR_RETURN(
      std::vector<QueryResponse> responses,
      Call(std::span<const QueryRequest>(&request, 1)));
  return std::move(responses[0]);
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoError;
}

namespace {

int64_t NowMillis() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

constexpr int64_t kMaxBackoffMillis = 5000;

}  // namespace

Result<std::vector<QueryResponse>> CallWithRetry(
    const Endpoint& endpoint, std::span<const QueryRequest> batch,
    const RetryOptions& options, RetryTelemetry* telemetry) {
  RetryTelemetry scratch;
  RetryTelemetry& tel = telemetry != nullptr ? *telemetry : scratch;
  tel = RetryTelemetry{};

  Prng jitter(options.jitter_seed);
  const int64_t deadline =
      options.timeout_ms > 0 ? NowMillis() + options.timeout_ms : 0;
  Status last_error = UnavailableError("no attempt was made");

  for (int attempt = 0; attempt <= options.retries; ++attempt) {
    // Per-attempt socket budget = whatever remains of the total deadline.
    int attempt_timeout_ms = options.timeout_ms;
    if (deadline != 0) {
      int64_t remaining = deadline - NowMillis();
      if (remaining <= 0) {
        return IoError("deadline exhausted after " +
                       std::to_string(tel.attempts) + " attempts (" +
                       std::to_string(options.timeout_ms) + "ms total): " +
                       last_error.ToString());
      }
      attempt_timeout_ms = static_cast<int>(remaining);
    }

    ++tel.attempts;
    Result<QueryClient> client =
        endpoint.unix_path.empty()
            ? QueryClient::ConnectTcp(endpoint.host, endpoint.port,
                                      attempt_timeout_ms)
            : QueryClient::ConnectUnix(endpoint.unix_path,
                                       attempt_timeout_ms);
    if (client.ok()) {
      Result<std::vector<QueryResponse>> responses =
          client.value().Call(batch);
      if (responses.ok()) {
        return responses;
      }
      last_error = responses.status();
    } else {
      last_error = client.status();
    }
    if (!IsRetryableStatus(last_error)) {
      return last_error;
    }
    if (last_error.code() == StatusCode::kUnavailable) {
      ++tel.busy_responses;
    } else {
      ++tel.io_failures;
    }
    if (attempt == options.retries) {
      break;
    }

    // Exponential backoff with full jitter in the upper half, so a
    // thundering herd of shed clients spreads out instead of re-colliding.
    int64_t base = static_cast<int64_t>(options.backoff_ms) << attempt;
    if (base > kMaxBackoffMillis) {
      base = kMaxBackoffMillis;
    }
    int64_t sleep_ms = base;
    if (base > 1) {
      sleep_ms = base / 2 +
                 static_cast<int64_t>(jitter.NextBelow(
                     static_cast<uint64_t>(base - base / 2 + 1)));
    }
    if (deadline != 0) {
      int64_t remaining = deadline - NowMillis();
      if (remaining <= 0) {
        break;  // loop exit reports deadline exhaustion below
      }
      if (sleep_ms > remaining) {
        sleep_ms = remaining;
      }
    }
    if (sleep_ms > 0) {
      tel.backoff_waited_ms += sleep_ms;
      timespec ts{};
      ts.tv_sec = sleep_ms / 1000;
      ts.tv_nsec = (sleep_ms % 1000) * 1000000;
      ::nanosleep(&ts, nullptr);
    }
  }
  return last_error;
}

}  // namespace lapis::serve
