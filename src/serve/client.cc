#include "src/serve/client.h"

#include <unistd.h>

#include <utility>

#include "src/serve/socket_io.h"

namespace lapis::serve {

Result<QueryClient> QueryClient::ConnectUnix(const std::string& path) {
  LAPIS_ASSIGN_OR_RETURN(int fd, ConnectUnixSocket(path));
  return QueryClient(fd);
}

Result<QueryClient> QueryClient::ConnectTcp(const std::string& host,
                                            uint16_t port) {
  LAPIS_ASSIGN_OR_RETURN(int fd, ConnectTcpSocket(host, port));
  return QueryClient(fd);
}

QueryClient::QueryClient(QueryClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

QueryClient::~QueryClient() { Close(); }

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::vector<QueryResponse>> QueryClient::Call(
    std::span<const QueryRequest> batch) {
  if (fd_ < 0) {
    return FailedPreconditionError("client is not connected");
  }
  if (!WriteFully(fd_, EncodeRequestFrame(batch))) {
    Close();
    return IoError("send failed (server closed the connection?)");
  }
  uint8_t header[kFrameHeaderSize];
  ssize_t n = ReadFully(fd_, header, sizeof(header));
  if (n != static_cast<ssize_t>(sizeof(header))) {
    Close();
    return IoError("connection closed before a response frame arrived");
  }
  auto payload_len = DecodeFrameHeader(header, kResponseMagic);
  if (!payload_len.ok()) {
    Close();
    return payload_len.status();
  }
  std::vector<uint8_t> payload(payload_len.value());
  n = ReadFully(fd_, payload.data(), payload.size());
  if (n != static_cast<ssize_t>(payload.size())) {
    Close();
    return IoError("truncated response payload");
  }
  auto responses = DecodeResponsePayload(payload);
  if (!responses.ok()) {
    Close();
    return responses.status();
  }
  // A frame-level rejection means the server is about to close on us;
  // surface it as an error with the server's diagnostic.
  if (responses.value().size() == 1 &&
      responses.value()[0].opcode == Opcode::kFrameError) {
    std::string error = responses.value()[0].error;
    Close();
    return CorruptDataError("server rejected frame: " + error);
  }
  if (responses.value().size() != batch.size()) {
    Close();
    return CorruptDataError("response count mismatch: sent " +
                            std::to_string(batch.size()) + ", got " +
                            std::to_string(responses.value().size()));
  }
  return responses;
}

Result<QueryResponse> QueryClient::CallOne(const QueryRequest& request) {
  LAPIS_ASSIGN_OR_RETURN(
      std::vector<QueryResponse> responses,
      Call(std::span<const QueryRequest>(&request, 1)));
  return std::move(responses[0]);
}

}  // namespace lapis::serve
