#include "src/serve/client.h"

#include <cerrno>
#include <unistd.h>

#include <utility>

#include "src/serve/socket_io.h"

namespace lapis::serve {

Result<QueryClient> QueryClient::ConnectUnix(const std::string& path,
                                             int timeout_ms) {
  LAPIS_ASSIGN_OR_RETURN(int fd, ConnectUnixSocket(path, timeout_ms));
  Status status = SetSocketTimeouts(fd, timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return QueryClient(fd, timeout_ms);
}

Result<QueryClient> QueryClient::ConnectTcp(const std::string& host,
                                            uint16_t port, int timeout_ms) {
  LAPIS_ASSIGN_OR_RETURN(int fd, ConnectTcpSocket(host, port, timeout_ms));
  Status status = SetSocketTimeouts(fd, timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return QueryClient(fd, timeout_ms);
}

QueryClient::QueryClient(QueryClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeout_ms_(std::exchange(other.timeout_ms_, 0)) {}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    timeout_ms_ = std::exchange(other.timeout_ms_, 0);
  }
  return *this;
}

QueryClient::~QueryClient() { Close(); }

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::vector<QueryResponse>> QueryClient::Call(
    std::span<const QueryRequest> batch) {
  if (fd_ < 0) {
    return FailedPreconditionError("client is not connected");
  }
  if (!WriteFully(fd_, EncodeRequestFrame(batch))) {
    int saved_errno = errno;
    Close();
    if (ErrnoIsTimeout(saved_errno)) {
      return IoError("send timed out after " + std::to_string(timeout_ms_) +
                     "ms");
    }
    return IoError("send failed (server closed the connection?)");
  }
  uint8_t header[kFrameHeaderSize];
  ssize_t n = ReadFully(fd_, header, sizeof(header));
  if (n != static_cast<ssize_t>(sizeof(header))) {
    int saved_errno = errno;
    Close();
    if (n < 0 && ErrnoIsTimeout(saved_errno)) {
      return IoError("response timed out after " +
                     std::to_string(timeout_ms_) + "ms");
    }
    return IoError("connection closed before a response frame arrived");
  }
  auto payload_len = DecodeFrameHeader(header, kResponseMagic);
  if (!payload_len.ok()) {
    Close();
    return payload_len.status();
  }
  std::vector<uint8_t> payload(payload_len.value());
  n = ReadFully(fd_, payload.data(), payload.size());
  if (n != static_cast<ssize_t>(payload.size())) {
    int saved_errno = errno;
    Close();
    if (n < 0 && ErrnoIsTimeout(saved_errno)) {
      return IoError("response timed out after " +
                     std::to_string(timeout_ms_) + "ms");
    }
    return IoError("truncated response payload");
  }
  auto responses = DecodeResponsePayload(payload);
  if (!responses.ok()) {
    Close();
    return responses.status();
  }
  // A frame-level rejection means the server is about to close on us;
  // surface it as an error with the server's diagnostic.
  if (responses.value().size() == 1 &&
      responses.value()[0].opcode == Opcode::kFrameError) {
    std::string error = responses.value()[0].error;
    Close();
    return CorruptDataError("server rejected frame: " + error);
  }
  if (responses.value().size() != batch.size()) {
    Close();
    return CorruptDataError("response count mismatch: sent " +
                            std::to_string(batch.size()) + ", got " +
                            std::to_string(responses.value().size()));
  }
  return responses;
}

Result<QueryResponse> QueryClient::CallOne(const QueryRequest& request) {
  LAPIS_ASSIGN_OR_RETURN(
      std::vector<QueryResponse> responses,
      Call(std::span<const QueryRequest>(&request, 1)));
  return std::move(responses[0]);
}

}  // namespace lapis::serve
