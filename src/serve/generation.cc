#include "src/serve/generation.h"

namespace lapis::serve {

uint64_t GenerationStore::Publish(std::shared_ptr<const Snapshot> snapshot) {
  auto generation = std::make_shared<Generation>();
  generation->number = next_number_.fetch_add(1, std::memory_order_relaxed);
  generation->snapshot = std::move(snapshot);
  uint64_t number = generation->number;
  std::atomic_store_explicit(
      &current_, std::shared_ptr<const Generation>(std::move(generation)),
      std::memory_order_release);
  // latest_number_ trails the swap: a reader that sees the new number is
  // guaranteed Current() returns at least that generation.
  uint64_t seen = latest_number_.load(std::memory_order_relaxed);
  while (seen < number && !latest_number_.compare_exchange_weak(
                              seen, number, std::memory_order_release)) {
  }
  return number;
}

std::shared_ptr<const Generation> GenerationStore::Current() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

Result<uint64_t> GenerationStore::PublishFromFile(const std::string& path) {
  Result<std::shared_ptr<const Snapshot>> snapshot = Snapshot::FromFile(path);
  if (!snapshot.ok()) {
    // Degrade gracefully: the old generation keeps serving; only the
    // counter records that a reload was attempted and rejected.
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return snapshot.status();
  }
  return Publish(snapshot.take());
}

}  // namespace lapis::serve
