#include "src/serve/protocol.h"

#include <bit>

namespace lapis::serve {

namespace {

void PutDouble(ByteWriter& writer, double v) {
  writer.PutU64(std::bit_cast<uint64_t>(v));
}

Result<double> ReadDouble(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint64_t bits, reader.ReadU64());
  return std::bit_cast<double>(bits);
}

Result<core::ApiKind> ReadKind(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
  if (kind >= core::kApiKindCount) {
    return InvalidArgumentError("bad ApiKind byte " + std::to_string(kind));
  }
  return static_cast<core::ApiKind>(kind);
}

void PutApiRef(ByteWriter& writer, const ApiRef& ref) {
  writer.PutU8(static_cast<uint8_t>(ref.kind));
  writer.PutU32(ref.code);
  writer.PutLengthPrefixedString(ref.name);
}

Result<ApiRef> ReadApiRef(ByteReader& reader) {
  ApiRef ref;
  LAPIS_ASSIGN_OR_RETURN(ref.kind, ReadKind(reader));
  LAPIS_ASSIGN_OR_RETURN(ref.code, reader.ReadU32());
  LAPIS_ASSIGN_OR_RETURN(ref.name, reader.ReadLengthPrefixedString());
  return ref;
}

Result<std::vector<ApiRef>> ReadApiRefList(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > kMaxProfileApis) {
    return InvalidArgumentError("profile too large: " + std::to_string(count) +
                                " APIs");
  }
  std::vector<ApiRef> refs;
  refs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(ApiRef ref, ReadApiRef(reader));
    refs.push_back(std::move(ref));
  }
  return refs;
}

void PutApiRefList(ByteWriter& writer, std::span<const ApiRef> refs) {
  writer.PutU32(static_cast<uint32_t>(refs.size()));
  for (const ApiRef& ref : refs) {
    PutApiRef(writer, ref);
  }
}

void EncodeRequest(const QueryRequest& request, ByteWriter& writer) {
  writer.PutU8(static_cast<uint8_t>(request.opcode));
  switch (request.opcode) {
    case Opcode::kPing:
    case Opcode::kServerInfo:
      break;
    case Opcode::kImportance:
      PutApiRef(writer, request.api);
      break;
    case Opcode::kEvalProfile:
      writer.PutU8(request.evaluated_kinds_mask);
      PutApiRefList(writer, request.supported);
      break;
    case Opcode::kTopK:
      writer.PutU8(static_cast<uint8_t>(request.top_kind));
      writer.PutU32(request.top_k);
      PutApiRefList(writer, request.supported);
      break;
    case Opcode::kPlanFrontier:
      writer.PutU8(request.plan_flags);
      writer.PutU8(request.evaluated_kinds_mask);
      writer.PutU32(request.plan_max_actions);
      PutDouble(writer, request.plan_budget);
      PutApiRefList(writer, request.supported);
      break;
    case Opcode::kFrameError:
      break;  // never sent as a request; decoder rejects it
  }
}

Result<QueryRequest> DecodeRequest(ByteReader& reader) {
  QueryRequest request;
  LAPIS_ASSIGN_OR_RETURN(uint8_t opcode, reader.ReadU8());
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
    case Opcode::kServerInfo:
      request.opcode = static_cast<Opcode>(opcode);
      return request;
    case Opcode::kImportance: {
      request.opcode = Opcode::kImportance;
      LAPIS_ASSIGN_OR_RETURN(request.api, ReadApiRef(reader));
      return request;
    }
    case Opcode::kEvalProfile: {
      request.opcode = Opcode::kEvalProfile;
      LAPIS_ASSIGN_OR_RETURN(request.evaluated_kinds_mask, reader.ReadU8());
      LAPIS_ASSIGN_OR_RETURN(request.supported, ReadApiRefList(reader));
      return request;
    }
    case Opcode::kTopK: {
      request.opcode = Opcode::kTopK;
      LAPIS_ASSIGN_OR_RETURN(request.top_kind, ReadKind(reader));
      LAPIS_ASSIGN_OR_RETURN(request.top_k, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(request.supported, ReadApiRefList(reader));
      return request;
    }
    case Opcode::kPlanFrontier: {
      request.opcode = Opcode::kPlanFrontier;
      LAPIS_ASSIGN_OR_RETURN(request.plan_flags, reader.ReadU8());
      LAPIS_ASSIGN_OR_RETURN(request.evaluated_kinds_mask, reader.ReadU8());
      LAPIS_ASSIGN_OR_RETURN(request.plan_max_actions, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(request.plan_budget, ReadDouble(reader));
      LAPIS_ASSIGN_OR_RETURN(request.supported, ReadApiRefList(reader));
      return request;
    }
    case Opcode::kFrameError:
      break;
  }
  return InvalidArgumentError("unknown request opcode " +
                              std::to_string(opcode));
}

void EncodeResponse(const QueryResponse& response, ByteWriter& writer) {
  writer.PutU8(static_cast<uint8_t>(response.opcode));
  writer.PutU8(static_cast<uint8_t>(response.status));
  writer.PutU64(response.generation);
  if (response.status != WireStatus::kOk) {
    writer.PutLengthPrefixedString(response.error);
    return;
  }
  switch (response.opcode) {
    case Opcode::kPing:
      break;
    case Opcode::kServerInfo: {
      const ServerInfoResult& info = response.info;
      writer.PutU32(info.protocol_version);
      writer.PutU64(info.content_hash);
      writer.PutU32(info.package_count);
      writer.PutU64(info.total_installations);
      writer.PutU64(info.reload_failures);
      writer.PutLengthPrefixedString(info.source);
      break;
    }
    case Opcode::kImportance: {
      const ImportanceResult& result = response.importance;
      writer.PutU8(static_cast<uint8_t>(result.api.kind));
      writer.PutU32(result.api.code);
      writer.PutLengthPrefixedString(result.name);
      PutDouble(writer, result.importance);
      PutDouble(writer, result.unweighted);
      writer.PutU32(result.dependents);
      break;
    }
    case Opcode::kEvalProfile: {
      const EvalProfileResult& result = response.eval;
      PutDouble(writer, result.weighted_completeness);
      writer.PutU32(result.supported_packages);
      writer.PutU32(result.total_packages);
      writer.PutU32(result.resolved_apis);
      writer.PutU32(result.absent_apis);
      break;
    }
    case Opcode::kTopK: {
      writer.PutU32(static_cast<uint32_t>(response.top_k.size()));
      for (const TopKEntry& entry : response.top_k) {
        writer.PutU8(static_cast<uint8_t>(entry.api.kind));
        writer.PutU32(entry.api.code);
        writer.PutLengthPrefixedString(entry.name);
        PutDouble(writer, entry.importance);
      }
      break;
    }
    case Opcode::kPlanFrontier: {
      const PlanFrontierResult& result = response.plan;
      PutDouble(writer, result.initial_completeness);
      PutDouble(writer, result.final_completeness);
      PutDouble(writer, result.total_cost);
      writer.PutU8(result.audit_blind);
      writer.PutU32(static_cast<uint32_t>(result.actions.size()));
      for (const PlanActionWire& action : result.actions) {
        writer.PutU8(static_cast<uint8_t>(action.api.kind));
        writer.PutU32(action.api.code);
        writer.PutLengthPrefixedString(action.name);
        writer.PutU8(action.action);
        writer.PutU8(action.evidence);
        PutDouble(writer, action.cost);
        PutDouble(writer, action.cumulative_cost);
        PutDouble(writer, action.completeness_after);
        PutDouble(writer, action.importance);
      }
      break;
    }
    case Opcode::kFrameError:
      break;  // status is never kOk for frame errors
  }
}

Result<QueryResponse> DecodeResponse(ByteReader& reader) {
  QueryResponse response;
  LAPIS_ASSIGN_OR_RETURN(uint8_t opcode, reader.ReadU8());
  LAPIS_ASSIGN_OR_RETURN(uint8_t status, reader.ReadU8());
  if (status > static_cast<uint8_t>(WireStatus::kBusy)) {
    return InvalidArgumentError("bad WireStatus byte " +
                                std::to_string(status));
  }
  response.status = static_cast<WireStatus>(status);
  LAPIS_ASSIGN_OR_RETURN(response.generation, reader.ReadU64());
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
    case Opcode::kServerInfo:
    case Opcode::kImportance:
    case Opcode::kEvalProfile:
    case Opcode::kTopK:
    case Opcode::kPlanFrontier:
    case Opcode::kFrameError:
      response.opcode = static_cast<Opcode>(opcode);
      break;
    default:
      return InvalidArgumentError("unknown response opcode " +
                                  std::to_string(opcode));
  }
  if (response.status != WireStatus::kOk) {
    LAPIS_ASSIGN_OR_RETURN(response.error,
                           reader.ReadLengthPrefixedString());
    return response;
  }
  switch (response.opcode) {
    case Opcode::kPing:
      break;
    case Opcode::kServerInfo: {
      ServerInfoResult& info = response.info;
      LAPIS_ASSIGN_OR_RETURN(info.protocol_version, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(info.content_hash, reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(info.package_count, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(info.total_installations, reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(info.reload_failures, reader.ReadU64());
      LAPIS_ASSIGN_OR_RETURN(info.source, reader.ReadLengthPrefixedString());
      info.generation = response.generation;
      break;
    }
    case Opcode::kImportance: {
      ImportanceResult& result = response.importance;
      LAPIS_ASSIGN_OR_RETURN(result.api.kind, ReadKind(reader));
      LAPIS_ASSIGN_OR_RETURN(result.api.code, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(result.name, reader.ReadLengthPrefixedString());
      LAPIS_ASSIGN_OR_RETURN(result.importance, ReadDouble(reader));
      LAPIS_ASSIGN_OR_RETURN(result.unweighted, ReadDouble(reader));
      LAPIS_ASSIGN_OR_RETURN(result.dependents, reader.ReadU32());
      break;
    }
    case Opcode::kEvalProfile: {
      EvalProfileResult& result = response.eval;
      LAPIS_ASSIGN_OR_RETURN(result.weighted_completeness, ReadDouble(reader));
      LAPIS_ASSIGN_OR_RETURN(result.supported_packages, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(result.total_packages, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(result.resolved_apis, reader.ReadU32());
      LAPIS_ASSIGN_OR_RETURN(result.absent_apis, reader.ReadU32());
      break;
    }
    case Opcode::kTopK: {
      LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
      if (count > kMaxProfileApis) {
        return InvalidArgumentError("top-K result too large: " +
                                    std::to_string(count));
      }
      response.top_k.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        TopKEntry entry;
        LAPIS_ASSIGN_OR_RETURN(entry.api.kind, ReadKind(reader));
        LAPIS_ASSIGN_OR_RETURN(entry.api.code, reader.ReadU32());
        LAPIS_ASSIGN_OR_RETURN(entry.name,
                               reader.ReadLengthPrefixedString());
        LAPIS_ASSIGN_OR_RETURN(entry.importance, ReadDouble(reader));
        response.top_k.push_back(std::move(entry));
      }
      break;
    }
    case Opcode::kPlanFrontier: {
      PlanFrontierResult& result = response.plan;
      LAPIS_ASSIGN_OR_RETURN(result.initial_completeness, ReadDouble(reader));
      LAPIS_ASSIGN_OR_RETURN(result.final_completeness, ReadDouble(reader));
      LAPIS_ASSIGN_OR_RETURN(result.total_cost, ReadDouble(reader));
      LAPIS_ASSIGN_OR_RETURN(result.audit_blind, reader.ReadU8());
      LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
      if (count > kMaxProfileApis) {
        return InvalidArgumentError("plan result too large: " +
                                    std::to_string(count));
      }
      result.actions.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        PlanActionWire action;
        LAPIS_ASSIGN_OR_RETURN(action.api.kind, ReadKind(reader));
        LAPIS_ASSIGN_OR_RETURN(action.api.code, reader.ReadU32());
        LAPIS_ASSIGN_OR_RETURN(action.name,
                               reader.ReadLengthPrefixedString());
        LAPIS_ASSIGN_OR_RETURN(action.action, reader.ReadU8());
        LAPIS_ASSIGN_OR_RETURN(action.evidence, reader.ReadU8());
        LAPIS_ASSIGN_OR_RETURN(action.cost, ReadDouble(reader));
        LAPIS_ASSIGN_OR_RETURN(action.cumulative_cost, ReadDouble(reader));
        LAPIS_ASSIGN_OR_RETURN(action.completeness_after,
                               ReadDouble(reader));
        LAPIS_ASSIGN_OR_RETURN(action.importance, ReadDouble(reader));
        result.actions.push_back(std::move(action));
      }
      break;
    }
    case Opcode::kFrameError:
      break;
  }
  return response;
}

std::vector<uint8_t> Frame(uint32_t magic, ByteWriter payload) {
  ByteWriter framed;
  framed.PutU32(magic);
  framed.PutU32(static_cast<uint32_t>(payload.size()));
  framed.PutBytes(payload.bytes());
  return framed.Take();
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kBadRequest: return "BAD_REQUEST";
    case WireStatus::kUnknownApi: return "UNKNOWN_API";
    case WireStatus::kUnsupportedKind: return "UNSUPPORTED_KIND";
    case WireStatus::kNotReady: return "NOT_READY";
    case WireStatus::kInternal: return "INTERNAL";
    case WireStatus::kBusy: return "BUSY";
  }
  return "INVALID";
}

std::vector<uint8_t> EncodeRequestFrame(std::span<const QueryRequest> batch) {
  ByteWriter payload;
  payload.PutU32(static_cast<uint32_t>(batch.size()));
  for (const QueryRequest& request : batch) {
    EncodeRequest(request, payload);
  }
  return Frame(kRequestMagic, std::move(payload));
}

std::vector<uint8_t> EncodeResponseFrame(
    std::span<const QueryResponse> batch) {
  ByteWriter payload;
  payload.PutU32(static_cast<uint32_t>(batch.size()));
  for (const QueryResponse& response : batch) {
    EncodeResponse(response, payload);
  }
  return Frame(kResponseMagic, std::move(payload));
}

Result<uint32_t> DecodeFrameHeader(std::span<const uint8_t> header,
                                   uint32_t expected_magic) {
  if (header.size() < kFrameHeaderSize) {
    return CorruptDataError("truncated frame header: " +
                            std::to_string(header.size()) + " bytes");
  }
  ByteReader reader(header);
  uint32_t magic = reader.ReadU32().take();
  if (magic != expected_magic) {
    return CorruptDataError("bad frame magic");
  }
  uint32_t payload_len = reader.ReadU32().take();
  if (payload_len > kMaxFramePayload) {
    return CorruptDataError("oversized frame: " + std::to_string(payload_len) +
                            " bytes (max " + std::to_string(kMaxFramePayload) +
                            ")");
  }
  if (payload_len < 4) {  // at least the batch count
    return CorruptDataError("frame payload too short to hold a batch count");
  }
  return payload_len;
}

template <typename T, typename DecodeFn>
static Result<std::vector<T>> DecodePayload(std::span<const uint8_t> payload,
                                            DecodeFn decode_one) {
  ByteReader reader(payload);
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > kMaxBatchRequests) {
    return InvalidArgumentError("batch too large: " + std::to_string(count) +
                                " entries (max " +
                                std::to_string(kMaxBatchRequests) + ")");
  }
  std::vector<T> batch;
  batch.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(T entry, decode_one(reader));
    batch.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return CorruptDataError(std::to_string(reader.remaining()) +
                            " trailing bytes after batch");
  }
  return batch;
}

Result<std::vector<QueryRequest>> DecodeRequestPayload(
    std::span<const uint8_t> payload) {
  return DecodePayload<QueryRequest>(payload, DecodeRequest);
}

Result<std::vector<QueryResponse>> DecodeResponsePayload(
    std::span<const uint8_t> payload) {
  return DecodePayload<QueryResponse>(payload, DecodeResponse);
}

std::vector<uint8_t> EncodeFrameErrorResponse(const std::string& error) {
  QueryResponse response;
  response.opcode = Opcode::kFrameError;
  response.status = WireStatus::kBadRequest;
  response.error = error;
  return EncodeResponseFrame(std::span<const QueryResponse>(&response, 1));
}

std::vector<uint8_t> EncodeBusyResponse(const std::string& error) {
  QueryResponse response;
  response.opcode = Opcode::kFrameError;
  response.status = WireStatus::kBusy;
  response.error = error;
  return EncodeResponseFrame(std::span<const QueryResponse>(&response, 1));
}

}  // namespace lapis::serve
