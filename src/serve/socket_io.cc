#include "src/serve/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/util/fault.h"

namespace lapis::serve {

namespace {

Status ErrnoError(const std::string& what) {
  return IoError(what + ": " + std::strerror(errno));
}

Result<sockaddr_un> UnixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Result<sockaddr_in> TcpAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("not an IPv4 address: " + host);
  }
  return addr;
}

int64_t NowMillis() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

// Connects `fd` (made non-blocking for the duration) with EINTR safety and
// an optional deadline. POSIX: once connect() has been interrupted by a
// signal, the connection attempt continues asynchronously — retrying the
// connect() call itself would yield EALREADY/EISCONN on a healthy socket,
// so completion is awaited via poll(POLLOUT) and judged by SO_ERROR.
Status ConnectWithDeadline(int fd, const sockaddr* addr, socklen_t len,
                           const std::string& what, int timeout_ms) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoError("fcntl(O_NONBLOCK) " + what);
  }
  Status status = Status::Ok();
  if (::connect(fd, addr, len) != 0) {
    if (errno == EINPROGRESS || errno == EINTR) {
      const int64_t deadline =
          timeout_ms > 0 ? NowMillis() + timeout_ms : 0;
      for (;;) {
        int wait_ms = -1;
        if (timeout_ms > 0) {
          int64_t remaining = deadline - NowMillis();
          if (remaining <= 0) {
            status = IoError("connect " + what + " timed out after " +
                             std::to_string(timeout_ms) + "ms");
            break;
          }
          wait_ms = static_cast<int>(remaining);
        }
        pollfd pfd{fd, POLLOUT, 0};
        int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0) {
          if (errno == EINTR) {
            continue;  // e.g. SIGHUP mid-connect: keep waiting
          }
          status = ErrnoError("poll(connect " + what + ")");
          break;
        }
        if (ready == 0) {
          status = IoError("connect " + what + " timed out after " +
                           std::to_string(timeout_ms) + "ms");
          break;
        }
        int so_error = 0;
        socklen_t so_len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0) {
          status = ErrnoError("getsockopt(SO_ERROR) " + what);
        } else if (so_error != 0) {
          status = IoError("connect " + what + ": " +
                           std::strerror(so_error));
        }
        break;
      }
    } else {
      status = ErrnoError("connect " + what);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0 && status.ok()) {
    return ErrnoError("fcntl(restore flags) " + what);
  }
  return status;
}

}  // namespace

ssize_t ReadFully(int fd, uint8_t* out, size_t size) {
  size_t done = 0;
  while (done < size) {
    fault::Injected injected = fault::Check(fault::Site::kSockRead,
                                            size - done);
    switch (injected.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kEintr:
        continue;  // drives the same retry the real EINTR branch takes
      case fault::Kind::kShort:
        // Peer vanished mid-frame: the caller sees a truncated read.
        return static_cast<ssize_t>(done);
      default:
        errno = fault::InjectedErrno(injected.kind);
        return -1;
    }
    ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (n == 0) {
      return static_cast<ssize_t>(done);
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

bool WriteFully(int fd, std::span<const uint8_t> data) {
  size_t done = 0;
  while (done < data.size()) {
    fault::Injected injected = fault::Check(fault::Site::kSockWrite,
                                            data.size() - done);
    size_t limit = data.size();
    bool fail_after = false;
    switch (injected.kind) {
      case fault::Kind::kNone:
        break;
      case fault::Kind::kEintr:
        continue;
      case fault::Kind::kShort:
      case fault::Kind::kCrash:
        // A prefix escapes to the peer, then the connection dies — the
        // mid-frame disconnect the reader's truncation handling covers.
        limit = done + injected.short_bytes;
        fail_after = true;
        break;
      default:
        errno = fault::InjectedErrno(injected.kind);
        return false;
    }
    while (done < limit) {
      ssize_t n = ::send(fd, data.data() + done, limit - done, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      done += static_cast<size_t>(n);
    }
    if (fail_after) {
      return false;
    }
  }
  return true;
}

Result<int> ConnectUnixSocket(const std::string& path, int timeout_ms) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddr(path));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_UNIX)");
  }
  Status status =
      ConnectWithDeadline(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr), path, timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ConnectTcpSocket(const std::string& host, uint16_t port,
                             int timeout_ms) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_in addr, TcpAddr(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_INET)");
  }
  Status status =
      ConnectWithDeadline(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr), host + ":" + std::to_string(port),
                          timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return fd;
}

Status SetSocketTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) {
    return Status::Ok();
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoError("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoError("setsockopt(SO_SNDTIMEO)");
  }
  return Status::Ok();
}

bool ErrnoIsTimeout(int saved_errno) {
  return saved_errno == EAGAIN || saved_errno == EWOULDBLOCK;
}

Result<int> ListenUnixSocket(const std::string& path, int backlog) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddr(path));
  ::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_UNIX)");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = ErrnoError("bind " + path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = ErrnoError("listen " + path);
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ListenTcpSocket(const std::string& host, uint16_t port,
                            int backlog, uint16_t* bound_port) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_in addr, TcpAddr(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_INET)");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = ErrnoError("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = ErrnoError("listen");
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      *bound_port = ntohs(actual.sin_port);
    } else {
      *bound_port = port;
    }
  }
  return fd;
}

}  // namespace lapis::serve
