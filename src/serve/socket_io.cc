#include "src/serve/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace lapis::serve {

namespace {

Status ErrnoError(const std::string& what) {
  return IoError(what + ": " + std::strerror(errno));
}

Result<sockaddr_un> UnixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Result<sockaddr_in> TcpAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

ssize_t ReadFully(int fd, uint8_t* out, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (n == 0) {
      return static_cast<ssize_t>(done);
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

bool WriteFully(int fd, std::span<const uint8_t> data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

Result<int> ConnectUnixSocket(const std::string& path) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddr(path));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_UNIX)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status status = ErrnoError("connect " + path);
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ConnectTcpSocket(const std::string& host, uint16_t port) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_in addr, TcpAddr(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_INET)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status status =
        ErrnoError("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ListenUnixSocket(const std::string& path, int backlog) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_un addr, UnixAddr(path));
  ::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_UNIX)");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = ErrnoError("bind " + path);
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = ErrnoError("listen " + path);
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ListenTcpSocket(const std::string& host, uint16_t port,
                            int backlog, uint16_t* bound_port) {
  LAPIS_ASSIGN_OR_RETURN(sockaddr_in addr, TcpAddr(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoError("socket(AF_INET)");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = ErrnoError("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = ErrnoError("listen");
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      *bound_port = ntohs(actual.sin_port);
    } else {
      *bound_port = port;
    }
  }
  return fd;
}

}  // namespace lapis::serve
