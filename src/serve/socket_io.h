// Small blocking-socket helpers shared by the serve server and client:
// full-length reads/writes with EINTR handling and SIGPIPE suppression,
// plus address construction for Unix / loopback-TCP endpoints.

#ifndef LAPIS_SRC_SERVE_SOCKET_IO_H_
#define LAPIS_SRC_SERVE_SOCKET_IO_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lapis::serve {

// Reads exactly `size` bytes into `out`. Returns the count actually read:
// `size` on success, 0 on clean EOF before any byte, the partial count on
// EOF mid-buffer, or -1 on a socket error.
ssize_t ReadFully(int fd, uint8_t* out, size_t size);

// Writes all of `data` (MSG_NOSIGNAL; a dead peer is an error, not a
// SIGPIPE). Returns false on any error.
bool WriteFully(int fd, std::span<const uint8_t> data);

// Creates + connects a blocking client socket. Unix paths are limited by
// sun_path (~107 bytes).
Result<int> ConnectUnixSocket(const std::string& path);
Result<int> ConnectTcpSocket(const std::string& host, uint16_t port);

// Creates, binds, and listens. The Unix variant unlinks a pre-existing
// socket file first (daemon restart idiom). The TCP variant binds `host`
// (loopback by default) and returns the bound port via `bound_port` —
// pass port 0 for an ephemeral one.
Result<int> ListenUnixSocket(const std::string& path, int backlog);
Result<int> ListenTcpSocket(const std::string& host, uint16_t port,
                            int backlog, uint16_t* bound_port);

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_SOCKET_IO_H_
