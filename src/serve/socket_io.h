// Small blocking-socket helpers shared by the serve server and client:
// full-length reads/writes with EINTR handling and SIGPIPE suppression,
// plus address construction for Unix / loopback-TCP endpoints.

#ifndef LAPIS_SRC_SERVE_SOCKET_IO_H_
#define LAPIS_SRC_SERVE_SOCKET_IO_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lapis::serve {

// Reads exactly `size` bytes into `out`. Returns the count actually read:
// `size` on success, 0 on clean EOF before any byte, the partial count on
// EOF mid-buffer, or -1 on a socket error.
ssize_t ReadFully(int fd, uint8_t* out, size_t size);

// Writes all of `data` (MSG_NOSIGNAL; a dead peer is an error, not a
// SIGPIPE). Returns false on any error.
bool WriteFully(int fd, std::span<const uint8_t> data);

// Creates + connects a blocking client socket. Unix paths are limited by
// sun_path (~107 bytes). `timeout_ms` bounds the connect itself (0 = wait
// forever). Either way the connect is interrupt-safe: a signal delivered
// mid-connect leaves the attempt in progress (POSIX), so completion is
// awaited with poll + SO_ERROR rather than failing the healthy socket.
Result<int> ConnectUnixSocket(const std::string& path, int timeout_ms = 0);
Result<int> ConnectTcpSocket(const std::string& host, uint16_t port,
                             int timeout_ms = 0);

// Applies SO_RCVTIMEO/SO_SNDTIMEO so blocked reads/writes fail with
// EAGAIN/EWOULDBLOCK after `timeout_ms` instead of hanging on a wedged
// peer. No-op when timeout_ms <= 0.
Status SetSocketTimeouts(int fd, int timeout_ms);

// True when errno (captured after a failed read/write) means the socket
// timeout expired rather than a real I/O failure.
bool ErrnoIsTimeout(int saved_errno);

// Creates, binds, and listens. The Unix variant unlinks a pre-existing
// socket file first (daemon restart idiom). The TCP variant binds `host`
// (loopback by default) and returns the bound port via `bound_port` —
// pass port 0 for an ephemeral one.
Result<int> ListenUnixSocket(const std::string& path, int backlog);
Result<int> ListenTcpSocket(const std::string& host, uint16_t port,
                            int backlog, uint16_t* bound_port);

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_SOCKET_IO_H_
