// Wire protocol for the lapis_serve footprint-database daemon.
//
// Transport framing is a length-prefixed binary envelope (little-endian,
// src/util/bytes.h) carrying a *batch* of requests so one round trip can
// ask many questions; every request in a frame is answered against the
// same snapshot generation:
//
//   request frame:   u32 magic 'LQF1' | u32 payload_len | payload
//   request payload: u32 request_count | request_count x request
//   response frame:  u32 magic 'LQR1' | u32 payload_len | payload
//   response payload:u32 response_count | response_count x response
//
// Each request starts with a u8 opcode; each response echoes the opcode
// followed by a u8 WireStatus, so one malformed or unanswerable request in
// a batch yields a per-request error without poisoning its neighbours.
// Frame-level damage (bad magic, truncated or oversized length prefix,
// undecodable payload) is unrecoverable for the connection: the server
// answers with a single kFrameError response and closes.
//
// APIs travel as (kind, code, name) triples. A non-empty name takes
// precedence and is resolved server-side (syscall names via the study's
// syscall table, vectored opcodes as decimal/hex numerals, pseudo-file
// paths and libc symbols via the snapshot's interners), so clients never
// need interner id assignments.

#ifndef LAPIS_SRC_SERVE_PROTOCOL_H_
#define LAPIS_SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/api_id.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace lapis::serve {

// v2: WireStatus::kBusy (retryable overload shedding) + reload_failures in
// ServerInfoResult. v1 decoders reject kBusy frames as corrupt, which still
// fails safe (the client gives up instead of retrying).
inline constexpr uint32_t kProtocolVersion = 2;
inline constexpr uint32_t kRequestMagic = 0x3146514c;   // "LQF1"
inline constexpr uint32_t kResponseMagic = 0x3152514c;  // "LQR1"

// Hard ceilings: a frame declaring more than kMaxFramePayload bytes is
// rejected before any payload is read (oversized-request DoS guard), and a
// payload declaring more entries than could possibly fit is rejected before
// allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB
inline constexpr uint32_t kMaxBatchRequests = 4096;
inline constexpr uint32_t kMaxProfileApis = 1u << 16;
inline constexpr size_t kFrameHeaderSize = 8;

enum class Opcode : uint8_t {
  kPing = 0,        // liveness + current generation
  kServerInfo = 1,  // generation, content hash, dataset shape
  kImportance = 2,  // point lookup: importance of one API
  kEvalProfile = 3, // weighted completeness of a supported-API profile
  kTopK = 4,        // top-K APIs to add next (given an optional profile)
  kPlanFrontier = 5,  // greedy support plan: next APIs to build, with costs
  kFrameError = 0xff,  // response-only: the frame itself was malformed
};

// kPlanFrontier request flag bits.
inline constexpr uint8_t kPlanFlagAuditBlind = 1;  // ignore audit evidence

enum class WireStatus : uint8_t {
  kOk = 0,
  kBadRequest = 1,      // undecodable / out-of-range request body
  kUnknownApi = 2,      // a name that resolves nowhere (e.g. syscall typo)
  kUnsupportedKind = 3, // ApiKind byte outside the known families
  kNotReady = 4,        // no snapshot generation published yet
  kInternal = 5,
  kBusy = 6,            // overloaded: shed, retry with backoff (v2)
};

const char* WireStatusName(WireStatus status);

// One API reference on the wire. `name` non-empty => resolve by name.
struct ApiRef {
  core::ApiKind kind = core::ApiKind::kSyscall;
  uint32_t code = 0;
  std::string name;
};

struct QueryRequest {
  Opcode opcode = Opcode::kPing;
  // kImportance
  ApiRef api;
  // kEvalProfile: bit (1 << kind) selects evaluated kinds; 0 = all kinds.
  uint8_t evaluated_kinds_mask = 0;
  // kEvalProfile / kTopK: the client's supported-API profile.
  std::vector<ApiRef> supported;
  // kTopK
  core::ApiKind top_kind = core::ApiKind::kSyscall;
  uint32_t top_k = 0;
  // kPlanFrontier (also uses evaluated_kinds_mask + supported): cap on the
  // number of plan actions returned (0 = server default), cost budget
  // (infinity = unbounded), and kPlanFlag* bits.
  uint32_t plan_max_actions = 0;
  double plan_budget = 0.0;  // <= 0 means unbounded
  uint8_t plan_flags = 0;
};

struct ImportanceResult {
  core::ApiId api;
  std::string name;          // canonical display name
  double importance = 0.0;   // weighted (install-probability) importance
  double unweighted = 0.0;   // fraction of packages
  uint32_t dependents = 0;   // packages whose footprint contains the API
};

struct EvalProfileResult {
  double weighted_completeness = 0.0;
  uint32_t supported_packages = 0;
  uint32_t total_packages = 0;
  uint32_t resolved_apis = 0;  // profile entries resolved to dataset APIs
  uint32_t absent_apis = 0;    // entries naming APIs no package uses
};

struct TopKEntry {
  core::ApiId api;
  std::string name;
  double importance = 0.0;
};

// One step of a support plan on the wire. `action` / `evidence` carry the
// raw plan::SupportAction / plan::EvidenceClass byte (the protocol layer
// stays independent of src/plan).
struct PlanActionWire {
  core::ApiId api;
  std::string name;
  uint8_t action = 0;
  uint8_t evidence = 0;
  double cost = 0.0;
  double cumulative_cost = 0.0;
  double completeness_after = 0.0;
  double importance = 0.0;
};

struct PlanFrontierResult {
  double initial_completeness = 0.0;
  double final_completeness = 0.0;
  double total_cost = 0.0;
  uint8_t audit_blind = 0;  // 1 if the plan ignored audit evidence
  std::vector<PlanActionWire> actions;
};

struct ServerInfoResult {
  uint32_t protocol_version = kProtocolVersion;
  uint64_t generation = 0;
  uint64_t content_hash = 0;  // FNV-1a of the serialized study artifact
  uint32_t package_count = 0;
  uint64_t total_installations = 0;
  uint64_t reload_failures = 0;  // rejected SIGHUP reloads since startup (v2)
  std::string source;  // where the snapshot came from (path or label)
};

struct QueryResponse {
  Opcode opcode = Opcode::kPing;
  WireStatus status = WireStatus::kOk;
  std::string error;  // non-kOk: human-readable context
  // Every response carries the generation it was answered against.
  uint64_t generation = 0;
  ImportanceResult importance;
  EvalProfileResult eval;
  std::vector<TopKEntry> top_k;
  PlanFrontierResult plan;
  ServerInfoResult info;
};

// ---- Frame encoding ----

// Serializes a whole request/response batch into one framed byte vector
// (header + payload), ready for a single write.
std::vector<uint8_t> EncodeRequestFrame(std::span<const QueryRequest> batch);
std::vector<uint8_t> EncodeResponseFrame(std::span<const QueryResponse> batch);

// Validates an 8-byte frame header against `expected_magic` and the payload
// ceiling; returns the payload length to read next.
Result<uint32_t> DecodeFrameHeader(std::span<const uint8_t> header,
                                   uint32_t expected_magic);

// Decodes a full frame payload (the bytes after the header). Trailing bytes
// after the declared batch are corruption and rejected.
Result<std::vector<QueryRequest>> DecodeRequestPayload(
    std::span<const uint8_t> payload);
Result<std::vector<QueryResponse>> DecodeResponsePayload(
    std::span<const uint8_t> payload);

// The single-response frame the server sends before closing a connection
// whose inbound frame was unrecoverable.
std::vector<uint8_t> EncodeFrameErrorResponse(const std::string& error);

// The single-response frame the server sheds load with (kFrameError opcode,
// kBusy status): the client should back off and retry the whole frame.
std::vector<uint8_t> EncodeBusyResponse(const std::string& error);

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_PROTOCOL_H_
