// The lapis_serve daemon core: a concurrent query server over the
// footprint database.
//
// Design (thread-per-core on the existing work-stealing runtime):
//   * One dedicated accept thread polls the listening socket (Unix or
//     loopback TCP) and hands each accepted connection to the
//     runtime::Executor as a task; `workers` pool threads then own
//     connections for their lifetime (blocking reads — the executor is
//     sized so all `workers` threads really exist, and the accept thread
//     never joins the pool, so connection tasks never run inline).
//   * A connection is a loop of request frames (protocol.h). Every request
//     in one frame is answered against a single GenerationStore::Current()
//     pin, so a batch observes exactly one snapshot generation even while
//     ingestion publishes a new one mid-frame.
//   * Malformed framing (bad magic, oversized or truncated length prefix,
//     undecodable payload) gets one kFrameError response (when the peer is
//     still readable) and the connection is closed; well-formed requests
//     with bad content get per-request WireStatus errors instead.
//
// Concurrency limit: at most `workers` connections are served at once;
// further accepted connections queue in the executor until a worker frees
// up. Stop() shuts the listener and every live connection down, then joins.

#ifndef LAPIS_SRC_SERVE_SERVER_H_
#define LAPIS_SRC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "src/runtime/executor.h"
#include "src/serve/generation.h"
#include "src/util/status.h"

namespace lapis::serve {

struct ServerOptions {
  // Non-empty => listen on this Unix socket path (unlinking a stale one).
  std::string unix_socket_path;
  // Used when `unix_socket_path` is empty; port 0 picks an ephemeral port.
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  // Connection worker threads; 0 = runtime::DefaultJobs().
  size_t workers = 0;
  int backlog = 64;
  // Overload shedding (0 = uncapped). A connection accepted past
  // max_connections gets one kBusy frame and is closed; a frame arriving
  // while max_inflight_frames are already executing gets a kBusy response
  // but keeps its connection. kBusy is retryable — clients back off and
  // try again (client.h CallWithRetry).
  size_t max_connections = 0;
  size_t max_inflight_frames = 0;
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_served = 0;
  uint64_t requests_served = 0;
  uint64_t protocol_errors = 0;  // connections dropped for bad framing
  uint64_t connections_shed = 0;  // closed at accept with kBusy (conn cap)
  uint64_t frames_shed = 0;       // answered kBusy (in-flight frame cap)
  uint64_t reload_failures = 0;   // rejected artifact reloads (store's count)
};

class Server {
 public:
  // Binds, listens, and starts the accept thread + worker pool. The store
  // is borrowed (not owned) and may be published to at any time.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options,
                                               GenerationStore* store);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Idempotent: closes the listener, severs live connections, joins.
  void Stop();

  // Printable endpoint: "unix:<path>" or "tcp:<host>:<port>".
  std::string endpoint() const;
  uint16_t tcp_port() const { return bound_port_; }
  size_t workers() const { return workers_; }
  ServerStats stats() const;

 private:
  Server() = default;

  void AcceptLoop();
  void HandleConnection(int fd);
  // Serves one inbound frame; false => close the connection.
  bool ServeFrame(int fd);

  ServerOptions options_;
  GenerationStore* store_ = nullptr;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  size_t workers_ = 0;

  std::unique_ptr<runtime::Executor> executor_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  std::mutex connections_mutex_;
  std::set<int> connections_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> frames_shed_{0};
  std::atomic<uint64_t> inflight_frames_{0};
};

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_SERVER_H_
