// Client side of the lapis_serve protocol: one blocking connection that
// sends request batches and decodes response frames. Used by the
// lapis_query CLI, the QPS bench, and the serve tests. Not thread-safe;
// open one client per thread.

#ifndef LAPIS_SRC_SERVE_CLIENT_H_
#define LAPIS_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/serve/protocol.h"
#include "src/util/status.h"

namespace lapis::serve {

class QueryClient {
 public:
  // `timeout_ms` (0 = no limit) bounds the connect and every subsequent
  // read/write on the connection; an expired read surfaces as an IoError
  // naming the timeout instead of hanging on a wedged daemon.
  static Result<QueryClient> ConnectUnix(const std::string& path,
                                         int timeout_ms = 0);
  static Result<QueryClient> ConnectTcp(const std::string& host,
                                        uint16_t port, int timeout_ms = 0);

  QueryClient(QueryClient&& other) noexcept;
  QueryClient& operator=(QueryClient&& other) noexcept;
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  ~QueryClient();

  // Sends `batch` as one frame and reads the matching response frame.
  // A server-side frame error surfaces as a CorruptData status carrying
  // the server's message; per-request errors come back as WireStatus in
  // each response.
  Result<std::vector<QueryResponse>> Call(
      std::span<const QueryRequest> batch);

  // Single-request convenience.
  Result<QueryResponse> CallOne(const QueryRequest& request);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  QueryClient(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  int fd_ = -1;
  int timeout_ms_ = 0;
};

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_CLIENT_H_
