// Client side of the lapis_serve protocol: one blocking connection that
// sends request batches and decodes response frames. Used by the
// lapis_query CLI, the QPS bench, and the serve tests. Not thread-safe;
// open one client per thread.

#ifndef LAPIS_SRC_SERVE_CLIENT_H_
#define LAPIS_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/serve/protocol.h"
#include "src/util/status.h"

namespace lapis::serve {

// Where a daemon lives; `unix_path` non-empty selects the Unix transport.
struct Endpoint {
  std::string unix_path;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

// Retry policy for CallWithRetry. `retries` counts additional attempts
// after the first; backoff doubles each retry (seeded jitter on top) and
// `timeout_ms` is a TOTAL deadline across connects, calls, and backoff
// sleeps — not a per-attempt budget.
struct RetryOptions {
  int retries = 0;
  int backoff_ms = 100;
  int timeout_ms = 0;  // 0 = no deadline
  uint64_t jitter_seed = 0;
};

// What actually happened across the attempts (for banners and benches).
struct RetryTelemetry {
  uint32_t attempts = 0;
  uint32_t busy_responses = 0;  // kBusy sheds that triggered a retry
  uint32_t io_failures = 0;     // connect/transport failures that did
  int64_t backoff_waited_ms = 0;
};

// True for errors that a fresh attempt can fix: kUnavailable (the server
// shed load) and kIoError (connect refused/reset/timed out). Corrupt or
// invalid frames are not retryable — resending the same bytes cannot help.
bool IsRetryableStatus(const Status& status);

class QueryClient {
 public:
  // `timeout_ms` (0 = no limit) bounds the connect and every subsequent
  // read/write on the connection; an expired read surfaces as an IoError
  // naming the timeout instead of hanging on a wedged daemon.
  static Result<QueryClient> ConnectUnix(const std::string& path,
                                         int timeout_ms = 0);
  static Result<QueryClient> ConnectTcp(const std::string& host,
                                        uint16_t port, int timeout_ms = 0);

  QueryClient(QueryClient&& other) noexcept;
  QueryClient& operator=(QueryClient&& other) noexcept;
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  ~QueryClient();

  // Sends `batch` as one frame and reads the matching response frame.
  // A server-side frame error surfaces as a CorruptData status carrying
  // the server's message; an overload shed (kBusy) surfaces as a
  // retryable Unavailable status and leaves the connection open; per-
  // request errors come back as WireStatus in each response.
  Result<std::vector<QueryResponse>> Call(
      std::span<const QueryRequest> batch);

  // Single-request convenience.
  Result<QueryResponse> CallOne(const QueryRequest& request);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  QueryClient(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  // Reads and decodes one response frame, classifying busy sheds and
  // frame-level rejections (see Call). `expected` is the request count the
  // response must match.
  Result<std::vector<QueryResponse>> ReadResponseFrame(size_t expected);

  int fd_ = -1;
  int timeout_ms_ = 0;
};

// Connects and calls with retries: each attempt opens a fresh connection
// (the shed/broken one is useless), failures that IsRetryableStatus accepts
// sleep an exponentially-growing, jittered backoff and try again, and the
// whole loop — connects, calls, sleeps — respects options.timeout_ms as a
// total deadline. Returns the last error when attempts or deadline run out.
Result<std::vector<QueryResponse>> CallWithRetry(
    const Endpoint& endpoint, std::span<const QueryRequest> batch,
    const RetryOptions& options, RetryTelemetry* telemetry = nullptr);

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_CLIENT_H_
