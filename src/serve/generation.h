// Versioned snapshot publication: the read-mostly heart of lapis_serve.
//
// Readers (connection workers, potentially thousands of queries in flight)
// call Current() — one O(1) atomic shared_ptr load — and keep the
// returned Generation alive for as long as a request batch runs, so a
// concurrent Publish() never blocks them and never tears the data out from
// under them: the old snapshot stays alive until its last reader drops it.
// Writers (ingestion) build a complete immutable Snapshot off to the side
// and swap it in with one atomic store; generation numbers are monotonic
// and assigned at publish time.

#ifndef LAPIS_SRC_SERVE_GENERATION_H_
#define LAPIS_SRC_SERVE_GENERATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/serve/snapshot.h"
#include "src/util/status.h"

namespace lapis::serve {

struct Generation {
  uint64_t number = 0;
  std::shared_ptr<const Snapshot> snapshot;
};

class GenerationStore {
 public:
  GenerationStore() = default;
  GenerationStore(const GenerationStore&) = delete;
  GenerationStore& operator=(const GenerationStore&) = delete;

  // Publishes `snapshot` as the next generation; returns its number.
  // Safe to call concurrently with any number of Current() readers (and
  // with other publishers — numbers stay unique and monotonic).
  uint64_t Publish(std::shared_ptr<const Snapshot> snapshot);

  // The latest published generation, or nullptr before the first Publish.
  // The returned pointer pins that generation's snapshot for its lifetime.
  std::shared_ptr<const Generation> Current() const;

  // Loads, validates, and publishes a study artifact as the next
  // generation. On ANY failure — unreadable file, torn bytes, schema
  // mismatch — the currently published generation stays live untouched,
  // reload_failures() is incremented, and the load error is returned.
  // This is the SIGHUP-reload path: a bad artifact must degrade to "keep
  // serving the old data", never to an empty or torn store.
  Result<uint64_t> PublishFromFile(const std::string& path);

  // Number of the latest published generation (0 = none yet).
  uint64_t latest() const {
    return latest_number_.load(std::memory_order_acquire);
  }

  // Failed PublishFromFile attempts since startup (served in `info`).
  uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

 private:
  // Swapped with std::atomic_load/atomic_store (the free functions, not
  // std::atomic<shared_ptr>): libstdc++ 12's lock-free _Sp_atomic trips
  // ThreadSanitizer (GCC PR 101228) because TSan cannot see the
  // happens-before edge through its pointer lock bit, while the free
  // functions synchronize through a TSan-visible mutex pool. The swap is
  // still O(1); ingestion builds the whole Snapshot outside any lock.
  std::shared_ptr<const Generation> current_;
  std::atomic<uint64_t> next_number_{1};
  std::atomic<uint64_t> latest_number_{0};
  std::atomic<uint64_t> reload_failures_{0};
};

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_GENERATION_H_
