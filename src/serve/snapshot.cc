#include "src/serve/snapshot.h"

#include <cstdio>
#include <set>

#include <algorithm>

#include "src/cache/content_hash.h"
#include "src/core/completeness.h"
#include "src/corpus/study_runner.h"
#include "src/corpus/syscall_table.h"
#include "src/corpus/system_profiles.h"
#include "src/plan/planner.h"

namespace lapis::serve {

namespace {

// Accepts decimal ("1074025674") and 0x-prefixed hex ("0x40045431")
// numerals for vectored-opcode references sent by name.
bool ParseCode(std::string_view s, uint32_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  size_t i = 0;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    i = 2;
  }
  for (; i < s.size(); ++i) {
    char c = s[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
    if (value > UINT32_MAX) {
      return false;
    }
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

Result<std::shared_ptr<const Snapshot>> Snapshot::FromArtifactBytes(
    std::span<const uint8_t> bytes, std::string source) {
  ByteReader reader(bytes);
  LAPIS_ASSIGN_OR_RETURN(corpus::StudyArtifact artifact,
                         corpus::DeserializeStudy(reader));
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->artifact_ = std::move(artifact);
  snapshot->content_hash_ = cache::HashBytes(bytes);
  snapshot->source_ = std::move(source);

  const core::StudyDataset& dataset = *snapshot->artifact_.dataset;
  for (int k = 0; k < core::kApiKindCount; ++k) {
    auto kind = static_cast<core::ApiKind>(k);
    // Syscalls rank over the full 320-entry universe so unused calls
    // surface (with importance 0) in deep top-K tails, matching the
    // paper's "what to support" tables.
    snapshot->ranked_[static_cast<size_t>(k)] = dataset.RankByImportance(
        kind, kind == core::ApiKind::kSyscall ? corpus::FullSyscallUniverse()
                                              : std::vector<core::ApiId>{});
  }

  // Intern canonical names for everything rankable (and thus returnable).
  auto intern = [&snapshot](core::ApiId api, std::string_view name) {
    snapshot->name_ids_.emplace(api.Encode(), snapshot->names_.Intern(name));
  };
  char buf[48];
  for (const auto& ranked : snapshot->ranked_) {
    for (const core::ApiId& api : ranked) {
      switch (api.kind) {
        case core::ApiKind::kSyscall:
          intern(api, corpus::SyscallName(static_cast<int>(api.code)));
          break;
        case core::ApiKind::kIoctlOp:
          std::snprintf(buf, sizeof buf, "ioctl:0x%x", api.code);
          intern(api, buf);
          break;
        case core::ApiKind::kFcntlOp:
          std::snprintf(buf, sizeof buf, "fcntl:%u", api.code);
          intern(api, buf);
          break;
        case core::ApiKind::kPrctlOp:
          std::snprintf(buf, sizeof buf, "prctl:%u", api.code);
          intern(api, buf);
          break;
        case core::ApiKind::kPseudoFile:
          intern(api, snapshot->artifact_.path_interner.NameOf(api.code));
          break;
        case core::ApiKind::kLibcFn:
          intern(api, snapshot->artifact_.libc_interner.NameOf(api.code));
          break;
      }
    }
  }
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const Snapshot>> Snapshot::FromFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[65536];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);
  return FromArtifactBytes(bytes, path);
}

Result<std::shared_ptr<const Snapshot>> Snapshot::FromStudy(
    const corpus::StudyResult& study, std::string source) {
  ByteWriter writer;
  LAPIS_RETURN_IF_ERROR(corpus::SerializeStudy(study, writer));
  return FromArtifactBytes(writer.bytes(), std::move(source));
}

std::string_view Snapshot::ApiName(core::ApiId api) const {
  auto it = name_ids_.find(api.Encode());
  if (it != name_ids_.end()) {
    return names_.NameOf(it->second);
  }
  return "";
}

WireStatus Snapshot::ResolveApi(const ApiRef& ref, core::ApiId* out,
                                bool* absent) const {
  *absent = false;
  if (static_cast<uint8_t>(ref.kind) >= core::kApiKindCount) {
    return WireStatus::kUnsupportedKind;
  }
  if (ref.name.empty()) {
    *out = core::ApiId{ref.kind, ref.code};
    return WireStatus::kOk;
  }
  switch (ref.kind) {
    case core::ApiKind::kSyscall: {
      auto nr = corpus::SyscallNumber(ref.name);
      if (!nr.has_value()) {
        return WireStatus::kUnknownApi;
      }
      *out = core::SyscallApi(static_cast<uint32_t>(*nr));
      return WireStatus::kOk;
    }
    case core::ApiKind::kIoctlOp:
    case core::ApiKind::kFcntlOp:
    case core::ApiKind::kPrctlOp: {
      // Accept both the bare numeral and the canonical "ioctl:0x..."
      // prefix form the server itself prints.
      std::string_view name = ref.name;
      auto colon = name.find(':');
      if (colon != std::string_view::npos) {
        name.remove_prefix(colon + 1);
      }
      uint32_t code = 0;
      if (!ParseCode(name, &code)) {
        return WireStatus::kUnknownApi;
      }
      *out = core::ApiId{ref.kind, code};
      return WireStatus::kOk;
    }
    case core::ApiKind::kPseudoFile: {
      uint32_t id = artifact_.path_interner.Find(ref.name);
      if (id == UINT32_MAX) {
        // A path no package touches: perfectly valid, importance 0.
        *absent = true;
        *out = core::ApiId{ref.kind, 0};
        return WireStatus::kOk;
      }
      *out = core::ApiId{ref.kind, id};
      return WireStatus::kOk;
    }
    case core::ApiKind::kLibcFn: {
      uint32_t id = artifact_.libc_interner.Find(ref.name);
      if (id == UINT32_MAX) {
        *absent = true;
        *out = core::ApiId{ref.kind, 0};
        return WireStatus::kOk;
      }
      *out = core::ApiId{ref.kind, id};
      return WireStatus::kOk;
    }
  }
  return WireStatus::kUnsupportedKind;
}

QueryResponse Snapshot::Execute(const QueryRequest& request) const {
  switch (request.opcode) {
    case Opcode::kPing: {
      QueryResponse response;
      response.opcode = Opcode::kPing;
      return response;
    }
    case Opcode::kServerInfo: {
      QueryResponse response;
      response.opcode = Opcode::kServerInfo;
      response.info.protocol_version = kProtocolVersion;
      response.info.content_hash = content_hash_;
      response.info.package_count =
          static_cast<uint32_t>(dataset().package_count());
      response.info.total_installations = dataset().total_installations();
      response.info.source = source_;
      return response;
    }
    case Opcode::kImportance:
      return ExecuteImportance(request);
    case Opcode::kEvalProfile:
      return ExecuteEvalProfile(request);
    case Opcode::kTopK:
      return ExecuteTopK(request);
    case Opcode::kPlanFrontier:
      return ExecutePlanFrontier(request);
    case Opcode::kFrameError:
      break;
  }
  QueryResponse response;
  response.opcode = request.opcode;
  response.status = WireStatus::kBadRequest;
  response.error = "unsupported opcode";
  return response;
}

QueryResponse Snapshot::ExecuteImportance(const QueryRequest& request) const {
  QueryResponse response;
  response.opcode = Opcode::kImportance;
  core::ApiId api;
  bool absent = false;
  WireStatus status = ResolveApi(request.api, &api, &absent);
  if (status != WireStatus::kOk) {
    response.status = status;
    response.error = "cannot resolve '" + request.api.name + "'";
    return response;
  }
  ImportanceResult& result = response.importance;
  if (absent) {
    // Syntactically valid but unused anywhere: importance is exactly 0.
    result.api = core::ApiId{request.api.kind, 0};
    result.name = request.api.name;
    return response;
  }
  result.api = api;
  std::string_view canonical = ApiName(api);
  result.name = canonical.empty() ? request.api.name
                                  : std::string(canonical);
  result.importance = dataset().ApiImportance(api);
  result.unweighted = dataset().UnweightedImportance(api);
  result.dependents = static_cast<uint32_t>(dataset().Dependents(api).size());
  return response;
}

QueryResponse Snapshot::ExecuteEvalProfile(const QueryRequest& request) const {
  QueryResponse response;
  response.opcode = Opcode::kEvalProfile;
  std::set<core::ApiId> supported;
  EvalProfileResult& result = response.eval;
  for (const ApiRef& ref : request.supported) {
    core::ApiId api;
    bool absent = false;
    WireStatus status = ResolveApi(ref, &api, &absent);
    if (status != WireStatus::kOk) {
      response.status = status;
      response.error = "cannot resolve '" + ref.name + "'";
      return response;
    }
    if (absent) {
      ++result.absent_apis;
    } else {
      supported.insert(api);
      ++result.resolved_apis;
    }
  }
  core::CompletenessOptions options;
  for (int k = 0; k < core::kApiKindCount; ++k) {
    if (request.evaluated_kinds_mask & (1u << k)) {
      options.evaluated_kinds.insert(static_cast<core::ApiKind>(k));
    }
  }
  result.weighted_completeness =
      core::WeightedCompleteness(dataset(), supported, options);
  auto flags = core::SupportedPackages(dataset(), supported, options);
  for (bool ok : flags) {
    result.supported_packages += ok ? 1 : 0;
  }
  result.total_packages = static_cast<uint32_t>(dataset().package_count());
  return response;
}

QueryResponse Snapshot::ExecuteTopK(const QueryRequest& request) const {
  QueryResponse response;
  response.opcode = Opcode::kTopK;
  if (static_cast<uint8_t>(request.top_kind) >= core::kApiKindCount) {
    response.status = WireStatus::kUnsupportedKind;
    response.error = "bad top-K kind";
    return response;
  }
  if (request.top_k == 0 || request.top_k > kMaxProfileApis) {
    response.status = WireStatus::kBadRequest;
    response.error = "top-K count must be in [1, " +
                     std::to_string(kMaxProfileApis) + "]";
    return response;
  }
  std::set<core::ApiId> supported;
  for (const ApiRef& ref : request.supported) {
    core::ApiId api;
    bool absent = false;
    WireStatus status = ResolveApi(ref, &api, &absent);
    if (status != WireStatus::kOk) {
      response.status = status;
      response.error = "cannot resolve '" + ref.name + "'";
      return response;
    }
    if (!absent) {
      supported.insert(api);
    }
  }
  const auto& ranked = ranked_[static_cast<size_t>(request.top_kind)];
  for (const core::ApiId& api : ranked) {
    if (response.top_k.size() >= request.top_k) {
      break;
    }
    if (supported.find(api) != supported.end()) {
      continue;
    }
    TopKEntry entry;
    entry.api = api;
    entry.name = std::string(ApiName(api));
    entry.importance = dataset().ApiImportance(api);
    response.top_k.push_back(std::move(entry));
  }
  return response;
}

QueryResponse Snapshot::ExecutePlanFrontier(
    const QueryRequest& request) const {
  QueryResponse response;
  response.opcode = Opcode::kPlanFrontier;

  plan::PlannerInput input;
  input.dataset = artifact_.dataset.get();
  plan::CostModel costs = plan::CostModel::Defaults();
  input.costs = &costs;
  for (const ApiRef& ref : request.supported) {
    core::ApiId api;
    bool absent = false;
    WireStatus status = ResolveApi(ref, &api, &absent);
    if (status != WireStatus::kOk) {
      response.status = status;
      response.error = "cannot resolve '" + ref.name + "'";
      return response;
    }
    if (!absent) {
      input.already_supported.insert(api);
    }
  }
  for (int k = 0; k < core::kApiKindCount; ++k) {
    if (request.evaluated_kinds_mask & (1u << k)) {
      input.evaluated_kinds.insert(static_cast<core::ApiKind>(k));
    }
  }
  const bool audit_blind = (request.plan_flags & kPlanFlagAuditBlind) != 0 ||
                           artifact_.evidence_kinds_mask == 0;
  if (!audit_blind) {
    input.evidence.kinds_mask = artifact_.evidence_kinds_mask;
    input.evidence.observed = artifact_.evidence_observed;
  }
  if (request.plan_budget > 0.0) {
    input.budget = request.plan_budget;
  }
  // Cap the action list so the response always fits one frame (the payload
  // ceiling is 1 MiB; ~60 bytes/action keeps 4096 comfortably inside it).
  input.max_actions = request.plan_max_actions == 0
                          ? 100
                          : std::min<uint32_t>(request.plan_max_actions, 4096);

  plan::SupportPlan support_plan = plan::GreedyPlan(input);

  PlanFrontierResult& result = response.plan;
  result.initial_completeness = support_plan.initial_completeness;
  result.final_completeness = support_plan.final_completeness;
  result.total_cost = support_plan.total_cost;
  result.audit_blind = audit_blind ? 1 : 0;
  result.actions.reserve(support_plan.actions.size());
  for (const plan::PlanAction& action : support_plan.actions) {
    PlanActionWire wire;
    wire.api = action.api;
    std::string_view canonical = ApiName(action.api);
    wire.name = canonical.empty()
                    ? plan::PlanApiName(action.api, artifact_.path_interner,
                                        artifact_.libc_interner)
                    : std::string(canonical);
    wire.action = static_cast<uint8_t>(action.action);
    wire.evidence = static_cast<uint8_t>(action.evidence);
    wire.cost = action.cost;
    wire.cumulative_cost = action.cumulative_cost;
    wire.completeness_after = action.completeness_after;
    wire.importance = action.importance;
    result.actions.push_back(std::move(wire));
  }
  return response;
}

}  // namespace lapis::serve
