#include "src/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

#include "src/serve/protocol.h"
#include "src/serve/socket_io.h"

namespace lapis::serve {

namespace {
constexpr int kAcceptPollMillis = 100;
}  // namespace

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options,
                                              GenerationStore* store) {
  if (store == nullptr) {
    return InvalidArgumentError("server needs a GenerationStore");
  }
  auto server = std::unique_ptr<Server>(new Server());
  server->options_ = options;
  server->store_ = store;
  server->workers_ =
      options.workers == 0 ? runtime::DefaultJobs() : options.workers;
  if (server->workers_ < 1) {
    server->workers_ = 1;
  }

  if (!options.unix_socket_path.empty()) {
    LAPIS_ASSIGN_OR_RETURN(
        server->listen_fd_,
        ListenUnixSocket(options.unix_socket_path, options.backlog));
  } else {
    LAPIS_ASSIGN_OR_RETURN(
        server->listen_fd_,
        ListenTcpSocket(options.tcp_host, options.tcp_port, options.backlog,
                        &server->bound_port_));
  }

  // workers_ + 1 logical threads -> exactly workers_ spawned pool threads.
  // The accept thread submits through the injector queue and never waits,
  // so connection tasks always land on real workers, never inline.
  server->executor_ =
      std::make_unique<runtime::Executor>(server->workers_ + 1);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
  {
    // Sever every live connection so blocked reads return; the handlers
    // close + deregister the fds themselves.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (executor_ != nullptr) {
    executor_->WaitAll();
    executor_.reset();
  }
}

std::string Server::endpoint() const {
  if (!options_.unix_socket_path.empty()) {
    return "unix:" + options_.unix_socket_path;
  }
  return "tcp:" + options_.tcp_host + ":" + std::to_string(bound_port_);
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.frames_served = frames_served_.load(std::memory_order_relaxed);
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  stats.frames_shed = frames_shed_.load(std::memory_order_relaxed);
  stats.reload_failures = store_->reload_failures();
  return stats;
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) {
      continue;  // timeout, EINTR, or transient error: re-check stopping_
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (options_.max_connections > 0 &&
          connections_.size() >= options_.max_connections) {
        shed = true;
      } else {
        connections_.insert(fd);
      }
    }
    if (shed) {
      // Over the connection cap: one retryable kBusy frame, then close.
      // Shedding at accept keeps the worker pool for established peers.
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      (void)WriteFully(fd, EncodeBusyResponse(
                               "server at connection capacity, retry later"));
      ::close(fd);
      continue;
    }
    executor_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  try {
    while (!stopping_.load(std::memory_order_acquire) && ServeFrame(fd)) {
    }
  } catch (...) {
    // Query execution is exception-free by design; this is a last-ditch
    // guard so one connection can never take the pool down.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.erase(fd);
    ::close(fd);
  }
}

bool Server::ServeFrame(int fd) {
  uint8_t header[kFrameHeaderSize];
  ssize_t n = ReadFully(fd, header, sizeof(header));
  if (n == 0) {
    return false;  // clean EOF between frames
  }
  if (n != static_cast<ssize_t>(sizeof(header))) {
    // Truncated length prefix / partial header: unrecoverable.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto payload_len = DecodeFrameHeader(header, kRequestMagic);
  if (!payload_len.ok()) {
    // Bad magic or oversized declaration: tell the peer once, then close
    // without reading the (possibly huge or garbage) payload.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    (void)WriteFully(fd,
                     EncodeFrameErrorResponse(payload_len.status().message()));
    return false;
  }
  std::vector<uint8_t> payload(payload_len.value());
  n = ReadFully(fd, payload.data(), payload.size());
  if (n != static_cast<ssize_t>(payload.size())) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto batch = DecodeRequestPayload(payload);
  if (!batch.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    (void)WriteFully(fd, EncodeFrameErrorResponse(batch.status().message()));
    return false;
  }

  // In-flight frame cap: the frame is fully read (keeping the stream
  // parseable) but answered kBusy without touching a snapshot. The
  // connection stays open so a backed-off retry is cheap.
  uint64_t inflight = inflight_frames_.fetch_add(1, std::memory_order_acq_rel)
                      + 1;
  if (options_.max_inflight_frames > 0 &&
      inflight > options_.max_inflight_frames) {
    inflight_frames_.fetch_sub(1, std::memory_order_acq_rel);
    frames_shed_.fetch_add(1, std::memory_order_relaxed);
    return WriteFully(
        fd, EncodeBusyResponse("server at in-flight frame capacity"));
  }

  // One generation pin for the whole batch: every request in this frame is
  // answered against the same immutable snapshot, even if Publish() swaps
  // in a new generation while we compute.
  std::shared_ptr<const Generation> generation = store_->Current();
  std::vector<QueryResponse> responses;
  responses.reserve(batch.value().size());
  for (const QueryRequest& request : batch.value()) {
    if (generation == nullptr) {
      QueryResponse response;
      response.opcode = request.opcode;
      response.status = WireStatus::kNotReady;
      response.error = "no snapshot generation published yet";
      responses.push_back(std::move(response));
      continue;
    }
    QueryResponse response = generation->snapshot->Execute(request);
    response.generation = generation->number;
    response.info.generation = generation->number;
    response.info.reload_failures = store_->reload_failures();
    responses.push_back(std::move(response));
  }
  inflight_frames_.fetch_sub(1, std::memory_order_acq_rel);
  if (!WriteFully(fd, EncodeResponseFrame(responses))) {
    return false;
  }
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  requests_served_.fetch_add(responses.size(), std::memory_order_relaxed);
  return true;
}

}  // namespace lapis::serve
