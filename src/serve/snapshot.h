// Immutable, fully-loaded view of one study's footprint database + popcon
// survey, ready to answer the paper's questions repeatedly.
//
// A Snapshot is built once (from a saved study artifact file, raw artifact
// bytes, or an in-process StudyResult) and never mutated: the dataset, the
// per-kind importance rankings, and the canonical API display names (held
// in a util::StringPool keyed by an ApiId -> name-id index) are all
// precomputed at load. Every query method is const and safe to call from
// any number of threads concurrently — GenerationStore publishes Snapshots
// behind an atomic shared_ptr precisely because nothing here needs a lock.
//
// Identity: `content_hash` is cache::HashBytes over the serialized study
// artifact (the same FNV-1a the incremental cache keys on), so two daemons
// serving the same study report the same hash and a re-ingested identical
// artifact is detectably a no-op.

#ifndef LAPIS_SRC_SERVE_SNAPSHOT_H_
#define LAPIS_SRC_SERVE_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/api_id.h"
#include "src/core/dataset.h"
#include "src/corpus/dataset_io.h"
#include "src/serve/protocol.h"
#include "src/util/status.h"
#include "src/util/string_pool.h"

namespace lapis::corpus {
struct StudyResult;
}  // namespace lapis::corpus

namespace lapis::serve {

class Snapshot {
 public:
  // Deserializes `bytes` (a study artifact, dataset_io.h) and precomputes
  // the query indexes. `source` is a display label (file path, "inline").
  static Result<std::shared_ptr<const Snapshot>> FromArtifactBytes(
      std::span<const uint8_t> bytes, std::string source);

  // Reads + deserializes a saved study artifact file.
  static Result<std::shared_ptr<const Snapshot>> FromFile(
      const std::string& path);

  // Serializes a finished in-process study and loads the bytes; the
  // round-trip guarantees the daemon answers exactly what a saved-and-
  // reloaded artifact would.
  static Result<std::shared_ptr<const Snapshot>> FromStudy(
      const corpus::StudyResult& study, std::string source);

  // ---- Identity ----
  uint64_t content_hash() const { return content_hash_; }
  const std::string& source() const { return source_; }
  const core::StudyDataset& dataset() const { return *artifact_.dataset; }

  // ---- Query execution (the server's per-request core) ----
  // Fills everything except `generation` (the store owns that).
  QueryResponse Execute(const QueryRequest& request) const;

  // Resolves a wire ApiRef. `absent` is set when the name is syntactically
  // valid but no package's footprint mentions it (importance is exactly 0);
  // that is not an error — supporting an unused API costs nothing.
  WireStatus ResolveApi(const ApiRef& ref, core::ApiId* out,
                        bool* absent) const;

  // Canonical display name for an API (syscall table name, "ioctl:0x5401",
  // interned pseudo-file path / libc symbol, or "<kind>:<code>").
  std::string_view ApiName(core::ApiId api) const;

 private:
  Snapshot() = default;

  QueryResponse ExecuteImportance(const QueryRequest& request) const;
  QueryResponse ExecuteEvalProfile(const QueryRequest& request) const;
  QueryResponse ExecuteTopK(const QueryRequest& request) const;
  QueryResponse ExecutePlanFrontier(const QueryRequest& request) const;

  corpus::StudyArtifact artifact_;
  uint64_t content_hash_ = 0;
  std::string source_;

  // Importance-ranked APIs per kind (syscalls ranked over the full 320-
  // entry universe so zero-importance calls still appear in top-K tails).
  std::array<std::vector<core::ApiId>, core::kApiKindCount> ranked_;

  // Canonical names, interned once at load; queries return views into the
  // pool instead of allocating.
  StringPool names_;
  std::map<int64_t, uint32_t> name_ids_;  // ApiId::Encode() -> pool id
};

}  // namespace lapis::serve

#endif  // LAPIS_SRC_SERVE_SNAPSHOT_H_
