// Byte codec for the cacheable analysis artifacts.
//
// Three payload families (content_hash.h EntryKind):
//   * BinaryAnalysis — the full per-binary analysis: function table with
//     local footprints (syscalls, ioctl/fcntl/prctl opcodes, pseudo paths,
//     unknown-site counters), imported symbols, intra-binary call edges,
//     exports/needed/soname/entry. Restoring one skips ELF parse, linear
//     sweep, CFG build and dataflow entirely.
//   * per-export ReachableResult map — a shared library's memoized
//     within-library reachability (what LibraryResolver::AddLibrary
//     precomputes; libc alone has 1,274 exports).
//   * LibraryResolver::Resolution — an executable's fully resolved
//     cross-binary footprint (valid only for an identical library set, so
//     its cache key folds in a link fingerprint — see study_runner.cc).
//
// All encodings are little-endian via ByteWriter/ByteReader and carry no
// internal versioning: the cache key's schema fingerprint is the version.
// Decoders are bounds-checked and fail soft (Result), never trusting disk.

#ifndef LAPIS_SRC_CACHE_ANALYSIS_CODEC_H_
#define LAPIS_SRC_CACHE_ANALYSIS_CODEC_H_

#include <map>
#include <string>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/library_resolver.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace lapis::cache {

class AnalysisCodec {
 public:
  static void Encode(const analysis::BinaryAnalysis& analysis,
                     ByteWriter& writer);
  static Result<analysis::BinaryAnalysis> Decode(ByteReader& reader);

  using ExportReach =
      std::map<std::string, analysis::BinaryAnalysis::ReachableResult>;
  static void EncodeExportReach(const ExportReach& reach, ByteWriter& writer);
  static Result<ExportReach> DecodeExportReach(ByteReader& reader);

  static void EncodeResolution(
      const analysis::LibraryResolver::Resolution& resolution,
      ByteWriter& writer);
  static Result<analysis::LibraryResolver::Resolution> DecodeResolution(
      ByteReader& reader);

  static void EncodeFootprint(const analysis::Footprint& footprint,
                              ByteWriter& writer);
  static Result<analysis::Footprint> DecodeFootprint(ByteReader& reader);
};

}  // namespace lapis::cache

#endif  // LAPIS_SRC_CACHE_ANALYSIS_CODEC_H_
