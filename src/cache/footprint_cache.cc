#include "src/cache/footprint_cache.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <vector>

#include "src/util/env.h"

namespace lapis::cache {

namespace {

constexpr uint32_t kRecordMagic = 0x3143504C;  // "LPC1" little-endian

std::string ShardPath(const std::string& dir, size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%02zu.bin", index);
  return dir + "/" + name;
}

uint64_t ReadLeU64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;  // x86-64 / little-endian hosts; matches ByteWriter convention
}

uint32_t ReadLeU32(const uint8_t* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendLeU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendLeU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

constexpr size_t kHeaderSize = 4 + 8 + 8 + 4;  // magic, content, fp, len
constexpr size_t kTrailerSize = 8;             // payload checksum

FsyncPolicy FsyncPolicyFromEnv() {
  std::string policy = EnvStringOr("LAPIS_CACHE_FSYNC", "never");
  if (policy == "record" || policy == "always" || policy == "each") {
    return FsyncPolicy::kEachRecord;
  }
  return FsyncPolicy::kNever;
}

}  // namespace

CacheStats CacheStats::operator-(const CacheStats& start) const {
  CacheStats delta;
  delta.hits = hits - start.hits;
  delta.misses = misses - start.misses;
  delta.inserts = inserts - start.inserts;
  delta.bytes_read = bytes_read - start.bytes_read;
  delta.bytes_written = bytes_written - start.bytes_written;
  // Open-time and resident gauges are not windowed: report current values.
  delta.entries_loaded = entries_loaded;
  delta.corrupt_entries_dropped = corrupt_entries_dropped;
  delta.entries = entries;
  delta.truncated_tails = truncated_tails;
  delta.open_failures = open_failures;
  delta.quarantined_shards = quarantined_shards;
  return delta;
}

Result<std::unique_ptr<FootprintCache>> FootprintCache::Open(
    const std::string& dir) {
  CacheOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicyFromEnv();
  return Open(options);
}

Result<std::unique_ptr<FootprintCache>> FootprintCache::Open(
    const CacheOptions& options) {
  std::unique_ptr<FootprintCache> cache(new FootprintCache());
  cache->dir_ = options.dir;
  cache->fsync_ = options.fsync;
  if (options.dir.empty()) {
    return cache;
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return IoError("cannot create cache dir " + options.dir + ": " +
                   ec.message());
  }
  for (size_t i = 0; i < kShardCount; ++i) {
    const std::string path = ShardPath(options.dir, i);
    cache->LoadShard(i, path);
    Shard& shard = cache->shards_[i];
    if (shard.quarantined) {
      continue;  // load already gave up on write-back for this shard
    }
    Result<io::File> log = io::File::OpenAppend(path, io::Profile::kCacheIo);
    if (!log.ok()) {
      // Unwritable shard: serve what was loaded, skip write-back for it.
      ++cache->open_failures_;
      cache->Quarantine(i, shard, "cannot open log: " +
                                      log.status().ToString());
      continue;
    }
    shard.log = log.take();
  }
  return cache;
}

void FootprintCache::LoadShard(size_t index, const std::string& path) {
  Shard& shard = shards_[index];
  Result<std::vector<uint8_t>> read =
      io::ReadFileBytes(path, io::Profile::kCacheIo);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      return;  // first run: no log yet
    }
    // Unreadable log: we cannot know what is on disk, so appending to it
    // would risk corrupting a record boundary. Serve nothing from it and
    // quarantine write-back.
    ++open_failures_;
    Quarantine(index, shard, "cannot read log: " + read.status().ToString());
    return;
  }
  std::vector<uint8_t> data = read.take();

  size_t pos = 0;
  size_t valid_end = 0;
  bool corrupt_tail = false;
  while (data.size() - pos >= kHeaderSize) {
    if (ReadLeU32(&data[pos]) != kRecordMagic) {
      corrupt_tail = true;
      break;
    }
    CacheKey key;
    key.content = ReadLeU64(&data[pos + 4]);
    key.fingerprint = ReadLeU64(&data[pos + 12]);
    const uint32_t len = ReadLeU32(&data[pos + 20]);
    if (data.size() - pos - kHeaderSize < len + kTrailerSize) {
      corrupt_tail = true;  // truncated mid-record
      break;
    }
    const uint8_t* payload = &data[pos + kHeaderSize];
    const uint64_t checksum = ReadLeU64(payload + len);
    if (HashBytes(std::span<const uint8_t>(payload, len)) != checksum) {
      corrupt_tail = true;
      break;
    }
    auto value = std::make_shared<std::vector<uint8_t>>(payload,
                                                        payload + len);
    if (shard.entries
            .emplace(key,
                     std::shared_ptr<const std::vector<uint8_t>>(value))
            .second) {
      ++entries_loaded_;
      entries_.fetch_add(1, std::memory_order_relaxed);
    }
    pos += kHeaderSize + len + kTrailerSize;
    valid_end = pos;
  }
  shard.committed_bytes = valid_end;
  if (pos != data.size() || corrupt_tail) {
    ++corrupt_entries_dropped_;
    ++truncated_tails_;
    // Truncate back to the last whole record so future appends land on a
    // readable boundary.
    std::error_code ec;
    std::filesystem::resize_file(path, valid_end, ec);
    if (ec) {
      Quarantine(index, shard, "cannot truncate corrupt tail: " +
                                   ec.message());
    }
  }
}

void FootprintCache::Quarantine(size_t index, Shard& shard,
                                const std::string& reason) {
  if (shard.quarantined) {
    return;
  }
  shard.quarantined = true;
  shard.log.Close();
  quarantined_shards_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "lapis cache: shard %02zu quarantined, memory-only for this "
               "run (%s)\n",
               index, reason.c_str());
}

FootprintCache::~FootprintCache() = default;

std::shared_ptr<const std::vector<uint8_t>> FootprintCache::Lookup(
    const CacheKey& key) {
  Shard& shard = shards_[key.content % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(it->second->size(), std::memory_order_relaxed);
  return it->second;
}

void FootprintCache::Insert(const CacheKey& key,
                            std::span<const uint8_t> payload) {
  Shard& shard = shards_[key.content % kShardCount];
  size_t shard_index = static_cast<size_t>(key.content % kShardCount);
  auto value = std::make_shared<std::vector<uint8_t>>(payload.begin(),
                                                      payload.end());
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, fresh] = shard.entries.emplace(
      key, std::shared_ptr<const std::vector<uint8_t>>(std::move(value)));
  if (!fresh) {
    return;  // already resident; identical payload by construction
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(payload.size(), std::memory_order_relaxed);
  if (shard.quarantined || !shard.log.valid()) {
    return;
  }
  // One contiguous append per record: header + payload + checksum.
  std::vector<uint8_t> record;
  record.reserve(kHeaderSize + payload.size() + kTrailerSize);
  AppendLeU32(record, kRecordMagic);
  AppendLeU64(record, key.content);
  AppendLeU64(record, key.fingerprint);
  AppendLeU32(record, static_cast<uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  AppendLeU64(record, HashBytes(payload));

  Status status = shard.log.WriteAll(record.data(), record.size());
  if (status.ok() && fsync_ == FsyncPolicy::kEachRecord) {
    status = shard.log.Sync();
  }
  if (status.ok()) {
    // Record-level commit: only now is the append part of the durable log.
    shard.committed_bytes += record.size();
    return;
  }
  // Partial or failed append: roll the log back to the last committed
  // record if we still can (a simulated crash also kills the repair), then
  // quarantine — a half-record must never be followed by more appends.
  Status repair = shard.log.Truncate(shard.committed_bytes);
  std::string reason = "append failed: " + status.ToString();
  if (!repair.ok()) {
    reason += "; rollback failed: " + repair.ToString() +
              " (next open will truncate the tail)";
  }
  Quarantine(shard_index, shard, reason);
}

CacheStats FootprintCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.entries_loaded = entries_loaded_;
  out.corrupt_entries_dropped = corrupt_entries_dropped_;
  out.entries = entries_.load(std::memory_order_relaxed);
  out.truncated_tails = truncated_tails_;
  out.open_failures = open_failures_;
  out.quarantined_shards =
      quarantined_shards_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace lapis::cache
