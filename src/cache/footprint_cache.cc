#include "src/cache/footprint_cache.h"

#include <cstring>
#include <filesystem>
#include <system_error>
#include <vector>

namespace lapis::cache {

namespace {

constexpr uint32_t kRecordMagic = 0x3143504C;  // "LPC1" little-endian

std::string ShardPath(const std::string& dir, size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%02zu.bin", index);
  return dir + "/" + name;
}

uint64_t ReadLeU64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;  // x86-64 / little-endian hosts; matches ByteWriter convention
}

uint32_t ReadLeU32(const uint8_t* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendLeU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendLeU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

constexpr size_t kHeaderSize = 4 + 8 + 8 + 4;  // magic, content, fp, len
constexpr size_t kTrailerSize = 8;             // payload checksum

}  // namespace

CacheStats CacheStats::operator-(const CacheStats& start) const {
  CacheStats delta;
  delta.hits = hits - start.hits;
  delta.misses = misses - start.misses;
  delta.inserts = inserts - start.inserts;
  delta.bytes_read = bytes_read - start.bytes_read;
  delta.bytes_written = bytes_written - start.bytes_written;
  // Open-time and resident gauges are not windowed: report current values.
  delta.entries_loaded = entries_loaded;
  delta.corrupt_entries_dropped = corrupt_entries_dropped;
  delta.entries = entries;
  return delta;
}

Result<std::unique_ptr<FootprintCache>> FootprintCache::Open(
    const std::string& dir) {
  std::unique_ptr<FootprintCache> cache(new FootprintCache());
  cache->dir_ = dir;
  if (dir.empty()) {
    return cache;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return IoError("cannot create cache dir " + dir + ": " + ec.message());
  }
  for (size_t i = 0; i < kShardCount; ++i) {
    const std::string path = ShardPath(dir, i);
    cache->LoadShard(i, path);
    cache->shards_[i].log = std::fopen(path.c_str(), "ab");
    if (cache->shards_[i].log == nullptr) {
      // Unwritable shard: serve what was loaded, skip write-back for it.
      continue;
    }
  }
  return cache;
}

void FootprintCache::LoadShard(size_t index, const std::string& path) {
  Shard& shard = shards_[index];
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return;  // first run: no log yet
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data;
  if (end > 0) {
    data.resize(static_cast<size_t>(end));
    if (std::fread(data.data(), 1, data.size(), f) != data.size()) {
      data.clear();
    }
  }
  std::fclose(f);

  size_t pos = 0;
  size_t valid_end = 0;
  bool corrupt_tail = false;
  while (data.size() - pos >= kHeaderSize) {
    if (ReadLeU32(&data[pos]) != kRecordMagic) {
      corrupt_tail = true;
      break;
    }
    CacheKey key;
    key.content = ReadLeU64(&data[pos + 4]);
    key.fingerprint = ReadLeU64(&data[pos + 12]);
    const uint32_t len = ReadLeU32(&data[pos + 20]);
    if (data.size() - pos - kHeaderSize < len + kTrailerSize) {
      corrupt_tail = true;  // truncated mid-record
      break;
    }
    const uint8_t* payload = &data[pos + kHeaderSize];
    const uint64_t checksum = ReadLeU64(payload + len);
    if (HashBytes(std::span<const uint8_t>(payload, len)) != checksum) {
      corrupt_tail = true;
      break;
    }
    auto value = std::make_shared<std::vector<uint8_t>>(payload,
                                                        payload + len);
    if (shard.entries
            .emplace(key,
                     std::shared_ptr<const std::vector<uint8_t>>(value))
            .second) {
      ++entries_loaded_;
      entries_.fetch_add(1, std::memory_order_relaxed);
    }
    pos += kHeaderSize + len + kTrailerSize;
    valid_end = pos;
  }
  if (pos != data.size() || corrupt_tail) {
    ++corrupt_entries_dropped_;
    // Truncate back to the last whole record so future appends land on a
    // readable boundary.
    std::error_code ec;
    std::filesystem::resize_file(path, valid_end, ec);
  }
}

FootprintCache::~FootprintCache() {
  for (Shard& shard : shards_) {
    if (shard.log != nullptr) {
      std::fclose(shard.log);
    }
  }
}

std::shared_ptr<const std::vector<uint8_t>> FootprintCache::Lookup(
    const CacheKey& key) {
  Shard& shard = shards_[key.content % kShardCount];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(it->second->size(), std::memory_order_relaxed);
  return it->second;
}

void FootprintCache::Insert(const CacheKey& key,
                            std::span<const uint8_t> payload) {
  Shard& shard = shards_[key.content % kShardCount];
  auto value = std::make_shared<std::vector<uint8_t>>(payload.begin(),
                                                      payload.end());
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, fresh] = shard.entries.emplace(
      key, std::shared_ptr<const std::vector<uint8_t>>(std::move(value)));
  if (!fresh) {
    return;  // already resident; identical payload by construction
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(payload.size(), std::memory_order_relaxed);
  if (shard.log == nullptr) {
    return;
  }
  // One contiguous append per record: header + payload + checksum.
  std::vector<uint8_t> record;
  record.reserve(kHeaderSize + payload.size() + kTrailerSize);
  AppendLeU32(record, kRecordMagic);
  AppendLeU64(record, key.content);
  AppendLeU64(record, key.fingerprint);
  AppendLeU32(record, static_cast<uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  AppendLeU64(record, HashBytes(payload));
  if (std::fwrite(record.data(), 1, record.size(), shard.log) ==
      record.size()) {
    std::fflush(shard.log);
  }
}

CacheStats FootprintCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.entries_loaded = entries_loaded_;
  out.corrupt_entries_dropped = corrupt_entries_dropped_;
  out.entries = entries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace lapis::cache
