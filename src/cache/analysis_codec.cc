#include "src/cache/analysis_codec.h"

#include <utility>

namespace lapis::cache {

namespace {

using analysis::BinaryAnalysis;
using analysis::Footprint;
using analysis::FunctionInfo;
using analysis::LibraryResolver;

// Decoded collection sizes are sanity-capped so a corrupt length prefix
// fails fast instead of attempting a multi-gigabyte allocation.
constexpr uint32_t kMaxCount = 1u << 24;

Status CheckCount(uint32_t count) {
  if (count > kMaxCount) {
    return CorruptDataError("cache payload count out of range");
  }
  return Status::Ok();
}

template <typename T, typename Put>
void EncodeSet(const std::set<T>& values, ByteWriter& writer, Put put) {
  writer.PutU32(static_cast<uint32_t>(values.size()));
  for (const T& v : values) {
    put(v);
  }
}

void EncodeStringSet(const std::set<std::string>& values, ByteWriter& writer) {
  writer.PutU32(static_cast<uint32_t>(values.size()));
  for (const auto& v : values) {
    writer.PutLengthPrefixedString(v);
  }
}

Result<std::set<std::string>> DecodeStringSet(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  std::set<std::string> out;
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(std::string s, reader.ReadLengthPrefixedString());
    out.insert(out.end(), std::move(s));
  }
  return out;
}

void EncodeReach(const BinaryAnalysis::ReachableResult& reach,
                 ByteWriter& writer) {
  AnalysisCodec::EncodeFootprint(reach.footprint, writer);
  EncodeStringSet(reach.plt_calls, writer);
  writer.PutU64(reach.function_count);
}

Result<BinaryAnalysis::ReachableResult> DecodeReach(ByteReader& reader) {
  BinaryAnalysis::ReachableResult reach;
  LAPIS_ASSIGN_OR_RETURN(reach.footprint,
                         AnalysisCodec::DecodeFootprint(reader));
  LAPIS_ASSIGN_OR_RETURN(reach.plt_calls, DecodeStringSet(reader));
  LAPIS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  reach.function_count = static_cast<size_t>(count);
  return reach;
}

}  // namespace

void AnalysisCodec::EncodeFootprint(const Footprint& footprint,
                                    ByteWriter& writer) {
  EncodeSet(footprint.syscalls, writer,
            [&](int nr) { writer.PutI32(nr); });
  EncodeSet(footprint.ioctl_ops, writer,
            [&](uint32_t op) { writer.PutU32(op); });
  EncodeSet(footprint.fcntl_ops, writer,
            [&](uint32_t op) { writer.PutU32(op); });
  EncodeSet(footprint.prctl_ops, writer,
            [&](uint32_t op) { writer.PutU32(op); });
  EncodeStringSet(footprint.pseudo_paths, writer);
  EncodeSet(footprint.int80_syscalls, writer,
            [&](int nr) { writer.PutI32(nr); });
  writer.PutI32(footprint.unknown_syscall_sites);
  writer.PutI32(footprint.unknown_opcode_sites);
  writer.PutI32(footprint.indirect_call_sites);
  writer.PutI32(footprint.int80_sites);
}

Result<Footprint> AnalysisCodec::DecodeFootprint(ByteReader& reader) {
  Footprint fp;
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(int32_t nr, reader.ReadI32());
    fp.syscalls.insert(fp.syscalls.end(), nr);
  }
  for (auto* ops : {&fp.ioctl_ops, &fp.fcntl_ops, &fp.prctl_ops}) {
    LAPIS_ASSIGN_OR_RETURN(count, reader.ReadU32());
    LAPIS_RETURN_IF_ERROR(CheckCount(count));
    for (uint32_t i = 0; i < count; ++i) {
      LAPIS_ASSIGN_OR_RETURN(uint32_t op, reader.ReadU32());
      ops->insert(ops->end(), op);
    }
  }
  LAPIS_ASSIGN_OR_RETURN(fp.pseudo_paths, DecodeStringSet(reader));
  LAPIS_ASSIGN_OR_RETURN(count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(int32_t nr, reader.ReadI32());
    fp.int80_syscalls.insert(fp.int80_syscalls.end(), nr);
  }
  LAPIS_ASSIGN_OR_RETURN(fp.unknown_syscall_sites, reader.ReadI32());
  LAPIS_ASSIGN_OR_RETURN(fp.unknown_opcode_sites, reader.ReadI32());
  LAPIS_ASSIGN_OR_RETURN(fp.indirect_call_sites, reader.ReadI32());
  LAPIS_ASSIGN_OR_RETURN(fp.int80_sites, reader.ReadI32());
  return fp;
}

void AnalysisCodec::Encode(const BinaryAnalysis& analysis,
                           ByteWriter& writer) {
  writer.PutLengthPrefixedString(analysis.soname_);
  writer.PutU8(analysis.is_executable_ ? 1 : 0);
  writer.PutU64(analysis.entry_);
  writer.PutI32(analysis.total_syscall_sites);
  writer.PutI32(analysis.unknown_syscall_sites);

  writer.PutU32(static_cast<uint32_t>(analysis.needed_.size()));
  for (const auto& n : analysis.needed_) {
    writer.PutLengthPrefixedString(n);
  }
  writer.PutU32(static_cast<uint32_t>(analysis.exports_.size()));
  for (const auto& e : analysis.exports_) {
    writer.PutLengthPrefixedString(e);
  }

  writer.PutU32(static_cast<uint32_t>(analysis.functions_.size()));
  for (const FunctionInfo& fn : analysis.functions_) {
    writer.PutLengthPrefixedString(fn.name);
    writer.PutU64(fn.vaddr);
    writer.PutU64(fn.size);
    EncodeFootprint(fn.local, writer);
    EncodeStringSet(fn.plt_calls, writer);
    EncodeSet(fn.local_callees, writer,
              [&](uint64_t callee) { writer.PutU64(callee); });
    writer.PutU64(fn.basic_block_count);
    writer.PutU8(fn.decode_complete ? 1 : 0);
  }
}

Result<BinaryAnalysis> AnalysisCodec::Decode(ByteReader& reader) {
  BinaryAnalysis analysis;
  LAPIS_ASSIGN_OR_RETURN(analysis.soname_,
                         reader.ReadLengthPrefixedString());
  LAPIS_ASSIGN_OR_RETURN(uint8_t is_exe, reader.ReadU8());
  analysis.is_executable_ = is_exe != 0;
  LAPIS_ASSIGN_OR_RETURN(analysis.entry_, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(analysis.total_syscall_sites, reader.ReadI32());
  LAPIS_ASSIGN_OR_RETURN(analysis.unknown_syscall_sites, reader.ReadI32());

  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  analysis.needed_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(std::string s, reader.ReadLengthPrefixedString());
    analysis.needed_.push_back(std::move(s));
  }
  LAPIS_ASSIGN_OR_RETURN(count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  analysis.exports_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(std::string s, reader.ReadLengthPrefixedString());
    analysis.exports_.push_back(std::move(s));
  }

  LAPIS_ASSIGN_OR_RETURN(count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  analysis.functions_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FunctionInfo fn;
    LAPIS_ASSIGN_OR_RETURN(fn.name, reader.ReadLengthPrefixedString());
    LAPIS_ASSIGN_OR_RETURN(fn.vaddr, reader.ReadU64());
    LAPIS_ASSIGN_OR_RETURN(fn.size, reader.ReadU64());
    LAPIS_ASSIGN_OR_RETURN(fn.local, DecodeFootprint(reader));
    LAPIS_ASSIGN_OR_RETURN(fn.plt_calls, DecodeStringSet(reader));
    LAPIS_ASSIGN_OR_RETURN(uint32_t callees, reader.ReadU32());
    LAPIS_RETURN_IF_ERROR(CheckCount(callees));
    for (uint32_t c = 0; c < callees; ++c) {
      LAPIS_ASSIGN_OR_RETURN(uint64_t callee, reader.ReadU64());
      fn.local_callees.insert(fn.local_callees.end(), callee);
    }
    LAPIS_ASSIGN_OR_RETURN(uint64_t blocks, reader.ReadU64());
    fn.basic_block_count = static_cast<size_t>(blocks);
    LAPIS_ASSIGN_OR_RETURN(uint8_t complete, reader.ReadU8());
    fn.decode_complete = complete != 0;
    analysis.functions_.push_back(std::move(fn));
  }
  for (size_t i = 0; i < analysis.functions_.size(); ++i) {
    analysis.by_vaddr_.emplace(analysis.functions_[i].vaddr, i);
    analysis.by_name_.emplace(analysis.functions_[i].name, i);
  }
  return analysis;
}

void AnalysisCodec::EncodeExportReach(const ExportReach& reach,
                                      ByteWriter& writer) {
  writer.PutU32(static_cast<uint32_t>(reach.size()));
  for (const auto& [symbol, result] : reach) {
    writer.PutLengthPrefixedString(symbol);
    EncodeReach(result, writer);
  }
}

Result<AnalysisCodec::ExportReach> AnalysisCodec::DecodeExportReach(
    ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  ExportReach out;
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(std::string symbol,
                           reader.ReadLengthPrefixedString());
    LAPIS_ASSIGN_OR_RETURN(auto reach, DecodeReach(reader));
    out.emplace_hint(out.end(), std::move(symbol), std::move(reach));
  }
  return out;
}

void AnalysisCodec::EncodeResolution(
    const LibraryResolver::Resolution& resolution, ByteWriter& writer) {
  EncodeFootprint(resolution.footprint, writer);
  writer.PutU32(static_cast<uint32_t>(resolution.used_exports.size()));
  for (const auto& [soname, symbols] : resolution.used_exports) {
    writer.PutLengthPrefixedString(soname);
    EncodeStringSet(symbols, writer);
  }
  EncodeStringSet(resolution.unresolved_imports, writer);
  writer.PutU64(resolution.reachable_function_count);
}

Result<LibraryResolver::Resolution> AnalysisCodec::DecodeResolution(
    ByteReader& reader) {
  LibraryResolver::Resolution resolution;
  LAPIS_ASSIGN_OR_RETURN(resolution.footprint, DecodeFootprint(reader));
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  LAPIS_RETURN_IF_ERROR(CheckCount(count));
  for (uint32_t i = 0; i < count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(std::string soname,
                           reader.ReadLengthPrefixedString());
    LAPIS_ASSIGN_OR_RETURN(auto symbols, DecodeStringSet(reader));
    resolution.used_exports.emplace_hint(resolution.used_exports.end(),
                                         std::move(soname),
                                         std::move(symbols));
  }
  LAPIS_ASSIGN_OR_RETURN(resolution.unresolved_imports,
                         DecodeStringSet(reader));
  LAPIS_ASSIGN_OR_RETURN(uint64_t fns, reader.ReadU64());
  resolution.reachable_function_count = static_cast<size_t>(fns);
  return resolution;
}

}  // namespace lapis::cache
