// Byte codec + input hashing for the simulated popcon survey.
//
// The popcon stage is the single most expensive sequential stage at study
// scale (sampling 100k installations with dependency closures), and it is a
// pure function of (repository structure, target marginals, PopconOptions).
// HashSurveyInputs folds all three into one content hash so a warm cache can
// skip the whole simulation; the fingerprint half of the key uses
// BaseFingerprint(kSurvey) — analyzer methodology switches do not affect the
// survey, so flipping use_dataflow must NOT invalidate it.

#ifndef LAPIS_SRC_CACHE_SURVEY_CODEC_H_
#define LAPIS_SRC_CACHE_SURVEY_CODEC_H_

#include <vector>

#include "src/package/popcon.h"
#include "src/package/repository.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace lapis::cache {

class SurveyCodec {
 public:
  static void Encode(const package::PopconSurvey& survey, ByteWriter& writer);
  static Result<package::PopconSurvey> Decode(ByteReader& reader);
};

// Content hash over everything PopconSimulator::Run consumes: every package's
// name, kind, script count, dependency edges and interpreter edge, the target
// marginals (exact double bit patterns), and all PopconOptions fields.
uint64_t HashSurveyInputs(const package::Repository& repository,
                          const std::vector<double>& target_marginals,
                          const package::PopconOptions& options);

}  // namespace lapis::cache

#endif  // LAPIS_SRC_CACHE_SURVEY_CODEC_H_
