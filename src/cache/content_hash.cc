#include "src/cache/content_hash.h"

namespace lapis::cache {

uint64_t HashBytes(std::span<const uint8_t> bytes, uint64_t seed) {
  uint64_t h = seed;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashString(std::string_view s, uint64_t seed) {
  return HashBytes(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()),
                               s.size()),
      seed);
}

uint64_t HashU64(uint64_t value, uint64_t seed) {
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t BaseFingerprint(EntryKind kind, uint32_t schema_version) {
  uint64_t h = kFnvOffsetBasis;
  h = HashU64(schema_version, h);
  h = HashU64(static_cast<uint64_t>(kind), h);
  return h;
}

uint64_t ConfigFingerprint(const analysis::AnalyzerOptions& options,
                           EntryKind kind, uint32_t schema_version) {
  uint64_t h = BaseFingerprint(kind, schema_version);
  // One bit per methodology switch; a new AnalyzerOptions field must be
  // appended here (the soundness auditor in tests/cache_test.cc counts the
  // struct's size as a tripwire).
  h = HashU64(options.resolve_wrapper_opcodes ? 1 : 0, h);
  h = HashU64(options.collect_pseudo_paths ? 1 : 0, h);
  h = HashU64(options.use_dataflow ? 1 : 0, h);
  h = HashU64(options.use_ipa ? 1 : 0, h);
  h = HashU64(static_cast<uint64_t>(options.ipa_max_depth), h);
  return h;
}

}  // namespace lapis::cache
