#include "src/cache/survey_codec.h"

#include <bit>
#include <cstring>

#include "src/cache/content_hash.h"

namespace lapis::cache {

namespace {

// Matches the corrupt-length guard in analysis_codec.cc: no legitimate
// payload has a collection anywhere near this large.
constexpr uint32_t kMaxCount = 1u << 24;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

void SurveyCodec::Encode(const package::PopconSurvey& survey,
                         ByteWriter& writer) {
  writer.PutU64(survey.total_reporting);
  writer.PutU32(static_cast<uint32_t>(survey.install_counts.size()));
  for (uint64_t count : survey.install_counts) {
    writer.PutU64(count);
  }
  writer.PutU32(static_cast<uint32_t>(survey.samples.size()));
  for (const package::InstallationSet& sample : survey.samples) {
    const std::vector<uint64_t>& words = sample.words();
    writer.PutU32(static_cast<uint32_t>(words.size()));
    for (uint64_t word : words) {
      writer.PutU64(word);
    }
  }
}

Result<package::PopconSurvey> SurveyCodec::Decode(ByteReader& reader) {
  package::PopconSurvey survey;
  LAPIS_ASSIGN_OR_RETURN(survey.total_reporting, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(uint32_t count_size, reader.ReadU32());
  if (count_size > kMaxCount) {
    return CorruptDataError("survey install_counts length implausible");
  }
  survey.install_counts.reserve(count_size);
  for (uint32_t i = 0; i < count_size; ++i) {
    LAPIS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
    survey.install_counts.push_back(count);
  }
  LAPIS_ASSIGN_OR_RETURN(uint32_t sample_count, reader.ReadU32());
  if (sample_count > kMaxCount) {
    return CorruptDataError("survey sample count implausible");
  }
  survey.samples.reserve(sample_count);
  for (uint32_t i = 0; i < sample_count; ++i) {
    LAPIS_ASSIGN_OR_RETURN(uint32_t word_count, reader.ReadU32());
    if (word_count > kMaxCount) {
      return CorruptDataError("survey sample word count implausible");
    }
    std::vector<uint64_t> words;
    words.reserve(word_count);
    for (uint32_t w = 0; w < word_count; ++w) {
      LAPIS_ASSIGN_OR_RETURN(uint64_t word, reader.ReadU64());
      words.push_back(word);
    }
    survey.samples.push_back(
        package::InstallationSet::FromWords(std::move(words)));
  }
  return survey;
}

uint64_t HashSurveyInputs(const package::Repository& repository,
                          const std::vector<double>& target_marginals,
                          const package::PopconOptions& options) {
  uint64_t h = kFnvOffsetBasis;
  h = HashU64(repository.size(), h);
  for (const package::Package& pkg : repository.packages()) {
    h = HashU64(pkg.name.size(), h);
    h = HashString(pkg.name, h);
    h = HashU64(static_cast<uint64_t>(pkg.kind), h);
    h = HashU64(pkg.script_count, h);
    h = HashU64(pkg.depends.size(), h);
    for (package::PackageId dep : pkg.depends) {
      h = HashU64(dep, h);
    }
    h = HashU64(pkg.interpreter, h);
  }
  h = HashU64(target_marginals.size(), h);
  for (double marginal : target_marginals) {
    h = HashU64(DoubleBits(marginal), h);
  }
  h = HashU64(options.installation_count, h);
  h = HashU64(DoubleBits(options.report_rate), h);
  h = HashU64(options.retain_samples, h);
  h = HashU64(options.seed, h);
  h = HashU64(options.profile_count, h);
  h = HashU64(DoubleBits(options.profile_boost), h);
  return h;
}

}  // namespace lapis::cache
