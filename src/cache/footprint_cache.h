// Persistent, content-addressed cache of per-binary analysis artifacts.
//
// The store maps CacheKey{content hash, config fingerprint} to an opaque
// payload (analysis_codec.h). It is sharded 16 ways: each shard owns a
// mutex, an in-memory index, and one append-only log file, so lookups and
// write-backs from the work-stealing executor's shards contend only when
// they hash to the same shard.
//
// On-disk layout (per shard, `shard-NN.bin`):
//   repeated records of
//     u32 magic 'LPC1' | u64 content | u64 fingerprint |
//     u32 payload_len  | payload bytes | u64 FNV-1a(payload)
// Loading stops at the first malformed record (bad magic, short read, bad
// checksum — e.g. a crash mid-append), counts it in
// stats().corrupt_entries_dropped, and truncates the file back to the last
// valid record so subsequent appends stay readable. A corrupt or truncated
// store therefore degrades to recomputation, never to an error or a wrong
// payload.
//
// Failure model (see DESIGN.md "failure model"):
//   - All shard I/O goes through io::File, so every open/read/write/fsync
//     is a fault-injection point (LAPIS_FAULT_SPEC).
//   - Record-level commit: each shard tracks committed_bytes, the byte
//     offset of its last fully-written record. A failed or partial append
//     first tries to ftruncate back to that boundary; whether or not the
//     repair lands, the shard is quarantined — memory-only for the rest of
//     the run — so a half-record is never followed by more appends. The
//     next Open's tail validation cleans up anything repair couldn't.
//   - A shard whose log cannot be opened or read degrades to memory-only
//     with a counted warning (stats().open_failures / quarantined_shards),
//     never a null-handle crash or a lost run.
//   - Fsync policy: kNever (default) trusts the kernel page cache —
//     crash-consistent thanks to tail validation, but the tail may be lost;
//     kEachRecord fsyncs after every append (LAPIS_CACHE_FSYNC=record).
//
// Eviction: none. Entries are immutable (content-addressed) and a
// methodology or schema change alters the fingerprint, so stale entries are
// simply never hit again; reclaiming space is deleting the directory.
//
// With an empty directory string the cache is memory-only (same semantics,
// process lifetime) — what the warm-run benchmarks use in-process.

#ifndef LAPIS_SRC_CACHE_FOOTPRINT_CACHE_H_
#define LAPIS_SRC_CACHE_FOOTPRINT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/content_hash.h"
#include "src/util/io.h"
#include "src/util/status.h"

namespace lapis::cache {

struct CacheKey {
  uint64_t content = 0;      // FNV-1a of the raw input bytes
  uint64_t fingerprint = 0;  // ConfigFingerprint(options, kind, schema)

  bool operator==(const CacheKey& other) const {
    return content == other.content && fingerprint == other.fingerprint;
  }
};

// When to fsync the shard logs.
enum class FsyncPolicy : uint8_t {
  kNever = 0,   // rely on tail validation at next Open (default)
  kEachRecord,  // fsync after every committed record
};

struct CacheOptions {
  std::string dir;  // empty = memory-only
  FsyncPolicy fsync = FsyncPolicy::kNever;
};

// Monotonic counters; Snapshot deltas give per-run windows.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t bytes_read = 0;     // payload bytes served from the cache
  uint64_t bytes_written = 0;  // payload bytes appended (memory or disk)
  uint64_t entries_loaded = 0;            // restored from disk at Open
  uint64_t corrupt_entries_dropped = 0;   // malformed tails at Open
  uint64_t entries = 0;                   // resident entry count
  uint64_t truncated_tails = 0;      // shard logs whose tail was cut at Open
  uint64_t open_failures = 0;        // shard logs that failed to open/read
  uint64_t quarantined_shards = 0;   // shards degraded to memory-only

  CacheStats operator-(const CacheStats& start) const;
  uint64_t Lookups() const { return hits + misses; }
  double HitRate() const {
    return Lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(Lookups());
  }
};

class FootprintCache {
 public:
  // Opens (creating if needed) a persistent store rooted at `dir`, or a
  // memory-only store when `dir` is empty. Unreadable or corrupt shard
  // files degrade that shard to memory-only (counted, warned), never an
  // error; only an uncreatable directory fails. The fsync policy defaults
  // from LAPIS_CACHE_FSYNC ("never" | "record").
  static Result<std::unique_ptr<FootprintCache>> Open(const std::string& dir);
  static Result<std::unique_ptr<FootprintCache>> Open(
      const CacheOptions& options);

  ~FootprintCache();
  FootprintCache(const FootprintCache&) = delete;
  FootprintCache& operator=(const FootprintCache&) = delete;

  // Returns the payload for `key`, or nullptr (counted as hit/miss).
  // The payload is immutable and shared; safe to hold across inserts.
  std::shared_ptr<const std::vector<uint8_t>> Lookup(const CacheKey& key);

  // Stores `payload` under `key` and appends it to the shard log. A key
  // that is already resident is left untouched (first write wins; entries
  // are content-addressed so any racer wrote identical bytes). Append
  // failures quarantine the shard (memory-only) after attempting to roll
  // the log back to its last committed record.
  void Insert(const CacheKey& key, std::span<const uint8_t> payload);

  CacheStats stats() const;
  const std::string& dir() const { return dir_; }
  bool persistent() const { return !dir_.empty(); }

  static constexpr size_t kShardCount = 16;

 private:
  FootprintCache() = default;

  struct KeyHash {
    size_t operator()(const CacheKey& key) const {
      return static_cast<size_t>(HashU64(key.fingerprint, key.content));
    }
  };

  struct Shard {
    std::mutex mutex;
    std::unordered_map<CacheKey, std::shared_ptr<const std::vector<uint8_t>>,
                       KeyHash>
        entries;
    io::File log;                  // append handle; invalid when memory-only
    uint64_t committed_bytes = 0;  // offset of the last whole record on disk
    bool quarantined = false;      // write-back disabled for this run
  };

  void LoadShard(size_t index, const std::string& path);
  void Quarantine(size_t index, Shard& shard, const std::string& reason);

  std::string dir_;
  FsyncPolicy fsync_ = FsyncPolicy::kNever;
  Shard shards_[kShardCount];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> quarantined_shards_{0};
  uint64_t entries_loaded_ = 0;           // written only during Open
  uint64_t corrupt_entries_dropped_ = 0;  // written only during Open
  uint64_t truncated_tails_ = 0;          // written only during Open
  uint64_t open_failures_ = 0;            // written only during Open
};

}  // namespace lapis::cache

#endif  // LAPIS_SRC_CACHE_FOOTPRINT_CACHE_H_
