// Content addressing for the incremental analysis cache.
//
// A cache key has two halves:
//   * content  — FNV-1a 64 over the raw ELF bytes (or, for derived entries
//     like cross-binary resolutions, over a canonical byte encoding of the
//     inputs). Flipping a single byte of a binary changes this half.
//   * fingerprint — everything that changes what the pipeline would compute
//     from those bytes: the cache schema version, the entry kind, and every
//     AnalyzerOptions methodology switch (use_dataflow is the big one).
//
// Both halves must match for a hit; either a methodology flip or a schema
// bump silently invalidates the whole store without touching it on disk.

#ifndef LAPIS_SRC_CACHE_CONTENT_HASH_H_
#define LAPIS_SRC_CACHE_CONTENT_HASH_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "src/analysis/binary_analyzer.h"

namespace lapis::cache {

// Bump whenever the serialized payload layout or the analysis semantics
// change in a way old entries must not survive.
inline constexpr uint32_t kCacheSchemaVersion = 1;

// What a cached payload holds; part of the fingerprint so the three entry
// families never collide even at equal content hashes.
enum class EntryKind : uint8_t {
  kAnalysis = 1,    // serialized BinaryAnalysis (per-binary)
  kLibReach = 2,    // serialized per-export ReachableResult map (libraries)
  kResolution = 3,  // serialized LibraryResolver::Resolution (executables)
  kSurvey = 4,      // serialized PopconSurvey (whole simulated survey)
};

// FNV-1a 64-bit.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t HashBytes(std::span<const uint8_t> bytes,
                   uint64_t seed = kFnvOffsetBasis);
uint64_t HashString(std::string_view s, uint64_t seed = kFnvOffsetBasis);
uint64_t HashU64(uint64_t value, uint64_t seed);

// Fingerprint of (schema version, entry kind) for payloads that do not
// depend on analyzer methodology (the survey).
uint64_t BaseFingerprint(EntryKind kind,
                         uint32_t schema_version = kCacheSchemaVersion);

// Fingerprint of (schema version, entry kind, analyzer switches).
// `schema_version` is overridable so invalidation-on-bump is testable.
uint64_t ConfigFingerprint(const analysis::AnalyzerOptions& options,
                           EntryKind kind,
                           uint32_t schema_version = kCacheSchemaVersion);

}  // namespace lapis::cache

#endif  // LAPIS_SRC_CACHE_CONTENT_HASH_H_
