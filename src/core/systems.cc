#include "src/core/systems.h"

namespace lapis::core {

SystemEvaluation EvaluateSystem(const StudyDataset& dataset,
                                const SystemProfile& profile,
                                size_t suggestion_count) {
  SystemEvaluation eval;
  eval.name = profile.name;
  eval.supported_count = profile.supported.size();

  CompletenessOptions options;
  options.evaluated_kinds = profile.evaluated_kinds;
  eval.weighted_completeness =
      WeightedCompleteness(dataset, profile.supported, options);

  for (ApiKind kind : profile.evaluated_kinds) {
    for (const ApiId& api :
         SuggestNextApis(dataset, profile.supported, kind,
                         suggestion_count)) {
      eval.suggested.push_back(api);
    }
  }
  if (eval.suggested.size() > suggestion_count) {
    eval.suggested.resize(suggestion_count);
  }

  std::set<ApiId> augmented = profile.supported;
  for (const ApiId& api : eval.suggested) {
    augmented.insert(api);
  }
  eval.completeness_with_suggestions =
      WeightedCompleteness(dataset, augmented, options);
  return eval;
}

}  // namespace lapis::core
