#include "src/core/libc_analysis.h"

#include <algorithm>

#include "src/core/completeness.h"

namespace lapis::core {

namespace {

constexpr uint64_t kRelaEntryBytes = 24;  // sizeof(Elf64_Rela)

}  // namespace

LibcRestructureReport AnalyzeLibcRestructure(
    const StudyDataset& dataset,
    const std::map<uint32_t, uint64_t>& symbol_sizes, double threshold) {
  LibcRestructureReport report;
  report.importance_threshold = threshold;

  std::set<ApiId> retained;
  uint64_t total_bytes = 0;
  uint64_t retained_bytes = 0;
  for (const auto& [symbol_id, size] : symbol_sizes) {
    ++report.total_apis;
    total_bytes += size;
    ApiId api{ApiKind::kLibcFn, symbol_id};
    if (dataset.ApiImportance(api) >= threshold) {
      ++report.retained_apis;
      retained_bytes += size;
      retained.insert(api);
    }
  }
  report.retained_size_fraction =
      total_bytes == 0 ? 0.0
                       : static_cast<double>(retained_bytes) /
                             static_cast<double>(total_bytes);

  CompletenessOptions options;
  options.evaluated_kinds = {ApiKind::kLibcFn};
  report.stripped_weighted_completeness =
      WeightedCompleteness(dataset, retained, options);

  report.relocation_entries = report.total_apis;
  report.relocation_bytes = report.total_apis * kRelaEntryBytes;
  return report;
}

LibcVariantEvaluation EvaluateLibcVariant(const StudyDataset& dataset,
                                          const LibcVariantProfile& profile,
                                          size_t report_missing) {
  LibcVariantEvaluation eval;
  eval.name = profile.name;
  eval.exported_count = profile.exported_symbols.size();

  CompletenessOptions options;
  options.evaluated_kinds = {ApiKind::kLibcFn};

  // Raw: a package works iff every libc symbol it uses is exported verbatim.
  std::set<ApiId> raw_supported;
  for (uint32_t symbol : profile.exported_symbols) {
    raw_supported.insert(ApiId{ApiKind::kLibcFn, symbol});
  }
  eval.weighted_completeness =
      WeightedCompleteness(dataset, raw_supported, options);

  // Normalized: GNU-libc compile-time replacements (printf -> __printf_chk
  // etc.) are reversed before matching, so a use of __printf_chk counts as
  // supported if the variant provides printf.
  std::set<ApiId> normalized_supported = raw_supported;
  for (const auto& [gnu_symbol, plain_symbol] : profile.normalization) {
    if (profile.exported_symbols.contains(plain_symbol)) {
      normalized_supported.insert(ApiId{ApiKind::kLibcFn, gnu_symbol});
    }
  }
  eval.normalized_weighted_completeness =
      WeightedCompleteness(dataset, normalized_supported, options);

  // Most important missing symbols (after normalization).
  for (const ApiId& api :
       SuggestNextApis(dataset, normalized_supported, ApiKind::kLibcFn,
                       report_missing)) {
    eval.top_missing.push_back(api.code);
  }
  return eval;
}

}  // namespace lapis::core
