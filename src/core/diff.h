// Dataset comparison across releases.
//
// The paper notes (§2.4) that its dataset "does not include sufficient
// historical data to compare changes to API usage over time" — but the
// methodology supports exactly that once two releases have been analyzed.
// CompareDatasets diffs two StudyDatasets: per-API importance movement,
// appeared/vanished APIs, and headline metric drift. The release-diff bench
// exercises it on two simulated releases.

#ifndef LAPIS_SRC_CORE_DIFF_H_
#define LAPIS_SRC_CORE_DIFF_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"

namespace lapis::core {

struct ApiDelta {
  ApiId api;
  double importance_before = 0.0;
  double importance_after = 0.0;
  double unweighted_before = 0.0;
  double unweighted_after = 0.0;

  double ImportanceShift() const {
    return importance_after - importance_before;
  }
  double UnweightedShift() const {
    return unweighted_after - unweighted_before;
  }
};

struct DatasetDiff {
  // APIs whose importance moved by at least the threshold, sorted by
  // |shift| descending.
  std::vector<ApiDelta> moved;
  // Used after but not before / before but not after.
  std::vector<ApiId> appeared;
  std::vector<ApiId> vanished;
  size_t apis_compared = 0;
};

struct DiffOptions {
  std::vector<ApiKind> kinds = {ApiKind::kSyscall};
  double min_shift = 0.01;  // report movements of >= 1 point
  // Compare unweighted importance instead (adoption trends, Tables 8-11).
  bool unweighted = false;
};

DatasetDiff CompareDatasets(const StudyDataset& before,
                            const StudyDataset& after,
                            const DiffOptions& options = DiffOptions());

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_DIFF_H_
