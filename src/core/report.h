// Dataset export (the paper publishes its dataset at
// oscar.cs.stonybrook.edu/api-compat-study; lapis exports the equivalent
// artifacts as TSV so downstream users can analyze them with any tooling).

#ifndef LAPIS_SRC_CORE_REPORT_H_
#define LAPIS_SRC_CORE_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/core/api_id.h"
#include "src/core/dataset.h"
#include "src/util/status.h"

namespace lapis::core {

// Resolves an ApiId to a printable name using the study's interners (pass
// empty interners to fall back to numeric codes).
std::string ApiName(const ApiId& api, const StringInterner& path_interner,
                    const StringInterner& libc_interner);

// One row per API of the given kinds: kind, name, importance, unweighted
// importance, dependent-package count. Sorted by descending importance.
Status ExportImportanceTsv(const StudyDataset& dataset,
                           const std::vector<ApiKind>& kinds,
                           const StringInterner& path_interner,
                           const StringInterner& libc_interner,
                           std::ostream& os);

// One row per package: name, install count, footprint size, syscall count.
Status ExportPackagesTsv(const StudyDataset& dataset, std::ostream& os);

// One row per (package, API) pair — the raw footprint relation (the
// largest artifact; equivalent to the paper's footprint tables).
Status ExportFootprintsTsv(const StudyDataset& dataset,
                           const StringInterner& path_interner,
                           const StringInterner& libc_interner,
                           std::ostream& os);

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_REPORT_H_
