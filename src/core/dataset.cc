#include "src/core/dataset.h"

#include <algorithm>
#include <deque>

namespace lapis::core {

const std::vector<PackageId> StudyDataset::kNoDependents;

StudyDataset::StudyDataset(size_t package_count, uint64_t total_installations)
    : total_installations_(total_installations),
      names_(package_count),
      install_counts_(package_count, 0),
      footprints_(package_count),
      depends_(package_count),
      closures_(package_count) {}

Status StudyDataset::CheckConstruction(PackageId id) {
  if (finalized_) {
    return FailedPreconditionError("dataset already finalized");
  }
  if (id >= names_.size()) {
    return InvalidArgumentError("package id out of range");
  }
  return Status::Ok();
}

Status StudyDataset::SetPackageName(PackageId id, std::string name) {
  LAPIS_RETURN_IF_ERROR(CheckConstruction(id));
  names_[id] = std::move(name);
  return Status::Ok();
}

Status StudyDataset::SetInstallCount(PackageId id, uint64_t count) {
  LAPIS_RETURN_IF_ERROR(CheckConstruction(id));
  if (count > total_installations_) {
    return InvalidArgumentError("install count exceeds survey size");
  }
  install_counts_[id] = count;
  return Status::Ok();
}

Status StudyDataset::SetFootprint(PackageId id, std::vector<ApiId> footprint) {
  LAPIS_RETURN_IF_ERROR(CheckConstruction(id));
  std::sort(footprint.begin(), footprint.end());
  footprint.erase(std::unique(footprint.begin(), footprint.end()),
                  footprint.end());
  footprints_[id] = std::move(footprint);
  return Status::Ok();
}

Status StudyDataset::SetDependencies(PackageId id,
                                     std::vector<PackageId> depends) {
  LAPIS_RETURN_IF_ERROR(CheckConstruction(id));
  for (PackageId dep : depends) {
    if (dep >= names_.size()) {
      return InvalidArgumentError("dependency id out of range");
    }
  }
  depends_[id] = std::move(depends);
  return Status::Ok();
}

Status StudyDataset::Finalize() {
  if (finalized_) {
    return FailedPreconditionError("dataset already finalized");
  }
  // Dependents index.
  for (PackageId id = 0; id < footprints_.size(); ++id) {
    for (const ApiId& api : footprints_[id]) {
      dependents_[api.Encode()].push_back(id);
    }
  }
  // Dependency closures (BFS, cycle-safe).
  std::vector<bool> visited(names_.size());
  for (PackageId id = 0; id < names_.size(); ++id) {
    std::fill(visited.begin(), visited.end(), false);
    std::deque<PackageId> queue = {id};
    while (!queue.empty()) {
      PackageId current = queue.front();
      queue.pop_front();
      if (visited[current]) {
        continue;
      }
      visited[current] = true;
      closures_[id].push_back(current);
      for (PackageId dep : depends_[current]) {
        if (!visited[dep]) {
          queue.push_back(dep);
        }
      }
    }
  }
  // Name lookup.
  for (PackageId id = 0; id < names_.size(); ++id) {
    if (!names_[id].empty()) {
      by_name_.emplace(names_[id], id);
    }
  }
  finalized_ = true;
  return Status::Ok();
}

PackageId StudyDataset::FindPackage(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? UINT32_MAX : it->second;
}

double StudyDataset::InstallProbability(PackageId id) const {
  if (total_installations_ == 0) {
    return 0.0;
  }
  return static_cast<double>(install_counts_[id]) /
         static_cast<double>(total_installations_);
}

const std::vector<ApiId>& StudyDataset::Footprint(PackageId id) const {
  return footprints_[id];
}

const std::vector<PackageId>& StudyDataset::DependencyClosure(
    PackageId id) const {
  return closures_[id];
}

const std::vector<PackageId>& StudyDataset::Dependents(ApiId api) const {
  auto it = dependents_.find(api.Encode());
  return it == dependents_.end() ? kNoDependents : it->second;
}

double StudyDataset::ApiImportance(ApiId api) const {
  double prob_none = 1.0;
  for (PackageId pkg : Dependents(api)) {
    prob_none *= 1.0 - InstallProbability(pkg);
  }
  return 1.0 - prob_none;
}

double StudyDataset::UnweightedImportance(ApiId api) const {
  if (names_.empty()) {
    return 0.0;
  }
  return static_cast<double>(Dependents(api).size()) /
         static_cast<double>(names_.size());
}

std::vector<ApiId> StudyDataset::ApisOfKind(ApiKind kind) const {
  std::vector<ApiId> out;
  for (const auto& [encoded, pkgs] : dependents_) {
    (void)pkgs;
    ApiId api = ApiId::Decode(encoded);
    if (api.kind == kind) {
      out.push_back(api);
    }
  }
  return out;
}

namespace {

std::vector<ApiId> RankHelper(const StudyDataset& dataset, ApiKind kind,
                              const std::vector<ApiId>& universe,
                              bool weighted) {
  std::set<ApiId> all;
  for (const ApiId& api : dataset.ApisOfKind(kind)) {
    all.insert(api);
  }
  for (const ApiId& api : universe) {
    if (api.kind == kind) {
      all.insert(api);
    }
  }
  // Primary score: the requested importance. Secondary: the other metric —
  // installations saturate the weighted importance of every widely-used API
  // at exactly 1.0 (any dependent with install probability 1 does), so ties
  // are broken by breadth of use, then by code for stability.
  struct Scored {
    double primary;
    double secondary;
    ApiId api;
  };
  std::vector<Scored> scored;
  scored.reserve(all.size());
  for (const ApiId& api : all) {
    double importance = dataset.ApiImportance(api);
    double unweighted = dataset.UnweightedImportance(api);
    if (weighted) {
      scored.push_back(Scored{importance, unweighted, api});
    } else {
      scored.push_back(Scored{unweighted, importance, api});
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.primary != b.primary) {
                       return a.primary > b.primary;
                     }
                     if (a.secondary != b.secondary) {
                       return a.secondary > b.secondary;
                     }
                     return a.api < b.api;
                   });
  std::vector<ApiId> out;
  out.reserve(scored.size());
  for (const auto& entry : scored) {
    out.push_back(entry.api);
  }
  return out;
}

}  // namespace

std::vector<ApiId> StudyDataset::RankByImportance(
    ApiKind kind, const std::vector<ApiId>& universe) const {
  return RankHelper(*this, kind, universe, /*weighted=*/true);
}

std::vector<ApiId> StudyDataset::RankByUnweightedImportance(
    ApiKind kind, const std::vector<ApiId>& universe) const {
  return RankHelper(*this, kind, universe, /*weighted=*/false);
}

StudyDataset::FootprintUniqueness StudyDataset::ComputeFootprintUniqueness()
    const {
  FootprintUniqueness result;
  std::map<std::vector<ApiId>, size_t> counts;
  for (const auto& fp : footprints_) {
    if (fp.empty()) {
      continue;
    }
    ++result.packages_with_footprint;
    ++counts[fp];
  }
  result.distinct = counts.size();
  for (const auto& [fp, count] : counts) {
    (void)fp;
    if (count == 1) {
      ++result.unique;
    }
  }
  return result;
}

}  // namespace lapis::core
