#include "src/core/completeness.h"

#include <algorithm>

namespace lapis::core {

namespace {

bool KindEvaluated(const CompletenessOptions& options, ApiKind kind) {
  return options.evaluated_kinds.empty() ||
         options.evaluated_kinds.contains(kind);
}

// Weighted completeness from a per-package "self-supported" vector,
// applying dependency poisoning through closures.
double CompletenessFromSelfOk(const StudyDataset& dataset,
                              const std::vector<bool>& self_ok) {
  double supported_weight = 0.0;
  double total_weight = 0.0;
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    double p = dataset.InstallProbability(id);
    total_weight += p;
    bool ok = true;
    for (PackageId member : dataset.DependencyClosure(id)) {
      if (!self_ok[member]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      supported_weight += p;
    }
  }
  if (total_weight == 0.0) {
    return 0.0;
  }
  return supported_weight / total_weight;
}

}  // namespace

std::vector<bool> SupportedPackages(const StudyDataset& dataset,
                                    const std::set<ApiId>& supported,
                                    const CompletenessOptions& options) {
  std::vector<bool> self_ok(dataset.package_count(), true);
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    for (const ApiId& api : dataset.Footprint(id)) {
      if (!KindEvaluated(options, api.kind)) {
        continue;
      }
      if (supported.find(api) == supported.end()) {
        self_ok[id] = false;
        break;
      }
    }
  }
  // Apply dependency poisoning.
  std::vector<bool> out(dataset.package_count(), true);
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    for (PackageId member : dataset.DependencyClosure(id)) {
      if (!self_ok[member]) {
        out[id] = false;
        break;
      }
    }
  }
  return out;
}

double WeightedCompleteness(const StudyDataset& dataset,
                            const std::set<ApiId>& supported,
                            const CompletenessOptions& options) {
  std::vector<bool> self_ok(dataset.package_count(), true);
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    for (const ApiId& api : dataset.Footprint(id)) {
      if (!KindEvaluated(options, api.kind)) {
        continue;
      }
      if (supported.find(api) == supported.end()) {
        self_ok[id] = false;
        break;
      }
    }
  }
  return CompletenessFromSelfOk(dataset, self_ok);
}

std::vector<PathPoint> GreedyCompletenessPath(
    const StudyDataset& dataset, ApiKind kind,
    const std::vector<ApiId>& universe) {
  std::vector<ApiId> order = dataset.RankByImportance(kind, universe);

  // missing[pkg] = number of `kind` APIs in the footprint not yet supported.
  std::vector<uint32_t> missing(dataset.package_count(), 0);
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    for (const ApiId& api : dataset.Footprint(id)) {
      if (api.kind == kind) {
        ++missing[id];
      }
    }
  }

  std::vector<PathPoint> path;
  path.reserve(order.size());
  std::vector<bool> self_ok(dataset.package_count());
  for (const ApiId& api : order) {
    for (PackageId pkg : dataset.Dependents(api)) {
      --missing[pkg];
    }
    for (PackageId id = 0; id < dataset.package_count(); ++id) {
      self_ok[id] = missing[id] == 0;
    }
    PathPoint point;
    point.api = api;
    point.importance = dataset.ApiImportance(api);
    point.weighted_completeness = CompletenessFromSelfOk(dataset, self_ok);
    path.push_back(point);
  }
  return path;
}

std::vector<PathPoint> GreedyCompletenessPathMultiKind(
    const StudyDataset& dataset, const std::set<ApiKind>& kinds,
    const std::vector<ApiId>& universe) {
  // Merge the per-kind rankings into one importance-ordered list.
  std::vector<ApiId> order;
  for (ApiKind kind : kinds) {
    auto ranked = dataset.RankByImportance(kind, universe);
    order.insert(order.end(), ranked.begin(), ranked.end());
  }
  std::stable_sort(order.begin(), order.end(),
                   [&dataset](const ApiId& a, const ApiId& b) {
                     double ia = dataset.ApiImportance(a);
                     double ib = dataset.ApiImportance(b);
                     if (ia != ib) {
                       return ia > ib;
                     }
                     double ua = dataset.UnweightedImportance(a);
                     double ub = dataset.UnweightedImportance(b);
                     if (ua != ub) {
                       return ua > ub;
                     }
                     return a < b;
                   });

  std::vector<uint32_t> missing(dataset.package_count(), 0);
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    for (const ApiId& api : dataset.Footprint(id)) {
      if (kinds.contains(api.kind)) {
        ++missing[id];
      }
    }
  }

  std::vector<PathPoint> path;
  path.reserve(order.size());
  std::vector<bool> self_ok(dataset.package_count());
  for (const ApiId& api : order) {
    for (PackageId pkg : dataset.Dependents(api)) {
      --missing[pkg];
    }
    for (PackageId id = 0; id < dataset.package_count(); ++id) {
      self_ok[id] = missing[id] == 0;
    }
    PathPoint point;
    point.api = api;
    point.importance = dataset.ApiImportance(api);
    point.weighted_completeness = CompletenessFromSelfOk(dataset, self_ok);
    path.push_back(point);
  }
  return path;
}

std::vector<Stage> DecomposeStages(const std::vector<PathPoint>& path,
                                   const std::vector<double>& thresholds,
                                   double baseline) {
  std::vector<Stage> stages;
  size_t cursor = 0;
  for (double raw_threshold : thresholds) {
    double threshold = std::min(1.0, raw_threshold + baseline);
    while (cursor < path.size() &&
           path[cursor].weighted_completeness + 1e-12 < threshold) {
      ++cursor;
    }
    Stage stage;
    stage.threshold = raw_threshold;
    if (cursor < path.size()) {
      stage.cumulative_apis = cursor + 1;
      stage.weighted_completeness = path[cursor].weighted_completeness;
    } else {
      stage.cumulative_apis = path.size();
      stage.weighted_completeness =
          path.empty() ? 0.0 : path.back().weighted_completeness;
    }
    stages.push_back(stage);
  }
  return stages;
}

std::vector<ApiId> SuggestNextApis(const StudyDataset& dataset,
                                   const std::set<ApiId>& supported,
                                   ApiKind kind, size_t count) {
  std::vector<ApiId> suggestions;
  for (const ApiId& api : dataset.RankByImportance(kind)) {
    if (supported.find(api) == supported.end()) {
      suggestions.push_back(api);
      if (suggestions.size() >= count) {
        break;
      }
    }
  }
  return suggestions;
}

}  // namespace lapis::core
