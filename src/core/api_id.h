// API identity across the whole study.
//
// The paper treats "system APIs" broadly (§2): system calls, vectored
// system-call opcodes (ioctl/fcntl/prctl), pseudo-files under /proc, /sys
// and /dev, and libc exports. ApiId names any of them uniformly so the
// importance / completeness metrics apply to each family with one
// implementation.

#ifndef LAPIS_SRC_CORE_API_ID_H_
#define LAPIS_SRC_CORE_API_ID_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lapis::core {

enum class ApiKind : uint8_t {
  kSyscall = 0,
  kIoctlOp = 1,
  kFcntlOp = 2,
  kPrctlOp = 3,
  kPseudoFile = 4,  // code = interned canonical path id
  kLibcFn = 5,      // code = interned symbol id
};

inline constexpr int kApiKindCount = 6;

const char* ApiKindName(ApiKind kind);

struct ApiId {
  ApiKind kind = ApiKind::kSyscall;
  uint32_t code = 0;

  // Stable total order / encoding (usable as a db fact id).
  int64_t Encode() const {
    return (static_cast<int64_t>(kind) << 32) | code;
  }
  static ApiId Decode(int64_t encoded) {
    return ApiId{static_cast<ApiKind>(encoded >> 32),
                 static_cast<uint32_t>(encoded & 0xffffffff)};
  }

  friend bool operator==(const ApiId& a, const ApiId& b) {
    return a.kind == b.kind && a.code == b.code;
  }
  friend bool operator<(const ApiId& a, const ApiId& b) {
    if (a.kind != b.kind) {
      return a.kind < b.kind;
    }
    return a.code < b.code;
  }
};

inline ApiId SyscallApi(uint32_t nr) { return ApiId{ApiKind::kSyscall, nr}; }
inline ApiId IoctlApi(uint32_t op) { return ApiId{ApiKind::kIoctlOp, op}; }
inline ApiId FcntlApi(uint32_t op) { return ApiId{ApiKind::kFcntlOp, op}; }
inline ApiId PrctlApi(uint32_t op) { return ApiId{ApiKind::kPrctlOp, op}; }

// Bidirectional string interner for pseudo-file paths and libc symbols.
class StringInterner {
 public:
  uint32_t Intern(std::string_view s);
  // Returns the id if present, or UINT32_MAX.
  uint32_t Find(std::string_view s) const;
  const std::string& NameOf(uint32_t id) const;
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::map<std::string, uint32_t, std::less<>> ids_;
};

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_API_ID_H_
