#include "src/core/api_id.h"

namespace lapis::core {

const char* ApiKindName(ApiKind kind) {
  switch (kind) {
    case ApiKind::kSyscall:
      return "syscall";
    case ApiKind::kIoctlOp:
      return "ioctl-op";
    case ApiKind::kFcntlOp:
      return "fcntl-op";
    case ApiKind::kPrctlOp:
      return "prctl-op";
    case ApiKind::kPseudoFile:
      return "pseudo-file";
    case ApiKind::kLibcFn:
      return "libc-fn";
  }
  return "?";
}

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(std::string(s), id);
  return id;
}

uint32_t StringInterner::Find(std::string_view s) const {
  auto it = ids_.find(s);
  return it == ids_.end() ? UINT32_MAX : it->second;
}

const std::string& StringInterner::NameOf(uint32_t id) const {
  return names_[id];
}

}  // namespace lapis::core
