#include "src/core/diff.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace lapis::core {

DatasetDiff CompareDatasets(const StudyDataset& before,
                            const StudyDataset& after,
                            const DiffOptions& options) {
  DatasetDiff diff;
  for (ApiKind kind : options.kinds) {
    std::set<ApiId> universe;
    for (const ApiId& api : before.ApisOfKind(kind)) {
      universe.insert(api);
    }
    for (const ApiId& api : after.ApisOfKind(kind)) {
      universe.insert(api);
    }
    for (const ApiId& api : universe) {
      ++diff.apis_compared;
      bool used_before = !before.Dependents(api).empty();
      bool used_after = !after.Dependents(api).empty();
      if (!used_before && used_after) {
        diff.appeared.push_back(api);
      } else if (used_before && !used_after) {
        diff.vanished.push_back(api);
      }
      ApiDelta delta;
      delta.api = api;
      delta.importance_before = before.ApiImportance(api);
      delta.importance_after = after.ApiImportance(api);
      delta.unweighted_before = before.UnweightedImportance(api);
      delta.unweighted_after = after.UnweightedImportance(api);
      double shift = options.unweighted
                         ? std::abs(delta.UnweightedShift())
                         : std::abs(delta.ImportanceShift());
      if (shift >= options.min_shift) {
        diff.moved.push_back(delta);
      }
    }
  }
  std::stable_sort(diff.moved.begin(), diff.moved.end(),
                   [&options](const ApiDelta& a, const ApiDelta& b) {
                     double sa = options.unweighted
                                     ? std::abs(a.UnweightedShift())
                                     : std::abs(a.ImportanceShift());
                     double sb = options.unweighted
                                     ? std::abs(b.UnweightedShift())
                                     : std::abs(b.ImportanceShift());
                     return sa > sb;
                   });
  return diff;
}

}  // namespace lapis::core
