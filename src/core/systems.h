// Evaluation of Linux systems / emulation layers (paper §4.1, Table 6).
//
// A system is "a set of implemented or translated APIs" (§2). Profiles for
// UML, L4Linux, the FreeBSD Linux-emulation layer, and Graphene live in
// src/corpus/calibration; this header provides the generic evaluator.

#ifndef LAPIS_SRC_CORE_SYSTEMS_H_
#define LAPIS_SRC_CORE_SYSTEMS_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/completeness.h"
#include "src/core/dataset.h"

namespace lapis::core {

struct SystemProfile {
  std::string name;
  // Supported APIs (typically ApiKind::kSyscall only).
  std::set<ApiId> supported;
  // Which kinds the evaluation covers (others assumed supported).
  std::set<ApiKind> evaluated_kinds = {ApiKind::kSyscall};
};

struct SystemEvaluation {
  std::string name;
  size_t supported_count = 0;
  double weighted_completeness = 0.0;
  // Highest-importance APIs missing from the profile (the paper's
  // "suggested APIs to add").
  std::vector<ApiId> suggested;
  // Completeness if the top `suggested` APIs were added.
  double completeness_with_suggestions = 0.0;
};

SystemEvaluation EvaluateSystem(const StudyDataset& dataset,
                                const SystemProfile& profile,
                                size_t suggestion_count = 5);

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_SYSTEMS_H_
