// Seccomp policy generation from API footprints (paper §6: "generation of
// seccomp policies can be easily automated using our framework, reducing
// the system's attack surface in the event of an application compromise").
//
// A policy is a syscall allowlist with a default action; GeneratePolicy
// derives one from a package's measured footprint, Render emits it in a
// libseccomp-filter-like textual form, and Evaluate answers what the filter
// would do for a given syscall — which the tests use to prove the policy is
// exactly as permissive as the footprint.

#ifndef LAPIS_SRC_CORE_SECCOMP_H_
#define LAPIS_SRC_CORE_SECCOMP_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/dataset.h"

namespace lapis::core {

enum class SeccompAction : uint8_t {
  kAllow,        // SECCOMP_RET_ALLOW
  kErrno,        // SECCOMP_RET_ERRNO (fail the call with ENOSYS)
  kKillProcess,  // SECCOMP_RET_KILL_PROCESS
};

const char* SeccompActionName(SeccompAction action);

struct SeccompPolicy {
  std::string subject;               // package or binary name
  std::set<uint32_t> allowed;        // syscall numbers
  SeccompAction default_action = SeccompAction::kKillProcess;
  // Syscalls the subject never uses but which break too loudly when killed
  // (the usual practice is to ENOSYS them instead); optional.
  std::set<uint32_t> errno_syscalls;
};

struct SeccompGenOptions {
  SeccompAction default_action = SeccompAction::kKillProcess;
  // Also allow these numbers unconditionally (e.g. the runtime's own
  // needs); merged into the allowlist.
  std::set<uint32_t> always_allow;
};

// Builds the allowlist from the package's syscall footprint. Fails if the
// package has no syscall footprint at all (a policy allowing nothing would
// kill the process at startup — surface that instead of emitting it).
Result<SeccompPolicy> GeneratePolicy(const StudyDataset& dataset,
                                     PackageId package,
                                     const SeccompGenOptions& options = {});

// What the filter does for `syscall_nr`.
SeccompAction Evaluate(const SeccompPolicy& policy, uint32_t syscall_nr);

// Textual rendering (one rule per line, libseccomp-export style). The
// `name_of` callback maps numbers to names; pass nullptr for numeric-only.
std::string Render(const SeccompPolicy& policy,
                   std::string (*name_of)(uint32_t) = nullptr);

// Attack-surface statistic: how many of `universe_size` syscalls the
// policy denies (paper: unused interfaces are "good targets for
// deprecation, in the interest of reducing the system attack surface").
size_t DeniedCount(const SeccompPolicy& policy, size_t universe_size);

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_SECCOMP_H_
