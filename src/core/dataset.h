// StudyDataset: the joined measurement data (paper §2, Appendix A).
//
// Combines, per package: the API footprint (from static analysis), the
// installation count (from the popularity-contest survey), and the APT
// dependency edges. All metrics — API importance, unweighted API importance,
// weighted completeness — are computed from this one structure.

#ifndef LAPIS_SRC_CORE_DATASET_H_
#define LAPIS_SRC_CORE_DATASET_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/api_id.h"
#include "src/util/status.h"

namespace lapis::core {

using PackageId = uint32_t;

class StudyDataset {
 public:
  StudyDataset(size_t package_count, uint64_t total_installations);

  // ---- Construction ----
  Status SetPackageName(PackageId id, std::string name);
  Status SetInstallCount(PackageId id, uint64_t count);
  Status SetFootprint(PackageId id, std::vector<ApiId> footprint);
  // Direct dependency edges (closure is computed in Finalize).
  Status SetDependencies(PackageId id, std::vector<PackageId> depends);
  // Builds dependents indexes and dependency closures. Must be called before
  // any query; construction calls afterwards are rejected.
  Status Finalize();

  // ---- Basic accessors ----
  size_t package_count() const { return names_.size(); }
  uint64_t total_installations() const { return total_installations_; }
  const std::string& PackageName(PackageId id) const { return names_[id]; }
  PackageId FindPackage(std::string_view name) const;  // UINT32_MAX if absent
  double InstallProbability(PackageId id) const;
  uint64_t InstallCount(PackageId id) const { return install_counts_[id]; }
  const std::vector<ApiId>& Footprint(PackageId id) const;
  const std::vector<PackageId>& DependencyClosure(PackageId id) const;
  // The direct dependency edges as set (closure is derived in Finalize).
  const std::vector<PackageId>& DirectDependencies(PackageId id) const {
    return depends_[id];
  }
  bool finalized() const { return finalized_; }

  // ---- Metrics ----
  // Packages whose footprint contains `api` (paper: Dependents(api)).
  const std::vector<PackageId>& Dependents(ApiId api) const;

  // API importance (§A.1): probability a random installation contains at
  // least one package requiring `api`, assuming independent installs:
  //   1 - prod_{pkg in dependents} (1 - p_pkg)
  double ApiImportance(ApiId api) const;

  // Unweighted API importance (§5): fraction of packages using `api`.
  double UnweightedImportance(ApiId api) const;

  // Every API of `kind` appearing in at least one footprint.
  std::vector<ApiId> ApisOfKind(ApiKind kind) const;

  // APIs of `kind` ranked by descending importance (stable tie-break on
  // code). `universe` may add zero-importance APIs absent from footprints.
  std::vector<ApiId> RankByImportance(
      ApiKind kind, const std::vector<ApiId>& universe = {}) const;
  std::vector<ApiId> RankByUnweightedImportance(
      ApiKind kind, const std::vector<ApiId>& universe = {}) const;

  // Count of distinct / unique footprints among packages with non-empty
  // footprints (paper §6: 11,680 distinct, 9,133 unique of 31,433).
  struct FootprintUniqueness {
    size_t packages_with_footprint = 0;
    size_t distinct = 0;
    size_t unique = 0;
  };
  FootprintUniqueness ComputeFootprintUniqueness() const;

 private:
  Status CheckConstruction(PackageId id);

  uint64_t total_installations_;
  bool finalized_ = false;
  std::vector<std::string> names_;
  std::map<std::string, PackageId, std::less<>> by_name_;
  std::vector<uint64_t> install_counts_;
  std::vector<std::vector<ApiId>> footprints_;
  std::vector<std::vector<PackageId>> depends_;
  std::vector<std::vector<PackageId>> closures_;
  std::map<int64_t, std::vector<PackageId>> dependents_;
  static const std::vector<PackageId> kNoDependents;
};

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_DATASET_H_
