#include "src/core/report.h"

#include <algorithm>

#include "src/util/strings.h"

namespace lapis::core {

std::string ApiName(const ApiId& api, const StringInterner& path_interner,
                    const StringInterner& libc_interner) {
  switch (api.kind) {
    case ApiKind::kSyscall:
      return "syscall:" + std::to_string(api.code);
    case ApiKind::kIoctlOp:
      return "ioctl:" + std::to_string(api.code);
    case ApiKind::kFcntlOp:
      return "fcntl:" + std::to_string(api.code);
    case ApiKind::kPrctlOp:
      return "prctl:" + std::to_string(api.code);
    case ApiKind::kPseudoFile:
      if (api.code < path_interner.size()) {
        return "file:" + path_interner.NameOf(api.code);
      }
      return "file:#" + std::to_string(api.code);
    case ApiKind::kLibcFn:
      if (api.code < libc_interner.size()) {
        return "libc:" + libc_interner.NameOf(api.code);
      }
      return "libc:#" + std::to_string(api.code);
  }
  return "?";
}

Status ExportImportanceTsv(const StudyDataset& dataset,
                           const std::vector<ApiKind>& kinds,
                           const StringInterner& path_interner,
                           const StringInterner& libc_interner,
                           std::ostream& os) {
  if (!dataset.finalized()) {
    return FailedPreconditionError("dataset not finalized");
  }
  os << "kind\tapi\timportance\tunweighted_importance\tdependents\n";
  for (ApiKind kind : kinds) {
    for (const ApiId& api : dataset.RankByImportance(kind)) {
      os << ApiKindName(kind) << '\t'
         << ApiName(api, path_interner, libc_interner) << '\t'
         << FormatDouble(dataset.ApiImportance(api), 6) << '\t'
         << FormatDouble(dataset.UnweightedImportance(api), 6) << '\t'
         << dataset.Dependents(api).size() << '\n';
    }
  }
  if (!os.good()) {
    return IoError("write failed");
  }
  return Status::Ok();
}

Status ExportPackagesTsv(const StudyDataset& dataset, std::ostream& os) {
  if (!dataset.finalized()) {
    return FailedPreconditionError("dataset not finalized");
  }
  os << "package\tinstall_probability\tfootprint_apis\tsyscalls\n";
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    size_t syscalls = 0;
    for (const ApiId& api : dataset.Footprint(id)) {
      syscalls += api.kind == ApiKind::kSyscall ? 1 : 0;
    }
    os << dataset.PackageName(id) << '\t'
       << FormatDouble(dataset.InstallProbability(id), 6) << '\t'
       << dataset.Footprint(id).size() << '\t' << syscalls << '\n';
  }
  if (!os.good()) {
    return IoError("write failed");
  }
  return Status::Ok();
}

Status ExportFootprintsTsv(const StudyDataset& dataset,
                           const StringInterner& path_interner,
                           const StringInterner& libc_interner,
                           std::ostream& os) {
  if (!dataset.finalized()) {
    return FailedPreconditionError("dataset not finalized");
  }
  os << "package\tapi\n";
  for (PackageId id = 0; id < dataset.package_count(); ++id) {
    for (const ApiId& api : dataset.Footprint(id)) {
      os << dataset.PackageName(id) << '\t'
         << ApiName(api, path_interner, libc_interner) << '\n';
    }
  }
  if (!os.good()) {
    return IoError("write failed");
  }
  return Status::Ok();
}

}  // namespace lapis::core
