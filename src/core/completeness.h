// Weighted completeness (paper §2.2, §A.2) and the greedy implementation
// path (§3.2, Fig 3, Table 4).
//
// A package is supported iff its footprint (restricted to the evaluated API
// kinds) is contained in the supported set AND every package in its APT
// dependency closure is supported ("if a supported package depends on an
// unsupported package, both are marked unsupported").

#ifndef LAPIS_SRC_CORE_COMPLETENESS_H_
#define LAPIS_SRC_CORE_COMPLETENESS_H_

#include <set>
#include <vector>

#include "src/core/dataset.h"

namespace lapis::core {

struct CompletenessOptions {
  // API kinds the target system is evaluated on; footprint entries of other
  // kinds are assumed supported. Empty means "all kinds evaluated".
  std::set<ApiKind> evaluated_kinds;
};

// Expected fraction of an installation's packages that work on a system
// supporting exactly `supported` (§A.2 approximation).
double WeightedCompleteness(const StudyDataset& dataset,
                            const std::set<ApiId>& supported,
                            const CompletenessOptions& options = {});

// Per-package support vector (before weighting); exposed for tests and the
// system-evaluation report.
std::vector<bool> SupportedPackages(const StudyDataset& dataset,
                                    const std::set<ApiId>& supported,
                                    const CompletenessOptions& options = {});

// One point on the greedy path: after adding `api` (the N-th most important),
// the cumulative weighted completeness.
struct PathPoint {
  ApiId api;
  double importance = 0.0;
  double weighted_completeness = 0.0;
};

// Implements §3.2: rank APIs of `kind` by importance, add them one at a
// time, record cumulative weighted completeness. `universe` adds
// zero-importance APIs (they land at the tail). Runs incrementally: O(path
// length x packages x closure).
std::vector<PathPoint> GreedyCompletenessPath(
    const StudyDataset& dataset, ApiKind kind,
    const std::vector<ApiId>& universe = {});

// The paper's §3.2 note: "one can construct a similar path including other
// APIs, such as vectored system calls, pseudo-files and library APIs".
// Ranks every API of the given kinds in one merged importance order and
// walks the combined path. Packages must have ALL their APIs of these
// kinds supported to count.
std::vector<PathPoint> GreedyCompletenessPathMultiKind(
    const StudyDataset& dataset, const std::set<ApiKind>& kinds,
    const std::vector<ApiId>& universe = {});

// Table 4 stage decomposition: slice the greedy path at completeness
// thresholds (default: 1%, 10%, 50%, 90%, 100%). `baseline` is added to
// each threshold — pass the path's starting completeness so packages with
// no programs at all (always "supported") don't trivially satisfy the
// first stage.
struct Stage {
  double threshold = 0.0;
  size_t cumulative_apis = 0;         // N needed to reach the threshold
  double weighted_completeness = 0.0; // value actually reached at that N
};
std::vector<Stage> DecomposeStages(
    const std::vector<PathPoint>& path,
    const std::vector<double>& thresholds = {0.01, 0.10, 0.50, 0.90, 1.00},
    double baseline = 0.0);

// The most important APIs of `kind` missing from `supported` (the paper's
// "suggested APIs to add", Table 6).
std::vector<ApiId> SuggestNextApis(const StudyDataset& dataset,
                                   const std::set<ApiId>& supported,
                                   ApiKind kind, size_t count);

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_COMPLETENESS_H_
