// libc restructuring analysis (paper §3.5) and libc variant evaluation
// (paper §4.2, Table 7).

#ifndef LAPIS_SRC_CORE_LIBC_ANALYSIS_H_
#define LAPIS_SRC_CORE_LIBC_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/dataset.h"

namespace lapis::core {

// §3.5: strip every libc export whose API importance is below `threshold`,
// then measure what survives.
struct LibcRestructureReport {
  double importance_threshold = 0.0;
  size_t total_apis = 0;
  size_t retained_apis = 0;
  // Fraction of libc code bytes kept (per-symbol sizes from .symtab).
  double retained_size_fraction = 0.0;
  // Weighted completeness of the stripped libc: probability a random
  // installed package needs no removed function.
  double stripped_weighted_completeness = 0.0;
  // Relocation-table model: one entry per export.
  size_t relocation_entries = 0;
  size_t relocation_bytes = 0;  // 24 bytes/entry (Elf64_Rela)
};

// `symbol_sizes` maps interned libc symbol id -> code size in bytes.
LibcRestructureReport AnalyzeLibcRestructure(
    const StudyDataset& dataset,
    const std::map<uint32_t, uint64_t>& symbol_sizes,
    double threshold = 0.90);

// Table 7: evaluate a libc variant by exported-symbol matching.
struct LibcVariantProfile {
  std::string name;
  // Symbols the variant exports (interned ids in the study's libc universe).
  std::set<uint32_t> exported_symbols;
  // Variant-specific replacement reversal, e.g. "__printf_chk" -> "printf":
  // maps a GNU-libc symbol id to the plain symbol id the variant provides.
  std::map<uint32_t, uint32_t> normalization;
};

struct LibcVariantEvaluation {
  std::string name;
  size_t exported_count = 0;
  double weighted_completeness = 0.0;             // raw symbol matching
  double normalized_weighted_completeness = 0.0;  // after normalization
  std::vector<uint32_t> top_missing;              // most-important absent ids
};

LibcVariantEvaluation EvaluateLibcVariant(const StudyDataset& dataset,
                                          const LibcVariantProfile& profile,
                                          size_t report_missing = 5);

}  // namespace lapis::core

#endif  // LAPIS_SRC_CORE_LIBC_ANALYSIS_H_
