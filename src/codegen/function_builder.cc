#include "src/codegen/function_builder.h"

namespace lapis::codegen {

void FunctionBuilder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void FunctionBuilder::EmitRexIfNeeded(uint8_t reg) {
  if (reg >= 8) {
    PutU8(0x41);  // REX.B
  }
}

void FunctionBuilder::EmitPrologue() {
  PushReg(disasm::kRbp);
  // mov rbp, rsp: REX.W 89 /r, mod=11 reg=rsp rm=rbp
  PutU8(0x48);
  PutU8(0x89);
  PutU8(0xe5);
}

void FunctionBuilder::EmitEpilogue() {
  PopReg(disasm::kRbp);
  Ret();
}

void FunctionBuilder::MovRegImm32(uint8_t reg, uint32_t imm) {
  EmitRexIfNeeded(reg);
  PutU8(static_cast<uint8_t>(0xb8 + (reg & 7)));
  PutU32(imm);
}

void FunctionBuilder::XorRegReg(uint8_t reg) {
  if (reg >= 8) {
    PutU8(0x45);  // REX.R | REX.B
  }
  PutU8(0x31);
  PutU8(static_cast<uint8_t>(0xc0 | ((reg & 7) << 3) | (reg & 7)));
}

void FunctionBuilder::MovRegReg(uint8_t dst, uint8_t src) {
  uint8_t rex = 0x48;
  if (src >= 8) {
    rex |= 0x04;  // REX.R extends modrm.reg (source for 89 /r)
  }
  if (dst >= 8) {
    rex |= 0x01;  // REX.B extends modrm.rm (dest for 89 /r)
  }
  PutU8(rex);
  PutU8(0x89);
  PutU8(static_cast<uint8_t>(0xc0 | ((src & 7) << 3) | (dst & 7)));
}

void FunctionBuilder::LeaRodata(uint8_t reg, uint32_t rodata_offset) {
  uint8_t rex = 0x48;
  if (reg >= 8) {
    rex |= 0x04;
  }
  PutU8(rex);
  PutU8(0x8d);
  PutU8(static_cast<uint8_t>(0x05 | ((reg & 7) << 3)));  // mod=00 rm=101
  relocs_.push_back(elf::TextReloc{elf::TextReloc::Kind::kRodataRef,
                                   static_cast<uint32_t>(body_.size()),
                                   rodata_offset});
  PutU32(0);  // patched by ElfBuilder
}

void FunctionBuilder::Syscall() {
  PutU8(0x0f);
  PutU8(0x05);
}

void FunctionBuilder::Int80() {
  PutU8(0xcd);
  PutU8(0x80);
}

void FunctionBuilder::Sysenter() {
  PutU8(0x0f);
  PutU8(0x34);
}

void FunctionBuilder::CallImport(uint32_t import_index) {
  PutU8(0xe8);
  relocs_.push_back(elf::TextReloc{elf::TextReloc::Kind::kPltCall,
                                   static_cast<uint32_t>(body_.size()),
                                   import_index});
  PutU32(0);
}

void FunctionBuilder::CallLocal(uint32_t function_index) {
  PutU8(0xe8);
  relocs_.push_back(elf::TextReloc{elf::TextReloc::Kind::kLocalCall,
                                   static_cast<uint32_t>(body_.size()),
                                   function_index});
  PutU32(0);
}

void FunctionBuilder::TailJmpImport(uint32_t import_index) {
  PutU8(0xe9);
  relocs_.push_back(elf::TextReloc{elf::TextReloc::Kind::kPltCall,
                                   static_cast<uint32_t>(body_.size()),
                                   import_index});
  PutU32(0);
}

void FunctionBuilder::JccShortForward(uint8_t cc, uint8_t skip) {
  PutU8(static_cast<uint8_t>(0x70 | (cc & 0x0f)));
  PutU8(skip);
}

void FunctionBuilder::PushReg(uint8_t reg) {
  EmitRexIfNeeded(reg);
  PutU8(static_cast<uint8_t>(0x50 + (reg & 7)));
}

void FunctionBuilder::PopReg(uint8_t reg) {
  EmitRexIfNeeded(reg);
  PutU8(static_cast<uint8_t>(0x58 + (reg & 7)));
}

void FunctionBuilder::SubRspImm8(uint8_t imm) {
  PutU8(0x48);
  PutU8(0x83);
  PutU8(0xec);
  PutU8(imm);
}

void FunctionBuilder::AddRspImm8(uint8_t imm) {
  PutU8(0x48);
  PutU8(0x83);
  PutU8(0xc4);
  PutU8(imm);
}

void FunctionBuilder::Nop(int count) {
  for (int i = 0; i < count; ++i) {
    PutU8(0x90);
  }
}

void FunctionBuilder::Ret() { PutU8(0xc3); }

void FunctionBuilder::MovRegImm32Obfuscated(uint8_t reg, uint32_t final_value) {
  // mov reg, value-1; add reg, 1 — the add is an arithmetic step our
  // back-tracker (like the paper's) deliberately refuses to follow.
  MovRegImm32(reg, final_value - 1);
  EmitRexIfNeeded(reg);
  PutU8(0x83);  // group1 r/m32, imm8
  PutU8(static_cast<uint8_t>(0xc0 | (reg & 7)));  // /0 = add
  PutU8(1);
}

elf::FunctionDef FunctionBuilder::Finish(bool exported) {
  elf::FunctionDef def;
  def.name = std::move(name_);
  def.body = std::move(body_);
  def.exported = exported;
  def.relocs = std::move(relocs_);
  return def;
}

}  // namespace lapis::codegen
