// x86-64 machine-code emission for synthetic binaries.
//
// FunctionBuilder assembles one function body: real instruction encodings
// with symbolic relocations for PLT calls, local calls, and rip-relative
// .rodata references. The output FunctionDef feeds elf::ElfBuilder; the bytes
// must round-trip through disasm::DecodeOne (tests enforce this).

#ifndef LAPIS_SRC_CODEGEN_FUNCTION_BUILDER_H_
#define LAPIS_SRC_CODEGEN_FUNCTION_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/disasm/insn.h"
#include "src/elf/elf_builder.h"

namespace lapis::codegen {

class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name) : name_(std::move(name)) {}

  // push rbp; mov rbp, rsp
  void EmitPrologue();
  // pop rbp; ret
  void EmitEpilogue();

  // mov r32, imm32 (b8+r, REX.B for r8d-r15d). Zero-extends into the full
  // 64-bit register, which is how compilers materialize syscall numbers and
  // opcode constants.
  void MovRegImm32(uint8_t reg, uint32_t imm);

  // xor r32, r32 — the canonical zeroing idiom.
  void XorRegReg(uint8_t reg);

  // mov r64, r64 (REX.W 89 /r).
  void MovRegReg(uint8_t dst, uint8_t src);

  // lea r64, [rip + disp32] referencing .rodata at `rodata_offset`.
  void LeaRodata(uint8_t reg, uint32_t rodata_offset);

  void Syscall();   // 0f 05
  void Int80();     // cd 80
  void Sysenter();  // 0f 34

  // call rel32 through the PLT slot of `import_index`.
  void CallImport(uint32_t import_index);
  // call rel32 to another function in the same binary.
  void CallLocal(uint32_t function_index);
  // jmp rel32 through the PLT slot of `import_index` — the tail-call
  // forwarding idiom (`syscall(2)`-style wrappers that leave every argument
  // register untouched and jump straight into libc).
  void TailJmpImport(uint32_t import_index);

  // jcc rel8 (70+cc) skipping `skip` bytes of code emitted after it. The
  // caller emits exactly `skip` bytes next; the branch target is the first
  // instruction after them. Condition codes use the Intel encoding
  // (0x4 = e/z, 0x5 = ne/nz, ...).
  void JccShortForward(uint8_t cc, uint8_t skip);

  void PushReg(uint8_t reg);
  void PopReg(uint8_t reg);
  void SubRspImm8(uint8_t imm);
  void AddRspImm8(uint8_t imm);
  void Nop(int count = 1);
  void Ret();

  // Emits a deliberately obfuscated syscall-number load that defeats the
  // constant back-tracker (mov eax, imm; add eax, imm). Used to model the
  // paper's ~4% of call sites with undeterminable numbers.
  void MovRegImm32Obfuscated(uint8_t reg, uint32_t final_value);

  size_t size() const { return body_.size(); }

  // Consumes the builder.
  elf::FunctionDef Finish(bool exported);

 private:
  void PutU8(uint8_t b) { body_.push_back(b); }
  void PutU32(uint32_t v);
  void EmitRexIfNeeded(uint8_t reg);

  std::string name_;
  std::vector<uint8_t> body_;
  std::vector<elf::TextReloc> relocs_;
};

}  // namespace lapis::codegen

#endif  // LAPIS_SRC_CODEGEN_FUNCTION_BUILDER_H_
