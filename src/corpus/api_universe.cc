#include "src/corpus/api_universe.h"

#include <cmath>
#include <cstdio>
#include <set>

#include "src/corpus/syscall_table.h"
#include "src/util/prng.h"

namespace lapis::corpus {

namespace {

// Geometric interpolation from `from` to `to` across `steps` ranks.
double GeomDecline(double from, double to, size_t step, size_t steps) {
  if (steps <= 1) {
    return from;
  }
  double t = static_cast<double>(step) / static_cast<double>(steps - 1);
  return from * std::pow(to / from, t);
}

}  // namespace

const std::vector<OpSpec>& IoctlOps() {
  static const std::vector<OpSpec>* kList = [] {
    auto* list = new std::vector<OpSpec>();
    list->reserve(kIoctlOpCount);
    // The 47 universal TTY / generic-IO operations (§3.3) plus 5 more
    // near-universal ones, all at 100%.
    struct Named {
      const char* name;
      uint32_t code;
    };
    static const Named kUniversal[] = {
        {"TCGETS", 0x5401},        {"TCSETS", 0x5402},
        {"TCSETSW", 0x5403},       {"TCSETSF", 0x5404},
        {"TCGETA", 0x5405},        {"TCSETA", 0x5406},
        {"TCSETAW", 0x5407},       {"TCSETAF", 0x5408},
        {"TCSBRK", 0x5409},        {"TCXONC", 0x540a},
        {"TCFLSH", 0x540b},        {"TIOCEXCL", 0x540c},
        {"TIOCNXCL", 0x540d},      {"TIOCSCTTY", 0x540e},
        {"TIOCGPGRP", 0x540f},     {"TIOCSPGRP", 0x5410},
        {"TIOCOUTQ", 0x5411},      {"TIOCSTI", 0x5412},
        {"TIOCGWINSZ", 0x5413},    {"TIOCSWINSZ", 0x5414},
        {"TIOCMGET", 0x5415},      {"TIOCMBIS", 0x5416},
        {"TIOCMBIC", 0x5417},      {"TIOCMSET", 0x5418},
        {"TIOCGSOFTCAR", 0x5419},  {"TIOCSSOFTCAR", 0x541a},
        {"FIONREAD", 0x541b},      {"TIOCLINUX", 0x541c},
        {"TIOCCONS", 0x541d},      {"TIOCGSERIAL", 0x541e},
        {"TIOCSSERIAL", 0x541f},   {"TIOCPKT", 0x5420},
        {"FIONBIO", 0x5421},       {"TIOCNOTTY", 0x5422},
        {"TIOCSETD", 0x5423},      {"TIOCGETD", 0x5424},
        {"TCSBRKP", 0x5425},       {"TIOCSBRK", 0x5427},
        {"TIOCCBRK", 0x5428},      {"TIOCGSID", 0x5429},
        {"TIOCGPTN", 0x80045430},  {"TIOCSPTLCK", 0x40045431},
        {"FIONCLEX", 0x5450},      {"FIOCLEX", 0x5451},
        {"FIOASYNC", 0x5452},      {"FIOQSIZE", 0x5460},
        {"FIOGETOWN", 0x8903},     {"FIOSETOWN", 0x8901},
        {"SIOCGPGRP", 0x8904},     {"SIOCSPGRP", 0x8902},
        {"SIOCATMARK", 0x8905},    {"SIOCGSTAMP", 0x8906},
    };
    for (const Named& op : kUniversal) {
      list->push_back(OpSpec{op.code, op.name, 1.0});
    }
    // Frequently-seen-but-not-universal named operations.
    static const Named kCommon[] = {
        {"SIOCGIFCONF", 0x8912},   {"SIOCGIFFLAGS", 0x8913},
        {"SIOCSIFFLAGS", 0x8914},  {"SIOCGIFADDR", 0x8915},
        {"SIOCSIFADDR", 0x8916},   {"SIOCGIFMTU", 0x8921},
        {"SIOCSIFMTU", 0x8922},    {"SIOCGIFHWADDR", 0x8927},
        {"SIOCGIFINDEX", 0x8933},  {"SIOCGIFNAME", 0x8910},
        {"SIOCETHTOOL", 0x8946},   {"SIOCGIFBRDADDR", 0x8919},
        {"SIOCGIFNETMASK", 0x891b},{"SIOCADDRT", 0x890b},
        {"SIOCDELRT", 0x890c},     {"BLKGETSIZE", 0x1260},
        {"BLKSSZGET", 0x1268},     {"BLKGETSIZE64", 0x80081272},
        {"BLKROGET", 0x125e},      {"BLKRRPART", 0x125f},
        {"BLKFLSBUF", 0x1261},     {"FIGETBSZ", 0x2},
        {"FIBMAP", 0x1},           {"FS_IOC_GETFLAGS", 0x80086601},
        {"FS_IOC_SETFLAGS", 0x40086602}, {"KDGETMODE", 0x4b3b},
        {"KDSETMODE", 0x4b3a},     {"KDGKBTYPE", 0x4b33},
        {"VT_GETSTATE", 0x5603},   {"VT_ACTIVATE", 0x5606},
        {"VT_WAITACTIVE", 0x5607}, {"EVIOCGVERSION", 0x80044501},
        {"EVIOCGID", 0x80084502},  {"EVIOCGNAME", 0x82004506},
        {"CDROM_GET_CAPABILITY", 0x5331}, {"CDROMEJECT", 0x5309},
        {"LOOP_SET_FD", 0x4c00},   {"LOOP_CLR_FD", 0x4c01},
        {"LOOP_GET_STATUS64", 0x4c05}, {"LOOP_SET_STATUS64", 0x4c04},
        {"RTC_RD_TIME", 0x80247009}, {"RTC_SET_TIME", 0x4024700a},
        {"HDIO_GETGEO", 0x301},    {"HDIO_GET_IDENTITY", 0x30d},
        {"SG_IO", 0x2285},         {"SG_GET_VERSION_NUM", 0x2282},
        {"KVM_GET_API_VERSION", 0xae00}, {"KVM_CREATE_VM", 0xae01},
        {"KVM_RUN", 0xae80},       {"TUNSETIFF", 0x400454ca},
        {"PERF_EVENT_IOC_ENABLE", 0x2400}, {"FIFREEZE", 0xc0045877},
        {"FITHAW", 0xc0045878},    {"FITRIM", 0xc0185879},
        {"USBDEVFS_CONTROL", 0xc0185500}, {"SNDRV_PCM_INFO", 0x81204101},
        {"SNDRV_CTL_CARD_INFO", 0x81785501}, {"VIDIOC_QUERYCAP", 0x80685600},
        {"VIDIOC_G_FMT", 0xc0d05604}, {"DRM_IOCTL_VERSION", 0xc0406400},
    };
    // Decline from 95% down to just above 1% across ranks 53..188.
    {
      size_t tail_common = kIoctlAbove1Pct - kIoctlTop100;  // 136 ranks
      size_t named_common = sizeof(kCommon) / sizeof(kCommon[0]);
      for (size_t i = 0; i < tail_common; ++i) {
        double target = GeomDecline(0.95, 0.011, i, tail_common);
        if (i < named_common) {
          list->push_back(OpSpec{kCommon[i].code, kCommon[i].name, target});
        } else {
          char name[32];
          std::snprintf(name, sizeof(name), "IOC_COMMON_%zu", i);
          list->push_back(
              OpSpec{static_cast<uint32_t>(0x20000 + i), name, target});
        }
      }
    }
    // Ranks 189..280: used by at least one binary, importance <1%.
    for (size_t i = list->size(); i < kIoctlUsed; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "IOC_RARE_%zu", i);
      double target = GeomDecline(0.009, 0.0005, i - kIoctlAbove1Pct,
                                  kIoctlUsed - kIoctlAbove1Pct);
      list->push_back(OpSpec{static_cast<uint32_t>(0x30000 + i), name,
                             target});
    }
    // Ranks 281..635: defined by drivers/modules, never used (§3.3: "a very
    // long tail of unused operations").
    for (size_t i = list->size(); i < kIoctlOpCount; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "IOC_DRV_%zu", i);
      list->push_back(OpSpec{static_cast<uint32_t>(0x40000 + i), name, 0.0});
    }
    return list;
  }();
  return *kList;
}

const std::vector<OpSpec>& FcntlOps() {
  static const std::vector<OpSpec>* kList = [] {
    auto* list = new std::vector<OpSpec>();
    // Eleven ops at ~100% (paper Fig 5 left), then a short tail.
    struct Named {
      const char* name;
      uint32_t code;
      double target;
    };
    static const Named kOps[] = {
        {"F_DUPFD", 0, 1.0},          {"F_GETFD", 1, 1.0},
        {"F_SETFD", 2, 1.0},          {"F_GETFL", 3, 1.0},
        {"F_SETFL", 4, 1.0},          {"F_GETLK", 5, 1.0},
        {"F_SETLK", 6, 1.0},          {"F_SETLKW", 7, 1.0},
        {"F_SETOWN", 8, 1.0},         {"F_GETOWN", 9, 1.0},
        {"F_DUPFD_CLOEXEC", 1030, 1.0},
        {"F_SETSIG", 10, 0.62},       {"F_GETSIG", 11, 0.41},
        {"F_SETLEASE", 1024, 0.26},   {"F_GETLEASE", 1025, 0.17},
        {"F_NOTIFY", 1026, 0.08},     {"F_SETPIPE_SZ", 1031, 0.04},
        {"F_GETPIPE_SZ", 1032, 0.02},
    };
    for (const Named& op : kOps) {
      list->push_back(OpSpec{op.code, op.name, op.target});
    }
    return list;
  }();
  return *kList;
}

const std::vector<OpSpec>& PrctlOps() {
  static const std::vector<OpSpec>* kList = [] {
    auto* list = new std::vector<OpSpec>();
    struct Named {
      const char* name;
      uint32_t code;
      double target;
    };
    // Nine at ~100%, eighteen above 20% total, long low tail (Fig 5 right).
    static const Named kOps[] = {
        {"PR_SET_NAME", 15, 1.0},       {"PR_GET_NAME", 16, 1.0},
        {"PR_SET_PDEATHSIG", 1, 1.0},   {"PR_GET_PDEATHSIG", 2, 1.0},
        {"PR_SET_DUMPABLE", 4, 1.0},    {"PR_GET_DUMPABLE", 3, 1.0},
        {"PR_SET_SECCOMP", 22, 1.0},    {"PR_GET_SECCOMP", 21, 1.0},
        {"PR_SET_NO_NEW_PRIVS", 38, 1.0},
        {"PR_GET_NO_NEW_PRIVS", 39, 0.88}, {"PR_SET_KEEPCAPS", 8, 0.74},
        {"PR_GET_KEEPCAPS", 7, 0.61},   {"PR_CAPBSET_READ", 23, 0.52},
        {"PR_CAPBSET_DROP", 24, 0.44},  {"PR_SET_SECUREBITS", 28, 0.37},
        {"PR_GET_SECUREBITS", 27, 0.31},{"PR_SET_TIMERSLACK", 29, 0.26},
        {"PR_GET_TIMERSLACK", 30, 0.22},
        {"PR_SET_CHILD_SUBREAPER", 36, 0.16},
        {"PR_GET_CHILD_SUBREAPER", 37, 0.12},
        {"PR_SET_PTRACER", 0x59616d61, 0.09},
        {"PR_SET_TSC", 26, 0.07},       {"PR_GET_TSC", 25, 0.05},
        {"PR_SET_ENDIAN", 20, 0.04},    {"PR_GET_ENDIAN", 19, 0.03},
        {"PR_SET_FPEMU", 10, 0.025},    {"PR_GET_FPEMU", 9, 0.02},
        {"PR_SET_FPEXC", 12, 0.017},    {"PR_GET_FPEXC", 11, 0.014},
        {"PR_SET_UNALIGN", 6, 0.011},   {"PR_GET_UNALIGN", 5, 0.009},
        {"PR_SET_TIMING", 14, 0.007},   {"PR_GET_TIMING", 13, 0.006},
        {"PR_MCE_KILL", 33, 0.005},     {"PR_MCE_KILL_GET", 34, 0.004},
        {"PR_SET_MM", 35, 0.003},       {"PR_TASK_PERF_EVENTS_DISABLE", 31,
                                         0.002},
        {"PR_TASK_PERF_EVENTS_ENABLE", 32, 0.002},
        {"PR_SET_THP_DISABLE", 41, 0.001},
        {"PR_GET_THP_DISABLE", 42, 0.001},
        {"PR_GET_TID_ADDRESS", 40, 0.0},
        {"PR_SET_SECCOMP_LEGACY", 43, 0.0},
        {"PR_MPX_ENABLE_MANAGEMENT", 44, 0.0},
        {"PR_MPX_DISABLE_MANAGEMENT", 45, 0.0},
    };
    for (const Named& op : kOps) {
      list->push_back(OpSpec{op.code, op.name, op.target});
    }
    return list;
  }();
  return *kList;
}

const std::vector<PseudoFileSpec>& PseudoFiles() {
  static const std::vector<PseudoFileSpec>* kList = [] {
    auto* list = new std::vector<PseudoFileSpec>();
    auto add = [list](const char* path, double target, double bin_frac) {
      list->push_back(PseudoFileSpec{path, target, bin_frac});
    };
    // §3.4 anchors: of 12,039 binaries with a hard-coded path, 3,324 touch
    // /dev/null and 439 touch /proc/cpuinfo.
    add("/dev/null", 1.0, 0.0500);
    add("/dev/tty", 1.0, 0.0220);
    add("/dev/urandom", 1.0, 0.0190);
    add("/proc/self/exe", 1.0, 0.0150);
    add("/proc/%/cmdline", 1.0, 0.0120);
    add("/proc/cpuinfo", 1.0, 0.0066);
    add("/dev/zero", 1.0, 0.0062);
    add("/proc/meminfo", 1.0, 0.0055);
    add("/proc/self/maps", 0.99, 0.0045);
    add("/proc/%/stat", 0.98, 0.0040);
    add("/proc/mounts", 0.97, 0.0038);
    add("/dev/console", 0.95, 0.0030);
    add("/proc/%/status", 0.93, 0.0028);
    add("/proc/stat", 0.90, 0.0026);
    add("/dev/random", 0.88, 0.0024);
    add("/proc/filesystems", 0.84, 0.0022);
    add("/dev/pts", 0.80, 0.0020);
    add("/proc/self/fd", 0.77, 0.0019);
    add("/proc/loadavg", 0.71, 0.0018);
    add("/proc/uptime", 0.66, 0.0016);
    add("/dev/stdin", 0.60, 0.0015);
    add("/dev/stdout", 0.57, 0.0015);
    add("/dev/stderr", 0.54, 0.0014);
    add("/proc/version", 0.48, 0.0013);
    add("/sys/devices/system/cpu", 0.44, 0.0012);
    add("/proc/net/dev", 0.39, 0.0011);
    add("/proc/sys/kernel/osrelease", 0.34, 0.0010);
    add("/proc/net/tcp", 0.29, 0.0009);
    add("/dev/ptmx", 0.26, 0.0009);
    add("/sys/class/net", 0.22, 0.0008);
    add("/proc/diskstats", 0.19, 0.0007);
    add("/proc/%/fd", 0.16, 0.0007);
    add("/sys/block", 0.13, 0.0006);
    add("/dev/full", 0.11, 0.0005);
    add("/proc/swaps", 0.09, 0.0005);
    add("/dev/mem", 0.075, 0.0004);
    add("/proc/partitions", 0.06, 0.0004);
    add("/dev/hda", 0.05, 0.0003);
    add("/dev/sda", 0.045, 0.0003);
    add("/proc/interrupts", 0.035, 0.0003);
    add("/sys/power/state", 0.028, 0.0002);
    add("/proc/modules", 0.022, 0.0002);
    add("/proc/kallsyms", 0.017, 0.0002);
    add("/dev/kvm", 0.012, 0.0001);
    add("/dev/fuse", 0.009, 0.0001);
    add("/sys/kernel/mm/transparent_hugepage/enabled", 0.006, 0.0001);
    add("/proc/sys/vm/overcommit_memory", 0.004, 0.0001);
    add("/dev/watchdog", 0.003, 0.0001);
    add("/proc/sysrq-trigger", 0.002, 0.0001);
    add("/sys/class/thermal", 0.001, 0.0001);
    return list;
  }();
  return *kList;
}

namespace {

std::vector<LibcSymbolSpec>* BuildLibcUniverse() {
  auto* list = new std::vector<LibcSymbolSpec>();
  list->reserve(kLibcSymbolCount);
  std::set<std::string> used_names;
  lapis::Prng size_prng(0x11bc5eed);

  auto synth_size = [&size_prng](LibcBand band) -> uint32_t {
    // Hot symbols (printf, malloc, the syscall wrappers' shared plumbing)
    // are feature-rich and big; the obscure tail is mostly small compat
    // shims. Stripping below-90%-importance symbols therefore keeps a
    // larger share of bytes than of symbols (§3.5 reports 63% of bytes).
    uint64_t base = 48 + size_prng.NextBelow(120);
    switch (band) {
      case LibcBand::kUniversal:
      case LibcBand::kCommonPool:
        return static_cast<uint32_t>(base + 120 + size_prng.NextBelow(260));
      case LibcBand::kMid:
        return static_cast<uint32_t>(base + 40 + size_prng.NextBelow(120));
      case LibcBand::kTail:
      case LibcBand::kUnused:
        return static_cast<uint32_t>(base);
    }
    return static_cast<uint32_t>(base);
  };

  auto add = [&](std::string name, LibcBand band, double target,
                 int wraps = -1, std::string chk_base = "",
                 bool gnu_ext = false) {
    if (!used_names.insert(name).second) {
      return;  // syscall wrappers and classic APIs overlap (e.g. "time")
    }
    LibcSymbolSpec spec;
    spec.name = std::move(name);
    spec.band = band;
    spec.importance_target = target;
    spec.code_size = synth_size(band);
    spec.wraps_syscall = wraps;
    spec.chk_base = std::move(chk_base);
    spec.gnu_extension = gnu_ext;
    list->push_back(std::move(spec));
  };

  // ---- 1. Syscall wrappers: one export per non-retired syscall. Their
  // importance follows the wrapped syscall's, so the band is resolved later
  // by the spec builder; mark as kMid placeholder with target from tier.
  for (int nr = 0; nr < kSyscallCount; ++nr) {
    bool unused = false;
    for (int u : UnusedSyscalls()) {
      if (u == nr) {
        unused = true;
        break;
      }
    }
    if (unused) {
      continue;
    }
    // The wrapper band is refined by DistroSpec; default mid.
    add(std::string(SyscallName(nr)), LibcBand::kMid, 0.5, nr);
  }

  // ---- 2. Universal cleanup/prologue symbols: every executable calls
  // these (drives Table 7's dietlibc row: missing __cxa_finalize or
  // memalign breaks everything).
  for (const char* name :
       {"__libc_start_main", "__cxa_finalize", "__cxa_atexit", "exit_fn",
        "memalign", "__stack_chk_fail", "__errno_location"}) {
    add(name, LibcBand::kUniversal, 1.0);
  }

  // ---- 3. Fortify (_chk) variants: GNU libc headers substitute these at
  // compile time; nearly every Ubuntu binary imports some (Table 7).
  for (const char* base :
       {"printf", "fprintf", "sprintf", "snprintf", "vsnprintf", "memcpy",
        "memmove", "memset", "strcpy", "strncpy", "strcat", "strncat",
        "read", "pread64", "recv", "gets", "fgets", "getcwd", "realpath",
        "wcscpy", "confstr", "ttyname_r", "gethostname", "longjmp"}) {
    add(std::string("__") + base + "_chk", LibcBand::kUniversal, 1.0, -1,
        base);
  }

  // ---- 4. Common pool: classic libc APIs used by most executables.
  for (const char* name : {
           "malloc", "free", "calloc", "realloc", "strlen", "strcmp",
           "strncmp", "strcpy", "strncpy", "strcat", "strncat", "strchr",
           "strrchr", "strstr", "strtok", "strdup", "strndup", "strcasecmp",
           "strncasecmp", "strerror", "strtol", "strtoul", "strtoll",
           "strtoull", "strtod", "atoi", "atol", "atof", "memcpy", "memmove",
           "memset", "memcmp", "memchr", "printf", "fprintf", "sprintf",
           "snprintf", "vprintf", "vfprintf", "vsnprintf", "sscanf",
           "fscanf", "scanf", "puts", "fputs", "putchar", "fputc", "getchar",
           "fgetc", "fgets", "fopen", "fclose", "fread", "fwrite", "fseek",
           "ftell", "rewind", "fflush", "feof", "ferror", "fileno", "fdopen",
           "freopen", "setvbuf", "setbuf", "perror", "remove", "tmpfile",
           "getenv", "setenv", "unsetenv", "putenv", "system", "abort",
           "atexit", "exit", "_exit", "qsort", "bsearch", "rand", "srand",
           "random", "srandom", "abs", "labs", "div", "ldiv", "getopt",
           "getopt_long", "isalpha", "isdigit", "isalnum", "isspace",
           "isupper", "islower", "toupper", "tolower", "time", "ctime",
           "gmtime", "localtime", "mktime", "strftime", "difftime",
           "gettimeofday", "clock", "nanosleep", "sleep", "usleep", "alarm",
           "signal", "sigaction", "sigemptyset", "sigfillset", "sigaddset",
           "sigdelset", "sigprocmask", "raise", "pause", "setjmp", "longjmp",
           "opendir", "readdir", "closedir", "rewinddir", "scandir",
           "mkstemp", "mkdtemp", "tmpnam", "basename", "dirname", "realpath",
           "getcwd", "isatty", "ttyname", "getpwnam", "getpwuid", "getgrnam",
           "getgrgid", "getlogin", "gethostname", "sethostname",
           "gethostbyname", "getaddrinfo", "freeaddrinfo", "gai_strerror",
           "inet_ntoa", "inet_addr", "inet_pton", "inet_ntop", "htons",
           "htonl", "ntohs", "ntohl", "socketpair", "setlocale",
           "localeconv", "nl_langinfo", "iconv", "iconv_open", "iconv_close",
           "dlopen", "dlsym", "dlclose", "dlerror", "pthread_create",
           "pthread_join", "pthread_detach", "pthread_self", "pthread_exit",
           "pthread_mutex_init", "pthread_mutex_lock", "pthread_mutex_unlock",
           "pthread_mutex_destroy", "pthread_cond_init", "pthread_cond_wait",
           "pthread_cond_signal", "pthread_cond_broadcast",
           "pthread_cond_destroy", "pthread_once", "pthread_key_create",
           "pthread_getspecific", "pthread_setspecific", "pthread_attr_init",
           "pthread_attr_destroy", "pthread_attr_setdetachstate",
           "pthread_sigmask", "pthread_kill", "sem_init", "sem_wait",
           "sem_post", "sem_destroy", "fnmatch", "glob", "globfree", "regcomp",
           "regexec", "regfree", "regerror", "wordexp", "ftw", "nftw",
           "getline", "getdelim", "asprintf", "vasprintf", "strsep",
           "strpbrk", "strspn", "strcspn", "strcoll", "strxfrm", "mbstowcs",
           "wcstombs", "mbtowc", "wctomb", "wcslen", "wcscpy", "wcscmp",
           "swprintf", "fwprintf", "err", "errx", "warn", "warnx", "error",
           "getpagesize", "sysconf", "pathconf", "fpathconf", "confstr",
           "recv", "send", "gets", "ttyname_r", "strtok_r", "gmtime_r",
           "localtime_r", "ctime_r", "rand_r", "readdir_r", "getpwnam_r",
           "getpwuid_r", "getgrnam_r", "getgrgid_r", "gethostbyname_r",
           "uname", "getrusage", "getloadavg", "daemon", "setsid_fn",
           "openlog", "syslog", "closelog", "getpass", "crypt", "ftime",
           "clearerr", "ungetc", "popen", "pclose", "execl", "execlp",
           "execle", "execv", "execvp", "execvpe", "waitpid", "on_exit",
           "gcvt", "ecvt", "fcvt", "mblen", "lldiv", "imaxabs", "imaxdiv",
           "strtoimax", "strtoumax", "wcstol", "wcstoul", "wcstod",
           "towupper", "towlower", "iswalpha", "iswdigit", "iswspace",
           "getgroups_fn", "initgroups", "setgroups_fn", "getsubopt",
           "hcreate", "hsearch", "hdestroy", "tsearch", "tfind", "tdelete",
           "twalk", "lfind", "lsearch", "insque", "remque", "swab",
           "ffs", "index", "rindex", "bzero", "bcopy", "bcmp", "mempcpy",
           "stpcpy", "stpncpy", "strchrnul", "rawmemchr", "memrchr",
           "strverscmp", "strfry", "memfrob", "l64a", "a64l", "drand48",
           "erand48", "lrand48", "nrand48", "mrand48", "jrand48", "srand48",
           "seed48", "lcong48", "getdate", "timegm", "timelocal",
           "dysize", "adjtime", "getitimer_fn", "setitimer_fn",
           "clearenv", "mkostemp", "mkstemps", "mkostemps", "ptsname",
           "grantpt", "unlockpt", "posix_openpt", "ctermid", "cuserid",
           "flockfile", "ftrylockfile", "funlockfile", "getc_unlocked",
           "putc_unlocked", "fgets_unlocked", "fputs_unlocked",
       }) {
    add(name, LibcBand::kCommonPool, 1.0);
  }

  // ---- 5. GNU extensions (absent from uClibc/musl; Table 7 normalized
  // gap). Used by the high-capability half of packages.
  for (const char* name : {
           "secure_getenv", "random_r", "srandom_r", "initstate_r",
           "setstate_r", "qsort_r", "mallinfo", "malloc_trim",
           "malloc_usable_size", "mallopt", "mcheck", "mprobe", "mtrace",
           "muntrace", "backtrace", "backtrace_symbols",
           "backtrace_symbols_fd", "program_invocation_name",
           "program_invocation_short_name", "canonicalize_file_name",
           "euidaccess", "eaccess", "get_current_dir_name", "group_member",
           "getresuid_fn", "getresgid_fn", "fopencookie", "open_memstream",
           "fmemopen", "obstack_free", "argp_parse", "argp_usage",
           "argz_add", "argz_count", "argz_create", "envz_add", "envz_get",
           "fgetxattr_fn", "versionsort", "strcasestr", "memmem",
           "parse_printf_format", "register_printf_function", "fts_open",
           "fts_read", "fts_close", "getauxval", "__uflow", "__overflow",
       }) {
    add(name, LibcBand::kMid, 0.0, -1, "", /*gnu_ext=*/true);
  }

  // ---- 6. Mid band: real-but-less-common APIs with declining targets.
  {
    static const char* kMidNames[] = {
        "getspnam", "getspent", "putspent", "sgetspent", "fgetspent",
        "getutent", "getutid", "getutline", "pututline", "utmpname",
        "updwtmp", "login_tty", "openpty", "forkpty", "getttyent",
        "getttynam", "setttyent", "endttyent", "getfsent", "getfsspec",
        "getfsfile", "setfsent", "endfsent", "getmntent", "setmntent",
        "addmntent", "endmntent", "hasmntopt", "getnetent", "getnetbyname",
        "getnetbyaddr", "getprotoent", "getprotobyname", "getprotobynumber",
        "getservent", "getservbyname", "getservbyport", "getrpcent",
        "getrpcbyname", "getrpcbynumber", "ether_ntoa", "ether_aton",
        "ether_ntohost", "ether_hostton", "ether_line", "res_init",
        "res_query", "res_search", "res_querydomain", "res_mkquery",
        "dn_expand", "dn_comp", "herror", "hstrerror", "rcmd", "rresvport",
        "ruserok", "rexec", "iruserok", "sigpause", "sigblock", "sigsetmask",
        "siggetmask", "sigvec", "sigstack", "sigreturn_fn", "sigwait",
        "sigwaitinfo", "sigtimedwait", "sigqueue", "sigisemptyset",
        "sigandset", "sigorset", "psignal", "psiginfo", "strsignal",
        "wcwidth", "wcswidth", "wcsncpy", "wcsncmp", "wcscat", "wcsncat",
        "wcschr", "wcsrrchr", "wcsstr", "wcstok", "wcsdup", "wcscasecmp",
        "wmemcpy", "wmemmove", "wmemset", "wmemcmp", "wmemchr", "fgetws",
        "fputws", "getwc", "putwc", "ungetwc", "fwide", "wprintf",
        "vwprintf", "wscanf", "btowc", "wctob", "mbrlen", "mbrtowc",
        "wcrtomb", "mbsrtowcs", "wcsrtombs", "mbsinit", "wctype", "iswctype",
        "wctrans", "towctrans", "catopen", "catgets", "catclose", "gettext",
        "dgettext", "dcgettext", "ngettext", "dngettext", "dcngettext",
        "textdomain", "bindtextdomain", "bind_textdomain_codeset",
        "posix_spawn", "posix_spawnp", "posix_spawn_file_actions_init",
        "posix_spawn_file_actions_destroy", "posix_spawnattr_init",
        "posix_spawnattr_destroy", "posix_memalign", "aligned_alloc",
        "valloc", "pvalloc", "posix_fadvise", "posix_fallocate",
        "posix_madvise", "sched_getcpu", "pthread_rwlock_init",
        "pthread_rwlock_rdlock", "pthread_rwlock_wrlock",
        "pthread_rwlock_unlock", "pthread_rwlock_destroy",
        "pthread_barrier_init", "pthread_barrier_wait",
        "pthread_barrier_destroy", "pthread_spin_init", "pthread_spin_lock",
        "pthread_spin_unlock", "pthread_spin_destroy", "pthread_cancel",
        "pthread_setcancelstate", "pthread_setcanceltype",
        "pthread_testcancel", "pthread_cleanup_push", "pthread_cleanup_pop",
        "pthread_atfork", "pthread_getattr_np", "pthread_setname_np",
        "pthread_getname_np", "pthread_setaffinity_np",
        "pthread_getaffinity_np", "pthread_yield", "pthread_equal",
        "pthread_mutexattr_init", "pthread_mutexattr_settype",
        "pthread_mutexattr_destroy", "pthread_condattr_init",
        "pthread_condattr_setclock", "pthread_condattr_destroy",
        "sem_open", "sem_close", "sem_unlink", "sem_trywait",
        "sem_timedwait", "sem_getvalue", "mq_open_fn", "mq_close",
        "mq_send", "mq_receive", "mq_setattr", "mq_getattr", "aio_read",
        "aio_write", "aio_error", "aio_return", "aio_suspend", "aio_cancel",
        "lio_listio", "clock_gettime_fn", "clock_settime_fn",
        "clock_getres_fn", "clock_nanosleep_fn", "timer_create_fn",
        "timer_settime_fn", "timer_gettime_fn", "timer_delete_fn",
        "timer_getoverrun_fn", "shm_open", "shm_unlink", "mlock_fn",
        "munlock_fn", "mlockall_fn", "munlockall_fn", "swapcontext",
        "makecontext", "getcontext", "setcontext", "sigaltstack_fn",
        "acct_fn", "brk_fn", "sbrk", "getpriority_fn", "setpriority_fn",
        "nice", "getdtablesize", "ulimit", "vlimit", "vtimes", "profil",
        "moncontrol", "monstartup", "gtty", "stty", "sstk", "revoke",
        "vhangup_fn", "endusershell", "getusershell", "setusershell",
        "seteuid", "setegid", "setlogin", "getpt", "sethostid", "gethostid",
        "getdomainname", "setdomainname_fn", "iopl_fn", "ioperm_fn",
        "klogctl", "quotactl_fn", "query_module_fn", "nfsservctl_fn",
    };
    // The first ~130 are the genuine mid band (1%..97%); the rest are
    // obscure-but-real entry points that fall into the sub-1% tail, which
    // dominates the real libc's export surface (Fig 7: 39.7% below 1%).
    size_t count = sizeof(kMidNames) / sizeof(kMidNames[0]);
    constexpr size_t kMidCut = 130;
    for (size_t i = 0; i < count; ++i) {
      if (i < kMidCut) {
        add(kMidNames[i], LibcBand::kMid, GeomDecline(0.97, 0.011, i,
                                                      kMidCut));
      } else {
        add(kMidNames[i], LibcBand::kTail,
            GeomDecline(0.009, 0.0004, i - kMidCut, count - kMidCut));
      }
    }
  }

  // ---- 7. Fill the remainder with the <1% tail (obscure-but-real locale,
  // nss and compat entry points, modeled with systematic names) and the
  // 222 unused exports (§6).
  const size_t unused_target = 222;
  while (list->size() < kLibcSymbolCount - unused_target) {
    char name[48];
    std::snprintf(name, sizeof(name), "__nss_compat_entry_%03zu",
                  list->size());
    double target = GeomDecline(0.009, 0.0002,
                                list->size() % 97, 97);
    add(name, LibcBand::kTail, target);
  }
  size_t unused_index = 0;
  while (list->size() < kLibcSymbolCount) {
    char name[48];
    std::snprintf(name, sizeof(name), "__libc_obsolete_%03zu",
                  unused_index++);
    add(name, LibcBand::kUnused, 0.0);
  }
  return list;
}

}  // namespace

const std::vector<LibcSymbolSpec>& LibcUniverse() {
  static const std::vector<LibcSymbolSpec>* kList = BuildLibcUniverse();
  return *kList;
}

LibcBandCounts CountLibcBands() {
  LibcBandCounts counts;
  for (const auto& spec : LibcUniverse()) {
    switch (spec.band) {
      case LibcBand::kUniversal:
        ++counts.universal;
        break;
      case LibcBand::kCommonPool:
        ++counts.common;
        break;
      case LibcBand::kMid:
        ++counts.mid;
        break;
      case LibcBand::kTail:
        ++counts.tail;
        break;
      case LibcBand::kUnused:
        ++counts.unused;
        break;
    }
  }
  return counts;
}

}  // namespace lapis::corpus
