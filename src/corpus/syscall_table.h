// The x86-64 Linux 3.19 system-call table (320 entries, as studied by the
// paper) plus the paper's anchor classifications:
//   - the ~40 "startup" syscalls every dynamically linked program needs,
//   - Table 3's 18 unused syscalls,
//   - the 5 officially-retired-but-still-attempted syscalls,
//   - Tables 8-11 variant pairs with their published unweighted importance.

#ifndef LAPIS_SRC_CORPUS_SYSCALL_TABLE_H_
#define LAPIS_SRC_CORPUS_SYSCALL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lapis::corpus {

inline constexpr int kSyscallCount = 320;

// Name of syscall `nr` ("" for out-of-range).
std::string_view SyscallName(int nr);

// Number for `name`, or nullopt.
std::optional<int> SyscallNumber(std::string_view name);

// Best-effort name for a legacy i386 (int $0x80) syscall number — the
// 32-bit table numbers differently (read=3, write=4, ...). Returns
// "i386:<nr>" for numbers outside the curated set.
std::string I386SyscallName(int nr);

// The 40 syscalls reachable from every dynamically-linked executable's
// startup path (libc/ld.so/libpthread/librt initialization; paper Table 5 and
// the Fig 3 "cannot run even the most simple programs without at least 40
// system calls" anchor).
const std::vector<int>& StartupSyscalls();

// Which core library's initialization issues each startup syscall (Table 5).
enum class CoreLib : uint8_t { kLibc, kLdSo, kLibpthread, kLibrt };
struct StartupAttribution {
  int syscall_nr;
  std::vector<CoreLib> libs;
};
const std::vector<StartupAttribution>& StartupAttributions();

// Table 3: the 18 syscalls with no usage at all (10 retired without entry
// points + 8 simply unused).
const std::vector<int>& UnusedSyscalls();

// Officially retired but still attempted for backward compatibility
// (uselib, nfsservctl, afs_syscall, vserver, security).
const std::vector<int>& RetiredButAttemptedSyscalls();

// Anchored unweighted-importance targets from Tables 8-11 (fraction of
// packages using the call). These pin specific syscalls to specific ranks in
// the synthetic usage model so the variant-comparison benches reproduce the
// paper's rows.
struct UnweightedAnchor {
  int syscall_nr;
  double unweighted_importance;  // in [0,1]
};
const std::vector<UnweightedAnchor>& UnweightedAnchors();

// Variant-pair rows for Tables 8-11.
enum class VariantTable : uint8_t {
  kSecureIds,       // Table 8, set*id/get*id block
  kSecureAtomicDir, // Table 8, *at block
  kOldNew,          // Table 9
  kPortability,     // Table 10
  kPowerSimplicity, // Table 11
};
struct VariantPair {
  VariantTable table;
  std::string_view left_label;   // e.g. "access"
  int left_nr;
  std::string_view right_label;  // e.g. "faccessat"
  int right_nr;
};
const std::vector<VariantPair>& VariantPairs();

// Syscalls pinned to specific importance ranks so the Table 6 system
// evaluations land where the paper reports them (e.g. Graphene's missing
// scheduling calls rank right after the startup set, making its weighted
// completeness collapse to under 1%).
struct PinnedRank {
  int syscall_nr;
  int rank;  // 1-based global importance rank
};
const std::vector<PinnedRank>& PinnedRanks();

// Tier C/D tail syscalls with weighted-importance targets and the package
// attributions the paper reports (Tables 1-2 plus §3.1 prose).
struct TailSyscallPlan {
  int syscall_nr;
  double weighted_importance;            // target API importance
  std::vector<std::string> packages;     // dedicated owner packages
  bool via_library;                      // call site lives in a library
};
const std::vector<TailSyscallPlan>& TailSyscallPlans();

}  // namespace lapis::corpus

#endif  // LAPIS_SRC_CORPUS_SYSCALL_TABLE_H_
