// DistroSpec: the ground-truth plan for the synthetic distribution.
//
// The paper measured Ubuntu 15.04; we cannot redistribute it, so lapis
// builds a calibrated stand-in (DESIGN.md "Substitutions"). BuildDistroSpec
// turns the paper's published anchors (syscall tiers, Tables 1-3 and 8-11,
// Figs 2-8) into a concrete plan: which packages exist, how popular each is,
// which APIs each one uses and through which mechanism. The synthesizer
// (binary_synth.h) then emits real ELF binaries realizing the plan, and the
// analysis pipeline re-measures it.
//
// Key mechanism: every package has a "syscall prefix rank" K — it uses the
// K most-important syscalls (through libc wrappers). K is assigned by
// inverting the paper's Fig 3 weighted-completeness curve against the
// package popularity distribution, which reproduces both the weighted
// (Fig 2/3) and unweighted (Fig 8, Tables 8-11) distributions. Tail
// syscalls (ranks > 224) are instead wired into dedicated carrier packages
// chosen to hit their published importance.

#ifndef LAPIS_SRC_CORPUS_DISTRO_SPEC_H_
#define LAPIS_SRC_CORPUS_DISTRO_SPEC_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/package/repository.h"
#include "src/util/status.h"

namespace lapis::corpus {

struct DistroOptions {
  // Application packages (core libraries, interpreters, essentials and
  // dedicated tail-carrier packages are added on top).
  size_t app_package_count = 3000;
  size_t script_package_count = 450;
  size_t data_package_count = 80;
  uint64_t installation_count = 100000;
  double popcon_report_rate = 0.97;
  uint64_t seed = 20160418;  // EuroSys'16
  // Zipf exponent for app-package popularity (0.8 concentrates ~56% of the
  // installation weight in the top 10% of packages, matching the joint
  // Fig 3 / Fig 8 anchor solution; see DESIGN.md).
  double zipf_s = 0.8;
  double zipf_scale = 0.9;  // most popular app package's install probability

  // What-if knob for release simulation: multiplies the adoption (carrier
  // count) of the modern/secure syscall variants in the rare tail
  // (faccessat, mkdirat, waitid, getdents64, ...). 1.0 reproduces the
  // paper's 15.04 numbers; >1 models a future release where the paper's
  // §6 outreach succeeded.
  double modern_variant_adoption = 1.0;
};

struct PackagePlan {
  std::string name;
  package::ProgramKind kind = package::ProgramKind::kElf;
  double target_marginal = 0.0;

  // Syscall usage: the K most-important ranked syscalls via libc wrappers.
  int syscall_prefix_rank = 0;
  std::vector<int> extra_syscalls;  // dedicated tail assignments
  // True if the extra syscalls' call sites live in a shipped shared library
  // rather than the executable (Table 1 attribution).
  bool extras_via_library = false;

  // Vectored opcodes / pseudo-files / libc symbols beyond the defaults that
  // fall out of the prefix mechanism. Values are indices into the
  // corresponding universe vectors (api_universe.h).
  std::vector<size_t> ioctl_ranks;
  std::vector<size_t> fcntl_ranks;
  std::vector<size_t> prctl_ranks;
  std::vector<size_t> pseudo_file_ranks;
  std::vector<size_t> libc_common_ranks;  // common-pool sample
  std::vector<size_t> libc_extra_ranks;   // mid/tail/gnu-ext assignments
  bool uses_gnu_ext = false;              // imports GNU-only libc symbols

  int exe_count = 1;
  int lib_count = 0;
  size_t script_count = 0;        // interpreted programs shipped
  bool is_essential = false;      // installed everywhere (marginal 1.0)
  bool static_binary = false;     // fully static executable, inline syscalls
  // Pre-x86-64 relic: also issues a few calls through the legacy
  // `int $0x80` gate (i386 numbering; the paper greps for this form too).
  bool legacy_int80 = false;
  bool data_only = false;         // no programs at all
  // ~11% of executables also inline direct `syscall` instructions for a few
  // prefix syscalls (paper §7: 7,259 executables + 2,752 libraries).
  bool emits_direct_syscalls = false;
  // Emits one arithmetic-obfuscated syscall-number load (the paper's 4% of
  // undeterminable call sites).
  bool emits_obfuscated_site = false;
  // Branch-guarded direct syscall sites (`mov eax,N; jcc L; nop; L:
  // syscall` — a compiler error-path idiom). Every path into the site
  // carries the same number, so CFG dataflow recovers it while the linear
  // ablation must degrade the merge point to unknown.
  int guarded_syscall_sites = 0;
  // Wrapper-style sites only the interprocedural tier recovers. The main
  // executable gains a local `syscall(2)` clone (`mov rax, rdi; syscall`)
  // called with the rank-1 number — so the recovered *sets* are identical
  // in every tier and only the unknown-site counters move:
  //   wrapper_syscall_calls — call sites into the clone from main;
  //   wrapper_tail_plt     — the clone instead tail-jumps into libc's
  //                          syscall@plt with the number still in rdi;
  //   wrapper_guarded      — the clone carries a branch merge before its
  //                          syscall (needs CFG join *and* IPA);
  //   wrapper_two_hop_ioctl — a two-hop helper chain forwarding the
  //                          rank-0 assigned ioctl opcode
  //                          (main → helper1 → helper2 → ioctl@plt).
  int wrapper_syscall_calls = 0;
  bool wrapper_tail_plt = false;
  bool wrapper_guarded = false;
  bool wrapper_two_hop_ioctl = false;

  std::vector<std::string> depends;       // package names
  std::string interpreter_package;        // for script packages
};

struct DistroSpec {
  DistroOptions options;
  std::vector<PackagePlan> packages;

  // The global importance-rank order of all 320 syscalls (rank 1 = most
  // important; index 0 in this vector).
  std::vector<int> syscall_rank_order;

  // Name -> index into `packages`.
  std::map<std::string, size_t> by_name;

  // Ground truth: expected syscall footprint of a package under the plan
  // (startup set + ranked prefix + extras).
  std::set<int> ExpectedSyscalls(size_t package_index) const;

  // Rank (1-based) of a syscall in the global order.
  int RankOf(int syscall_nr) const;
};

// Deterministic: same options -> identical spec.
Result<DistroSpec> BuildDistroSpec(const DistroOptions& options);

}  // namespace lapis::corpus

#endif  // LAPIS_SRC_CORPUS_DISTRO_SPEC_H_
