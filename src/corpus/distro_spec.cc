#include "src/corpus/distro_spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/corpus/api_universe.h"
#include "src/corpus/syscall_table.h"
#include "src/util/prng.h"

namespace lapis::corpus {

namespace {

// Fig 3 anchor curve: weighted completeness reached once the N most
// important syscalls are supported. Slightly pre-compensated upward in the
// middle because tail-carrier packages (unsupported until ranks >224)
// depress the measured curve by their combined weight (~2-4%).
struct CurvePoint {
  double n;
  double wc;
};
constexpr CurvePoint kFig3Curve[] = {
    {40.0, 0.011}, {81.0, 0.125}, {125.0, 0.30}, {145.0, 0.57},
    {202.0, 0.95}, {224.0, 0.995},
};

// K = G^{-1}(u) over a corrected curve: u is the weighted quantile among
// ELF packages only (0 = least popular mass, 1 = full mass).
int CurveInverse(const std::vector<CurvePoint>& curve, double u) {
  if (curve.empty() || u <= curve[0].wc) {
    return curve.empty() ? 40 : static_cast<int>(curve[0].n);
  }
  for (size_t i = 1; i < curve.size(); ++i) {
    if (u <= curve[i].wc) {
      const CurvePoint& a = curve[i - 1];
      const CurvePoint& b = curve[i];
      if (b.wc <= a.wc) {
        return static_cast<int>(b.n);
      }
      double t = (u - a.wc) / (b.wc - a.wc);
      return static_cast<int>(a.n + t * (b.n - a.n));
    }
  }
  return 224;
}

constexpr int kBaseRankCount = 40;
constexpr int kTierBEnd = 224;     // ranks 1..224 have 100% importance
constexpr size_t kTailCount = 96;  // 320 - 224

// Essential (marginal 1.0) packages beyond the core libraries.
constexpr const char* kEssentialNames[] = {
    "coreutils",  "util-linux", "grep-core",   "sed-core",
    "findutils",  "tar-core",   "gzip-core",   "procps",
    "apt-core",   "hostname-core", "init-system", "mount-tools",
};

// Interpreter packages: name, marginal, prefix rank K, Fig 1 script share.
struct InterpreterSpec {
  const char* package;
  package::ProgramKind kind;
  double marginal;
  int prefix_rank;
  double script_share;  // fraction of all script programs
};
constexpr InterpreterSpec kInterpreters[] = {
    {"dash-shell", package::ProgramKind::kShellDash, 1.0, 120, 0.41},
    {"python-core", package::ProgramKind::kPython, 0.93, 168, 0.25},
    {"perl-core", package::ProgramKind::kPerl, 0.95, 165, 0.21},
    {"bash-shell", package::ProgramKind::kShellBash, 1.0, 150, 0.15},
    {"ruby-core", package::ProgramKind::kRuby, 0.25, 170, 0.033},
    {"tcl-core", package::ProgramKind::kOtherInterpreted, 0.30, 140, 0.042},
};

// Tail syscalls beyond the anchored/planned ones, filling the 96-slot tail.
// Roughly ordered from "used by a handful of packages" to "nearly nobody".
constexpr const char* kTailFillers[] = {
    "io_setup", "io_destroy", "io_submit", "io_cancel", "readahead",
    "sync_file_range", "vmsplice", "tee", "migrate_pages", "set_mempolicy",
    "get_mempolicy", "fanotify_init", "fanotify_mark", "name_to_handle_at",
    "open_by_handle_at", "setns", "process_vm_readv", "process_vm_writev",
    "kcmp", "finit_module", "perf_event_open", "getrandom", "memfd_create",
    "modify_ldt", "ustat", "personality", "acct", "swapon", "swapoff",
    "ioprio_set", "ioprio_get", "signalfd", "eventfd", "semtimedop",
    "timer_getoverrun", "_sysctl", "getpmsg", "rt_sigqueueinfo",
    "epoll_create", "futimesat", "utimensat", "mknodat", "linkat",
    "symlinkat", "lchown", "creat", "getsid", "setfsuid", "setfsgid",
    "vhangup", "pivot_root",
};

}  // namespace

std::set<int> DistroSpec::ExpectedSyscalls(size_t package_index) const {
  const PackagePlan& plan = packages[package_index];
  std::set<int> out;
  if (plan.data_only) {
    return out;
  }
  if (!plan.interpreter_package.empty()) {
    auto it = by_name.find(plan.interpreter_package);
    if (it != by_name.end()) {
      return ExpectedSyscalls(it->second);
    }
    return out;
  }
  for (int i = 0; i < plan.syscall_prefix_rank &&
                  i < static_cast<int>(syscall_rank_order.size());
       ++i) {
    out.insert(syscall_rank_order[static_cast<size_t>(i)]);
  }
  out.insert(plan.extra_syscalls.begin(), plan.extra_syscalls.end());
  // Vectored-opcode call sites go through the ioctl/fcntl/prctl wrappers,
  // pulling the vectored syscall itself into the footprint.
  if (!plan.static_binary) {
    if (!plan.ioctl_ranks.empty()) {
      out.insert(*SyscallNumber("ioctl"));
    }
    if (!plan.fcntl_ranks.empty()) {
      out.insert(*SyscallNumber("fcntl"));
    }
    if (!plan.prctl_ranks.empty()) {
      out.insert(*SyscallNumber("prctl"));
    }
  }
  return out;
}

int DistroSpec::RankOf(int syscall_nr) const {
  for (size_t i = 0; i < syscall_rank_order.size(); ++i) {
    if (syscall_rank_order[i] == syscall_nr) {
      return static_cast<int>(i) + 1;
    }
  }
  return -1;
}

Result<DistroSpec> BuildDistroSpec(const DistroOptions& options) {
  if (options.app_package_count < 300) {
    return InvalidArgumentError("need at least 300 app packages");
  }
  DistroSpec spec;
  spec.options = options;
  Prng prng(options.seed);

  // ---------------------------------------------------------------------
  // 1. Partition the 320 syscalls: base-40, tier-B (ranks 41..224), tail.
  // ---------------------------------------------------------------------
  std::set<int> base(StartupSyscalls().begin(), StartupSyscalls().end());
  if (base.size() != kBaseRankCount) {
    return InternalError("startup set must have exactly 40 syscalls");
  }
  std::set<int> tail;
  for (int nr : UnusedSyscalls()) {
    tail.insert(nr);
  }
  for (int nr : RetiredButAttemptedSyscalls()) {
    tail.insert(nr);
  }
  for (const auto& plan : TailSyscallPlans()) {
    tail.insert(plan.syscall_nr);
  }
  // Anchors used by fewer than ~1% of packages are realized through
  // dedicated rare carriers (their weighted importance stays below 10%);
  // anchors above that live inside tier B, where one ubiquitous package
  // keeps their weighted importance at 100% while the emergent prefix
  // distribution reproduces their published unweighted value.
  for (const auto& anchor : UnweightedAnchors()) {
    if (anchor.unweighted_importance < 0.01 &&
        !base.contains(anchor.syscall_nr)) {
      tail.insert(anchor.syscall_nr);
    }
  }
  for (const char* name : kTailFillers) {
    if (tail.size() >= kTailCount) {
      break;
    }
    auto nr = SyscallNumber(name);
    if (nr.has_value() && !base.contains(*nr)) {
      tail.insert(*nr);
    }
  }
  // If fillers were insufficient, extend with the highest-numbered
  // non-base syscalls not already in the tail.
  for (int nr = kSyscallCount - 1; nr >= 0 && tail.size() < kTailCount;
       --nr) {
    if (!base.contains(nr)) {
      tail.insert(nr);
    }
  }
  while (tail.size() > kTailCount) {
    // Trim from the filler end (never the planned/unused entries).
    bool trimmed = false;
    for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
      bool protected_entry = false;
      for (int nr : UnusedSyscalls()) {
        protected_entry |= nr == *it;
      }
      for (const auto& plan : TailSyscallPlans()) {
        protected_entry |= plan.syscall_nr == *it;
      }
      if (!protected_entry) {
        tail.erase(std::next(it).base());
        trimmed = true;
        break;
      }
    }
    if (!trimmed) {
      return InternalError("cannot trim tail to 96 syscalls");
    }
  }

  std::vector<int> tier_b;
  for (int nr = 0; nr < kSyscallCount; ++nr) {
    if (!base.contains(nr) && !tail.contains(nr)) {
      tier_b.push_back(nr);
    }
  }
  if (tier_b.size() != static_cast<size_t>(kTierBEnd - kBaseRankCount)) {
    return InternalError("tier-B must have exactly 184 syscalls, got " +
                         std::to_string(tier_b.size()));
  }

  // ---------------------------------------------------------------------
  // 2. Create packages with target marginals.
  // ---------------------------------------------------------------------
  auto add_package = [&spec](PackagePlan plan) -> size_t {
    size_t index = spec.packages.size();
    spec.by_name.emplace(plan.name, index);
    spec.packages.push_back(std::move(plan));
    return index;
  };

  // Core: libc6 ships libc.so.6 / ld.so / libpthread / librt + ldconfig.
  {
    PackagePlan core;
    core.name = "libc6";
    core.target_marginal = 1.0;
    core.is_essential = true;
    core.syscall_prefix_rank = kBaseRankCount;
    core.exe_count = 1;
    core.lib_count = 0;  // the four core libraries are synthesized specially
    add_package(std::move(core));
  }

  // Interpreters.
  for (const auto& interp : kInterpreters) {
    PackagePlan plan;
    plan.name = interp.package;
    plan.kind = package::ProgramKind::kElf;  // the interpreter binary is ELF
    plan.target_marginal = interp.marginal;
    plan.is_essential = interp.marginal >= 1.0;
    plan.syscall_prefix_rank = interp.prefix_rank;
    plan.exe_count = 1;
    plan.lib_count = 1;
    plan.depends = {"libc6"};
    add_package(std::move(plan));
  }

  // Essentials.
  for (const char* name : kEssentialNames) {
    PackagePlan plan;
    plan.name = name;
    plan.target_marginal = 1.0;
    plan.is_essential = true;
    plan.exe_count = 2;
    plan.lib_count = 0;
    plan.depends = {"libc6"};
    add_package(std::move(plan));
  }

  // App packages (Zipf popularity).
  std::vector<size_t> app_indexes;
  for (size_t i = 0; i < options.app_package_count; ++i) {
    PackagePlan plan;
    char name[32];
    std::snprintf(name, sizeof(name), "app-%04zu", i);
    plan.name = name;
    double p = options.zipf_scale /
               std::pow(static_cast<double>(i + 1), options.zipf_s);
    plan.target_marginal = std::max(0.0006, std::min(0.95, p));
    // Fig 1: shared libraries outnumber executables 52% / 48% among ELF
    // binaries.
    plan.exe_count = 1 + static_cast<int>(prng.NextBelow(2));
    plan.lib_count = 1 + static_cast<int>(prng.NextBelow(2));
    plan.depends = {"libc6"};
    plan.emits_direct_syscalls = prng.NextBool(0.11);
    plan.emits_obfuscated_site = prng.NextBool(0.04);
    app_indexes.push_back(add_package(std::move(plan)));
  }
  // Branch-guarded syscall sites, drawn from a forked generator so every
  // other plan draw (and therefore the rest of the corpus) is identical
  // with or without them. The guarded number is the rank-1 syscall, already
  // in every prefix footprint: only the unknown-site counters move between
  // analysis modes, never the recovered sets.
  {
    Prng guard_prng(options.seed ^ 0x6a63635f67726448ULL);
    for (size_t index : app_indexes) {
      if (guard_prng.NextBool(0.30)) {
        spec.packages[index].guarded_syscall_sites =
            1 + static_cast<int>(guard_prng.NextBelow(2));
      }
    }
  }
  // Wrapper-style sites only the interprocedural tier recovers, from a
  // second forked generator for the same reason. Drawn unconditionally here
  // (prefix ranks and ioctl assignments happen later); the synthesizer
  // skips the emission when a package lacks the prefix syscall or assigned
  // ioctl opcode the wrapper would forward.
  {
    Prng wrapper_prng(options.seed ^ 0x6970615f77726170ULL);
    for (size_t index : app_indexes) {
      PackagePlan& plan = spec.packages[index];
      if (wrapper_prng.NextBool(0.30)) {
        plan.wrapper_syscall_calls =
            1 + static_cast<int>(wrapper_prng.NextBelow(2));
        plan.wrapper_tail_plt = wrapper_prng.NextBool(0.40);
        plan.wrapper_guarded = wrapper_prng.NextBool(0.35);
      }
      plan.wrapper_two_hop_ioctl = wrapper_prng.NextBool(0.25);
    }
  }

  // Static-binary packages (paper: 0.38% of ELF binaries are static). A
  // couple are pre-x86-64 relics still using the int $0x80 gate.
  for (size_t i = 0; i < 12; ++i) {
    PackagePlan plan;
    char name[32];
    std::snprintf(name, sizeof(name), "static-tool-%02zu", i);
    plan.name = name;
    plan.target_marginal = 0.002 + 0.004 * prng.NextDouble();
    plan.static_binary = true;
    plan.legacy_int80 = i < 2;
    plan.exe_count = 1;
    add_package(std::move(plan));
  }

  // Script packages.
  {
    // Distribute across interpreters by Fig 1 share.
    size_t created = 0;
    for (const auto& interp : kInterpreters) {
      size_t count = static_cast<size_t>(
          interp.script_share * static_cast<double>(options.script_package_count) + 0.5);
      for (size_t i = 0; i < count && created < options.script_package_count;
           ++i, ++created) {
        PackagePlan plan;
        char name[48];
        std::snprintf(name, sizeof(name), "script-%s-%03zu",
                      interp.package, i);
        plan.name = name;
        plan.kind = interp.kind;
        plan.target_marginal =
            std::max(0.0006, 0.25 / std::pow(static_cast<double>(created + 2),
                                             options.zipf_s));
        plan.script_count = 4 + prng.NextBelow(14);
        plan.interpreter_package = interp.package;
        plan.depends = {interp.package};
        add_package(std::move(plan));
      }
    }
  }

  // Data-only packages (fonts, docs): the ~1% raw-completeness floor in
  // Table 7 comes from these.
  for (size_t i = 0; i < options.data_package_count; ++i) {
    PackagePlan plan;
    char name[32];
    std::snprintf(name, sizeof(name), "data-%03zu", i);
    plan.name = name;
    plan.target_marginal =
        std::max(0.0006, 0.3 / std::pow(static_cast<double>(i + 3), 1.1));
    plan.data_only = true;
    add_package(std::move(plan));
  }

  // Dedicated tail-carrier packages from the paper's Tables 1-2.
  for (const auto& plan_entry : TailSyscallPlans()) {
    size_t m = plan_entry.packages.size();
    double per_package =
        1.0 - std::pow(1.0 - plan_entry.weighted_importance,
                       1.0 / static_cast<double>(m));
    for (const auto& pkg_name : plan_entry.packages) {
      auto it = spec.by_name.find(pkg_name);
      size_t index;
      if (it == spec.by_name.end()) {
        PackagePlan plan;
        plan.name = pkg_name;
        plan.target_marginal = std::max(0.002, per_package);
        plan.exe_count = 1;
        plan.lib_count = plan_entry.via_library ? 1 : 0;
        plan.depends = {"libc6"};
        index = add_package(std::move(plan));
      } else {
        index = it->second;
      }
      spec.packages[index].extra_syscalls.push_back(plan_entry.syscall_nr);
      spec.packages[index].extras_via_library |= plan_entry.via_library;
    }
  }

  // ---------------------------------------------------------------------
  // 3. Assign prefix ranks K by inverting the Fig 3 curve against the
  //    weighted quantile of each package.
  // ---------------------------------------------------------------------
  {
    struct Weighted {
      size_t index;
      double weight;
    };
    std::vector<Weighted> ordered;
    double total_weight = 0.0;
    double data_weight = 0.0;
    double elf_weight = 0.0;
    // Script mass activates at the interpreter's K; collect (K, weight).
    std::vector<std::pair<int, double>> script_mass;
    for (size_t i = 0; i < spec.packages.size(); ++i) {
      const PackagePlan& plan = spec.packages[i];
      total_weight += plan.target_marginal;
      if (plan.data_only) {
        data_weight += plan.target_marginal;
        continue;
      }
      if (!plan.interpreter_package.empty()) {
        auto it = spec.by_name.find(plan.interpreter_package);
        script_mass.emplace_back(
            spec.packages[it->second].syscall_prefix_rank,
            plan.target_marginal);
        continue;
      }
      elf_weight += plan.target_marginal;
      ordered.push_back(Weighted{i, plan.target_marginal});
    }
    // The paper's Fig 3 curve covers ALL packages. Data packages are mass
    // at N=0 (always supported); script packages are mass at their
    // interpreter's K. Subtract both to get the target curve for the ELF
    // packages whose K we are free to choose:
    //   G_elf(N) = (G_paper(N) * W - data_w - script_w(K<=N)) / elf_w
    std::vector<CurvePoint> curve;
    for (const CurvePoint& point : kFig3Curve) {
      double script_below = 0.0;
      for (const auto& [k, w] : script_mass) {
        if (static_cast<double>(k) <= point.n) {
          script_below += w;
        }
      }
      double target =
          (point.wc * total_weight - data_weight - script_below) /
          std::max(elf_weight, 1e-9);
      target = std::max(0.0, std::min(1.0, target));
      if (!curve.empty() && target < curve.back().wc) {
        target = curve.back().wc;  // keep monotone
      }
      curve.push_back(CurvePoint{point.n, target});
    }

    std::stable_sort(ordered.begin(), ordered.end(),
                     [&spec](const Weighted& a, const Weighted& b) {
                       if (a.weight != b.weight) {
                         return a.weight > b.weight;
                       }
                       return spec.packages[a.index].name <
                              spec.packages[b.index].name;
                     });
    double cumulative = 0.0;
    for (const Weighted& entry : ordered) {
      double u = 1.0 - (cumulative + entry.weight * 0.5) /
                           std::max(elf_weight, 1e-9);
      cumulative += entry.weight;
      PackagePlan& plan = spec.packages[entry.index];
      if (plan.syscall_prefix_rank != 0) {
        continue;  // fixed (core, interpreters)
      }
      plan.syscall_prefix_rank = CurveInverse(curve, u);
    }
    // Guarantee full tier-B coverage for Fig 2's "224 syscalls at 100%".
    auto coreutils = spec.by_name.find("coreutils");
    if (coreutils != spec.by_name.end()) {
      spec.packages[coreutils->second].syscall_prefix_rank = kTierBEnd;
    }
  }

  // ---------------------------------------------------------------------
  // 4. Order tier-B ranks so the anchored syscalls land where the emergent
  //    unweighted curve matches their published values.
  // ---------------------------------------------------------------------
  {
    // Emergent package-count curve: how many packages use rank r?
    // ELF packages: K >= r; script packages: interpreter K >= r.
    size_t countable = 0;
    std::vector<size_t> users(kTierBEnd + 1, 0);
    for (const auto& plan : spec.packages) {
      int k = plan.syscall_prefix_rank;
      if (!plan.interpreter_package.empty()) {
        auto it = spec.by_name.find(plan.interpreter_package);
        k = spec.packages[it->second].syscall_prefix_rank;
      }
      if (plan.data_only) {
        k = 0;
      }
      ++countable;
      for (int r = 1; r <= k && r <= kTierBEnd; ++r) {
        ++users[static_cast<size_t>(r)];
      }
    }
    size_t total_packages = spec.packages.size();
    auto share_at = [&](int rank) {
      return static_cast<double>(users[static_cast<size_t>(rank)]) /
             static_cast<double>(total_packages);
    };
    (void)countable;

    // Reserve ranks 221..224 for the Table 1 libc-only four.
    std::vector<int> rank_slots(tier_b.size(), -1);  // index 0 == rank 41
    auto slot_of_rank = [](int rank) { return rank - kBaseRankCount - 1; };
    std::set<int> placed;
    // Pinned ranks (Table 6 system-evaluation gaps).
    for (const auto& pin : PinnedRanks()) {
      if (pin.rank > kBaseRankCount && pin.rank <= kTierBEnd &&
          std::find(tier_b.begin(), tier_b.end(), pin.syscall_nr) !=
              tier_b.end()) {
        rank_slots[static_cast<size_t>(slot_of_rank(pin.rank))] =
            pin.syscall_nr;
        placed.insert(pin.syscall_nr);
      }
    }
    // The Table 1 libc-only four sit late in tier B (few packages use them,
    // but at least one ubiquitous one does). Their exact ranks drive the
    // UML row of Table 6: UML misses iopl/ioperm and lands at ~93%.
    const char* special4[] = {"clock_settime", "iopl", "ioperm", "signalfd4"};
    int special_rank = 204;
    for (const char* name : special4) {
      auto nr = SyscallNumber(name);
      if (nr.has_value() &&
          std::find(tier_b.begin(), tier_b.end(), *nr) != tier_b.end()) {
        rank_slots[static_cast<size_t>(slot_of_rank(special_rank))] = *nr;
        placed.insert(*nr);
        ++special_rank;
      }
    }

    // Anchored placement: most-demanded (highest unweighted target) first.
    std::vector<UnweightedAnchor> anchors;
    for (const auto& anchor : UnweightedAnchors()) {
      if (!base.contains(anchor.syscall_nr) &&
          !tail.contains(anchor.syscall_nr)) {
        anchors.push_back(anchor);
      }
    }
    std::stable_sort(anchors.begin(), anchors.end(),
                     [](const UnweightedAnchor& a, const UnweightedAnchor& b) {
                       return a.unweighted_importance >
                              b.unweighted_importance;
                     });
    for (const auto& anchor : anchors) {
      int best_rank = -1;
      double best_err = 1e9;
      for (int rank = kBaseRankCount + 1; rank <= kTierBEnd; ++rank) {
        if (rank_slots[static_cast<size_t>(slot_of_rank(rank))] != -1) {
          continue;
        }
        double err =
            std::abs(share_at(rank) - anchor.unweighted_importance);
        if (err < best_err) {
          best_err = err;
          best_rank = rank;
        }
      }
      if (best_rank > 0) {
        rank_slots[static_cast<size_t>(slot_of_rank(best_rank))] =
            anchor.syscall_nr;
        placed.insert(anchor.syscall_nr);
      }
    }

    // Fill remaining slots with the unplaced tier-B syscalls in numeric
    // order.
    size_t cursor = 0;
    for (int nr : tier_b) {
      if (placed.contains(nr)) {
        continue;
      }
      while (cursor < rank_slots.size() && rank_slots[cursor] != -1) {
        ++cursor;
      }
      if (cursor >= rank_slots.size()) {
        return InternalError("tier-B rank slots exhausted");
      }
      rank_slots[cursor] = nr;
    }

    // Final global order: base (sorted), tier-B slots, tail (planned order:
    // anchored first, then fillers, then retired, then unused).
    spec.syscall_rank_order.assign(base.begin(), base.end());
    for (int nr : rank_slots) {
      spec.syscall_rank_order.push_back(nr);
    }
    std::vector<int> tail_order;
    std::set<int> tail_done;
    auto push_tail = [&](int nr) {
      if (tail.contains(nr) && tail_done.insert(nr).second) {
        tail_order.push_back(nr);
      }
    };
    for (const auto& plan : TailSyscallPlans()) {
      push_tail(plan.syscall_nr);
    }
    for (const auto& anchor : UnweightedAnchors()) {
      push_tail(anchor.syscall_nr);
    }
    for (int nr : RetiredButAttemptedSyscalls()) {
      push_tail(nr);
    }
    for (int nr : tail) {
      bool unused = false;
      for (int u : UnusedSyscalls()) {
        unused |= u == nr;
      }
      if (!unused) {
        push_tail(nr);
      }
    }
    for (int nr : UnusedSyscalls()) {
      push_tail(nr);
    }
    for (int nr : tail_order) {
      spec.syscall_rank_order.push_back(nr);
    }
    if (spec.syscall_rank_order.size() != kSyscallCount) {
      return InternalError("rank order must cover all 320 syscalls");
    }
  }

  // ---------------------------------------------------------------------
  // 5. Tail carriers: anchored (<10% unweighted) syscalls go to bottom-band
  //    app packages; unplanned fillers get 1-2 rare carriers.
  // ---------------------------------------------------------------------
  {
    std::set<int> planned;
    for (const auto& plan_entry : TailSyscallPlans()) {
      planned.insert(plan_entry.syscall_nr);
    }
    std::set<int> unused(UnusedSyscalls().begin(), UnusedSyscalls().end());

    // Bottom band: the lower-popularity 55% of app packages.
    std::vector<size_t> bottom;
    for (size_t i = app_indexes.size() * 45 / 100; i < app_indexes.size();
         ++i) {
      bottom.push_back(app_indexes[i]);
    }
    size_t rotor = 0;
    auto assign_carriers = [&](int nr, size_t count) {
      for (size_t i = 0; i < count && !bottom.empty(); ++i) {
        PackagePlan& plan = spec.packages[bottom[rotor % bottom.size()]];
        ++rotor;
        plan.extra_syscalls.push_back(nr);
      }
    };
    // Adds carriers until the combined weighted importance reaches
    // `target`: sum of -ln(1-p) reaches -ln(1-target).
    auto assign_to_importance = [&](int nr, double target) {
      double needed = -std::log(1.0 - std::min(target, 0.95));
      double have = 0.0;
      size_t safety = 0;
      while (have < needed && safety < bottom.size()) {
        PackagePlan& plan = spec.packages[bottom[rotor % bottom.size()]];
        ++rotor;
        ++safety;
        plan.extra_syscalls.push_back(nr);
        have += -std::log(1.0 - plan.target_marginal);
      }
    };

    // Modern/secure variants whose adoption the release knob scales.
    std::set<int> modern_variants;
    for (const auto& pair : VariantPairs()) {
      if (pair.table == VariantTable::kSecureAtomicDir ||
          pair.table == VariantTable::kOldNew ||
          pair.table == VariantTable::kPortability) {
        modern_variants.insert(pair.table == VariantTable::kOldNew ||
                                       pair.table ==
                                           VariantTable::kSecureAtomicDir
                                   ? pair.right_nr
                                   : pair.left_nr);
      }
    }
    for (const auto& anchor : UnweightedAnchors()) {
      if (!tail.contains(anchor.syscall_nr) ||
          planned.contains(anchor.syscall_nr)) {
        continue;
      }
      double adoption = anchor.unweighted_importance;
      if (modern_variants.contains(anchor.syscall_nr)) {
        adoption = std::min(0.5, adoption * options.modern_variant_adoption);
      }
      size_t count = static_cast<size_t>(
          adoption * static_cast<double>(spec.packages.size()) + 0.5);
      assign_carriers(anchor.syscall_nr, std::max<size_t>(1, count));
      planned.insert(anchor.syscall_nr);
    }

    // Remaining tail syscalls (not planned, not anchored, not unused):
    // importance targets declining through Fig 2's 33-syscall band
    // (10%..100%) into the 44-syscall low tail (<10%).
    size_t fill_index = 0;
    size_t fill_total = 0;
    for (int nr : tail) {
      if (!planned.contains(nr) && !unused.contains(nr)) {
        ++fill_total;
      }
    }
    for (int nr : tail) {
      if (planned.contains(nr) || unused.contains(nr)) {
        continue;
      }
      double t = fill_total <= 1
                     ? 0.0
                     : static_cast<double>(fill_index) /
                           static_cast<double>(fill_total - 1);
      // First ~60% of fillers decline 0.85 -> 0.10 (the Fig 2 mid band);
      // the rest decline 0.09 -> 0.005.
      double target = t < 0.60 ? 0.85 * std::pow(0.10 / 0.85, t / 0.60)
                               : 0.09 * std::pow(0.005 / 0.09,
                                                 (t - 0.60) / 0.40);
      assign_to_importance(nr, target);
      ++fill_index;
    }

    // qemu-user: the most demanding binary (paper: 270 syscalls). Give it
    // tail syscalls until its footprint reaches 270 — but not the ones
    // dedicated to other packages by the Tables 1-2 plans, whose published
    // importance must stay attributable to their owners.
    std::set<int> plan_owned;
    for (const auto& plan_entry : TailSyscallPlans()) {
      bool qemu_owns = false;
      for (const auto& owner : plan_entry.packages) {
        qemu_owns |= owner == "qemu-user";
      }
      if (!qemu_owns) {
        plan_owned.insert(plan_entry.syscall_nr);
      }
    }
    auto qemu = spec.by_name.find("qemu-user");
    if (qemu != spec.by_name.end()) {
      PackagePlan& plan = spec.packages[qemu->second];
      plan.syscall_prefix_rank = kTierBEnd;
      std::set<int> have(plan.extra_syscalls.begin(),
                         plan.extra_syscalls.end());
      for (int nr : spec.syscall_rank_order) {
        if (static_cast<int>(kTierBEnd) + static_cast<int>(have.size()) >=
            270) {
          break;
        }
        if (tail.contains(nr) && !unused.contains(nr) &&
            !plan_owned.contains(nr) && have.insert(nr).second) {
          plan.extra_syscalls.push_back(nr);
        }
      }
    }
  }

  // ---------------------------------------------------------------------
  // 6. Vectored opcodes, pseudo-files, libc symbols.
  // ---------------------------------------------------------------------
  {
    // Helper: essentials that can carry extra API usage. libc6 is excluded:
    // its fixed K=40 footprint must stay exactly the startup set, or its
    // ubiquity would poison the whole completeness curve through APT
    // dependency edges.
    std::vector<size_t> essentials;
    for (size_t i = 0; i < spec.packages.size(); ++i) {
      if (spec.packages[i].is_essential && spec.packages[i].name != "libc6") {
        essentials.push_back(i);
      }
    }
    // Nearest-popularity app carrier for a target importance.
    auto carrier_near = [&](double target, size_t salt) -> size_t {
      size_t best = app_indexes[0];
      double best_err = 1e9;
      for (size_t j = 0; j < app_indexes.size(); ++j) {
        // Offset scan start by salt so equal targets spread across apps.
        size_t idx = app_indexes[(j + salt * 131) % app_indexes.size()];
        double err =
            std::abs(spec.packages[idx].target_marginal - target);
        if (err < best_err - 1e-12) {
          best_err = err;
          best = idx;
        }
      }
      return best;
    };

    // ioctl: the 52 universal ops go to essentials (marginal 1.0 makes them
    // 100% important); the declining tail gets popularity-matched carriers.
    const auto& ioctl_ops = IoctlOps();
    for (size_t rank = 0; rank < 52; ++rank) {
      spec.packages[essentials[rank % essentials.size()]]
          .ioctl_ranks.push_back(rank);
    }
    for (size_t rank = 52; rank < ioctl_ops.size(); ++rank) {
      double target = ioctl_ops[rank].importance_target;
      if (target <= 0.0) {
        continue;
      }
      if (target > 0.5) {
        double per = 1.0 - std::sqrt(1.0 - target);
        spec.packages[carrier_near(per, rank)].ioctl_ranks.push_back(rank);
        spec.packages[carrier_near(per, rank * 7 + 1)].ioctl_ranks.push_back(
            rank);
      } else {
        spec.packages[carrier_near(target, rank)].ioctl_ranks.push_back(rank);
      }
    }

    // fcntl: the 11 universal ops ride on essentials; tail carriers after.
    const auto& fcntl_ops = FcntlOps();
    for (size_t rank = 0; rank < 11; ++rank) {
      spec.packages[essentials[rank % essentials.size()]]
          .fcntl_ranks.push_back(rank);
    }
    for (size_t rank = 11; rank < fcntl_ops.size(); ++rank) {
      double target = fcntl_ops[rank].importance_target;
      if (target <= 0.0) {
        continue;
      }
      if (target > 0.5) {
        double per = 1.0 - std::sqrt(1.0 - target);
        spec.packages[carrier_near(per, rank)].fcntl_ranks.push_back(rank);
        spec.packages[carrier_near(per, rank * 5 + 2)].fcntl_ranks.push_back(
            rank);
      } else {
        spec.packages[carrier_near(target, rank)].fcntl_ranks.push_back(rank);
      }
    }

    // prctl: the 9 universal ops ride on essentials; tail carriers after.
    const auto& prctl_ops = PrctlOps();
    for (size_t rank = 0; rank < 9; ++rank) {
      spec.packages[essentials[rank % essentials.size()]]
          .prctl_ranks.push_back(rank);
    }
    for (size_t rank = 9; rank < prctl_ops.size(); ++rank) {
      double target = prctl_ops[rank].importance_target;
      if (target <= 0.0) {
        continue;
      }
      if (target > 0.5) {
        double per = 1.0 - std::sqrt(1.0 - target);
        spec.packages[carrier_near(per, rank)].prctl_ranks.push_back(rank);
        spec.packages[carrier_near(per, rank * 3 + 1)].prctl_ranks.push_back(
            rank);
      } else {
        spec.packages[carrier_near(target, rank)].prctl_ranks.push_back(rank);
      }
    }

    // Pseudo-files: universal paths ride on essentials; the rest get a
    // popularity-matched carrier; plus probabilistic per-app emission from
    // the binary_fraction column.
    const auto& pseudo = PseudoFiles();
    for (size_t rank = 0; rank < pseudo.size(); ++rank) {
      double target = pseudo[rank].importance_target;
      if (target >= 0.99) {
        for (size_t e = 0; e < essentials.size(); ++e) {
          spec.packages[essentials[e]].pseudo_file_ranks.push_back(rank);
        }
      } else if (target > 0.0 && pseudo[rank].path != "/dev/kvm") {
        if (target > 0.5) {
          double per = 1.0 - std::sqrt(1.0 - target);
          spec.packages[carrier_near(per, rank)].pseudo_file_ranks.push_back(
              rank);
          spec.packages[carrier_near(per, rank * 11 + 3)]
              .pseudo_file_ranks.push_back(rank);
        } else {
          spec.packages[carrier_near(target, rank)]
              .pseudo_file_ranks.push_back(rank);
        }
      }
    }
    // Probabilistic hard-coded-path emission across apps (binary counts).
    for (size_t idx : app_indexes) {
      PackagePlan& plan = spec.packages[idx];
      for (size_t rank = 0; rank < pseudo.size(); ++rank) {
        double p_emit = pseudo[rank].binary_fraction *
                        static_cast<double>(plan.exe_count) * 4.0;
        if (prng.NextBool(std::min(0.5, p_emit))) {
          plan.pseudo_file_ranks.push_back(rank);
        }
      }
    }
    // /dev/kvm belongs to qemu alone (§3.4).
    auto qemu = spec.by_name.find("qemu-user");
    if (qemu != spec.by_name.end()) {
      for (size_t rank = 0; rank < pseudo.size(); ++rank) {
        if (pseudo[rank].path == "/dev/kvm") {
          spec.packages[qemu->second].pseudo_file_ranks.push_back(rank);
        }
      }
    }

    // libc symbols. Build band index lists once.
    const auto& libc = LibcUniverse();
    std::vector<size_t> common_band;
    std::vector<size_t> mid_band;
    std::vector<size_t> tail_band;
    std::vector<size_t> ext_band;
    for (size_t i = 0; i < libc.size(); ++i) {
      if (libc[i].wraps_syscall >= 0) {
        continue;  // wrappers are pulled in by the prefix mechanism
      }
      switch (libc[i].band) {
        case LibcBand::kCommonPool:
          common_band.push_back(i);
          break;
        case LibcBand::kMid:
          if (libc[i].gnu_extension) {
            ext_band.push_back(i);
          } else {
            mid_band.push_back(i);
          }
          break;
        case LibcBand::kTail:
          tail_band.push_back(i);
          break;
        default:
          break;
      }
    }
    // Common pool: every ELF package samples ~22; essentials cover the band
    // round-robin so every common symbol has a marginal-1.0 dependent.
    for (size_t i = 0; i < spec.packages.size(); ++i) {
      PackagePlan& plan = spec.packages[i];
      if (plan.data_only || !plan.interpreter_package.empty() ||
          plan.static_binary) {
        continue;
      }
      size_t sample = 18 + prng.NextBelow(10);
      for (size_t s = 0; s < sample; ++s) {
        plan.libc_common_ranks.push_back(
            common_band[prng.NextBelow(common_band.size())]);
      }
    }
    {
      size_t stride = common_band.size() / essentials.size() + 1;
      for (size_t e = 0; e < essentials.size(); ++e) {
        PackagePlan& plan = spec.packages[essentials[e]];
        for (size_t s = 0; s <= stride; ++s) {
          plan.libc_common_ranks.push_back(
              common_band[(e * stride + s) % common_band.size()]);
        }
      }
    }
    // Mid band: realized through a SHARED "exotic pool" of moderately
    // unpopular packages. Concentrating all sub-100% libc usage in one pool
    // keeps the combined installation weight of packages needing any
    // below-90%-importance symbol small — the paper measures that a libc
    // stripped at the 90% threshold still reaches 90.7% weighted
    // completeness (§3.5), which is only possible if rare-API users
    // overlap heavily.
    {
      // The pool shares the low-popularity band with the tail-syscall
      // carriers: the same fringe packages use both the rare syscalls and
      // the rare libc functions, which is what keeps the combined weight
      // of "needs anything below 90% importance" near the paper's 9.3%.
      std::vector<size_t> pool;
      size_t pool_begin = app_indexes.size() * 45 / 100;
      for (size_t i = pool_begin; i < app_indexes.size(); ++i) {
        pool.push_back(app_indexes[i]);
      }
      size_t cursor = 0;
      for (size_t sym : mid_band) {
        double target = libc[sym].importance_target;
        if (target <= 0.0 || pool.empty()) {
          continue;
        }
        // Add pool members until the no-install probability drops to
        // (1 - target): sum of -ln(1-p) must reach -ln(1-target).
        double needed = -std::log(1.0 - std::min(target, 0.97));
        double have = 0.0;
        size_t safety = 0;
        while (have < needed && safety < pool.size()) {
          PackagePlan& plan = spec.packages[pool[cursor % pool.size()]];
          ++cursor;
          ++safety;
          plan.libc_extra_ranks.push_back(sym);
          have += -std::log(1.0 - plan.target_marginal);
        }
      }
    }
    // GNU extensions: used by high-capability packages (K >= 132), which
    // hold ~58% of installation weight (Table 7 normalized gap).
    {
      size_t rotor = 0;
      for (size_t i = 0; i < spec.packages.size(); ++i) {
        PackagePlan& plan = spec.packages[i];
        if (plan.syscall_prefix_rank >= 132 && !plan.data_only &&
            plan.interpreter_package.empty() && !plan.static_binary &&
            !ext_band.empty()) {
          plan.uses_gnu_ext = true;
          plan.libc_extra_ranks.push_back(ext_band[rotor % ext_band.size()]);
          plan.libc_extra_ranks.push_back(
              ext_band[(rotor + 7) % ext_band.size()]);
          ++rotor;
        }
      }
    }
    // Tail band: one bottom-band carrier each.
    {
      std::vector<size_t> bottom;
      for (size_t i = app_indexes.size() / 2; i < app_indexes.size(); ++i) {
        bottom.push_back(app_indexes[i]);
      }
      size_t rotor = 1;
      for (size_t sym : tail_band) {
        if (libc[sym].importance_target <= 0.0) {
          continue;
        }
        spec.packages[bottom[rotor % bottom.size()]]
            .libc_extra_ranks.push_back(sym);
        rotor += 3;
      }
    }
  }

  return spec;
}

}  // namespace lapis::corpus
