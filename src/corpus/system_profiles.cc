#include "src/corpus/system_profiles.h"

#include <set>

#include "src/corpus/api_universe.h"
#include "src/corpus/syscall_table.h"

namespace lapis::corpus {

const std::vector<SystemPlanRow>& LinuxSystemPlans() {
  static const std::vector<SystemPlanRow>* kList = [] {
    auto* list = new std::vector<SystemPlanRow>();
    list->push_back(SystemPlanRow{
        "User-Mode-Linux 3.19",
        284,
        {"name_to_handle_at", "iopl", "ioperm", "perf_event_open"},
        0.931});
    // L4Linux supports everything down to the rare tail; its gaps
    // (quotactl, migrate_pages, kexec_load) fall out of the ranking
    // naturally rather than being forced.
    list->push_back(SystemPlanRow{"L4Linux 4.3", 286, {}, 0.993});
    list->push_back(SystemPlanRow{
        "FreeBSD-emu 10.2",
        225,
        {"inotify_init", "inotify_add_watch", "inotify_rm_watch",
         "inotify_init1", "splice", "umount2", "timerfd_create",
         "timerfd_settime", "timerfd_gettime"},
        0.623});
    list->push_back(SystemPlanRow{
        "Graphene",
        143,
        {"sched_setscheduler", "sched_setparam", "statfs", "utimes",
         "getxattr", "fallocate", "eventfd2"},
        0.0042});
    list->push_back(SystemPlanRow{
        "Graphene (+sched)",
        145,
        {"statfs", "utimes", "getxattr", "fallocate", "eventfd2"},
        0.211});
    return list;
  }();
  return *kList;
}

std::vector<core::ApiId> FullSyscallUniverse() {
  std::vector<core::ApiId> universe;
  universe.reserve(kSyscallCount);
  for (int nr = 0; nr < kSyscallCount; ++nr) {
    universe.push_back(core::SyscallApi(static_cast<uint32_t>(nr)));
  }
  return universe;
}

core::SystemProfile BuildSystemProfile(const core::StudyDataset& dataset,
                                       const SystemPlanRow& plan) {
  core::SystemProfile profile;
  profile.name = plan.name;
  profile.evaluated_kinds = {core::ApiKind::kSyscall};

  std::set<uint32_t> gaps;
  for (const auto& name : plan.gaps) {
    auto nr = SyscallNumber(name);
    if (nr.has_value()) {
      gaps.insert(static_cast<uint32_t>(*nr));
    }
  }
  std::set<uint32_t> skip;  // never-implemented: unused + retired
  for (int nr : UnusedSyscalls()) {
    skip.insert(static_cast<uint32_t>(nr));
  }
  for (int nr : RetiredButAttemptedSyscalls()) {
    skip.insert(static_cast<uint32_t>(nr));
  }

  for (const core::ApiId& api :
       dataset.RankByImportance(core::ApiKind::kSyscall,
                                FullSyscallUniverse())) {
    if (profile.supported.size() >= plan.supported_count) {
      break;
    }
    if (gaps.contains(api.code) || skip.contains(api.code)) {
      continue;
    }
    profile.supported.insert(api);
  }
  return profile;
}

const std::vector<LibcVariantPlanRow>& LibcVariantPlans() {
  static const std::vector<LibcVariantPlanRow>* kList = [] {
    auto* list = new std::vector<LibcVariantPlanRow>();
    list->push_back(LibcVariantPlanRow{
        "eglibc 2.19", true, true, {}, {}, 1.0, 1.0});
    list->push_back(LibcVariantPlanRow{
        "uClibc 0.9.33", false, false, {}, {"__uflow", "__overflow"},
        0.011, 0.419});
    list->push_back(LibcVariantPlanRow{
        "musl 1.1.14", false, false, {}, {"secure_getenv", "random_r"},
        0.011, 0.432});
    list->push_back(LibcVariantPlanRow{
        "dietlibc 0.33", false, false,
        {"memalign", "__cxa_finalize"},
        {"obstack_free", "backtrace", "argp_parse"},
        0.0, 0.0});
    return list;
  }();
  return *kList;
}

core::LibcVariantProfile BuildLibcVariantProfile(
    const LibcVariantPlanRow& plan,
    const core::StringInterner& libc_interner) {
  core::LibcVariantProfile profile;
  profile.name = plan.name;

  std::set<std::string> missing(plan.missing_named.begin(),
                                plan.missing_named.end());
  for (const auto& name : plan.missing_universal) {
    missing.insert(name);
  }

  for (const LibcSymbolSpec& spec : LibcUniverse()) {
    if (missing.contains(spec.name)) {
      continue;
    }
    if (!plan.exports_chk_variants && !spec.chk_base.empty()) {
      continue;
    }
    if (!plan.exports_gnu_extensions && spec.gnu_extension) {
      continue;
    }
    uint32_t id = libc_interner.Find(spec.name);
    if (id == UINT32_MAX) {
      continue;  // symbol never used by any package; irrelevant to WC
    }
    profile.exported_symbols.insert(id);
    if (!spec.chk_base.empty()) {
      // Record the normalization pair even for variants exporting the chk
      // symbol (harmless) so the map is uniform.
      uint32_t base_id = libc_interner.Find(spec.chk_base);
      if (base_id != UINT32_MAX) {
        profile.normalization.emplace(id, base_id);
      }
    }
  }
  // For variants without chk exports, normalization entries must still be
  // present (chk id -> base id), built from the universe.
  if (!plan.exports_chk_variants) {
    for (const LibcSymbolSpec& spec : LibcUniverse()) {
      if (spec.chk_base.empty()) {
        continue;
      }
      uint32_t id = libc_interner.Find(spec.name);
      uint32_t base_id = libc_interner.Find(spec.chk_base);
      if (id != UINT32_MAX && base_id != UINT32_MAX) {
        profile.normalization.emplace(id, base_id);
      }
    }
  }
  return profile;
}

}  // namespace lapis::corpus
