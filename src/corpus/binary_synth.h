// Binary synthesis: turns a DistroSpec plan into real ELF64 x86-64 files.
//
// Emits the four core libraries (libc.so.6 with the full 1,274-symbol export
// surface, ld-linux, libpthread, librt) and per-package executables and
// shared libraries whose machine code realizes exactly the API usage the
// plan prescribes: libc wrapper calls for the syscall prefix, direct
// `syscall` instructions (plus the occasional arithmetic-obfuscated site),
// vectored-opcode call sites, hard-coded pseudo-file path loads, and
// cross-library call chains.

#ifndef LAPIS_SRC_CORPUS_BINARY_SYNTH_H_
#define LAPIS_SRC_CORPUS_BINARY_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/corpus/distro_spec.h"
#include "src/package/repository.h"
#include "src/util/status.h"

namespace lapis::corpus {

struct SynthesizedBinary {
  std::string name;  // file name; equals soname for shared libraries
  bool is_library = false;
  bool is_static = false;
  std::vector<uint8_t> bytes;
};

inline constexpr const char* kLibcSoname = "libc.so.6";
inline constexpr const char* kLdSoname = "ld-linux-x86-64.so.2";
inline constexpr const char* kPthreadSoname = "libpthread.so.0";
inline constexpr const char* kRtSoname = "librt.so.1";

class DistroSynthesizer {
 public:
  explicit DistroSynthesizer(const DistroSpec& spec) : spec_(spec) {}

  // The four core libraries (order: ld.so, libpthread, librt, libc).
  Result<std::vector<SynthesizedBinary>> CoreLibraries() const;

  // All binaries of one package (executables first, then its libraries).
  // Deterministic per package index.
  Result<std::vector<SynthesizedBinary>> PackageBinaries(
      size_t package_index) const;

  // Interpreted programs of one package: shebang'd script files (empty for
  // ELF/data packages). The study classifies these by shebang (Fig 1).
  struct SynthesizedScript {
    std::string name;
    std::vector<uint8_t> contents;
  };
  Result<std::vector<SynthesizedScript>> PackageScripts(
      size_t package_index) const;

  // APT metadata mirror of the spec (no binaries attached).
  Result<package::Repository> BuildRepository() const;

 private:
  const DistroSpec& spec_;
};

}  // namespace lapis::corpus

#endif  // LAPIS_SRC_CORPUS_BINARY_SYNTH_H_
