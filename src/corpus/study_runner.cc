#include "src/corpus/study_runner.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/library_resolver.h"
#include "src/analysis/script_scanner.h"
#include "src/cache/analysis_codec.h"
#include "src/cache/content_hash.h"
#include "src/cache/survey_codec.h"
#include "src/corpus/api_universe.h"
#include "src/corpus/syscall_table.h"
#include "src/elf/elf_reader.h"
#include "src/runtime/parallel.h"

namespace lapis::corpus {

namespace {

using analysis::BinaryAnalysis;
using analysis::BinaryAnalyzer;
using analysis::LibraryResolver;
using cache::AnalysisCodec;
using cache::FootprintCache;

// One synthesized binary after the per-binary analysis fan-out. The raw
// ELF bytes are dropped inside the worker shard; only the analysis
// (everything downstream needs) and the content hash (the cache key for
// derived entries) survive.
struct AnalyzedBinary {
  std::string name;
  bool is_library = false;
  bool is_static = false;
  // FNV-1a of the raw ELF bytes; 0 when no cache is configured.
  uint64_t content_hash = 0;
  bool from_cache = false;
  std::shared_ptr<const BinaryAnalysis> analysis;
};

// Per-run cache context threaded through the pipeline stages. `cache` may be
// null (cache disabled); the fingerprints are computed once per run.
struct CacheContext {
  FootprintCache* cache = nullptr;
  uint64_t analysis_fp = 0;
  uint64_t libreach_fp = 0;
  uint64_t resolution_fp = 0;

  explicit operator bool() const { return cache != nullptr; }
};

// Analyzes one ELF binary, going through the cache when enabled: on a hit
// the serialized BinaryAnalysis is decoded (no parse/sweep/CFG/dataflow);
// on a miss (or an undecodable payload) the analysis runs and is written
// back. Safe on any worker shard.
Result<std::shared_ptr<const BinaryAnalysis>> AnalyzeOrDecode(
    const std::vector<uint8_t>& bytes,
    const analysis::AnalyzerOptions& analyzer, const CacheContext& ctx,
    uint64_t* content_hash, bool* from_cache) {
  *from_cache = false;
  *content_hash = 0;
  if (ctx) {
    *content_hash = cache::HashBytes(bytes);
    auto payload = ctx.cache->Lookup({*content_hash, ctx.analysis_fp});
    if (payload != nullptr) {
      ByteReader reader(*payload);
      auto decoded = AnalysisCodec::Decode(reader);
      if (decoded.ok()) {
        *from_cache = true;
        return std::shared_ptr<const BinaryAnalysis>(
            std::make_shared<BinaryAnalysis>(decoded.take()));
      }
      // Undecodable payload: treat as a miss and recompute.
    }
  }
  LAPIS_ASSIGN_OR_RETURN(auto image, elf::ElfReader::Parse(bytes));
  LAPIS_ASSIGN_OR_RETURN(auto analysis,
                         BinaryAnalyzer::Analyze(image, analyzer));
  auto shared = std::make_shared<BinaryAnalysis>(std::move(analysis));
  if (ctx) {
    ByteWriter writer;
    AnalysisCodec::Encode(*shared, writer);
    ctx.cache->Insert({*content_hash, ctx.analysis_fp}, writer.bytes());
  }
  return std::shared_ptr<const BinaryAnalysis>(std::move(shared));
}

// Shard result of the synthesize+analyze stage for one package.
struct PackageAnalysis {
  Status status;  // first synthesis/parse/analysis error, if any
  std::vector<AnalyzedBinary> binaries;
};

// Shard result of the footprint-resolution stage for one package: one
// resolution per non-library binary, in package binary order.
struct PackageResolution {
  std::vector<LibraryResolver::Resolution> resolutions;
  size_t from_cache = 0;
};

// Shard result of the script-classification stage for one package.
struct PackageScripts {
  Status status;
  std::map<package::ProgramKind, size_t> kinds;
};

// Synthesizes and analyzes every ELF binary of one package. Pure: touches
// only the (const) synthesizer and its own shard — safe on any worker.
PackageAnalysis AnalyzePackage(const DistroSynthesizer& synthesizer,
                               const DistroSpec& spec,
                               const analysis::AnalyzerOptions& analyzer,
                               const CacheContext& ctx, size_t pkg) {
  PackageAnalysis out;
  const PackagePlan& plan = spec.packages[pkg];
  if (plan.data_only || !plan.interpreter_package.empty()) {
    return out;  // scripts and data ship no ELF binaries
  }
  auto binaries = synthesizer.PackageBinaries(pkg);
  if (!binaries.ok()) {
    out.status = binaries.status();
    return out;
  }
  for (auto& binary : binaries.value()) {
    AnalyzedBinary analyzed;
    analyzed.name = std::move(binary.name);
    analyzed.is_library = binary.is_library;
    analyzed.is_static = binary.is_static;
    auto analysis = AnalyzeOrDecode(binary.bytes, analyzer, ctx,
                                    &analyzed.content_hash,
                                    &analyzed.from_cache);
    if (!analysis.ok()) {
      out.status = analysis.status();
      return out;
    }
    analyzed.analysis = analysis.take();
    out.binaries.push_back(std::move(analyzed));
  }
  return out;
}

// Registers one analyzed library with the resolver, restoring its memoized
// per-export reachability from the cache when possible and writing it back
// after a recompute. Called in canonical registration order only.
Status RegisterLibrary(const AnalyzedBinary& binary, const CacheContext& ctx,
                       LibraryResolver& resolver) {
  if (ctx && binary.content_hash != 0) {
    auto payload = ctx.cache->Lookup({binary.content_hash, ctx.libreach_fp});
    if (payload != nullptr) {
      ByteReader reader(*payload);
      auto reach = AnalysisCodec::DecodeExportReach(reader);
      if (reach.ok()) {
        return resolver.AddLibrary(binary.analysis, reach.take());
      }
      // Undecodable payload: recompute below.
    }
  }
  LAPIS_RETURN_IF_ERROR(resolver.AddLibrary(binary.analysis));
  if (ctx && binary.content_hash != 0) {
    const auto* reach = resolver.ExportReachOf(binary.analysis->soname());
    if (reach != nullptr) {
      ByteWriter writer;
      AnalysisCodec::EncodeExportReach(*reach, writer);
      ctx.cache->Insert({binary.content_hash, ctx.libreach_fp},
                        writer.bytes());
    }
  }
  return Status::Ok();
}

// Folds one analyzed binary's counters into the study result — called in
// canonical (package, binary) order only, never from a worker.
void FoldBinaryCounters(const AnalyzedBinary& binary, StudyResult& result) {
  const BinaryAnalysis& analysis = *binary.analysis;
  ++result.analyzed_binaries;
  result.total_syscall_sites += analysis.total_syscall_sites;
  result.unknown_syscall_sites += analysis.unknown_syscall_sites;

  // Site attribution: which binary's own code issues which syscall.
  for (const auto& fn : analysis.functions()) {
    for (int nr : fn.local.syscalls) {
      result.syscall_site_binaries[nr].insert(binary.name);
    }
    result.int80_sites += fn.local.int80_sites;
    result.int80_numbers.insert(fn.local.int80_syscalls.begin(),
                                fn.local.int80_syscalls.end());
  }
}

// Converts a resolved footprint + used exports into dataset ApiIds.
std::vector<core::ApiId> ToApiIds(const LibraryResolver::Resolution& res,
                                  core::StringInterner& path_interner,
                                  core::StringInterner& libc_interner) {
  std::vector<core::ApiId> out;
  for (int nr : res.footprint.syscalls) {
    if (nr >= 0 && nr < kSyscallCount) {
      out.push_back(core::SyscallApi(static_cast<uint32_t>(nr)));
    }
  }
  for (uint32_t op : res.footprint.ioctl_ops) {
    out.push_back(core::IoctlApi(op));
  }
  for (uint32_t op : res.footprint.fcntl_ops) {
    out.push_back(core::FcntlApi(op));
  }
  for (uint32_t op : res.footprint.prctl_ops) {
    out.push_back(core::PrctlApi(op));
  }
  for (const auto& path : res.footprint.pseudo_paths) {
    out.push_back(core::ApiId{core::ApiKind::kPseudoFile,
                              path_interner.Intern(path)});
  }
  auto libc_exports = res.used_exports.find(kLibcSoname);
  if (libc_exports != res.used_exports.end()) {
    // The libc-symbol API surface (§5, Table 7) is the 1274-entry universe.
    // libc also exports the non-universe `syscall` clone that tail-plt
    // wrappers jump through; it carries no importance row and no variant
    // lists it, so it must not enter the dataset as a libc-symbol API.
    static const std::set<std::string>* universe_names = [] {
      auto* names = new std::set<std::string>();
      for (const auto& spec : LibcUniverse()) names->insert(spec.name);
      return names;
    }();
    for (const auto& symbol : libc_exports->second) {
      if (!universe_names->contains(symbol)) continue;
      out.push_back(core::ApiId{core::ApiKind::kLibcFn,
                                libc_interner.Intern(symbol)});
    }
  }
  return out;
}

}  // namespace

StudyOptions SmallStudyOptions() {
  StudyOptions options;
  options.distro.app_package_count = 400;
  options.distro.script_package_count = 60;
  options.distro.data_package_count = 12;
  options.distro.installation_count = 20000;
  return options;
}

Result<StudyResult> RunStudy(const StudyOptions& options) {
  std::unique_ptr<runtime::Executor> owned_executor;
  runtime::Executor* executor = options.executor;
  if (executor == nullptr) {
    owned_executor = std::make_unique<runtime::Executor>(options.jobs);
    executor = owned_executor.get();
  }

  // ---- Incremental cache (optional) ----
  std::unique_ptr<FootprintCache> owned_cache;
  FootprintCache* cache_ptr = options.cache;
  if (cache_ptr == nullptr && !options.cache_dir.empty()) {
    LAPIS_ASSIGN_OR_RETURN(owned_cache,
                           FootprintCache::Open(options.cache_dir));
    cache_ptr = owned_cache.get();
  }
  CacheContext ctx;
  ctx.cache = cache_ptr;
  if (ctx) {
    ctx.analysis_fp = cache::ConfigFingerprint(options.analyzer,
                                               cache::EntryKind::kAnalysis);
    ctx.libreach_fp = cache::ConfigFingerprint(options.analyzer,
                                               cache::EntryKind::kLibReach);
    ctx.resolution_fp = cache::ConfigFingerprint(
        options.analyzer, cache::EntryKind::kResolution);
  }
  const cache::CacheStats cache_start =
      ctx ? ctx.cache->stats() : cache::CacheStats{};

  StudyResult result;
  result.jobs_used = executor->thread_count();
  result.analyzer_options = options.analyzer;
  result.cache_enabled = static_cast<bool>(ctx);
  runtime::PipelineStats& stats = result.pipeline_stats;

  {
    runtime::StageTimer timer(&stats, "plan");
    LAPIS_ASSIGN_OR_RETURN(result.spec, BuildDistroSpec(options.distro));
    timer.AddItems(result.spec.packages.size());
  }
  DistroSynthesizer synthesizer(result.spec);
  LAPIS_ASSIGN_OR_RETURN(result.repository, synthesizer.BuildRepository());

  // Intern the full universes upfront so unused entries exist with
  // zero importance (Fig 7's unused tail; Table 7 profiles).
  for (const auto& spec : LibcUniverse()) {
    result.libc_interner.Intern(spec.name);
  }
  for (const auto& file : PseudoFiles()) {
    result.path_interner.Intern(file.path);
  }

  // ---- Core libraries: analyze shards in parallel, register in order ----
  // The link fingerprint folds every registered library's content hash in
  // registration order; it keys per-executable resolutions, which are only
  // valid against an identical library set.
  LibraryResolver resolver(executor);
  uint64_t link_fp = ctx.resolution_fp;
  {
    runtime::StageTimer timer(&stats, "core-libs");
    LAPIS_ASSIGN_OR_RETURN(auto core_libs, synthesizer.CoreLibraries());
    struct CoreShard {
      Status status;
      AnalyzedBinary binary;
    };
    auto shards = runtime::ParallelMap(
        executor, core_libs.size(), [&core_libs, &options, &ctx](size_t i) {
          CoreShard shard;
          shard.binary.name = core_libs[i].name;
          shard.binary.is_library = true;
          auto analysis =
              AnalyzeOrDecode(core_libs[i].bytes, options.analyzer, ctx,
                              &shard.binary.content_hash,
                              &shard.binary.from_cache);
          if (!analysis.ok()) {
            shard.status = analysis.status();
            return shard;
          }
          shard.binary.analysis = analysis.take();
          return shard;
        });
    for (size_t i = 0; i < shards.size(); ++i) {
      LAPIS_RETURN_IF_ERROR(shards[i].status);
      const AnalyzedBinary& analyzed = shards[i].binary;
      FoldBinaryCounters(analyzed, result);
      if (analyzed.from_cache) {
        ++result.analyses_from_cache;
      }
      LAPIS_RETURN_IF_ERROR(RegisterLibrary(analyzed, ctx, resolver));
      link_fp = cache::HashU64(analyzed.content_hash, link_fp);
      result.binary_stats.elf_shared_libraries += 1;
      if (analyzed.name == kLibcSoname) {
        // Record measured per-symbol sizes for the §3.5 analysis.
        for (const auto& fn : analyzed.analysis->functions()) {
          uint32_t id = result.libc_interner.Find(fn.name);
          if (id != UINT32_MAX) {
            result.libc_symbol_sizes[id] = fn.size;
          }
        }
      }
    }
    timer.AddItems(core_libs.size());
  }

  // ---- Packages, stage 1: synthesize + analyze on worker shards ----
  const size_t package_count = result.spec.packages.size();
  std::vector<PackageAnalysis> analyzed;
  {
    runtime::StageTimer timer(&stats, "synthesize+analyze");
    analyzed = runtime::ParallelMap(
        executor, package_count,
        [&synthesizer, &result, &options, &ctx](size_t pkg) {
          return AnalyzePackage(synthesizer, result.spec, options.analyzer,
                                ctx, pkg);
        });
    for (const auto& shard : analyzed) {
      timer.AddItems(shard.binaries.size());
    }
  }

  // ---- Packages, stage 2: deterministic merge — counters + library
  // registration in canonical package order ----
  {
    runtime::StageTimer timer(&stats, "register");
    for (size_t pkg = 0; pkg < package_count; ++pkg) {
      LAPIS_RETURN_IF_ERROR(analyzed[pkg].status);
      for (const auto& binary : analyzed[pkg].binaries) {
        FoldBinaryCounters(binary, result);
        if (binary.from_cache) {
          ++result.analyses_from_cache;
        }
        if (binary.is_library) {
          LAPIS_RETURN_IF_ERROR(RegisterLibrary(binary, ctx, resolver));
          link_fp = cache::HashU64(binary.content_hash, link_fp);
          result.binary_stats.elf_shared_libraries += 1;
        } else if (binary.is_static) {
          result.binary_stats.elf_static += 1;
        } else {
          result.binary_stats.elf_executables += 1;
        }
      }
    }
    timer.AddItems(package_count);
  }

  // ---- Packages, stage 3: resolve executable footprints in parallel.
  // The resolver is fully built and read-only now, so its const fixpoint
  // expansion is safe from any shard. ----
  std::vector<PackageResolution> resolved;
  {
    runtime::StageTimer timer(&stats, "resolve");
    resolved = runtime::ParallelMap(
        executor, package_count,
        [&analyzed, &resolver, &ctx, link_fp](size_t pkg) {
          PackageResolution out;
          for (const auto& binary : analyzed[pkg].binaries) {
            if (binary.is_library) {
              continue;
            }
            if (ctx && binary.content_hash != 0) {
              auto payload =
                  ctx.cache->Lookup({binary.content_hash, link_fp});
              if (payload != nullptr) {
                ByteReader reader(*payload);
                auto decoded = AnalysisCodec::DecodeResolution(reader);
                if (decoded.ok()) {
                  out.resolutions.push_back(decoded.take());
                  ++out.from_cache;
                  continue;
                }
              }
            }
            out.resolutions.push_back(
                resolver.ResolveExecutable(*binary.analysis));
            if (ctx && binary.content_hash != 0) {
              ByteWriter writer;
              AnalysisCodec::EncodeResolution(out.resolutions.back(),
                                              writer);
              ctx.cache->Insert({binary.content_hash, link_fp},
                                writer.bytes());
            }
          }
          return out;
        });
    for (const auto& shard : resolved) {
      timer.AddItems(shard.resolutions.size());
      result.resolutions_from_cache += shard.from_cache;
    }
  }

  // ---- Packages, stage 4: deterministic merge into footprints (the
  // interners mutate, so this stays in canonical order) ----
  std::vector<std::vector<core::ApiId>> footprints(package_count);
  std::vector<std::set<int>> recovered_syscalls(package_count);
  {
    runtime::StageTimer timer(&stats, "join");
    for (size_t pkg = 0; pkg < package_count; ++pkg) {
      std::set<std::string> package_paths;
      for (const auto& resolution : resolved[pkg].resolutions) {
        auto ids = ToApiIds(resolution, result.path_interner,
                            result.libc_interner);
        footprints[pkg].insert(footprints[pkg].end(), ids.begin(),
                               ids.end());
        recovered_syscalls[pkg].insert(resolution.footprint.syscalls.begin(),
                                       resolution.footprint.syscalls.end());
        for (const auto& path : resolution.footprint.pseudo_paths) {
          package_paths.insert(path);
        }
      }
      for (const auto& path : package_paths) {
        ++result.pseudo_path_binary_counts[path];
      }
    }
    timer.AddItems(package_count);
  }
  analyzed.clear();
  resolved.clear();

  // Script packages inherit the interpreter's footprint (§2.3
  // over-approximation); data packages stay empty. The Fig 1 breakdown is
  // measured by scanning the synthesized script files' shebangs, not by
  // trusting the plan.
  {
    runtime::StageTimer timer(&stats, "scripts");
    auto script_shards = runtime::ParallelMap(
        executor, package_count, [&synthesizer, &result](size_t pkg) {
          PackageScripts out;
          if (result.spec.packages[pkg].script_count <= 0) {
            return out;
          }
          auto scripts = synthesizer.PackageScripts(pkg);
          if (!scripts.ok()) {
            out.status = scripts.status();
            return out;
          }
          for (const auto& script : scripts.value()) {
            auto info = analysis::ClassifyScript(script.contents);
            if (info.ok()) {
              ++out.kinds[info.value().kind];
            }
          }
          return out;
        });
    for (size_t pkg = 0; pkg < package_count; ++pkg) {
      LAPIS_RETURN_IF_ERROR(script_shards[pkg].status);
      for (const auto& [kind, count] : script_shards[pkg].kinds) {
        result.binary_stats.script_programs[kind] += count;
        timer.AddItems(count);
      }
    }
  }
  for (size_t pkg = 0; pkg < package_count; ++pkg) {
    const PackagePlan& plan = result.spec.packages[pkg];
    if (plan.interpreter_package.empty()) {
      continue;
    }
    auto it = result.spec.by_name.find(plan.interpreter_package);
    if (it != result.spec.by_name.end()) {
      footprints[pkg] = footprints[it->second];
      recovered_syscalls[pkg] = recovered_syscalls[it->second];
    }
  }

  // ---- Ground-truth verification ----
  if (options.verify_ground_truth) {
    runtime::StageTimer timer(&stats, "ground-truth");
    auto mismatches = runtime::ParallelMap(
        executor, package_count,
        [&result, &recovered_syscalls](size_t pkg) -> uint8_t {
          return result.spec.ExpectedSyscalls(pkg) !=
                         recovered_syscalls[pkg]
                     ? 1
                     : 0;
        });
    for (uint8_t mismatch : mismatches) {
      result.ground_truth_mismatches += mismatch;
    }
    timer.AddItems(package_count);
  }

  // ---- Differential soundness audit (optional) ----
  // Replays every executable in the DynamicTracer and compares against the
  // static footprint. The auditor shares the study's fully-built resolver,
  // so the expensive per-export reachability is not recomputed; binaries
  // are re-synthesized because the analysis stage dropped their bytes.
  if (options.audit) {
    runtime::StageTimer timer(&stats, "audit");
    analysis::FootprintAuditor auditor(&resolver, options.analyzer,
                                       executor);

    struct AuditBinary {
      std::string name;
      bool is_library = false;
      std::shared_ptr<const elf::ElfImage> image;
    };
    struct AuditShard {
      Status status;
      std::vector<AuditBinary> binaries;
    };

    // Core libraries: the tracer follows PLT calls into them.
    {
      LAPIS_ASSIGN_OR_RETURN(auto core_libs, synthesizer.CoreLibraries());
      auto core_shards = runtime::ParallelMap(
          executor, core_libs.size(), [&core_libs](size_t i) {
            AuditShard shard;
            auto image = elf::ElfReader::Parse(core_libs[i].bytes);
            if (!image.ok()) {
              shard.status = image.status();
              return shard;
            }
            AuditBinary binary;
            binary.name = core_libs[i].name;
            binary.is_library = true;
            binary.image =
                std::make_shared<const elf::ElfImage>(image.take());
            shard.binaries.push_back(std::move(binary));
            return shard;
          });
      for (auto& shard : core_shards) {
        LAPIS_RETURN_IF_ERROR(shard.status);
        for (auto& binary : shard.binaries) {
          LAPIS_RETURN_IF_ERROR(auditor.AddLibrary(binary.image));
        }
      }
    }

    // Re-synthesize + parse package binaries on worker shards (the image
    // copies the bytes, so the synth output dies inside the shard).
    auto audit_inputs = runtime::ParallelMap(
        executor, package_count, [&synthesizer, &result](size_t pkg) {
          AuditShard shard;
          const PackagePlan& plan = result.spec.packages[pkg];
          if (plan.data_only || !plan.interpreter_package.empty()) {
            return shard;
          }
          auto binaries = synthesizer.PackageBinaries(pkg);
          if (!binaries.ok()) {
            shard.status = binaries.status();
            return shard;
          }
          for (auto& synthesized : binaries.value()) {
            auto image = elf::ElfReader::Parse(synthesized.bytes);
            if (!image.ok()) {
              shard.status = image.status();
              return shard;
            }
            AuditBinary binary;
            binary.name = std::move(synthesized.name);
            binary.is_library = synthesized.is_library;
            binary.image =
                std::make_shared<const elf::ElfImage>(image.take());
            shard.binaries.push_back(std::move(binary));
          }
          return shard;
        });
    // Package libraries register in canonical order before any replay.
    for (auto& shard : audit_inputs) {
      LAPIS_RETURN_IF_ERROR(shard.status);
      for (auto& binary : shard.binaries) {
        if (binary.is_library) {
          LAPIS_RETURN_IF_ERROR(auditor.AddLibrary(binary.image));
        }
      }
    }

    // Replay executables in parallel; fold in canonical (package, binary)
    // order so the report is identical at every worker count.
    struct AuditOutcome {
      Status status;
      std::vector<analysis::BinaryAuditResult> results;
    };
    auto audit_outcomes = runtime::ParallelMap(
        executor, package_count, [&audit_inputs, &auditor](size_t pkg) {
          AuditOutcome out;
          for (const auto& binary : audit_inputs[pkg].binaries) {
            if (binary.is_library) {
              continue;
            }
            auto audited =
                auditor.AuditExecutable(*binary.image, binary.name);
            if (!audited.ok()) {
              out.status = audited.status();
              return out;
            }
            out.results.push_back(audited.take());
          }
          return out;
        });
    analysis::AuditReport report;
    for (auto& outcome : audit_outcomes) {
      LAPIS_RETURN_IF_ERROR(outcome.status);
      for (auto& binary_result : outcome.results) {
        report.Fold(std::move(binary_result));
      }
    }
    timer.AddItems(report.executables_audited);
    result.audit = std::move(report);
  }

  // ---- Popularity-contest survey ----
  {
    runtime::StageTimer timer(&stats, "popcon");
    std::vector<double> marginals;
    marginals.reserve(package_count);
    for (const auto& plan : result.spec.packages) {
      marginals.push_back(plan.target_marginal);
    }
    package::PopconOptions popcon;
    popcon.installation_count = options.distro.installation_count;
    popcon.report_rate = options.distro.popcon_report_rate;
    popcon.retain_samples = options.popcon_retain_samples;
    popcon.profile_count = options.popcon_profile_count;
    popcon.profile_boost = options.popcon_profile_boost;
    popcon.seed = options.distro.seed ^ 0x9e3779b97f4a7c15ULL;
    // The survey is a pure function of (repository, marginals, options):
    // cacheable by input hash. Its fingerprint deliberately excludes the
    // analyzer switches — flipping use_dataflow must not invalidate it.
    cache::CacheKey survey_key;
    bool survey_restored = false;
    if (ctx) {
      survey_key.content =
          cache::HashSurveyInputs(result.repository, marginals, popcon);
      survey_key.fingerprint =
          cache::BaseFingerprint(cache::EntryKind::kSurvey);
      auto payload = ctx.cache->Lookup(survey_key);
      if (payload != nullptr) {
        ByteReader reader(*payload);
        auto decoded = cache::SurveyCodec::Decode(reader);
        if (decoded.ok()) {
          result.survey = decoded.take();
          survey_restored = true;
        }
      }
    }
    if (!survey_restored) {
      LAPIS_ASSIGN_OR_RETURN(result.survey,
                             package::PopconSimulator::Run(
                                 result.repository, marginals, popcon));
      if (ctx) {
        ByteWriter writer;
        cache::SurveyCodec::Encode(result.survey, writer);
        ctx.cache->Insert(survey_key, writer.bytes());
      }
    }
    timer.AddItems(options.distro.installation_count);
  }

  // ---- Dataset assembly ----
  {
    runtime::StageTimer timer(&stats, "dataset");
    result.dataset = std::make_unique<core::StudyDataset>(
        package_count, result.survey.total_reporting);
    for (size_t pkg = 0; pkg < package_count; ++pkg) {
      const PackagePlan& plan = result.spec.packages[pkg];
      LAPIS_RETURN_IF_ERROR(
          result.dataset->SetPackageName(static_cast<uint32_t>(pkg),
                                         plan.name));
      LAPIS_RETURN_IF_ERROR(result.dataset->SetInstallCount(
          static_cast<uint32_t>(pkg), result.survey.install_counts[pkg]));
      LAPIS_RETURN_IF_ERROR(result.dataset->SetFootprint(
          static_cast<uint32_t>(pkg), footprints[pkg]));
      const package::Package& pkg_meta =
          result.repository.package(static_cast<package::PackageId>(pkg));
      std::vector<core::PackageId> deps(pkg_meta.depends.begin(),
                                        pkg_meta.depends.end());
      if (pkg_meta.interpreter != package::kInvalidPackage) {
        deps.push_back(pkg_meta.interpreter);
      }
      LAPIS_RETURN_IF_ERROR(result.dataset->SetDependencies(
          static_cast<uint32_t>(pkg), std::move(deps)));
    }
    LAPIS_RETURN_IF_ERROR(result.dataset->Finalize());
    timer.AddItems(package_count);
  }

  // ---- Audit evidence ----
  // Lift the audit's merged observed footprint to ApiIds now that the path
  // interner is final. Paths the replay touched but no static footprint
  // claims (impossible while the auditor is sound) have no interned id and
  // are dropped — they cannot appear in any package's footprint anyway.
  if (result.audit.has_value()) {
    const analysis::Footprint& seen = result.audit->observed_union;
    result.evidence_kinds_mask = static_cast<uint8_t>(
        (1u << static_cast<uint8_t>(core::ApiKind::kSyscall)) |
        (1u << static_cast<uint8_t>(core::ApiKind::kIoctlOp)) |
        (1u << static_cast<uint8_t>(core::ApiKind::kFcntlOp)) |
        (1u << static_cast<uint8_t>(core::ApiKind::kPrctlOp)) |
        (1u << static_cast<uint8_t>(core::ApiKind::kPseudoFile)));
    for (int nr : seen.syscalls) {
      result.evidence_observed.insert(
          core::SyscallApi(static_cast<uint32_t>(nr)));
    }
    for (uint32_t op : seen.ioctl_ops) {
      result.evidence_observed.insert(core::IoctlApi(op));
    }
    for (uint32_t op : seen.fcntl_ops) {
      result.evidence_observed.insert(core::FcntlApi(op));
    }
    for (uint32_t op : seen.prctl_ops) {
      result.evidence_observed.insert(core::PrctlApi(op));
    }
    for (const std::string& path : seen.pseudo_paths) {
      uint32_t id = result.path_interner.Find(path);
      if (id != UINT32_MAX) {
        result.evidence_observed.insert(
            core::ApiId{core::ApiKind::kPseudoFile, id});
      }
    }
  }

  result.executor_stats = executor->stats();
  if (ctx) {
    result.cache_stats = ctx.cache->stats() - cache_start;
  }
  return result;
}

}  // namespace lapis::corpus
