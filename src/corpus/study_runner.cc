#include "src/corpus/study_runner.h"

#include <algorithm>

#include "src/analysis/binary_analyzer.h"
#include "src/analysis/library_resolver.h"
#include "src/analysis/script_scanner.h"
#include "src/corpus/api_universe.h"
#include "src/corpus/syscall_table.h"
#include "src/elf/elf_reader.h"

namespace lapis::corpus {

namespace {

using analysis::BinaryAnalysis;
using analysis::BinaryAnalyzer;
using analysis::LibraryResolver;

// Analyzes one synthesized binary and registers libraries with the resolver.
Result<std::shared_ptr<const BinaryAnalysis>> AnalyzeBinary(
    const SynthesizedBinary& binary, LibraryResolver& resolver,
    StudyResult& result) {
  LAPIS_ASSIGN_OR_RETURN(auto image, elf::ElfReader::Parse(binary.bytes));
  LAPIS_ASSIGN_OR_RETURN(auto analysis, BinaryAnalyzer::Analyze(image));
  auto shared = std::make_shared<BinaryAnalysis>(std::move(analysis));
  ++result.analyzed_binaries;
  result.total_syscall_sites += shared->total_syscall_sites;
  result.unknown_syscall_sites += shared->unknown_syscall_sites;

  // Site attribution: which binary's own code issues which syscall.
  for (const auto& fn : shared->functions()) {
    for (int nr : fn.local.syscalls) {
      result.syscall_site_binaries[nr].insert(binary.name);
    }
    result.int80_sites += fn.local.int80_sites;
    result.int80_numbers.insert(fn.local.int80_syscalls.begin(),
                                fn.local.int80_syscalls.end());
  }
  if (binary.is_library) {
    LAPIS_RETURN_IF_ERROR(resolver.AddLibrary(shared));
  }
  return std::shared_ptr<const BinaryAnalysis>(shared);
}

// Converts a resolved footprint + used exports into dataset ApiIds.
std::vector<core::ApiId> ToApiIds(const LibraryResolver::Resolution& res,
                                  core::StringInterner& path_interner,
                                  core::StringInterner& libc_interner) {
  std::vector<core::ApiId> out;
  for (int nr : res.footprint.syscalls) {
    if (nr >= 0 && nr < kSyscallCount) {
      out.push_back(core::SyscallApi(static_cast<uint32_t>(nr)));
    }
  }
  for (uint32_t op : res.footprint.ioctl_ops) {
    out.push_back(core::IoctlApi(op));
  }
  for (uint32_t op : res.footprint.fcntl_ops) {
    out.push_back(core::FcntlApi(op));
  }
  for (uint32_t op : res.footprint.prctl_ops) {
    out.push_back(core::PrctlApi(op));
  }
  for (const auto& path : res.footprint.pseudo_paths) {
    out.push_back(core::ApiId{core::ApiKind::kPseudoFile,
                              path_interner.Intern(path)});
  }
  auto libc_exports = res.used_exports.find(kLibcSoname);
  if (libc_exports != res.used_exports.end()) {
    for (const auto& symbol : libc_exports->second) {
      out.push_back(core::ApiId{core::ApiKind::kLibcFn,
                                libc_interner.Intern(symbol)});
    }
  }
  return out;
}

}  // namespace

StudyOptions SmallStudyOptions() {
  StudyOptions options;
  options.distro.app_package_count = 400;
  options.distro.script_package_count = 60;
  options.distro.data_package_count = 12;
  options.distro.installation_count = 20000;
  return options;
}

Result<StudyResult> RunStudy(const StudyOptions& options) {
  StudyResult result;
  LAPIS_ASSIGN_OR_RETURN(result.spec, BuildDistroSpec(options.distro));
  DistroSynthesizer synthesizer(result.spec);
  LAPIS_ASSIGN_OR_RETURN(result.repository, synthesizer.BuildRepository());

  // Intern the full universes upfront so unused entries exist with
  // zero importance (Fig 7's unused tail; Table 7 profiles).
  for (const auto& spec : LibcUniverse()) {
    result.libc_interner.Intern(spec.name);
  }
  for (const auto& file : PseudoFiles()) {
    result.path_interner.Intern(file.path);
  }

  // ---- Core libraries ----
  LibraryResolver resolver;
  LAPIS_ASSIGN_OR_RETURN(auto core_libs, synthesizer.CoreLibraries());
  for (const auto& binary : core_libs) {
    LAPIS_ASSIGN_OR_RETURN(auto analysis,
                           AnalyzeBinary(binary, resolver, result));
    result.binary_stats.elf_shared_libraries += 1;
    if (binary.name == kLibcSoname) {
      // Record measured per-symbol sizes for the §3.5 analysis.
      for (const auto& fn : analysis->functions()) {
        uint32_t id = result.libc_interner.Find(fn.name);
        if (id != UINT32_MAX) {
          result.libc_symbol_sizes[id] = fn.size;
        }
      }
    }
  }

  // ---- Packages: synthesize, analyze, resolve ----
  const size_t package_count = result.spec.packages.size();
  std::vector<std::vector<core::ApiId>> footprints(package_count);
  std::vector<std::set<int>> recovered_syscalls(package_count);

  for (size_t pkg = 0; pkg < package_count; ++pkg) {
    const PackagePlan& plan = result.spec.packages[pkg];
    if (plan.data_only || !plan.interpreter_package.empty()) {
      continue;  // handled below
    }
    LAPIS_ASSIGN_OR_RETURN(auto binaries, synthesizer.PackageBinaries(pkg));
    std::set<std::string> package_paths;
    for (const auto& binary : binaries) {
      LAPIS_ASSIGN_OR_RETURN(auto analysis,
                             AnalyzeBinary(binary, resolver, result));
      if (binary.is_library) {
        result.binary_stats.elf_shared_libraries += 1;
        continue;
      }
      if (binary.is_static) {
        result.binary_stats.elf_static += 1;
      } else {
        result.binary_stats.elf_executables += 1;
      }
      LibraryResolver::Resolution resolution =
          resolver.ResolveExecutable(*analysis);
      auto ids = ToApiIds(resolution, result.path_interner,
                          result.libc_interner);
      footprints[pkg].insert(footprints[pkg].end(), ids.begin(), ids.end());
      recovered_syscalls[pkg].insert(resolution.footprint.syscalls.begin(),
                                     resolution.footprint.syscalls.end());
      for (const auto& path : resolution.footprint.pseudo_paths) {
        package_paths.insert(path);
      }
    }
    for (const auto& path : package_paths) {
      ++result.pseudo_path_binary_counts[path];
    }
  }

  // Script packages inherit the interpreter's footprint (§2.3
  // over-approximation); data packages stay empty. The Fig 1 breakdown is
  // measured by scanning the synthesized script files' shebangs, not by
  // trusting the plan.
  for (size_t pkg = 0; pkg < package_count; ++pkg) {
    const PackagePlan& plan = result.spec.packages[pkg];
    if (plan.script_count > 0) {
      LAPIS_ASSIGN_OR_RETURN(auto scripts,
                             synthesizer.PackageScripts(pkg));
      for (const auto& script : scripts) {
        auto info = analysis::ClassifyScript(script.contents);
        if (info.ok()) {
          ++result.binary_stats.script_programs[info.value().kind];
        }
      }
    }
    if (plan.interpreter_package.empty()) {
      continue;
    }
    auto it = result.spec.by_name.find(plan.interpreter_package);
    if (it != result.spec.by_name.end()) {
      footprints[pkg] = footprints[it->second];
      recovered_syscalls[pkg] = recovered_syscalls[it->second];
    }
  }

  // ---- Ground-truth verification ----
  if (options.verify_ground_truth) {
    for (size_t pkg = 0; pkg < package_count; ++pkg) {
      std::set<int> expected = result.spec.ExpectedSyscalls(pkg);
      if (expected != recovered_syscalls[pkg]) {
        ++result.ground_truth_mismatches;
      }
    }
  }

  // ---- Popularity-contest survey ----
  std::vector<double> marginals;
  marginals.reserve(package_count);
  for (const auto& plan : result.spec.packages) {
    marginals.push_back(plan.target_marginal);
  }
  package::PopconOptions popcon;
  popcon.installation_count = options.distro.installation_count;
  popcon.report_rate = options.distro.popcon_report_rate;
  popcon.retain_samples = options.popcon_retain_samples;
  popcon.profile_count = options.popcon_profile_count;
  popcon.profile_boost = options.popcon_profile_boost;
  popcon.seed = options.distro.seed ^ 0x9e3779b97f4a7c15ULL;
  LAPIS_ASSIGN_OR_RETURN(
      result.survey,
      package::PopconSimulator::Run(result.repository, marginals, popcon));

  // ---- Dataset assembly ----
  result.dataset = std::make_unique<core::StudyDataset>(
      package_count, result.survey.total_reporting);
  for (size_t pkg = 0; pkg < package_count; ++pkg) {
    const PackagePlan& plan = result.spec.packages[pkg];
    LAPIS_RETURN_IF_ERROR(
        result.dataset->SetPackageName(static_cast<uint32_t>(pkg),
                                       plan.name));
    LAPIS_RETURN_IF_ERROR(result.dataset->SetInstallCount(
        static_cast<uint32_t>(pkg), result.survey.install_counts[pkg]));
    LAPIS_RETURN_IF_ERROR(result.dataset->SetFootprint(
        static_cast<uint32_t>(pkg), footprints[pkg]));
    const package::Package& pkg_meta =
        result.repository.package(static_cast<package::PackageId>(pkg));
    std::vector<core::PackageId> deps(pkg_meta.depends.begin(),
                                      pkg_meta.depends.end());
    if (pkg_meta.interpreter != package::kInvalidPackage) {
      deps.push_back(pkg_meta.interpreter);
    }
    LAPIS_RETURN_IF_ERROR(result.dataset->SetDependencies(
        static_cast<uint32_t>(pkg), std::move(deps)));
  }
  LAPIS_RETURN_IF_ERROR(result.dataset->Finalize());
  return result;
}

}  // namespace lapis::corpus
