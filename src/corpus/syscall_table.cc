#include "src/corpus/syscall_table.h"

#include <map>

namespace lapis::corpus {

namespace {

// x86-64 Linux 3.19 (arch/x86/syscalls/syscall_64.tbl), numbers 0..319.
constexpr std::string_view kNames[kSyscallCount] = {
    /*   0 */ "read",
    /*   1 */ "write",
    /*   2 */ "open",
    /*   3 */ "close",
    /*   4 */ "stat",
    /*   5 */ "fstat",
    /*   6 */ "lstat",
    /*   7 */ "poll",
    /*   8 */ "lseek",
    /*   9 */ "mmap",
    /*  10 */ "mprotect",
    /*  11 */ "munmap",
    /*  12 */ "brk",
    /*  13 */ "rt_sigaction",
    /*  14 */ "rt_sigprocmask",
    /*  15 */ "rt_sigreturn",
    /*  16 */ "ioctl",
    /*  17 */ "pread64",
    /*  18 */ "pwrite64",
    /*  19 */ "readv",
    /*  20 */ "writev",
    /*  21 */ "access",
    /*  22 */ "pipe",
    /*  23 */ "select",
    /*  24 */ "sched_yield",
    /*  25 */ "mremap",
    /*  26 */ "msync",
    /*  27 */ "mincore",
    /*  28 */ "madvise",
    /*  29 */ "shmget",
    /*  30 */ "shmat",
    /*  31 */ "shmctl",
    /*  32 */ "dup",
    /*  33 */ "dup2",
    /*  34 */ "pause",
    /*  35 */ "nanosleep",
    /*  36 */ "getitimer",
    /*  37 */ "alarm",
    /*  38 */ "setitimer",
    /*  39 */ "getpid",
    /*  40 */ "sendfile",
    /*  41 */ "socket",
    /*  42 */ "connect",
    /*  43 */ "accept",
    /*  44 */ "sendto",
    /*  45 */ "recvfrom",
    /*  46 */ "sendmsg",
    /*  47 */ "recvmsg",
    /*  48 */ "shutdown",
    /*  49 */ "bind",
    /*  50 */ "listen",
    /*  51 */ "getsockname",
    /*  52 */ "getpeername",
    /*  53 */ "socketpair",
    /*  54 */ "setsockopt",
    /*  55 */ "getsockopt",
    /*  56 */ "clone",
    /*  57 */ "fork",
    /*  58 */ "vfork",
    /*  59 */ "execve",
    /*  60 */ "exit",
    /*  61 */ "wait4",
    /*  62 */ "kill",
    /*  63 */ "uname",
    /*  64 */ "semget",
    /*  65 */ "semop",
    /*  66 */ "semctl",
    /*  67 */ "shmdt",
    /*  68 */ "msgget",
    /*  69 */ "msgsnd",
    /*  70 */ "msgrcv",
    /*  71 */ "msgctl",
    /*  72 */ "fcntl",
    /*  73 */ "flock",
    /*  74 */ "fsync",
    /*  75 */ "fdatasync",
    /*  76 */ "truncate",
    /*  77 */ "ftruncate",
    /*  78 */ "getdents",
    /*  79 */ "getcwd",
    /*  80 */ "chdir",
    /*  81 */ "fchdir",
    /*  82 */ "rename",
    /*  83 */ "mkdir",
    /*  84 */ "rmdir",
    /*  85 */ "creat",
    /*  86 */ "link",
    /*  87 */ "unlink",
    /*  88 */ "symlink",
    /*  89 */ "readlink",
    /*  90 */ "chmod",
    /*  91 */ "fchmod",
    /*  92 */ "chown",
    /*  93 */ "fchown",
    /*  94 */ "lchown",
    /*  95 */ "umask",
    /*  96 */ "gettimeofday",
    /*  97 */ "getrlimit",
    /*  98 */ "getrusage",
    /*  99 */ "sysinfo",
    /* 100 */ "times",
    /* 101 */ "ptrace",
    /* 102 */ "getuid",
    /* 103 */ "syslog",
    /* 104 */ "getgid",
    /* 105 */ "setuid",
    /* 106 */ "setgid",
    /* 107 */ "geteuid",
    /* 108 */ "getegid",
    /* 109 */ "setpgid",
    /* 110 */ "getppid",
    /* 111 */ "getpgrp",
    /* 112 */ "setsid",
    /* 113 */ "setreuid",
    /* 114 */ "setregid",
    /* 115 */ "getgroups",
    /* 116 */ "setgroups",
    /* 117 */ "setresuid",
    /* 118 */ "getresuid",
    /* 119 */ "setresgid",
    /* 120 */ "getresgid",
    /* 121 */ "getpgid",
    /* 122 */ "setfsuid",
    /* 123 */ "setfsgid",
    /* 124 */ "getsid",
    /* 125 */ "capget",
    /* 126 */ "capset",
    /* 127 */ "rt_sigpending",
    /* 128 */ "rt_sigtimedwait",
    /* 129 */ "rt_sigqueueinfo",
    /* 130 */ "rt_sigsuspend",
    /* 131 */ "sigaltstack",
    /* 132 */ "utime",
    /* 133 */ "mknod",
    /* 134 */ "uselib",
    /* 135 */ "personality",
    /* 136 */ "ustat",
    /* 137 */ "statfs",
    /* 138 */ "fstatfs",
    /* 139 */ "sysfs",
    /* 140 */ "getpriority",
    /* 141 */ "setpriority",
    /* 142 */ "sched_setparam",
    /* 143 */ "sched_getparam",
    /* 144 */ "sched_setscheduler",
    /* 145 */ "sched_getscheduler",
    /* 146 */ "sched_get_priority_max",
    /* 147 */ "sched_get_priority_min",
    /* 148 */ "sched_rr_get_interval",
    /* 149 */ "mlock",
    /* 150 */ "munlock",
    /* 151 */ "mlockall",
    /* 152 */ "munlockall",
    /* 153 */ "vhangup",
    /* 154 */ "modify_ldt",
    /* 155 */ "pivot_root",
    /* 156 */ "_sysctl",
    /* 157 */ "prctl",
    /* 158 */ "arch_prctl",
    /* 159 */ "adjtimex",
    /* 160 */ "setrlimit",
    /* 161 */ "chroot",
    /* 162 */ "sync",
    /* 163 */ "acct",
    /* 164 */ "settimeofday",
    /* 165 */ "mount",
    /* 166 */ "umount2",
    /* 167 */ "swapon",
    /* 168 */ "swapoff",
    /* 169 */ "reboot",
    /* 170 */ "sethostname",
    /* 171 */ "setdomainname",
    /* 172 */ "iopl",
    /* 173 */ "ioperm",
    /* 174 */ "create_module",
    /* 175 */ "init_module",
    /* 176 */ "delete_module",
    /* 177 */ "get_kernel_syms",
    /* 178 */ "query_module",
    /* 179 */ "quotactl",
    /* 180 */ "nfsservctl",
    /* 181 */ "getpmsg",
    /* 182 */ "putpmsg",
    /* 183 */ "afs_syscall",
    /* 184 */ "tuxcall",
    /* 185 */ "security",
    /* 186 */ "gettid",
    /* 187 */ "readahead",
    /* 188 */ "setxattr",
    /* 189 */ "lsetxattr",
    /* 190 */ "fsetxattr",
    /* 191 */ "getxattr",
    /* 192 */ "lgetxattr",
    /* 193 */ "fgetxattr",
    /* 194 */ "listxattr",
    /* 195 */ "llistxattr",
    /* 196 */ "flistxattr",
    /* 197 */ "removexattr",
    /* 198 */ "lremovexattr",
    /* 199 */ "fremovexattr",
    /* 200 */ "tkill",
    /* 201 */ "time",
    /* 202 */ "futex",
    /* 203 */ "sched_setaffinity",
    /* 204 */ "sched_getaffinity",
    /* 205 */ "set_thread_area",
    /* 206 */ "io_setup",
    /* 207 */ "io_destroy",
    /* 208 */ "io_getevents",
    /* 209 */ "io_submit",
    /* 210 */ "io_cancel",
    /* 211 */ "get_thread_area",
    /* 212 */ "lookup_dcookie",
    /* 213 */ "epoll_create",
    /* 214 */ "epoll_ctl_old",
    /* 215 */ "epoll_wait_old",
    /* 216 */ "remap_file_pages",
    /* 217 */ "getdents64",
    /* 218 */ "set_tid_address",
    /* 219 */ "restart_syscall",
    /* 220 */ "semtimedop",
    /* 221 */ "fadvise64",
    /* 222 */ "timer_create",
    /* 223 */ "timer_settime",
    /* 224 */ "timer_gettime",
    /* 225 */ "timer_getoverrun",
    /* 226 */ "timer_delete",
    /* 227 */ "clock_settime",
    /* 228 */ "clock_gettime",
    /* 229 */ "clock_getres",
    /* 230 */ "clock_nanosleep",
    /* 231 */ "exit_group",
    /* 232 */ "epoll_wait",
    /* 233 */ "epoll_ctl",
    /* 234 */ "tgkill",
    /* 235 */ "utimes",
    /* 236 */ "vserver",
    /* 237 */ "mbind",
    /* 238 */ "set_mempolicy",
    /* 239 */ "get_mempolicy",
    /* 240 */ "mq_open",
    /* 241 */ "mq_unlink",
    /* 242 */ "mq_timedsend",
    /* 243 */ "mq_timedreceive",
    /* 244 */ "mq_notify",
    /* 245 */ "mq_getsetattr",
    /* 246 */ "kexec_load",
    /* 247 */ "waitid",
    /* 248 */ "add_key",
    /* 249 */ "request_key",
    /* 250 */ "keyctl",
    /* 251 */ "ioprio_set",
    /* 252 */ "ioprio_get",
    /* 253 */ "inotify_init",
    /* 254 */ "inotify_add_watch",
    /* 255 */ "inotify_rm_watch",
    /* 256 */ "migrate_pages",
    /* 257 */ "openat",
    /* 258 */ "mkdirat",
    /* 259 */ "mknodat",
    /* 260 */ "fchownat",
    /* 261 */ "futimesat",
    /* 262 */ "newfstatat",
    /* 263 */ "unlinkat",
    /* 264 */ "renameat",
    /* 265 */ "linkat",
    /* 266 */ "symlinkat",
    /* 267 */ "readlinkat",
    /* 268 */ "fchmodat",
    /* 269 */ "faccessat",
    /* 270 */ "pselect6",
    /* 271 */ "ppoll",
    /* 272 */ "unshare",
    /* 273 */ "set_robust_list",
    /* 274 */ "get_robust_list",
    /* 275 */ "splice",
    /* 276 */ "tee",
    /* 277 */ "sync_file_range",
    /* 278 */ "vmsplice",
    /* 279 */ "move_pages",
    /* 280 */ "utimensat",
    /* 281 */ "epoll_pwait",
    /* 282 */ "signalfd",
    /* 283 */ "timerfd_create",
    /* 284 */ "eventfd",
    /* 285 */ "fallocate",
    /* 286 */ "timerfd_settime",
    /* 287 */ "timerfd_gettime",
    /* 288 */ "accept4",
    /* 289 */ "signalfd4",
    /* 290 */ "eventfd2",
    /* 291 */ "epoll_create1",
    /* 292 */ "dup3",
    /* 293 */ "pipe2",
    /* 294 */ "inotify_init1",
    /* 295 */ "preadv",
    /* 296 */ "pwritev",
    /* 297 */ "rt_tgsigqueueinfo",
    /* 298 */ "perf_event_open",
    /* 299 */ "recvmmsg",
    /* 300 */ "fanotify_init",
    /* 301 */ "fanotify_mark",
    /* 302 */ "prlimit64",
    /* 303 */ "name_to_handle_at",
    /* 304 */ "open_by_handle_at",
    /* 305 */ "clock_adjtime",
    /* 306 */ "syncfs",
    /* 307 */ "sendmmsg",
    /* 308 */ "setns",
    /* 309 */ "getcpu",
    /* 310 */ "process_vm_readv",
    /* 311 */ "process_vm_writev",
    /* 312 */ "kcmp",
    /* 313 */ "finit_module",
    /* 314 */ "sched_setattr",
    /* 315 */ "sched_getattr",
    /* 316 */ "renameat2",
    /* 317 */ "seccomp",
    /* 318 */ "getrandom",
    /* 319 */ "memfd_create",
};

int Nr(std::string_view name) {
  for (int i = 0; i < kSyscallCount; ++i) {
    if (kNames[i] == name) {
      return i;
    }
  }
  return -1;
}

}  // namespace

std::string_view SyscallName(int nr) {
  if (nr < 0 || nr >= kSyscallCount) {
    return {};
  }
  return kNames[nr];
}

std::optional<int> SyscallNumber(std::string_view name) {
  static const std::map<std::string_view, int>* kIndex = [] {
    auto* index = new std::map<std::string_view, int>();
    for (int i = 0; i < kSyscallCount; ++i) {
      index->emplace(kNames[i], i);
    }
    return index;
  }();
  auto it = kIndex->find(name);
  if (it == kIndex->end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string I386SyscallName(int nr) {
  // Curated subset of arch/x86/syscalls/syscall_32.tbl: the calls legacy
  // 32-bit code actually issues through int $0x80.
  switch (nr) {
    case 1: return "exit";
    case 2: return "fork";
    case 3: return "read";
    case 4: return "write";
    case 5: return "open";
    case 6: return "close";
    case 7: return "waitpid";
    case 9: return "link";
    case 10: return "unlink";
    case 11: return "execve";
    case 12: return "chdir";
    case 13: return "time";
    case 15: return "chmod";
    case 19: return "lseek";
    case 20: return "getpid";
    case 21: return "mount";
    case 23: return "setuid";
    case 24: return "getuid";
    case 33: return "access";
    case 37: return "kill";
    case 38: return "rename";
    case 39: return "mkdir";
    case 40: return "rmdir";
    case 41: return "dup";
    case 42: return "pipe";
    case 45: return "brk";
    case 54: return "ioctl";
    case 55: return "fcntl";
    case 63: return "dup2";
    case 78: return "gettimeofday";
    case 85: return "readlink";
    case 90: return "mmap";
    case 91: return "munmap";
    case 102: return "socketcall";
    case 106: return "stat";
    case 107: return "lstat";
    case 108: return "fstat";
    case 114: return "wait4";
    case 119: return "sigreturn";
    case 120: return "clone";
    case 122: return "uname";
    case 125: return "mprotect";
    case 140: return "_llseek";
    case 141: return "getdents";
    case 142: return "select";
    case 146: return "writev";
    case 145: return "readv";
    case 162: return "nanosleep";
    case 173: return "rt_sigreturn";
    case 174: return "rt_sigaction";
    case 175: return "rt_sigprocmask";
    case 192: return "mmap2";
    case 195: return "stat64";
    case 197: return "fstat64";
    case 221: return "fcntl64";
    case 224: return "gettid";
    case 240: return "futex";
    case 252: return "exit_group";
    case 295: return "openat";
    default:
      return "i386:" + std::to_string(nr);
  }
}

const std::vector<int>& StartupSyscalls() {
  static const std::vector<int>* kList = [] {
    // 40 syscalls spanning the libc/ld.so/libpthread/librt initialization
    // paths. Every dynamically-linked package footprint includes these.
    const char* names[] = {
        "read",          "write",        "open",       "close",
        "stat",          "fstat",        "lseek",      "mmap",
        "mprotect",      "munmap",       "mremap",     "madvise",
        "brk",           "rt_sigaction", "rt_sigprocmask",
        "rt_sigreturn",  "exit",         "exit_group", "getpid",
        "gettid",        "getuid",       "getgid",     "setresuid",
        "setresgid",     "clone",        "vfork",      "execve",
        "kill",          "getrlimit",    "getcwd",     "getdents",
        "newfstatat",    "futex",        "set_tid_address",
        "set_robust_list", "arch_prctl", "dup2",       "fcntl",
        "writev",        "tgkill",
    };
    auto* list = new std::vector<int>();
    for (const char* name : names) {
      list->push_back(Nr(name));
    }
    return list;
  }();
  return *kList;
}

const std::vector<StartupAttribution>& StartupAttributions() {
  static const std::vector<StartupAttribution>* kList = [] {
    auto* list = new std::vector<StartupAttribution>();
    auto add = [list](const char* name, std::vector<CoreLib> libs) {
      list->push_back(StartupAttribution{Nr(name), std::move(libs)});
    };
    // Paper Table 5 layout: ld.so-only, libc-only, shared, pthread, librt.
    add("arch_prctl", {CoreLib::kLdSo});
    add("mprotect", {CoreLib::kLibc, CoreLib::kLdSo});
    add("open", {CoreLib::kLdSo});
    add("stat", {CoreLib::kLdSo});
    add("fstat", {CoreLib::kLdSo});
    add("close", {CoreLib::kLibc, CoreLib::kLdSo});
    add("read", {CoreLib::kLibc, CoreLib::kLdSo});
    add("lseek", {CoreLib::kLibc, CoreLib::kLdSo});
    add("mmap", {CoreLib::kLibc, CoreLib::kLdSo});
    add("munmap", {CoreLib::kLibc, CoreLib::kLdSo});
    add("mremap", {CoreLib::kLibc, CoreLib::kLdSo});
    add("madvise", {CoreLib::kLibc, CoreLib::kLdSo});
    add("getdents", {CoreLib::kLibc, CoreLib::kLdSo});
    add("getcwd", {CoreLib::kLibc, CoreLib::kLdSo});
    add("brk", {CoreLib::kLdSo});
    add("exit", {CoreLib::kLibc, CoreLib::kLdSo});
    add("exit_group", {CoreLib::kLibc, CoreLib::kLdSo});
    add("getpid", {CoreLib::kLibc, CoreLib::kLdSo});
    add("newfstatat", {CoreLib::kLibc, CoreLib::kLdSo});
    add("write", {CoreLib::kLibc});
    add("clone", {CoreLib::kLibc});
    add("vfork", {CoreLib::kLibc});
    add("execve", {CoreLib::kLibc});
    add("getuid", {CoreLib::kLibc});
    add("getgid", {CoreLib::kLibc});
    add("setresuid", {CoreLib::kLibc});
    add("setresgid", {CoreLib::kLibc});
    add("gettid", {CoreLib::kLibc});
    add("kill", {CoreLib::kLibc});
    add("getrlimit", {CoreLib::kLibc});
    add("dup2", {CoreLib::kLibc});
    add("fcntl", {CoreLib::kLibc});
    add("writev", {CoreLib::kLibc});
    add("tgkill", {CoreLib::kLibc});
    add("rt_sigaction", {CoreLib::kLibc});
    add("rt_sigreturn", {CoreLib::kLibpthread});
    add("set_robust_list", {CoreLib::kLibpthread});
    add("set_tid_address", {CoreLib::kLibpthread});
    add("rt_sigprocmask", {CoreLib::kLibrt});
    add("futex", {CoreLib::kLibc, CoreLib::kLdSo, CoreLib::kLibpthread});
    return list;
  }();
  return *kList;
}

const std::vector<int>& UnusedSyscalls() {
  static const std::vector<int>* kList = [] {
    // Table 3: 10 retired without entry points + 8 defined-but-unused.
    const char* names[] = {
        "set_thread_area", "get_thread_area", "tuxcall",
        "create_module",   "get_kernel_syms", "query_module",
        "getpmsg",         "putpmsg",         "epoll_ctl_old",
        "epoll_wait_old",  "sysfs",           "rt_tgsigqueueinfo",
        "get_robust_list", "remap_file_pages", "mq_notify",
        "lookup_dcookie",  "restart_syscall", "move_pages",
    };
    auto* list = new std::vector<int>();
    for (const char* name : names) {
      list->push_back(Nr(name));
    }
    return list;
  }();
  return *kList;
}

const std::vector<int>& RetiredButAttemptedSyscalls() {
  static const std::vector<int>* kList = [] {
    const char* names[] = {"uselib", "nfsservctl", "afs_syscall", "vserver",
                           "security"};
    auto* list = new std::vector<int>();
    for (const char* name : names) {
      list->push_back(Nr(name));
    }
    return list;
  }();
  return *kList;
}

const std::vector<UnweightedAnchor>& UnweightedAnchors() {
  static const std::vector<UnweightedAnchor>* kList = [] {
    auto* list = new std::vector<UnweightedAnchor>();
    auto add = [list](const char* name, double pct) {
      list->push_back(UnweightedAnchor{Nr(name), pct / 100.0});
    };
    // Table 8 (set*id / get*id and atomic directory ops).
    add("setuid", 15.67);
    add("setreuid", 1.88);
    add("setgid", 12.07);
    add("setregid", 1.24);
    add("geteuid", 55.15);
    add("getresuid", 36.19);
    add("getegid", 48.87);
    add("getresgid", 36.14);
    add("access", 74.24);
    add("faccessat", 0.63);
    add("mkdir", 52.07);
    add("mkdirat", 0.34);
    add("rename", 43.18);
    add("renameat", 0.30);
    add("readlink", 46.38);
    add("readlinkat", 0.50);
    add("chown", 24.59);
    add("fchownat", 0.23);
    add("chmod", 39.80);
    add("fchmodat", 0.13);
    // Table 9 (old vs new).
    add("getdents64", 0.08);
    add("utime", 8.57);
    add("utimes", 17.90);
    add("fork", 0.07);
    add("tkill", 0.51);
    add("wait4", 60.56);
    add("waitid", 0.24);
    // Table 10 (Linux-specific vs portable).
    add("preadv", 0.15);
    add("readv", 62.23);
    add("pwritev", 0.16);
    add("accept4", 0.93);
    add("accept", 29.35);
    add("ppoll", 3.90);
    add("poll", 71.07);
    add("recvmmsg", 0.11);
    add("recvmsg", 68.82);
    add("sendmmsg", 5.17);
    add("sendmsg", 42.49);
    add("pipe2", 40.33);
    add("pipe", 50.33);
    // Table 11 (powerful vs simple).
    add("pread64", 27.23);
    add("dup3", 8.72);
    add("dup", 66.64);
    add("recvfrom", 53.80);
    add("sendto", 71.71);
    add("select", 61.53);
    add("pselect6", 4.13);
    add("chdir", 44.61);
    add("fchdir", 2.20);
    return list;
  }();
  return *kList;
}

const std::vector<VariantPair>& VariantPairs() {
  static const std::vector<VariantPair>* kList = [] {
    auto* list = new std::vector<VariantPair>();
    auto add = [list](VariantTable table, const char* left,
                      const char* right) {
      list->push_back(VariantPair{table, left, Nr(left), right, Nr(right)});
    };
    add(VariantTable::kSecureIds, "setuid", "setresuid");
    add(VariantTable::kSecureIds, "setreuid", "setresuid");
    add(VariantTable::kSecureIds, "setgid", "setresgid");
    add(VariantTable::kSecureIds, "setregid", "setresgid");
    add(VariantTable::kSecureIds, "getuid", "getresuid");
    add(VariantTable::kSecureIds, "geteuid", "getresuid");
    add(VariantTable::kSecureIds, "getgid", "getresgid");
    add(VariantTable::kSecureIds, "getegid", "getresgid");
    add(VariantTable::kSecureAtomicDir, "access", "faccessat");
    add(VariantTable::kSecureAtomicDir, "mkdir", "mkdirat");
    add(VariantTable::kSecureAtomicDir, "rename", "renameat");
    add(VariantTable::kSecureAtomicDir, "readlink", "readlinkat");
    add(VariantTable::kSecureAtomicDir, "chown", "fchownat");
    add(VariantTable::kSecureAtomicDir, "chmod", "fchmodat");
    add(VariantTable::kOldNew, "getdents", "getdents64");
    add(VariantTable::kOldNew, "utime", "utimes");
    add(VariantTable::kOldNew, "fork", "clone");
    add(VariantTable::kOldNew, "vfork", "clone");
    add(VariantTable::kOldNew, "tkill", "tgkill");
    add(VariantTable::kOldNew, "wait4", "waitid");
    add(VariantTable::kPortability, "preadv", "readv");
    add(VariantTable::kPortability, "pwritev", "writev");
    add(VariantTable::kPortability, "accept4", "accept");
    add(VariantTable::kPortability, "ppoll", "poll");
    add(VariantTable::kPortability, "recvmmsg", "recvmsg");
    add(VariantTable::kPortability, "sendmmsg", "sendmsg");
    add(VariantTable::kPortability, "pipe2", "pipe");
    add(VariantTable::kPowerSimplicity, "pread64", "read");
    add(VariantTable::kPowerSimplicity, "dup3", "dup2");
    add(VariantTable::kPowerSimplicity, "recvfrom", "recvmsg");
    add(VariantTable::kPowerSimplicity, "sendto", "sendmsg");
    add(VariantTable::kPowerSimplicity, "pselect6", "select");
    add(VariantTable::kPowerSimplicity, "fchdir", "chdir");
    return list;
  }();
  return *kList;
}

const std::vector<PinnedRank>& PinnedRanks() {
  static const std::vector<PinnedRank>* kList = [] {
    auto* list = new std::vector<PinnedRank>();
    auto add = [list](const char* name, int rank) {
      list->push_back(PinnedRank{Nr(name), rank});
    };
    // Graphene (Table 6): the missing scheduling calls gate nearly every
    // package; adding them recovers ~21% via the next block of gaps.
    add("sched_setscheduler", 41);
    add("sched_getscheduler", 42);
    add("sched_setparam", 43);
    // The vectored calls are needed by any package touching a TTY or
    // process flags; they sit right after the startup block (§3.3).
    add("ioctl", 44);
    add("prctl", 45);
    add("statfs", 118);
    add("getxattr", 121);
    add("fallocate", 124);
    add("eventfd2", 127);
    // FreeBSD emulation layer (62.3%): gaps cluster near the 50-60% band.
    add("inotify_init", 146);
    add("umount2", 149);
    add("splice", 152);
    add("timerfd_create", 155);
    add("inotify_add_watch", 158);
    add("timerfd_settime", 161);
    return list;
  }();
  return *kList;
}

const std::vector<TailSyscallPlan>& TailSyscallPlans() {
  static const std::vector<TailSyscallPlan>* kList = [] {
    auto* list = new std::vector<TailSyscallPlan>();
    auto add = [list](const char* name, double pct,
                      std::vector<std::string> pkgs, bool via_library) {
      list->push_back(
          TailSyscallPlan{Nr(name), pct / 100.0, std::move(pkgs),
                          via_library});
    };
    // Table 1: syscalls only used via particular libraries.
    add("mbind", 36.0, {"libnuma", "libopenblas"}, true);
    add("add_key", 27.2, {"libkeyutils"}, true);
    add("keyctl", 27.2, {"pam-keyutil"}, true);
    add("request_key", 14.4, {"keyutils-clients"}, true);
    add("preadv", 11.7, {"libc-extras"}, true);
    add("pwritev", 11.7, {"libc-extras"}, true);
    // Table 2: syscalls dominated by particular packages.
    add("seccomp", 1.0, {"coop-computing-tools"}, false);
    add("sched_setattr", 1.0, {"coop-computing-tools"}, false);
    add("sched_getattr", 1.0, {"coop-computing-tools"}, false);
    add("kexec_load", 1.0, {"kexec-tools"}, false);
    add("clock_adjtime", 4.0, {"systemd-tools"}, false);
    add("renameat2", 4.0, {"systemd-tools", "coop-computing-tools"}, false);
    add("mq_timedsend", 1.0, {"qemu-user"}, false);
    add("mq_getsetattr", 1.0, {"qemu-user"}, false);
    add("io_getevents", 1.0, {"ioping", "zfs-fuse"}, false);
    add("getcpu", 4.0, {"valgrind", "rt-tests"}, false);
    // L4Linux's Table 6 gaps: rare enough that missing them costs little.
    add("quotactl", 0.5, {"quota-tools"}, false);
    add("migrate_pages", 0.4, {"numactl-tools"}, false);
    // §3.1 prose: retired but still attempted.
    add("nfsservctl", 7.0, {"nfs-utils"}, false);
    add("uselib", 2.0, {"libc-legacy-tools"}, false);
    add("afs_syscall", 1.0, {"openafs-client"}, false);
    add("vserver", 1.0, {"util-vserver"}, false);
    add("security", 1.0, {"selinux-legacy"}, false);
    // POSIX vs System V message queues (§3.1: POSIX mq lower importance).
    add("mq_open", 6.0, {"mqueue-tools", "qemu-user"}, false);
    add("mq_unlink", 6.0, {"mqueue-tools"}, false);
    add("mq_timedreceive", 3.0, {"qemu-user"}, false);
    // epoll_pwait 3% (§3.1).
    add("epoll_pwait", 3.0, {"nginx-lite", "libevent-extra"}, false);
    return list;
  }();
  return *kList;
}

}  // namespace lapis::corpus
