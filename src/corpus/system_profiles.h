// Supported-API profiles of real Linux systems / emulation layers (Table 6)
// and libc variants (Table 7).
//
// The paper obtained these lists from each system's sources; we encode the
// same construction: each system supports the N most important syscalls it
// could reasonably have, minus the specific gaps the paper names.

#ifndef LAPIS_SRC_CORPUS_SYSTEM_PROFILES_H_
#define LAPIS_SRC_CORPUS_SYSTEM_PROFILES_H_

#include <string>
#include <vector>

#include "src/core/api_id.h"
#include "src/core/dataset.h"
#include "src/core/libc_analysis.h"
#include "src/core/systems.h"

namespace lapis::corpus {

struct SystemPlanRow {
  std::string name;
  size_t supported_count;                // paper's "#" column
  std::vector<std::string> gaps;         // syscalls the system lacks
  double paper_completeness;             // paper's W.Comp. column
};

// The four systems of Table 6 plus Graphene¶ (after adding the scheduling
// calls).
const std::vector<SystemPlanRow>& LinuxSystemPlans();

// Builds a concrete SystemProfile for a plan against a dataset: the
// `supported_count` highest-importance syscalls, skipping the named gaps
// and anything unused/retired.
core::SystemProfile BuildSystemProfile(const core::StudyDataset& dataset,
                                       const SystemPlanRow& plan);

// All 320 syscalls as ApiIds (ranking universe; includes unused ones).
std::vector<core::ApiId> FullSyscallUniverse();

struct LibcVariantPlanRow {
  std::string name;
  bool exports_chk_variants;   // fortify (__*_chk) symbols present
  bool exports_gnu_extensions; // GNU-only APIs present
  // Universal symbols this variant is missing entirely (dietlibc's
  // memalign / __cxa_finalize problem).
  std::vector<std::string> missing_universal;
  // Extra named gaps (uClibc's __uflow/__overflow, musl's secure_getenv...).
  std::vector<std::string> missing_named;
  double paper_completeness;
  double paper_normalized_completeness;
};

const std::vector<LibcVariantPlanRow>& LibcVariantPlans();

// Builds a Table 7 profile against the study's libc universe interner.
core::LibcVariantProfile BuildLibcVariantProfile(
    const LibcVariantPlanRow& plan, const core::StringInterner& libc_interner);

}  // namespace lapis::corpus

#endif  // LAPIS_SRC_CORPUS_SYSTEM_PROFILES_H_
