// Study-dataset persistence.
//
// The paper publishes its dataset for further analysis; lapis does the
// equivalent with a compact binary artifact holding the joined study data
// (per-package footprints, survey counts, dependency edges, interner
// tables). A saved artifact reloads in milliseconds, so downstream tools
// can query metrics without regenerating and re-analyzing the corpus.

#ifndef LAPIS_SRC_CORPUS_DATASET_IO_H_
#define LAPIS_SRC_CORPUS_DATASET_IO_H_

#include <memory>
#include <string>

#include "src/core/api_id.h"
#include "src/core/dataset.h"
#include "src/corpus/study_runner.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace lapis::corpus {

// On-disk study-artifact format version (bump when SerializeStudy's layout
// changes); tools print it so operators can tell stale artifacts apart.
// v2 appends the audit-evidence section (kinds mask + observed ApiIds);
// v1 artifacts still load, with empty evidence.
inline constexpr uint32_t kStudyArtifactVersion = 2;

struct StudyArtifact {
  std::unique_ptr<core::StudyDataset> dataset;  // finalized
  core::StringInterner path_interner;
  core::StringInterner libc_interner;

  // Dynamic-replay audit evidence (StudyResult::evidence_*). Zero mask =
  // the study ran without --audit (or the artifact predates v2).
  uint8_t evidence_kinds_mask = 0;
  std::set<core::ApiId> evidence_observed;
};

// Serializes the dataset portion of a study (footprints, survey counts,
// dependencies, interners) into `writer`.
Status SerializeStudy(const StudyResult& study, ByteWriter& writer);

// Reverse of SerializeStudy; the returned dataset is finalized.
Result<StudyArtifact> DeserializeStudy(ByteReader& reader);

// File convenience wrappers.
Status SaveStudy(const StudyResult& study, const std::string& path);
Result<StudyArtifact> LoadStudy(const std::string& path);

}  // namespace lapis::corpus

#endif  // LAPIS_SRC_CORPUS_DATASET_IO_H_
