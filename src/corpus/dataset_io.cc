#include "src/corpus/dataset_io.h"

#include <cstdio>

#include "src/util/io.h"

namespace lapis::corpus {

namespace {

constexpr uint32_t kMagic = 0x4c505354;  // "LPST"
constexpr uint32_t kVersion = kStudyArtifactVersion;

void SerializeInterner(const core::StringInterner& interner,
                       ByteWriter& writer) {
  writer.PutU32(static_cast<uint32_t>(interner.size()));
  for (uint32_t id = 0; id < interner.size(); ++id) {
    writer.PutLengthPrefixedString(interner.NameOf(id));
  }
}

Result<core::StringInterner> DeserializeInterner(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  core::StringInterner interner;
  for (uint32_t id = 0; id < count; ++id) {
    LAPIS_ASSIGN_OR_RETURN(std::string name,
                           reader.ReadLengthPrefixedString());
    if (interner.Intern(name) != id) {
      return CorruptDataError("duplicate interned string: " + name);
    }
  }
  return interner;
}

}  // namespace

Status SerializeStudy(const StudyResult& study, ByteWriter& writer) {
  if (study.dataset == nullptr || !study.dataset->finalized()) {
    return FailedPreconditionError("study has no finalized dataset");
  }
  const core::StudyDataset& dataset = *study.dataset;
  writer.PutU32(kMagic);
  writer.PutU32(kVersion);
  writer.PutU64(dataset.total_installations());
  writer.PutU32(static_cast<uint32_t>(dataset.package_count()));
  for (uint32_t pkg = 0; pkg < dataset.package_count(); ++pkg) {
    writer.PutLengthPrefixedString(dataset.PackageName(pkg));
    writer.PutU64(dataset.InstallCount(pkg));
    const auto& deps = dataset.DirectDependencies(pkg);
    writer.PutU32(static_cast<uint32_t>(deps.size()));
    for (core::PackageId dep : deps) {
      writer.PutU32(dep);
    }
    const auto& footprint = dataset.Footprint(pkg);
    writer.PutU32(static_cast<uint32_t>(footprint.size()));
    for (const core::ApiId& api : footprint) {
      writer.PutI64(api.Encode());
    }
  }
  SerializeInterner(study.path_interner, writer);
  SerializeInterner(study.libc_interner, writer);
  // v2: audit-evidence section.
  writer.PutU8(study.evidence_kinds_mask);
  writer.PutU32(static_cast<uint32_t>(study.evidence_observed.size()));
  for (const core::ApiId& api : study.evidence_observed) {
    writer.PutI64(api.Encode());
  }
  return Status::Ok();
}

Result<StudyArtifact> DeserializeStudy(ByteReader& reader) {
  LAPIS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return CorruptDataError("bad study artifact magic");
  }
  LAPIS_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != 1 && version != kVersion) {
    return UnimplementedError("unsupported artifact version " +
                              std::to_string(version));
  }
  LAPIS_ASSIGN_OR_RETURN(uint64_t installations, reader.ReadU64());
  LAPIS_ASSIGN_OR_RETURN(uint32_t package_count, reader.ReadU32());

  StudyArtifact artifact;
  artifact.dataset =
      std::make_unique<core::StudyDataset>(package_count, installations);
  for (uint32_t pkg = 0; pkg < package_count; ++pkg) {
    LAPIS_ASSIGN_OR_RETURN(std::string name,
                           reader.ReadLengthPrefixedString());
    LAPIS_RETURN_IF_ERROR(artifact.dataset->SetPackageName(pkg, name));
    LAPIS_ASSIGN_OR_RETURN(uint64_t installs, reader.ReadU64());
    LAPIS_RETURN_IF_ERROR(artifact.dataset->SetInstallCount(pkg, installs));
    LAPIS_ASSIGN_OR_RETURN(uint32_t dep_count, reader.ReadU32());
    std::vector<core::PackageId> deps;
    deps.reserve(dep_count);
    for (uint32_t i = 0; i < dep_count; ++i) {
      LAPIS_ASSIGN_OR_RETURN(uint32_t dep, reader.ReadU32());
      deps.push_back(dep);
    }
    LAPIS_RETURN_IF_ERROR(
        artifact.dataset->SetDependencies(pkg, std::move(deps)));
    LAPIS_ASSIGN_OR_RETURN(uint32_t api_count, reader.ReadU32());
    std::vector<core::ApiId> footprint;
    footprint.reserve(api_count);
    for (uint32_t i = 0; i < api_count; ++i) {
      LAPIS_ASSIGN_OR_RETURN(int64_t encoded, reader.ReadI64());
      footprint.push_back(core::ApiId::Decode(encoded));
    }
    LAPIS_RETURN_IF_ERROR(
        artifact.dataset->SetFootprint(pkg, std::move(footprint)));
  }
  LAPIS_ASSIGN_OR_RETURN(artifact.path_interner,
                         DeserializeInterner(reader));
  LAPIS_ASSIGN_OR_RETURN(artifact.libc_interner,
                         DeserializeInterner(reader));
  if (version >= 2) {
    LAPIS_ASSIGN_OR_RETURN(artifact.evidence_kinds_mask, reader.ReadU8());
    LAPIS_ASSIGN_OR_RETURN(uint32_t observed_count, reader.ReadU32());
    for (uint32_t i = 0; i < observed_count; ++i) {
      LAPIS_ASSIGN_OR_RETURN(int64_t encoded, reader.ReadI64());
      artifact.evidence_observed.insert(core::ApiId::Decode(encoded));
    }
  }
  LAPIS_RETURN_IF_ERROR(artifact.dataset->Finalize());
  return artifact;
}

Status SaveStudy(const StudyResult& study, const std::string& path) {
  ByteWriter writer;
  LAPIS_RETURN_IF_ERROR(SerializeStudy(study, writer));
  // Atomic publication: a reader (e.g. lapis_serve catching SIGHUP mid-
  // export) sees either the previous complete artifact or this one, never
  // a torn prefix.
  return io::AtomicWriteFile(path, writer.bytes().data(), writer.size());
}

Result<StudyArtifact> LoadStudy(const std::string& path) {
  LAPIS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> bytes,
      io::ReadFileBytes(path, io::Profile::kArtifactIo));
  ByteReader reader(bytes);
  return DeserializeStudy(reader);
}

}  // namespace lapis::corpus
