#include "src/corpus/binary_synth.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/analysis/footprint.h"
#include "src/codegen/function_builder.h"
#include "src/corpus/api_universe.h"
#include "src/corpus/syscall_table.h"
#include "src/util/prng.h"

namespace lapis::corpus {

namespace {

using codegen::FunctionBuilder;
using elf::BinaryType;
using elf::ElfBuilder;

// Emits `mov eax, nr; syscall`.
void EmitDirectSyscall(FunctionBuilder& fn, int nr) {
  fn.MovRegImm32(disasm::kRax, static_cast<uint32_t>(nr));
  fn.Syscall();
}

// Emits `mov eax, nr; jne L; nop; L: syscall` — a branch-guarded site
// (compiler error-path idiom) where every path into the syscall carries the
// same number. CFG dataflow joins the paths back to the constant; the
// linear ablation must reset at the branch target and reports the site
// unknown.
void EmitGuardedSyscall(FunctionBuilder& fn, int nr) {
  fn.MovRegImm32(disasm::kRax, static_cast<uint32_t>(nr));
  fn.JccShortForward(0x5, 1);  // jne over the nop; eax holds nr either way
  fn.Nop(1);
  fn.Syscall();
}

// Emits a direct vectored syscall with a constant opcode.
void EmitVectoredSyscall(FunctionBuilder& fn, int nr, uint8_t op_reg,
                         uint32_t op) {
  fn.MovRegImm32(op_reg, op);
  fn.MovRegImm32(disasm::kRax, static_cast<uint32_t>(nr));
  fn.Syscall();
}

std::vector<int> AttributedSyscalls(CoreLib lib) {
  std::vector<int> out;
  for (const auto& attribution : StartupAttributions()) {
    for (CoreLib member : attribution.libs) {
      if (member == lib) {
        out.push_back(attribution.syscall_nr);
        break;
      }
    }
  }
  return out;
}

// Builds one of the three small core libraries (ld.so / libpthread / librt):
// a single export performing its attributed startup syscalls.
Result<SynthesizedBinary> BuildSmallCoreLib(const char* soname,
                                            const char* export_name,
                                            CoreLib lib) {
  ElfBuilder builder(BinaryType::kSharedLibrary);
  builder.SetSoname(soname);
  FunctionBuilder fn(export_name);
  fn.EmitPrologue();
  for (int nr : AttributedSyscalls(lib)) {
    EmitDirectSyscall(fn, nr);
  }
  fn.EmitEpilogue();
  builder.AddFunction(fn.Finish(/*exported=*/true));
  LAPIS_ASSIGN_OR_RETURN(auto bytes, builder.Build());
  SynthesizedBinary binary;
  binary.name = soname;
  binary.is_library = true;
  binary.bytes = std::move(bytes);
  return binary;
}

// Expands a canonical pseudo-path ("/proc/%/cmdline") back into the
// printf-style template a binary would embed ("/proc/%d/cmdline").
std::string ExpandPseudoPath(const std::string& canonical) {
  std::string out;
  for (char c : canonical) {
    out.push_back(c);
    if (c == '%') {
      out.push_back('d');
    }
  }
  return out;
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Result<std::vector<SynthesizedBinary>> DistroSynthesizer::CoreLibraries()
    const {
  std::vector<SynthesizedBinary> out;
  LAPIS_ASSIGN_OR_RETURN(
      auto ld, BuildSmallCoreLib(kLdSoname, "_dl_start", CoreLib::kLdSo));
  out.push_back(std::move(ld));
  LAPIS_ASSIGN_OR_RETURN(auto pthread,
                         BuildSmallCoreLib(kPthreadSoname, "__pthread_init",
                                           CoreLib::kLibpthread));
  out.push_back(std::move(pthread));
  LAPIS_ASSIGN_OR_RETURN(
      auto rt, BuildSmallCoreLib(kRtSoname, "__rt_init", CoreLib::kLibrt));
  out.push_back(std::move(rt));

  // ---- libc.so.6: one exported function per universe entry ----
  ElfBuilder builder(BinaryType::kSharedLibrary);
  builder.SetSoname(kLibcSoname);
  builder.AddNeeded(kLdSoname);
  builder.AddNeeded(kPthreadSoname);
  builder.AddNeeded(kRtSoname);
  uint32_t import_dl = builder.AddImport("_dl_start");
  uint32_t import_pthread = builder.AddImport("__pthread_init");
  uint32_t import_rt = builder.AddImport("__rt_init");

  const auto& universe = LibcUniverse();
  // Function index == universe index (AddFunction is called in order).
  std::map<std::string, uint32_t> index_of;
  for (uint32_t i = 0; i < universe.size(); ++i) {
    index_of.emplace(universe[i].name, i);
  }
  auto index_of_name = [&index_of](const char* name) -> int64_t {
    auto it = index_of.find(name);
    return it == index_of.end() ? -1 : static_cast<int64_t>(it->second);
  };
  const int64_t write_index = index_of_name("write");
  const int64_t read_index = index_of_name("read");
  const int64_t mmap_index = index_of_name("mmap");

  for (uint32_t i = 0; i < universe.size(); ++i) {
    const LibcSymbolSpec& spec = universe[i];
    FunctionBuilder fn(spec.name);
    if (spec.name == "__libc_start_main") {
      fn.EmitPrologue();
      for (int nr : AttributedSyscalls(CoreLib::kLibc)) {
        EmitDirectSyscall(fn, nr);
      }
      fn.CallImport(import_dl);
      fn.CallImport(import_pthread);
      fn.CallImport(import_rt);
      fn.EmitEpilogue();
    } else if (spec.wraps_syscall >= 0) {
      EmitDirectSyscall(fn, spec.wraps_syscall);
      fn.Ret();
    } else if (!spec.chk_base.empty()) {
      // Fortify variant: checks, then tail into the plain function.
      fn.EmitPrologue();
      int64_t base_index = index_of_name(spec.chk_base.c_str());
      if (base_index >= 0) {
        fn.CallLocal(static_cast<uint32_t>(base_index));
      }
      fn.EmitEpilogue();
    } else if (spec.band == LibcBand::kCommonPool ||
               spec.band == LibcBand::kUniversal) {
      fn.EmitPrologue();
      // Common functions bottom out in the universal syscall wrappers
      // (printf -> write, fread -> read, malloc -> mmap ...).
      int64_t target = -1;
      switch (i % 3) {
        case 0:
          target = write_index;
          break;
        case 1:
          target = read_index;
          break;
        default:
          target = mmap_index;
          break;
      }
      if (target >= 0 && static_cast<uint32_t>(target) != i) {
        fn.CallLocal(static_cast<uint32_t>(target));
      }
      fn.EmitEpilogue();
    } else {
      // Mid/tail/unused: pure computation.
      fn.EmitPrologue();
      fn.XorRegReg(disasm::kRax);
      fn.EmitEpilogue();
    }
    // Pad to the synthetic code size so the §3.5 size accounting is real.
    while (fn.size() < spec.code_size) {
      fn.Nop();
    }
    elf::FunctionDef def = fn.Finish(/*exported=*/true);
    builder.AddFunction(std::move(def));
  }

  // Real libc also exports syscall(2) itself: number in rdi, forwarded to
  // rax. Kept outside the universe tables (it wraps no fixed number, so it
  // has no importance row); packages reach it only through tail-forwarding
  // wrapper clones. Its body is the canonical argument-to-number move that
  // no intra-function tier can pin down — and since the function is
  // exported, even the IPA tier must leave the site unknown here and
  // attribute numbers at the callers that pass constants.
  {
    FunctionBuilder fn("syscall");
    fn.MovRegReg(disasm::kRax, disasm::kRdi);
    fn.Syscall();
    fn.Ret();
    builder.AddFunction(fn.Finish(/*exported=*/true));
  }

  LAPIS_ASSIGN_OR_RETURN(auto bytes, builder.Build());
  SynthesizedBinary libc;
  libc.name = kLibcSoname;
  libc.is_library = true;
  libc.bytes = std::move(bytes);
  out.push_back(std::move(libc));
  return out;
}

Result<std::vector<SynthesizedBinary>> DistroSynthesizer::PackageBinaries(
    size_t package_index) const {
  if (package_index >= spec_.packages.size()) {
    return InvalidArgumentError("package index out of range");
  }
  const PackagePlan& plan = spec_.packages[package_index];
  std::vector<SynthesizedBinary> out;
  if (plan.data_only || !plan.interpreter_package.empty()) {
    return out;  // no ELF binaries
  }
  Prng prng(spec_.options.seed ^ HashName(plan.name));
  const auto& universe = LibcUniverse();
  const auto& ioctl_ops = IoctlOps();
  const auto& fcntl_ops = FcntlOps();
  const auto& prctl_ops = PrctlOps();
  const auto& pseudo = PseudoFiles();

  // ---- Static executable: everything inline ----
  if (plan.static_binary) {
    ElfBuilder builder(BinaryType::kExecutable);
    FunctionBuilder start("_start");
    start.EmitPrologue();
    for (int nr : spec_.ExpectedSyscalls(package_index)) {
      EmitDirectSyscall(start, nr);
    }
    if (plan.legacy_int80) {
      // i386-numbered calls through the legacy gate: read(3), write(4),
      // open(5), exit(1).
      for (uint32_t nr : {3u, 4u, 5u, 1u}) {
        start.MovRegImm32(disasm::kRax, nr);
        start.Int80();
      }
    }
    start.EmitEpilogue();
    uint32_t entry = builder.AddFunction(start.Finish(/*exported=*/false));
    LAPIS_RETURN_IF_ERROR(builder.SetEntryFunction(entry));
    LAPIS_ASSIGN_OR_RETURN(auto bytes, builder.Build());
    SynthesizedBinary binary;
    binary.name = plan.name;
    binary.is_static = true;
    binary.bytes = std::move(bytes);
    out.push_back(std::move(binary));
    return out;
  }

  // ---- Shared libraries shipped by the package ----
  std::vector<std::string> lib_sonames;
  std::vector<std::string> lib_exports;
  for (int lib = 0; lib < plan.lib_count; ++lib) {
    ElfBuilder builder(BinaryType::kSharedLibrary);
    std::string soname = "lib" + plan.name + std::to_string(lib) + ".so.1";
    builder.SetSoname(soname);
    builder.AddNeeded(kLibcSoname);
    std::string export_name = plan.name + "_api_" + std::to_string(lib);
    FunctionBuilder fn(export_name);
    fn.EmitPrologue();
    // Library code leans on a couple of common libc APIs.
    fn.CallImport(builder.AddImport("strlen"));
    fn.CallImport(builder.AddImport("malloc"));
    // Table 1 pattern: the tail syscall's call site lives inside the
    // package's library, not its executable.
    if (plan.extras_via_library && lib == 0) {
      for (int nr : plan.extra_syscalls) {
        fn.CallImport(builder.AddImport(std::string(SyscallName(nr))));
      }
    }
    fn.EmitEpilogue();
    builder.AddFunction(fn.Finish(/*exported=*/true));
    LAPIS_ASSIGN_OR_RETURN(auto bytes, builder.Build());
    SynthesizedBinary binary;
    binary.name = soname;
    binary.is_library = true;
    binary.bytes = std::move(bytes);
    out.push_back(std::move(binary));
    lib_sonames.push_back(soname);
    lib_exports.push_back(export_name);
  }

  // ---- Executables ----
  for (int exe = 0; exe < plan.exe_count; ++exe) {
    ElfBuilder builder(BinaryType::kExecutable);
    builder.AddNeeded(kLibcSoname);
    for (const auto& soname : lib_sonames) {
      builder.AddNeeded(soname);
    }
    uint32_t import_start_main = builder.AddImport("__libc_start_main");
    uint32_t import_cxa = builder.AddImport("__cxa_finalize");

    FunctionBuilder main_fn("main");
    main_fn.EmitPrologue();

    // Wrapper functions land at fixed indexes right after main (index 1):
    // the syscall clone first, then the two ioctl helpers.
    const bool emit_sys_wrapper = exe == 0 && plan.wrapper_syscall_calls > 0 &&
                                  plan.syscall_prefix_rank >= 1;
    const bool emit_ioctl_helpers =
        exe == 0 && plan.wrapper_two_hop_ioctl && !plan.ioctl_ranks.empty();
    const uint32_t wrapper_index = 2;
    const uint32_t helper1_index = wrapper_index + (emit_sys_wrapper ? 1u : 0u);

    if (exe == 0) {
      // Universal fortify imports: every Ubuntu-built binary carries some.
      main_fn.CallImport(builder.AddImport("__printf_chk"));
      main_fn.CallImport(builder.AddImport("__memcpy_chk"));
      if (prng.NextBool(0.30)) {
        main_fn.CallImport(builder.AddImport("memalign"));
      }
      // Common-pool sample.
      for (size_t rank : plan.libc_common_ranks) {
        main_fn.CallImport(builder.AddImport(universe[rank].name));
      }
      // Syscall prefix via libc wrappers (ranks 41..K).
      for (int r = 40; r < plan.syscall_prefix_rank &&
                       r < static_cast<int>(spec_.syscall_rank_order.size());
           ++r) {
        int nr = spec_.syscall_rank_order[static_cast<size_t>(r)];
        std::string wrapper(SyscallName(nr));
        if (nr == analysis::kSysIoctl) {
          main_fn.MovRegImm32(disasm::kRsi, ioctl_ops[0].code);
        } else if (nr == analysis::kSysFcntl) {
          main_fn.MovRegImm32(disasm::kRsi, fcntl_ops[0].code);
        } else if (nr == analysis::kSysPrctl) {
          main_fn.MovRegImm32(disasm::kRdi, prctl_ops[0].code);
        }
        main_fn.CallImport(builder.AddImport(wrapper));
      }
      // Dedicated tail syscalls (unless they live in the library).
      if (!plan.extras_via_library) {
        for (int nr : plan.extra_syscalls) {
          main_fn.CallImport(builder.AddImport(std::string(SyscallName(nr))));
        }
      }
      // Vectored opcodes.
      for (size_t rank : plan.ioctl_ranks) {
        main_fn.MovRegImm32(disasm::kRsi, ioctl_ops[rank].code);
        main_fn.XorRegReg(disasm::kRdi);
        main_fn.CallImport(builder.AddImport("ioctl"));
      }
      if (plan.emits_direct_syscalls && !plan.ioctl_ranks.empty()) {
        // Some binaries issue the vectored call inline rather than through
        // the libc wrapper; the opcode must be recovered either way.
        EmitVectoredSyscall(main_fn, analysis::kSysIoctl, disasm::kRsi,
                            ioctl_ops[plan.ioctl_ranks[0]].code);
      }
      for (size_t rank : plan.fcntl_ranks) {
        main_fn.MovRegImm32(disasm::kRsi, fcntl_ops[rank].code);
        main_fn.CallImport(builder.AddImport("fcntl"));
      }
      for (size_t rank : plan.prctl_ranks) {
        main_fn.MovRegImm32(disasm::kRdi, prctl_ops[rank].code);
        main_fn.CallImport(builder.AddImport("prctl"));
      }
      // Hard-coded pseudo-file paths.
      {
        std::set<size_t> ranks(plan.pseudo_file_ranks.begin(),
                               plan.pseudo_file_ranks.end());
        for (size_t rank : ranks) {
          const auto& file = pseudo[rank];
          if (file.path.find('%') != std::string::npos) {
            // sprintf(buf, "/proc/%d/cmdline", pid) pattern.
            uint32_t offset =
                builder.AddRodataString(ExpandPseudoPath(file.path));
            main_fn.LeaRodata(disasm::kRsi, offset);
            main_fn.CallImport(builder.AddImport("sprintf"));
          } else {
            uint32_t offset = builder.AddRodataString(file.path);
            main_fn.LeaRodata(disasm::kRdi, offset);
            main_fn.CallImport(builder.AddImport("open"));
          }
        }
      }
      // libc mid/tail/extension symbols.
      for (size_t rank : plan.libc_extra_ranks) {
        main_fn.CallImport(builder.AddImport(universe[rank].name));
      }
      // Own libraries.
      for (const auto& export_name : lib_exports) {
        main_fn.CallImport(builder.AddImport(export_name));
      }
      // Inline system calls (11% of executables).
      if (plan.emits_direct_syscalls) {
        int limit = std::min(plan.syscall_prefix_rank, 60);
        for (int i = 0; i < 3 && limit > 0; ++i) {
          int rank = static_cast<int>(prng.NextBelow(
              static_cast<uint64_t>(limit)));
          EmitDirectSyscall(main_fn,
                            spec_.syscall_rank_order[static_cast<size_t>(
                                rank)]);
        }
      }
      // One arithmetic-obfuscated site (the paper's ~4% unknowns). The
      // number is `read`, already in every footprint, so ground truth is
      // unaffected -- only the unknown-site counter moves.
      if (plan.emits_obfuscated_site) {
        main_fn.MovRegImm32Obfuscated(
            disasm::kRax, static_cast<uint32_t>(*SyscallNumber("read")));
        main_fn.Syscall();
      }
      // Branch-guarded sites: recoverable only with CFG dataflow (the
      // linear ablation degrades them to unknown). The number is the
      // rank-1 syscall, already in this package's prefix footprint, so the
      // recovered sets match in both modes — only unknown counters move.
      if (plan.guarded_syscall_sites > 0 && plan.syscall_prefix_rank >= 1) {
        int guarded_nr = spec_.syscall_rank_order[0];
        for (int g = 0; g < plan.guarded_syscall_sites; ++g) {
          EmitGuardedSyscall(main_fn, guarded_nr);
        }
      }
      // Wrapper-style sites: the number/opcode is a constant here at the
      // call site but only an incoming argument inside the callee, so the
      // intra-function tiers count the callee's site unknown while the IPA
      // tier back-tracks it to these constants. Values are the rank-1
      // syscall and the rank-0 assigned ioctl opcode — both already in the
      // package footprint, so only unknown-site counters move across tiers.
      if (emit_sys_wrapper) {
        uint32_t nr = static_cast<uint32_t>(spec_.syscall_rank_order[0]);
        for (int c = 0; c < plan.wrapper_syscall_calls; ++c) {
          main_fn.MovRegImm32(disasm::kRdi, nr);
          main_fn.CallLocal(wrapper_index);
        }
      }
      if (emit_ioctl_helpers) {
        main_fn.MovRegImm32(disasm::kRsi,
                            ioctl_ops[plan.ioctl_ranks[0]].code);
        main_fn.XorRegReg(disasm::kRdi);
        main_fn.CallLocal(helper1_index);
      }
    } else {
      // Secondary executables are light: a few common calls.
      for (size_t i = 0; i < 4 && i < plan.libc_common_ranks.size(); ++i) {
        main_fn.CallImport(
            builder.AddImport(universe[plan.libc_common_ranks[i]].name));
      }
    }
    main_fn.EmitEpilogue();

    FunctionBuilder start_fn("_start");
    start_fn.CallImport(import_start_main);
    // main is added after _start; its function index will be 1.
    start_fn.CallLocal(1);
    start_fn.CallImport(import_cxa);
    start_fn.Ret();

    uint32_t start_index =
        builder.AddFunction(start_fn.Finish(/*exported=*/false));
    builder.AddFunction(main_fn.Finish(/*exported=*/false));
    if (emit_sys_wrapper) {
      // Local syscall(2) clone: number arrives in rdi and either moves into
      // rax before a direct `syscall` (optionally across a branch merge, so
      // recovery needs the CFG join *and* the argument fact) or tail-jumps
      // into libc's syscall@plt with every register untouched.
      FunctionBuilder wrapper_fn("__syscall_thunk");
      if (plan.wrapper_tail_plt) {
        wrapper_fn.TailJmpImport(builder.AddImport("syscall"));
      } else {
        wrapper_fn.EmitPrologue();
        wrapper_fn.MovRegReg(disasm::kRax, disasm::kRdi);
        if (plan.wrapper_guarded) {
          wrapper_fn.JccShortForward(0x5, 1);  // jne over the nop
          wrapper_fn.Nop(1);
        }
        wrapper_fn.Syscall();
        wrapper_fn.EmitEpilogue();
      }
      builder.AddFunction(wrapper_fn.Finish(/*exported=*/false));
    }
    if (emit_ioctl_helpers) {
      // Two-hop opcode forwarding: main pins the opcode, helper1 passes its
      // arguments through untouched, helper2 issues the vectored call.
      FunctionBuilder helper1_fn("__ioctl_helper1");
      helper1_fn.EmitPrologue();
      helper1_fn.CallLocal(helper1_index + 1);
      helper1_fn.EmitEpilogue();
      builder.AddFunction(helper1_fn.Finish(/*exported=*/false));
      FunctionBuilder helper2_fn("__ioctl_helper2");
      helper2_fn.EmitPrologue();
      helper2_fn.CallImport(builder.AddImport("ioctl"));
      helper2_fn.EmitEpilogue();
      builder.AddFunction(helper2_fn.Finish(/*exported=*/false));
    }
    if (exe == 0 && prng.NextBool(0.35)) {
      // Dead code: statically linked leftovers that no call path reaches.
      // Call-graph reachability (the paper's methodology) must exclude its
      // API usage; a whole-binary sweep would not.
      FunctionBuilder dead_fn("__linked_but_unused");
      dead_fn.EmitPrologue();
      dead_fn.CallImport(builder.AddImport("ptrace"));
      dead_fn.CallImport(builder.AddImport("sync"));
      dead_fn.CallImport(builder.AddImport("strfry"));
      dead_fn.EmitEpilogue();
      builder.AddFunction(dead_fn.Finish(/*exported=*/false));
    }
    LAPIS_RETURN_IF_ERROR(builder.SetEntryFunction(start_index));
    LAPIS_ASSIGN_OR_RETURN(auto bytes, builder.Build());
    SynthesizedBinary binary;
    binary.name = exe == 0 ? plan.name : plan.name + "-alt" +
                                             std::to_string(exe);
    binary.bytes = std::move(bytes);
    out.push_back(std::move(binary));
  }
  return out;
}

Result<std::vector<DistroSynthesizer::SynthesizedScript>>
DistroSynthesizer::PackageScripts(size_t package_index) const {
  if (package_index >= spec_.packages.size()) {
    return InvalidArgumentError("package index out of range");
  }
  const PackagePlan& plan = spec_.packages[package_index];
  std::vector<SynthesizedScript> out;
  if (plan.script_count == 0) {
    return out;
  }
  Prng prng(spec_.options.seed ^ HashName(plan.name) ^ 0x5c819);
  // Shebang forms per interpreter bucket; a third of scripts use the
  // `#!/usr/bin/env <interp>` indirection.
  const char* direct = "#!/bin/sh";
  const char* env_name = "sh";
  switch (plan.kind) {
    case package::ProgramKind::kShellDash:
      direct = "#!/bin/sh";
      env_name = "dash";
      break;
    case package::ProgramKind::kShellBash:
      direct = "#!/bin/bash";
      env_name = "bash";
      break;
    case package::ProgramKind::kPython:
      direct = "#!/usr/bin/python2.7";
      env_name = "python";
      break;
    case package::ProgramKind::kPerl:
      direct = "#!/usr/bin/perl";
      env_name = "perl";
      break;
    case package::ProgramKind::kRuby:
      direct = "#!/usr/bin/ruby1.9";
      env_name = "ruby";
      break;
    default:
      direct = "#!/usr/bin/tclsh";
      env_name = "tclsh";
      break;
  }
  for (size_t i = 0; i < plan.script_count; ++i) {
    SynthesizedScript script;
    script.name = plan.name + "-script" + std::to_string(i);
    std::string text;
    if (prng.NextBool(0.33)) {
      text = std::string("#!/usr/bin/env ") + env_name + "\n";
    } else {
      text = std::string(direct) + "\n";
    }
    text += "# generated by lapis corpus\n";
    text += "exit 0\n";
    script.contents.assign(text.begin(), text.end());
    out.push_back(std::move(script));
  }
  return out;
}

Result<package::Repository> DistroSynthesizer::BuildRepository() const {
  package::Repository repo;
  for (size_t i = 0; i < spec_.packages.size(); ++i) {
    const PackagePlan& plan = spec_.packages[i];
    package::Package pkg;
    pkg.name = plan.name;
    pkg.kind = plan.kind;
    if (!plan.data_only && plan.interpreter_package.empty()) {
      if (plan.static_binary) {
        pkg.executables.push_back(plan.name);
      } else {
        for (int exe = 0; exe < plan.exe_count; ++exe) {
          pkg.executables.push_back(
              exe == 0 ? plan.name : plan.name + "-alt" + std::to_string(exe));
        }
        for (int lib = 0; lib < plan.lib_count; ++lib) {
          pkg.shared_libraries.push_back("lib" + plan.name +
                                         std::to_string(lib) + ".so.1");
        }
      }
    }
    pkg.script_count = plan.script_count;
    for (const auto& dep : plan.depends) {
      auto it = spec_.by_name.find(dep);
      if (it == spec_.by_name.end()) {
        return InternalError("unknown dependency " + dep);
      }
      pkg.depends.push_back(static_cast<package::PackageId>(it->second));
    }
    if (!plan.interpreter_package.empty()) {
      auto it = spec_.by_name.find(plan.interpreter_package);
      if (it == spec_.by_name.end()) {
        return InternalError("unknown interpreter " +
                             plan.interpreter_package);
      }
      pkg.interpreter = static_cast<package::PackageId>(it->second);
    }
    LAPIS_ASSIGN_OR_RETURN(auto id, repo.AddPackage(std::move(pkg)));
    (void)id;
  }
  return repo;
}

}  // namespace lapis::corpus
