// End-to-end study orchestration: the lapis public entry point.
//
// RunStudy() executes the whole paper pipeline:
//   1. Build the calibrated distribution plan (distro_spec.h).
//   2. Synthesize core libraries + every package's ELF binaries
//      (binary_synth.h) and run the static-analysis pipeline over them
//      (src/analysis): disassembly, call graphs, constant back-tracking,
//      cross-library resolution.
//   3. Simulate the popularity-contest survey (src/package).
//   4. Join footprints with installation counts into a StudyDataset
//      (src/core) and verify the recovered footprints against the plan's
//      ground truth.
//
// Benches and examples consume the returned StudyResult.

#ifndef LAPIS_SRC_CORPUS_STUDY_RUNNER_H_
#define LAPIS_SRC_CORPUS_STUDY_RUNNER_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/audit.h"
#include "src/cache/footprint_cache.h"
#include "src/core/api_id.h"
#include "src/core/dataset.h"
#include "src/corpus/binary_synth.h"
#include "src/corpus/distro_spec.h"
#include "src/package/popcon.h"
#include "src/package/repository.h"
#include "src/runtime/executor.h"
#include "src/runtime/stage_stats.h"
#include "src/util/status.h"

namespace lapis::corpus {

struct StudyOptions {
  DistroOptions distro;
  // Verify recovered footprints against the plan (slower; tests enable).
  bool verify_ground_truth = true;
  // Static-analysis methodology switches. `analyzer.use_dataflow` is the
  // ablation lever: true = CFG constant propagation (default), false = the
  // soundness-fixed linear baseline.
  analysis::AnalyzerOptions analyzer;
  // Differentially replay every executable in the DynamicTracer against its
  // resolved static footprint (audit.h) and attach the AuditReport.
  bool audit = false;
  // Retain joint popcon samples for the independence ablation.
  uint64_t popcon_retain_samples = 0;
  // Install-profile correlation (see package::PopconOptions); 0 = off.
  uint32_t popcon_profile_count = 0;
  double popcon_profile_boost = 3.0;
  // Worker threads for the pipeline: 0 = runtime::DefaultJobs(),
  // 1 = fully sequential (no threads spawned). Dataset exports are
  // byte-identical at every jobs value.
  size_t jobs = 0;
  // Run on an existing pool instead of creating one (overrides `jobs`).
  runtime::Executor* executor = nullptr;
  // Content-addressed incremental cache (src/cache). Non-empty `cache_dir`
  // opens (creating if needed) a persistent store there; on a hit the whole
  // per-binary analysis chain (ELF parse, linear sweep, CFG, dataflow), the
  // per-library export reachability, the per-executable resolution, and the
  // popcon survey are skipped. Exports are byte-identical cold vs. warm.
  std::string cache_dir;
  // Run against an existing cache instance instead (overrides `cache_dir`;
  // not owned). In-process warm-run benches use this.
  cache::FootprintCache* cache = nullptr;
};

struct BinaryStats {
  size_t elf_executables = 0;
  size_t elf_shared_libraries = 0;
  size_t elf_static = 0;
  std::map<package::ProgramKind, size_t> script_programs;

  size_t TotalElf() const {
    return elf_executables + elf_shared_libraries + elf_static;
  }
};

struct StudyResult {
  DistroSpec spec;
  package::Repository repository;
  package::PopconSurvey survey;
  std::unique_ptr<core::StudyDataset> dataset;

  // Interners: ApiId::code for kPseudoFile / kLibcFn resolves through these.
  core::StringInterner path_interner;
  core::StringInterner libc_interner;

  // Which binaries contain direct call sites for each syscall (Table 1/5
  // attribution; binary name = executable name or library soname).
  std::map<int, std::set<std::string>> syscall_site_binaries;

  // Measured libc per-symbol code sizes (from the synthesized libc's
  // .symtab), keyed by interned symbol id (§3.5 size model).
  std::map<uint32_t, uint64_t> libc_symbol_sizes;

  BinaryStats binary_stats;

  // Analysis health.
  int total_syscall_sites = 0;
  int unknown_syscall_sites = 0;
  // Legacy int $0x80 usage (i386 numbering).
  int int80_sites = 0;
  std::set<int> int80_numbers;
  size_t ground_truth_mismatches = 0;
  size_t analyzed_binaries = 0;

  // Analyzer switches the run used (echoed from StudyOptions::analyzer).
  analysis::AnalyzerOptions analyzer_options;
  // Footprint soundness audit (present iff StudyOptions::audit was set).
  std::optional<analysis::AuditReport> audit;

  // Corpus-wide dynamic-replay evidence, the audit's observed_union lifted
  // to ApiIds (pseudo paths resolved through path_interner). Empty mask =
  // no audit ran; bit (1 << kind) marks each instrumented ApiKind, so the
  // planner can tell "not observed" from "not instrumented".
  uint8_t evidence_kinds_mask = 0;
  std::set<core::ApiId> evidence_observed;

  // Per-package binary counts with hard-coded pseudo paths (Fig 6 counts).
  std::map<std::string, size_t> pseudo_path_binary_counts;

  // Parallel-pipeline accounting: wall/CPU per stage, plus the executor's
  // task/steal counters for the run.
  runtime::PipelineStats pipeline_stats;
  runtime::ExecutorStats executor_stats;
  size_t jobs_used = 1;

  // Incremental-cache accounting for this run (all-zero when no cache was
  // configured). `cache_stats` is windowed to this run even on a shared
  // cache instance.
  bool cache_enabled = false;
  cache::CacheStats cache_stats;
  size_t analyses_from_cache = 0;     // binaries restored via kAnalysis hits
  size_t resolutions_from_cache = 0;  // executables restored via kResolution
};

Result<StudyResult> RunStudy(const StudyOptions& options);

// A small, fast configuration for unit/integration tests.
StudyOptions SmallStudyOptions();

}  // namespace lapis::corpus

#endif  // LAPIS_SRC_CORPUS_STUDY_RUNNER_H_
