// Universes of the non-syscall API families the study covers (§3.3-§3.5):
// ioctl/fcntl/prctl operation codes, pseudo-files under /proc, /sys and
// /dev, and the GNU libc export surface. Each entry carries a calibration
// target (the API importance the paper's figures report at its rank) which
// the distribution generator realizes.

#ifndef LAPIS_SRC_CORPUS_API_UNIVERSE_H_
#define LAPIS_SRC_CORPUS_API_UNIVERSE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lapis::corpus {

// ---- Vectored system-call opcodes ----

inline constexpr size_t kIoctlOpCount = 635;   // defined in Linux 3.19
inline constexpr size_t kIoctlTop100 = 52;     // ops with 100% importance
inline constexpr size_t kIoctlAbove1Pct = 188; // ops with >1% importance
inline constexpr size_t kIoctlUsed = 280;      // ops used by any binary

inline constexpr size_t kFcntlOpCount = 18;
inline constexpr size_t kFcntlTop100 = 11;

inline constexpr size_t kPrctlOpCount = 44;
inline constexpr size_t kPrctlTop100 = 9;
inline constexpr size_t kPrctlAbove20Pct = 18;

struct OpSpec {
  uint32_t code = 0;
  std::string name;
  // Target API importance at this op's rank (1.0 for the universal TTY and
  // generic-IO group; geometric decline along the tail; 0 for unused).
  double importance_target = 0.0;
};

// Ordered by descending importance target.
const std::vector<OpSpec>& IoctlOps();
const std::vector<OpSpec>& FcntlOps();
const std::vector<OpSpec>& PrctlOps();

// ---- Pseudo-files (§3.4, Fig 6) ----

struct PseudoFileSpec {
  std::string path;  // canonical; "%" marks a formatted component
  double importance_target = 0.0;
  // Fraction of ELF executables hard-coding this path (drives the binary
  // counts the paper reports, e.g. 3,324 of 12,039 for /dev/null).
  double binary_fraction = 0.0;
};

const std::vector<PseudoFileSpec>& PseudoFiles();

// ---- GNU libc export universe (§3.5, Fig 7, Table 7) ----

inline constexpr size_t kLibcSymbolCount = 1274;

// Usage band controlling how the generator wires a symbol into packages.
enum class LibcBand : uint8_t {
  kUniversal,   // called from every executable (prologue/cleanup set)
  kCommonPool,  // sampled by most executables -> importance ~100%
  kMid,         // dedicated package sets, importance 1%..100%
  kTail,        // 0-2 rare packages, importance <1%
  kUnused,      // exported but never called (222 symbols, §6)
};

struct LibcSymbolSpec {
  std::string name;
  LibcBand band = LibcBand::kUnused;
  double importance_target = 0.0;  // meaningful for kMid / kTail
  uint32_t code_size = 0;          // synthetic body size (for §3.5 sizing)
  int wraps_syscall = -1;          // syscall this export wraps, or -1
  // For __*_chk fortify variants: the plain symbol they replace (Table 7
  // normalization); empty otherwise.
  std::string chk_base;
  // True for GNU-specific extensions absent from uClibc/musl (drives the
  // Table 7 normalized-completeness gap).
  bool gnu_extension = false;
};

const std::vector<LibcSymbolSpec>& LibcUniverse();

// Number of symbols in each band (sanity totals used by tests).
struct LibcBandCounts {
  size_t universal = 0;
  size_t common = 0;
  size_t mid = 0;
  size_t tail = 0;
  size_t unused = 0;
};
LibcBandCounts CountLibcBands();

}  // namespace lapis::corpus

#endif  // LAPIS_SRC_CORPUS_API_UNIVERSE_H_
