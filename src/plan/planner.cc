#include "src/plan/planner.h"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "src/corpus/syscall_table.h"

namespace lapis::plan {

namespace {

constexpr uint32_t kUncoverable = UINT32_MAX;
constexpr double kEps = 1e-9;

bool KindEvaluated(const std::set<core::ApiKind>& kinds, core::ApiKind kind) {
  return kinds.empty() || kinds.contains(kind);
}

// The shared problem formulation all three solvers run on. Indexes the
// candidate APIs (needed, unsupported, whitelisted), flattens each package's
// dependency-closure footprint into a need list of candidate indexes, and
// tracks which packages can never be covered (they need an API outside the
// whitelist) yet still weigh down the completeness denominator.
struct Instance {
  const core::StudyDataset* dataset = nullptr;

  std::vector<core::ApiId> apis;  // candidate index -> ApiId (sorted)
  std::vector<double> api_cost;
  std::vector<SupportAction> api_action;
  std::vector<EvidenceClass> api_class;
  std::vector<double> api_importance;
  // candidate index -> coverable packages whose need contains it.
  std::vector<std::vector<uint32_t>> needers;

  std::vector<std::vector<uint32_t>> need;  // pkg -> candidate indexes
  std::vector<uint32_t> missing;            // |unacquired need|; kUncoverable
  std::vector<double> weight;

  double total_weight = 0.0;
  double base_weight = 0.0;  // packages supported before any action

  double Completeness(double covered_weight) const {
    if (total_weight == 0.0) {
      return 0.0;
    }
    return (base_weight + covered_weight) / total_weight;
  }
};

Instance BuildInstance(const PlannerInput& input) {
  Instance inst;
  inst.dataset = input.dataset;
  const core::StudyDataset& ds = *input.dataset;
  const size_t n_pkgs = ds.package_count();

  // Pass 1: per-package needed API set (over the closure, evaluated kinds,
  // minus already-supported) and coverability under the whitelist.
  std::vector<std::set<core::ApiId>> needed(n_pkgs);
  std::vector<bool> coverable(n_pkgs, true);
  for (core::PackageId p = 0; p < n_pkgs; ++p) {
    for (core::PackageId member : ds.DependencyClosure(p)) {
      for (const core::ApiId& api : ds.Footprint(member)) {
        if (!KindEvaluated(input.evaluated_kinds, api.kind)) {
          continue;
        }
        if (input.already_supported.contains(api)) {
          continue;
        }
        if (!input.candidate_whitelist.empty() &&
            !input.candidate_whitelist.contains(api)) {
          coverable[p] = false;
          continue;
        }
        needed[p].insert(api);
      }
    }
  }

  // Pass 2: candidate universe = union of coverable packages' needs.
  std::set<core::ApiId> candidate_set;
  for (core::PackageId p = 0; p < n_pkgs; ++p) {
    if (coverable[p]) {
      candidate_set.insert(needed[p].begin(), needed[p].end());
    }
  }
  inst.apis.assign(candidate_set.begin(), candidate_set.end());
  std::map<int64_t, uint32_t> index;
  for (uint32_t i = 0; i < inst.apis.size(); ++i) {
    index[inst.apis[i].Encode()] = i;
  }

  // Vectored-family breadth comes from the full dataset (every used sub-op
  // of the kind), not the whitelist — so restricting an instance for the
  // exact solver never changes per-API costs.
  std::array<size_t, core::kApiKindCount> breadth{};
  for (int k = 0; k < core::kApiKindCount; ++k) {
    breadth[static_cast<size_t>(k)] =
        ds.ApisOfKind(static_cast<core::ApiKind>(k)).size();
  }

  inst.api_cost.resize(inst.apis.size());
  inst.api_action.resize(inst.apis.size());
  inst.api_class.resize(inst.apis.size());
  inst.api_importance.resize(inst.apis.size());
  inst.needers.resize(inst.apis.size());
  for (uint32_t i = 0; i < inst.apis.size(); ++i) {
    const core::ApiId api = inst.apis[i];
    EvidenceClass cls = ClassifyApi(input.evidence, api);
    SupportAction action = MinimalSufficientAction(cls, api.kind);
    inst.api_class[i] = cls;
    inst.api_action[i] = action;
    inst.api_cost[i] = input.costs->ActionCost(
        api, action, breadth[static_cast<size_t>(api.kind)]);
    inst.api_importance[i] = ds.ApiImportance(api);
  }

  inst.need.resize(n_pkgs);
  inst.missing.assign(n_pkgs, 0);
  inst.weight.resize(n_pkgs);
  for (core::PackageId p = 0; p < n_pkgs; ++p) {
    inst.weight[p] = ds.InstallProbability(p);
    inst.total_weight += inst.weight[p];
    if (!coverable[p]) {
      inst.missing[p] = kUncoverable;
      continue;
    }
    inst.need[p].reserve(needed[p].size());
    for (const core::ApiId& api : needed[p]) {
      uint32_t i = index.at(api.Encode());
      inst.need[p].push_back(i);
      inst.needers[i].push_back(p);
    }
    inst.missing[p] = static_cast<uint32_t>(inst.need[p].size());
    if (inst.missing[p] == 0) {
      inst.base_weight += inst.weight[p];
    }
  }
  return inst;
}

void AppendAction(const Instance& inst, uint32_t api_idx, double cumulative,
                  double completeness, SupportPlan* plan) {
  PlanAction action;
  action.api = inst.apis[api_idx];
  action.action = inst.api_action[api_idx];
  action.evidence = inst.api_class[api_idx];
  action.cost = inst.api_cost[api_idx];
  action.cumulative_cost = cumulative;
  action.completeness_after = completeness;
  action.importance = inst.api_importance[api_idx];
  plan->actions.push_back(action);
}

// ---------------------------------------------------------------------------
// Greedy solver.
// ---------------------------------------------------------------------------

struct PqEntry {
  double ratio = 0.0;
  double gain = 0.0;
  uint32_t pkg = 0;
  uint64_t version = 0;
};

struct PqWorse {
  bool operator()(const PqEntry& a, const PqEntry& b) const {
    if (a.ratio != b.ratio) {
      return a.ratio < b.ratio;
    }
    if (a.gain != b.gain) {
      return a.gain < b.gain;
    }
    return a.pkg > b.pkg;
  }
};

// Scratch for exact marginal-gain evaluation without clearing between calls.
struct GainScratch {
  std::vector<uint64_t> stamp;
  std::vector<uint32_t> count;
  uint64_t epoch = 0;
};

struct Move {
  std::vector<uint32_t> need;  // unacquired candidate indexes
  double cost = 0.0;
  double gain = 0.0;  // weight of every package this move completes
};

Move EvaluateMove(const Instance& inst, const std::vector<bool>& acquired,
                  uint32_t pkg, GainScratch* scratch) {
  Move move;
  for (uint32_t i : inst.need[pkg]) {
    if (!acquired[i]) {
      move.need.push_back(i);
      move.cost += inst.api_cost[i];
    }
  }
  ++scratch->epoch;
  for (uint32_t i : move.need) {
    for (uint32_t q : inst.needers[i]) {
      if (inst.missing[q] == 0 || inst.missing[q] == kUncoverable) {
        continue;
      }
      if (scratch->stamp[q] != scratch->epoch) {
        scratch->stamp[q] = scratch->epoch;
        scratch->count[q] = 0;
      }
      if (++scratch->count[q] == inst.missing[q]) {
        move.gain += inst.weight[q];
      }
    }
  }
  return move;
}

double MoveRatio(const Move& move) {
  return move.gain / std::max(move.cost, 1e-12);
}

// One lazy-PQ greedy sweep. With `gain_priority` the queue is ordered by
// raw gain instead of gain/cost: on tight budgets the ratio order can
// strand budget on small high-ratio moves while a single large move was
// the optimum, and vice versa — GreedyPlan runs both and keeps the better
// (the classic fix for budgeted max-coverage greedy's worst cases).
SupportPlan GreedyPass(const PlannerInput& input, bool gain_priority) {
  Instance inst = BuildInstance(input);
  const size_t n_pkgs = inst.weight.size();

  SupportPlan plan;
  plan.initial_completeness = inst.Completeness(0.0);
  plan.final_completeness = plan.initial_completeness;

  std::vector<bool> acquired(inst.apis.size(), false);
  std::vector<uint64_t> version(n_pkgs, 0);
  GainScratch scratch;
  scratch.stamp.assign(n_pkgs, 0);
  scratch.count.assign(n_pkgs, 0);

  std::priority_queue<PqEntry, std::vector<PqEntry>, PqWorse> pq;
  std::set<uint32_t> parked;  // affordable again only if a move dirties them

  auto priority = [gain_priority](const Move& move) {
    return gain_priority ? move.gain : MoveRatio(move);
  };

  for (uint32_t p = 0; p < n_pkgs; ++p) {
    if (inst.missing[p] == 0 || inst.missing[p] == kUncoverable) {
      continue;
    }
    Move move = EvaluateMove(inst, acquired, p, &scratch);
    if (move.gain > 0.0) {
      pq.push(PqEntry{priority(move), move.gain, p, 0});
    }
  }

  double covered_weight = 0.0;
  double cumulative_cost = 0.0;

  // Budget is a feasibility constraint (a move either fits or is parked);
  // max_actions is an output cap — the emitted list is truncated mid-move
  // if needed, since on real datasets the smallest package closure can
  // exceed any reasonable display length.
  auto fits = [&](const Move& move) {
    return cumulative_cost + move.cost <= input.budget + kEps;
  };
  auto capped = [&] {
    return input.max_actions != 0 && plan.actions.size() >= input.max_actions;
  };

  while (!pq.empty() && !capped()) {
    PqEntry top = pq.top();
    pq.pop();
    if (inst.missing[top.pkg] == 0 ||
        inst.missing[top.pkg] == kUncoverable) {
      continue;
    }
    if (top.version != version[top.pkg]) {
      // Stale: a previous move changed this package's remaining need.
      // Re-evaluate and requeue at the fresh priority.
      Move move = EvaluateMove(inst, acquired, top.pkg, &scratch);
      if (move.gain > 0.0) {
        pq.push(
            PqEntry{priority(move), move.gain, top.pkg, version[top.pkg]});
      }
      continue;
    }
    Move move = EvaluateMove(inst, acquired, top.pkg, &scratch);
    if (move.gain <= 0.0) {
      continue;
    }
    if (!fits(move)) {
      // Unaffordable now; its cost only shrinks when a move overlaps it,
      // which re-queues it below — park until then.
      parked.insert(top.pkg);
      continue;
    }

    // Execute: acquire the move's APIs most-important-first so the emitted
    // per-action completeness curve rises as early as possible.
    std::sort(move.need.begin(), move.need.end(),
              [&inst](uint32_t a, uint32_t b) {
                if (inst.api_importance[a] != inst.api_importance[b]) {
                  return inst.api_importance[a] > inst.api_importance[b];
                }
                return inst.apis[a] < inst.apis[b];
              });
    std::set<uint32_t> dirty;
    for (uint32_t i : move.need) {
      if (capped()) {
        break;
      }
      acquired[i] = true;
      cumulative_cost += inst.api_cost[i];
      for (uint32_t q : inst.needers[i]) {
        if (inst.missing[q] == 0 || inst.missing[q] == kUncoverable) {
          continue;
        }
        if (--inst.missing[q] == 0) {
          covered_weight += inst.weight[q];
        } else {
          dirty.insert(q);
        }
      }
      AppendAction(inst, i, cumulative_cost, inst.Completeness(covered_weight),
                   &plan);
    }
    for (uint32_t q : dirty) {
      ++version[q];
      parked.erase(q);
      Move fresh = EvaluateMove(inst, acquired, q, &scratch);
      if (fresh.gain > 0.0) {
        pq.push(PqEntry{priority(fresh), fresh.gain, q, version[q]});
      }
    }
  }

  plan.total_cost = cumulative_cost;
  plan.final_completeness = inst.Completeness(covered_weight);
  return plan;
}

}  // namespace

SupportPlan GreedyPlan(const PlannerInput& input) {
  SupportPlan by_ratio = GreedyPass(input, /*gain_priority=*/false);
  SupportPlan by_gain = GreedyPass(input, /*gain_priority=*/true);
  if (by_gain.final_completeness > by_ratio.final_completeness + kEps) {
    return by_gain;
  }
  if (by_ratio.final_completeness > by_gain.final_completeness + kEps) {
    return by_ratio;
  }
  // Equal completeness: prefer the cheaper plan, ratio order on a tie so
  // the emitted action sequence front-loads efficiency.
  return by_ratio.total_cost <= by_gain.total_cost + kEps ? by_ratio
                                                          : by_gain;
}

// ---------------------------------------------------------------------------
// Importance-order baseline.
// ---------------------------------------------------------------------------

SupportPlan ImportanceOrderPlan(const PlannerInput& input) {
  Instance inst = BuildInstance(input);

  SupportPlan plan;
  plan.initial_completeness = inst.Completeness(0.0);

  std::vector<uint32_t> order(inst.apis.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  const core::StudyDataset& ds = *input.dataset;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (inst.api_importance[a] != inst.api_importance[b]) {
      return inst.api_importance[a] > inst.api_importance[b];
    }
    double ua = ds.UnweightedImportance(inst.apis[a]);
    double ub = ds.UnweightedImportance(inst.apis[b]);
    if (ua != ub) {
      return ua > ub;
    }
    return inst.apis[a] < inst.apis[b];
  });

  double covered_weight = 0.0;
  double cumulative_cost = 0.0;
  for (uint32_t i : order) {
    if (cumulative_cost + inst.api_cost[i] > input.budget + kEps) {
      continue;  // cost-blind ranking: skip what no longer fits, keep going
    }
    if (input.max_actions != 0 && plan.actions.size() >= input.max_actions) {
      break;
    }
    cumulative_cost += inst.api_cost[i];
    for (uint32_t q : inst.needers[i]) {
      if (inst.missing[q] == 0 || inst.missing[q] == kUncoverable) {
        continue;
      }
      if (--inst.missing[q] == 0) {
        covered_weight += inst.weight[q];
      }
    }
    AppendAction(inst, i, cumulative_cost, inst.Completeness(covered_weight),
                 &plan);
  }

  plan.total_cost = cumulative_cost;
  plan.final_completeness = inst.Completeness(covered_weight);
  return plan;
}

// ---------------------------------------------------------------------------
// Exact solver: subset DP for small candidate counts, else branch-and-bound
// over packages in weight order.
// ---------------------------------------------------------------------------

namespace {

ExactResult ExactByDp(const Instance& inst, const PlannerInput& input) {
  const uint32_t n = static_cast<uint32_t>(inst.apis.size());
  const size_t n_masks = size_t{1} << n;

  std::vector<double> cost(n_masks, 0.0);
  for (size_t mask = 1; mask < n_masks; ++mask) {
    size_t low = mask & (~mask + 1);
    uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(mask));
    cost[mask] = cost[mask ^ low] + inst.api_cost[bit];
  }

  // coverage[mask] = weight of packages whose need is a subset of mask
  // (beyond the base weight), via a superset-sum DP.
  std::vector<double> coverage(n_masks, 0.0);
  for (uint32_t p = 0; p < inst.weight.size(); ++p) {
    if (inst.missing[p] == 0 || inst.missing[p] == kUncoverable) {
      continue;
    }
    size_t need_mask = 0;
    for (uint32_t i : inst.need[p]) {
      need_mask |= size_t{1} << i;
    }
    coverage[need_mask] += inst.weight[p];
  }
  for (uint32_t bit = 0; bit < n; ++bit) {
    for (size_t mask = 0; mask < n_masks; ++mask) {
      if (mask & (size_t{1} << bit)) {
        coverage[mask] += coverage[mask ^ (size_t{1} << bit)];
      }
    }
  }

  size_t best_mask = 0;
  for (size_t mask = 0; mask < n_masks; ++mask) {
    if (cost[mask] > input.budget + kEps) {
      continue;
    }
    if (input.max_actions != 0 &&
        static_cast<size_t>(__builtin_popcountll(mask)) >
            input.max_actions) {
      continue;
    }
    if (coverage[mask] > coverage[best_mask] + 1e-12 ||
        (coverage[mask] > coverage[best_mask] - 1e-12 &&
         cost[mask] < cost[best_mask] - kEps)) {
      best_mask = mask;
    }
  }

  ExactResult result;
  result.completeness = inst.Completeness(coverage[best_mask]);
  result.cost = cost[best_mask];
  for (uint32_t bit = 0; bit < n; ++bit) {
    if (best_mask & (size_t{1} << bit)) {
      result.chosen.push_back(inst.apis[bit]);
    }
  }
  result.optimal = true;
  return result;
}

struct BnbState {
  const Instance* inst = nullptr;
  const PlannerInput* input = nullptr;
  std::vector<uint32_t> pkgs;     // branching order (weight desc)
  std::vector<double> suffix;     // suffix[i] = max extra weight from i..end
  std::vector<bool> acquired;
  size_t acquired_count = 0;
  double cost = 0.0;
  size_t nodes = 0;
  size_t max_nodes = 0;
  bool truncated = false;

  double best_coverage = -1.0;
  double best_cost = 0.0;
  std::vector<bool> best_acquired;
};

void BnbDfs(BnbState* st, size_t i, double coverage) {
  if (++st->nodes > st->max_nodes) {
    st->truncated = true;
    return;
  }
  if (coverage > st->best_coverage + 1e-12) {
    st->best_coverage = coverage;
    st->best_cost = st->cost;
    st->best_acquired = st->acquired;
  }
  if (i >= st->pkgs.size() || st->truncated) {
    return;
  }
  if (coverage + st->suffix[i] <= st->best_coverage + 1e-12) {
    return;  // bound: even covering everything left cannot improve
  }
  const Instance& inst = *st->inst;
  uint32_t p = st->pkgs[i];

  std::vector<uint32_t> extra;
  double extra_cost = 0.0;
  for (uint32_t a : inst.need[p]) {
    if (!st->acquired[a]) {
      extra.push_back(a);
      extra_cost += inst.api_cost[a];
    }
  }
  if (extra.empty()) {
    // Already covered by earlier choices: no branch.
    BnbDfs(st, i + 1, coverage + inst.weight[p]);
    return;
  }

  bool fits = st->cost + extra_cost <= st->input->budget + kEps &&
              (st->input->max_actions == 0 ||
               st->acquired_count + extra.size() <= st->input->max_actions);
  if (fits) {
    for (uint32_t a : extra) {
      st->acquired[a] = true;
    }
    st->acquired_count += extra.size();
    st->cost += extra_cost;
    BnbDfs(st, i + 1, coverage + inst.weight[p]);
    st->cost -= extra_cost;
    st->acquired_count -= extra.size();
    for (uint32_t a : extra) {
      st->acquired[a] = false;
    }
  }
  BnbDfs(st, i + 1, coverage);
}

ExactResult ExactByBnb(const Instance& inst, const PlannerInput& input,
                       const ExactOptions& options) {
  BnbState st;
  st.inst = &inst;
  st.input = &input;
  st.max_nodes = options.max_nodes;
  st.acquired.assign(inst.apis.size(), false);

  for (uint32_t p = 0; p < inst.weight.size(); ++p) {
    if (inst.missing[p] != 0 && inst.missing[p] != kUncoverable &&
        inst.weight[p] > 0.0) {
      st.pkgs.push_back(p);
    }
  }
  std::sort(st.pkgs.begin(), st.pkgs.end(), [&inst](uint32_t a, uint32_t b) {
    if (inst.weight[a] != inst.weight[b]) {
      return inst.weight[a] > inst.weight[b];
    }
    return a < b;
  });
  st.suffix.assign(st.pkgs.size() + 1, 0.0);
  for (size_t i = st.pkgs.size(); i > 0; --i) {
    st.suffix[i - 1] = st.suffix[i] + inst.weight[st.pkgs[i - 1]];
  }

  BnbDfs(&st, 0, 0.0);

  ExactResult result;
  double best = std::max(st.best_coverage, 0.0);
  result.completeness = inst.Completeness(best);
  result.cost = st.best_cost;
  for (uint32_t i = 0; i < inst.apis.size(); ++i) {
    if (!st.best_acquired.empty() && st.best_acquired[i]) {
      result.chosen.push_back(inst.apis[i]);
    }
  }
  result.optimal = !st.truncated;
  return result;
}

}  // namespace

ExactResult ExactPlan(const PlannerInput& input, const ExactOptions& options) {
  Instance inst = BuildInstance(input);
  if (inst.apis.size() <= options.dp_max_candidates) {
    return ExactByDp(inst, input);
  }
  return ExactByBnb(inst, input, options);
}

PlannerInput RestrictToTopApis(const PlannerInput& input, size_t top_k) {
  PlannerInput restricted = input;
  restricted.candidate_whitelist.clear();
  Instance inst = BuildInstance(restricted);

  std::vector<uint32_t> order(inst.apis.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&inst](uint32_t a, uint32_t b) {
    if (inst.api_importance[a] != inst.api_importance[b]) {
      return inst.api_importance[a] > inst.api_importance[b];
    }
    return inst.apis[a] < inst.apis[b];
  });

  for (size_t i = 0; i < order.size() && i < top_k; ++i) {
    restricted.candidate_whitelist.insert(inst.apis[order[i]]);
  }
  return restricted;
}

// ---------------------------------------------------------------------------
// Export.
// ---------------------------------------------------------------------------

std::string PlanApiName(core::ApiId api,
                        const core::StringInterner& path_interner,
                        const core::StringInterner& libc_interner) {
  char buf[32];
  switch (api.kind) {
    case core::ApiKind::kSyscall: {
      std::string_view name = corpus::SyscallName(static_cast<int>(api.code));
      if (!name.empty()) {
        return std::string(name);
      }
      std::snprintf(buf, sizeof(buf), "syscall:%u", api.code);
      return buf;
    }
    case core::ApiKind::kIoctlOp:
    case core::ApiKind::kFcntlOp:
    case core::ApiKind::kPrctlOp:
      std::snprintf(buf, sizeof(buf), "0x%x", api.code);
      return buf;
    case core::ApiKind::kPseudoFile:
      if (api.code < path_interner.size()) {
        return path_interner.NameOf(api.code);
      }
      break;
    case core::ApiKind::kLibcFn:
      if (api.code < libc_interner.size()) {
        return libc_interner.NameOf(api.code);
      }
      break;
  }
  std::snprintf(buf, sizeof(buf), "%s:%u", core::ApiKindName(api.kind),
                api.code);
  return buf;
}

void WritePlanTsv(const SupportPlan& plan,
                  const core::StringInterner& path_interner,
                  const core::StringInterner& libc_interner,
                  std::ostream& os) {
  os << "rank\tkind\tapi\taction\tclass\tcost\tcumulative_cost\t"
        "completeness\timportance\n";
  char buf[128];
  size_t rank = 1;
  for (const PlanAction& action : plan.actions) {
    // %.9g keeps doubles byte-identical run-to-run without trailing noise.
    std::snprintf(buf, sizeof(buf), "%.9g\t%.9g\t%.9g\t%.9g", action.cost,
                  action.cumulative_cost, action.completeness_after,
                  action.importance);
    os << rank++ << '\t' << core::ApiKindName(action.api.kind) << '\t'
       << PlanApiName(action.api, path_interner, libc_interner) << '\t'
       << ActionName(action.action) << '\t'
       << EvidenceClassName(action.evidence) << '\t' << buf << '\n';
  }
}

}  // namespace lapis::plan
