// The support planner: given a study dataset, a set of already-supported
// APIs (the target system profile), a cost model, and optional audit
// evidence, compute the order in which to add API support — and how fully
// (full / fake / stub) — to maximize weighted completeness per unit cost.
//
// Three solvers share one problem formulation:
//   GreedyPlan            — marginal gain/cost over package-closure moves,
//                           lazy priority queue (stale entries re-evaluated
//                           on pop, affected packages re-pushed when a move
//                           shrinks their remaining cost).
//   ExactPlan             — optimal completeness at a budget: subset DP over
//                           API bitmasks when few candidates, else
//                           branch-and-bound over packages.
//   ImportanceOrderPlan   — the paper's §3.2 ranking as a baseline: add APIs
//                           in importance order, cost-blind.
//
// The objective mirrors core::WeightedCompleteness exactly (footprint
// containment restricted to evaluated kinds + dependency poisoning through
// closures), computed incrementally.

#ifndef LAPIS_SRC_PLAN_PLANNER_H_
#define LAPIS_SRC_PLAN_PLANNER_H_

#include <cstdint>
#include <limits>
#include <ostream>
#include <set>
#include <vector>

#include "src/core/api_id.h"
#include "src/core/dataset.h"
#include "src/plan/cost_model.h"
#include "src/plan/evidence.h"

namespace lapis::plan {

struct PlannerInput {
  const core::StudyDataset* dataset = nullptr;
  const CostModel* costs = nullptr;
  // APIs the target already implements (e.g. a Table 6 system's syscalls).
  std::set<core::ApiId> already_supported;
  // Kinds the target is evaluated on; empty = all kinds (matches
  // core::CompletenessOptions semantics).
  std::set<core::ApiKind> evaluated_kinds;
  // Dynamic-replay observations; empty = audit-blind (full everywhere).
  AuditEvidence evidence;
  // Stop once cumulative cost would exceed this.
  double budget = std::numeric_limits<double>::infinity();
  // Output cap: truncate the emitted action list after this many actions
  // (0 = unlimited). Unlike `budget` this is not a feasibility constraint —
  // the greedy may stop mid-move, leaving the last package part-acquired.
  size_t max_actions = 0;
  // Restrict plannable APIs to this set (empty = all candidates). Packages
  // needing an API outside the whitelist stay in the completeness
  // denominator but can never be covered — used to build small instances
  // the exact solver can certify.
  std::set<core::ApiId> candidate_whitelist;
};

struct PlanAction {
  core::ApiId api;
  SupportAction action = SupportAction::kFull;
  EvidenceClass evidence = EvidenceClass::kNoEvidence;
  double cost = 0.0;
  double cumulative_cost = 0.0;
  double completeness_after = 0.0;
  double importance = 0.0;
};

struct SupportPlan {
  std::vector<PlanAction> actions;
  double initial_completeness = 0.0;
  double final_completeness = 0.0;
  double total_cost = 0.0;
};

SupportPlan GreedyPlan(const PlannerInput& input);
SupportPlan ImportanceOrderPlan(const PlannerInput& input);

struct ExactOptions {
  // Use the subset-DP solver when the instance has at most this many
  // candidate APIs (memory is O(2^n)); otherwise branch-and-bound.
  size_t dp_max_candidates = 20;
  // Branch-and-bound node ceiling; exceeded => result.optimal = false.
  size_t max_nodes = 4000000;
};

struct ExactResult {
  double completeness = 0.0;   // best achievable at the budget
  double cost = 0.0;           // cost of the chosen set
  std::vector<core::ApiId> chosen;
  bool optimal = true;
};

ExactResult ExactPlan(const PlannerInput& input,
                      const ExactOptions& options = {});

// Narrows `input` to the `top_k` most important not-yet-supported APIs so
// ExactPlan stays tractable; everything else about the instance (weights,
// closures, denominator) is unchanged.
PlannerInput RestrictToTopApis(const PlannerInput& input, size_t top_k);

// Deterministic TSV export (columns: rank, kind, api, action, class, cost,
// cumulative_cost, completeness, importance). Doubles print with %.9g so
// identical plans are byte-identical across runs and --jobs settings.
void WritePlanTsv(const SupportPlan& plan,
                  const core::StringInterner& path_interner,
                  const core::StringInterner& libc_interner, std::ostream& os);

// Human-readable API name: syscall names from the table, vectored opcodes
// as "0x<hex>", pseudo-files / libc symbols from the interners.
std::string PlanApiName(core::ApiId api,
                        const core::StringInterner& path_interner,
                        const core::StringInterner& libc_interner);

}  // namespace lapis::plan

#endif  // LAPIS_SRC_PLAN_PLANNER_H_
