#include "src/plan/profiles.h"

#include <algorithm>
#include <cctype>

#include "src/corpus/system_profiles.h"

namespace lapis::plan {

namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

std::vector<std::string> KnownProfileNames() {
  std::vector<std::string> names = {"none", "all"};
  for (const auto& row : corpus::LinuxSystemPlans()) {
    names.push_back(row.name);
  }
  return names;
}

Result<core::SystemProfile> ResolveSystemProfile(
    const core::StudyDataset& dataset, const std::string& query) {
  const std::string needle = Lower(query);
  if (needle.empty() || needle == "none" || needle == "empty") {
    core::SystemProfile profile;
    profile.name = "none";
    profile.evaluated_kinds = {core::ApiKind::kSyscall};
    return profile;
  }
  if (needle == "all") {
    // Greenfield across every API family: empty evaluated_kinds means all
    // kinds count (core::CompletenessOptions semantics), so the plan spans
    // syscalls, vectored sub-ops, and pseudo-files alike.
    core::SystemProfile profile;
    profile.name = "all";
    profile.evaluated_kinds = {};
    return profile;
  }
  const corpus::SystemPlanRow* exact = nullptr;
  std::vector<const corpus::SystemPlanRow*> partial;
  for (const auto& row : corpus::LinuxSystemPlans()) {
    const std::string name = Lower(row.name);
    if (name == needle) {
      exact = &row;
      break;
    }
    if (name.find(needle) != std::string::npos) {
      partial.push_back(&row);
    }
  }
  const corpus::SystemPlanRow* chosen =
      exact != nullptr ? exact : (partial.size() == 1 ? partial[0] : nullptr);
  if (chosen == nullptr) {
    std::string known;
    for (const auto& name : KnownProfileNames()) {
      known += (known.empty() ? "" : ", ") + name;
    }
    return InvalidArgumentError(
        (partial.empty() ? "unknown system profile: "
                         : "ambiguous system profile: ") +
        query + " (known: " + known + ")");
  }
  return corpus::BuildSystemProfile(dataset, *chosen);
}

}  // namespace lapis::plan
