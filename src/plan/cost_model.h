// Per-API implementation cost model for the support planner (Loupe-style:
// an API can be fully implemented, faked with a plausible success, stubbed
// with -ENOSYS, or skipped entirely).
//
// Default costs derive from the API kind (a syscall is more work than a
// libc shim) and, for vectored sub-ops (ioctl/fcntl/prctl), from the
// family's used breadth: the demultiplexer is built once, so families with
// many exercised sub-ops amortize the setup surcharge across them. Every
// number is overridable from a TSV file (see LoadCostOverridesTsv).

#ifndef LAPIS_SRC_PLAN_COST_MODEL_H_
#define LAPIS_SRC_PLAN_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/core/api_id.h"
#include "src/util/status.h"

namespace lapis::plan {

// How fully an API is supported, ordered by ambition. The planner picks the
// *cheapest sufficient* action per API (evidence.h decides sufficiency).
enum class SupportAction : uint8_t {
  kSkip = 0,  // leave unimplemented (only for APIs no package needs)
  kStub = 1,  // return -ENOSYS; adequate for claimed-but-never-exercised
  kFake = 2,  // return plausible success; adequate for most vectored sub-ops
  kFull = 3,  // real implementation
};

inline constexpr int kSupportActionCount = 4;

const char* ActionName(SupportAction action);
std::optional<SupportAction> ParseAction(std::string_view name);

class CostModel {
 public:
  // The documented defaults (README "cost-model TSV" section).
  static CostModel Defaults();

  // Cost of taking `action` on `api`. `family_breadth` is the number of
  // distinct used sub-ops of the API's vectored family (ignored for
  // non-vectored kinds); larger families amortize the demux surcharge.
  double ActionCost(core::ApiId api, SupportAction action,
                    size_t family_breadth) const;

  // ---- Override surface (TSV loader + tests) ----
  // Kind-wide base cost of a full implementation.
  void SetKindBase(core::ApiKind kind, double cost);
  // Kind-wide cost of one action (full/stub/fake) for every API of `kind`.
  void SetKindActionCost(core::ApiKind kind, SupportAction action,
                         double cost);
  // Exact per-API cost for one action (strongest override).
  void SetApiActionCost(core::ApiId api, SupportAction action, double cost);

  double stub_cost() const { return stub_cost_; }

 private:
  CostModel() = default;

  // Full-implementation base cost per ApiKind.
  std::array<double, core::kApiKindCount> full_base_{};
  // Demux setup surcharge split across a vectored family's used breadth.
  double demux_surcharge_ = 8.0;
  double stub_cost_ = 1.0;
  double fake_divisor_ = 3.0;  // fake = full / fake_divisor (min stub_cost)

  // (kind, action) -> cost; overrides the derived defaults.
  std::map<std::pair<uint8_t, uint8_t>, double> kind_action_;
  // (ApiId::Encode(), action) -> cost; overrides everything.
  std::map<std::pair<int64_t, uint8_t>, double> api_action_;
};

// Parses cost overrides from TSV. Grammar (tab- or space-separated,
// '#' comments):
//
//   <kind> <api> <action> <cost>
//
// kind:   syscall | ioctl | fcntl | prctl | pseudo | libc
// api:    '*' (kind-wide), a syscall name, a decimal/0x numeral for
//         vectored opcodes, or a pseudo-file path / libc symbol
// action: full | stub | fake
// cost:   non-negative decimal
//
// Unknown syscall names and malformed lines are errors; pseudo-file paths
// and libc symbols absent from the study's interners are ignored (an API
// no package uses never enters a plan, so its cost is irrelevant).
Status LoadCostOverridesTsv(std::istream& in,
                            const core::StringInterner& path_interner,
                            const core::StringInterner& libc_interner,
                            CostModel* model);

}  // namespace lapis::plan

#endif  // LAPIS_SRC_PLAN_COST_MODEL_H_
