#include "src/plan/evidence.h"

namespace lapis::plan {

namespace {

bool IsVectoredKind(core::ApiKind kind) {
  return kind == core::ApiKind::kIoctlOp || kind == core::ApiKind::kFcntlOp ||
         kind == core::ApiKind::kPrctlOp;
}

}  // namespace

const char* EvidenceClassName(EvidenceClass cls) {
  switch (cls) {
    case EvidenceClass::kNoEvidence:
      return "no-evidence";
    case EvidenceClass::kStubSafe:
      return "stub-safe";
    case EvidenceClass::kMustImplement:
      return "must-implement";
  }
  return "?";
}

EvidenceClass ClassifyApi(const AuditEvidence& evidence, core::ApiId api) {
  if (!evidence.CoversKind(api.kind)) {
    return EvidenceClass::kNoEvidence;
  }
  if (evidence.observed.contains(api)) {
    return EvidenceClass::kMustImplement;
  }
  return EvidenceClass::kStubSafe;
}

SupportAction MinimalSufficientAction(EvidenceClass cls, core::ApiKind kind) {
  switch (cls) {
    case EvidenceClass::kMustImplement:
      return IsVectoredKind(kind) ? SupportAction::kFake : SupportAction::kFull;
    case EvidenceClass::kStubSafe:
      return SupportAction::kStub;
    case EvidenceClass::kNoEvidence:
      return SupportAction::kFull;
  }
  return SupportAction::kFull;
}

}  // namespace lapis::plan
