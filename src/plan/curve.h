// Partial-support curves: weighted completeness as a function of how many
// of a vectored family's sub-ops (or any kind's APIs) are supported, in
// importance order. Extracted from bench_ioctl_partial_support so the §2
// "ioctl cannot be half-implemented" sweep, the planner's frontier bench,
// and the serve daemon all share one implementation.

#ifndef LAPIS_SRC_PLAN_CURVE_H_
#define LAPIS_SRC_PLAN_CURVE_H_

#include <cstddef>
#include <vector>

#include "src/core/dataset.h"

namespace lapis::plan {

struct CurvePoint {
  size_t supported_count = 0;           // top-K APIs of the kind supported
  double weighted_completeness = 0.0;   // evaluated on that kind only
};

// For each checkpoint K (clamped to the ranked universe size), the weighted
// completeness of a system supporting exactly the K most important APIs of
// `kind` — every other kind is assumed fully supported. `universe` may add
// zero-importance APIs and may contain duplicates (they are collapsed by
// the ranking). Checkpoints are evaluated in the given order; points for
// equal/clamped checkpoints repeat the same completeness, so a sorted
// checkpoint list yields a monotonically non-decreasing curve.
std::vector<CurvePoint> PartialSupportCurve(
    const core::StudyDataset& dataset, core::ApiKind kind,
    const std::vector<size_t>& checkpoints,
    const std::vector<core::ApiId>& universe = {});

// The checkpoint schedule bench_ioctl_partial_support prints (dense around
// the 52-opcode universal block).
const std::vector<size_t>& IoctlCurveCheckpoints();

}  // namespace lapis::plan

#endif  // LAPIS_SRC_PLAN_CURVE_H_
