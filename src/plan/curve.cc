#include "src/plan/curve.h"

#include <algorithm>
#include <set>

#include "src/core/completeness.h"

namespace lapis::plan {

std::vector<CurvePoint> PartialSupportCurve(
    const core::StudyDataset& dataset, core::ApiKind kind,
    const std::vector<size_t>& checkpoints,
    const std::vector<core::ApiId>& universe) {
  // RankByImportance collapses duplicate universe entries into one ranked
  // slot, so a checkpoint K always means K *distinct* APIs.
  std::vector<core::ApiId> ranked = dataset.RankByImportance(kind, universe);

  core::CompletenessOptions options;
  options.evaluated_kinds = {kind};

  // Evaluate each distinct prefix size once; checkpoints then look up their
  // clamped prefix. (Completeness evaluation dominates, so computing only
  // the needed prefixes matters at 600+ opcode universes.)
  std::set<size_t> prefix_sizes;
  for (size_t k : checkpoints) {
    prefix_sizes.insert(std::min(k, ranked.size()));
  }

  std::map<size_t, double> completeness_at;
  std::set<core::ApiId> supported;
  size_t cursor = 0;
  for (size_t prefix : prefix_sizes) {
    while (cursor < prefix) {
      supported.insert(ranked[cursor++]);
    }
    completeness_at[prefix] =
        core::WeightedCompleteness(dataset, supported, options);
  }

  std::vector<CurvePoint> curve;
  curve.reserve(checkpoints.size());
  for (size_t k : checkpoints) {
    CurvePoint point;
    point.supported_count = std::min(k, ranked.size());
    point.weighted_completeness = completeness_at[point.supported_count];
    curve.push_back(point);
  }
  return curve;
}

const std::vector<size_t>& IoctlCurveCheckpoints() {
  static const std::vector<size_t> kCheckpoints = {
      0, 1, 2, 5, 10, 20, 40, 47, 51, 52, 60, 100, 188, 280, 635};
  return kCheckpoints;
}

}  // namespace lapis::plan
