// Glue between the planner and the study's Table 6 system profiles: resolve
// a user-typed system name ("freebsd", "Graphene (+sched)", "none") to a
// concrete supported-syscall profile against a dataset's importance ranking.

#ifndef LAPIS_SRC_PLAN_PROFILES_H_
#define LAPIS_SRC_PLAN_PROFILES_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/systems.h"
#include "src/util/status.h"

namespace lapis::plan {

// Names accepted by ResolveSystemProfile (the Table 6 rows plus "none").
std::vector<std::string> KnownProfileNames();

// Resolves `query` to a SystemProfile. "none" / "" yields an empty profile
// (greenfield plan, syscalls evaluated); "all" evaluates every API kind
// (vectored sub-ops and pseudo-files too). Otherwise the match is
// case-insensitive: an exact name wins, else a unique substring of exactly
// one Table 6 row; no match or an ambiguous one is an InvalidArgument
// error listing the known names.
Result<core::SystemProfile> ResolveSystemProfile(
    const core::StudyDataset& dataset, const std::string& query);

}  // namespace lapis::plan

#endif  // LAPIS_SRC_PLAN_PROFILES_H_
