#include "src/plan/cost_model.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/corpus/syscall_table.h"
#include "src/util/strings.h"

namespace lapis::plan {

namespace {

bool IsVectoredKind(core::ApiKind kind) {
  return kind == core::ApiKind::kIoctlOp || kind == core::ApiKind::kFcntlOp ||
         kind == core::ApiKind::kPrctlOp;
}

std::optional<core::ApiKind> ParseKindName(std::string_view name) {
  if (name == "syscall") return core::ApiKind::kSyscall;
  if (name == "ioctl") return core::ApiKind::kIoctlOp;
  if (name == "fcntl") return core::ApiKind::kFcntlOp;
  if (name == "prctl") return core::ApiKind::kPrctlOp;
  if (name == "pseudo" || name == "file") return core::ApiKind::kPseudoFile;
  if (name == "libc") return core::ApiKind::kLibcFn;
  return std::nullopt;
}

std::optional<uint32_t> ParseNumeral(const std::string& s) {
  if (s.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  unsigned long long value = std::strtoull(s.c_str(), &end, 0);
  if (end == nullptr || *end != '\0' || value > 0xffffffffull) {
    return std::nullopt;
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

const char* ActionName(SupportAction action) {
  switch (action) {
    case SupportAction::kSkip:
      return "skip";
    case SupportAction::kStub:
      return "stub";
    case SupportAction::kFake:
      return "fake";
    case SupportAction::kFull:
      return "full";
  }
  return "?";
}

std::optional<SupportAction> ParseAction(std::string_view name) {
  if (name == "skip") return SupportAction::kSkip;
  if (name == "stub") return SupportAction::kStub;
  if (name == "fake") return SupportAction::kFake;
  if (name == "full") return SupportAction::kFull;
  return std::nullopt;
}

CostModel CostModel::Defaults() {
  CostModel model;
  model.full_base_[static_cast<size_t>(core::ApiKind::kSyscall)] = 10.0;
  model.full_base_[static_cast<size_t>(core::ApiKind::kIoctlOp)] = 6.0;
  model.full_base_[static_cast<size_t>(core::ApiKind::kFcntlOp)] = 5.0;
  model.full_base_[static_cast<size_t>(core::ApiKind::kPrctlOp)] = 5.0;
  model.full_base_[static_cast<size_t>(core::ApiKind::kPseudoFile)] = 3.0;
  model.full_base_[static_cast<size_t>(core::ApiKind::kLibcFn)] = 2.0;
  return model;
}

double CostModel::ActionCost(core::ApiId api, SupportAction action,
                             size_t family_breadth) const {
  if (action == SupportAction::kSkip) {
    return 0.0;
  }
  auto api_it = api_action_.find(
      {api.Encode(), static_cast<uint8_t>(action)});
  if (api_it != api_action_.end()) {
    return api_it->second;
  }
  auto kind_it = kind_action_.find(
      {static_cast<uint8_t>(api.kind), static_cast<uint8_t>(action)});
  if (kind_it != kind_action_.end()) {
    return kind_it->second;
  }
  if (action == SupportAction::kStub) {
    return stub_cost_;
  }
  double full = full_base_[static_cast<size_t>(api.kind)];
  if (IsVectoredKind(api.kind)) {
    // One demultiplexer per family, amortized across its used sub-ops.
    full += demux_surcharge_ / static_cast<double>(
                                   std::max<size_t>(family_breadth, 1));
  }
  if (action == SupportAction::kFake) {
    return std::max(stub_cost_, full / fake_divisor_);
  }
  return full;
}

void CostModel::SetKindBase(core::ApiKind kind, double cost) {
  full_base_[static_cast<size_t>(kind)] = cost;
}

void CostModel::SetKindActionCost(core::ApiKind kind, SupportAction action,
                                  double cost) {
  kind_action_[{static_cast<uint8_t>(kind), static_cast<uint8_t>(action)}] =
      cost;
}

void CostModel::SetApiActionCost(core::ApiId api, SupportAction action,
                                 double cost) {
  api_action_[{api.Encode(), static_cast<uint8_t>(action)}] = cost;
}

Status LoadCostOverridesTsv(std::istream& in,
                            const core::StringInterner& path_interner,
                            const core::StringInterner& libc_interner,
                            CostModel* model) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string kind_name;
    std::string api_name;
    std::string action_name;
    std::string cost_text;
    if (!(fields >> kind_name)) {
      continue;  // blank line
    }
    if (!(fields >> api_name >> action_name >> cost_text)) {
      return InvalidArgumentError(
          "cost TSV line " + std::to_string(line_no) +
          ": expected <kind> <api> <action> <cost>");
    }
    auto kind = ParseKindName(kind_name);
    if (!kind.has_value()) {
      return InvalidArgumentError("cost TSV line " + std::to_string(line_no) +
                                  ": unknown kind '" + kind_name + "'");
    }
    auto action = ParseAction(action_name);
    if (!action.has_value() || *action == SupportAction::kSkip) {
      return InvalidArgumentError("cost TSV line " + std::to_string(line_no) +
                                  ": action must be full|stub|fake, got '" +
                                  action_name + "'");
    }
    char* end = nullptr;
    double cost = std::strtod(cost_text.c_str(), &end);
    if (end == nullptr || *end != '\0' || cost < 0.0) {
      return InvalidArgumentError("cost TSV line " + std::to_string(line_no) +
                                  ": bad cost '" + cost_text + "'");
    }
    if (api_name == "*") {
      model->SetKindActionCost(*kind, *action, cost);
      continue;
    }
    uint32_t code = 0;
    switch (*kind) {
      case core::ApiKind::kSyscall: {
        auto nr = corpus::SyscallNumber(api_name);
        if (nr.has_value()) {
          code = static_cast<uint32_t>(*nr);
        } else if (auto numeral = ParseNumeral(api_name)) {
          code = *numeral;
        } else {
          return InvalidArgumentError("cost TSV line " +
                                      std::to_string(line_no) +
                                      ": unknown syscall '" + api_name + "'");
        }
        break;
      }
      case core::ApiKind::kIoctlOp:
      case core::ApiKind::kFcntlOp:
      case core::ApiKind::kPrctlOp: {
        auto numeral = ParseNumeral(api_name);
        if (!numeral.has_value()) {
          return InvalidArgumentError(
              "cost TSV line " + std::to_string(line_no) +
              ": vectored opcodes are numeric, got '" + api_name + "'");
        }
        code = *numeral;
        break;
      }
      case core::ApiKind::kPseudoFile: {
        uint32_t id = path_interner.Find(api_name);
        if (id == UINT32_MAX) {
          continue;  // path unused in this study; cost is irrelevant
        }
        code = id;
        break;
      }
      case core::ApiKind::kLibcFn: {
        uint32_t id = libc_interner.Find(api_name);
        if (id == UINT32_MAX) {
          continue;
        }
        code = id;
        break;
      }
    }
    model->SetApiActionCost(core::ApiId{*kind, code}, *action, cost);
  }
  return Status::Ok();
}

}  // namespace lapis::plan
