// Folding the differential auditor's dynamic-replay observations into the
// planner (Loupe's key insight: a *claimed* API that no execution ever
// touches does not need a real implementation — a -ENOSYS stub suffices).
//
// Evidence classes per API:
//   kMustImplement — observed during dynamic replay; a stub would be hit.
//   kStubSafe      — claimed by some footprint but never observed.
//   kNoEvidence    — the auditor produced no coverage for this API's kind
//                    (or no audit ran at all); assume the worst.

#ifndef LAPIS_SRC_PLAN_EVIDENCE_H_
#define LAPIS_SRC_PLAN_EVIDENCE_H_

#include <cstdint>
#include <set>

#include "src/core/api_id.h"
#include "src/plan/cost_model.h"

namespace lapis::plan {

// Corpus-wide dynamic-replay observations, merged across every audited
// executable. `kinds_mask` has bit (1 << kind) set for each ApiKind the
// replay instrumented — absence of an observation only means something for
// covered kinds.
struct AuditEvidence {
  uint8_t kinds_mask = 0;
  std::set<core::ApiId> observed;

  bool CoversKind(core::ApiKind kind) const {
    return (kinds_mask & (1u << static_cast<uint8_t>(kind))) != 0;
  }
  bool empty() const { return kinds_mask == 0; }
};

enum class EvidenceClass : uint8_t {
  kNoEvidence = 0,
  kStubSafe = 1,
  kMustImplement = 2,
};

const char* EvidenceClassName(EvidenceClass cls);

EvidenceClass ClassifyApi(const AuditEvidence& evidence, core::ApiId api);

// The cheapest action that still satisfies every package needing `api`,
// given its evidence class:
//   must-implement + vectored sub-op  -> kFake (plausible success per op)
//   must-implement + anything else    -> kFull
//   stub-safe                         -> kStub
//   no evidence                       -> kFull (cannot risk a stub)
// Audit-blind planning passes an empty AuditEvidence and lands on kFull
// everywhere, so evidence never makes a plan more expensive.
SupportAction MinimalSufficientAction(EvidenceClass cls, core::ApiKind kind);

}  // namespace lapis::plan

#endif  // LAPIS_SRC_PLAN_EVIDENCE_H_
