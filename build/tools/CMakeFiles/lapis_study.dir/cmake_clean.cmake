file(REMOVE_RECURSE
  "CMakeFiles/lapis_study.dir/lapis_study.cc.o"
  "CMakeFiles/lapis_study.dir/lapis_study.cc.o.d"
  "lapis_study"
  "lapis_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
