# Empty compiler generated dependencies file for lapis_study.
# This may be replaced when dependencies are built.
