# Empty compiler generated dependencies file for deprecation_impact.
# This may be replaced when dependencies are built.
