file(REMOVE_RECURSE
  "CMakeFiles/deprecation_impact.dir/deprecation_impact.cpp.o"
  "CMakeFiles/deprecation_impact.dir/deprecation_impact.cpp.o.d"
  "deprecation_impact"
  "deprecation_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deprecation_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
