# Empty compiler generated dependencies file for seccomp_profile.
# This may be replaced when dependencies are built.
