file(REMOVE_RECURSE
  "CMakeFiles/seccomp_profile.dir/seccomp_profile.cpp.o"
  "CMakeFiles/seccomp_profile.dir/seccomp_profile.cpp.o.d"
  "seccomp_profile"
  "seccomp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seccomp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
