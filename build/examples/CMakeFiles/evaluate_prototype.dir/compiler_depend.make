# Empty compiler generated dependencies file for evaluate_prototype.
# This may be replaced when dependencies are built.
