file(REMOVE_RECURSE
  "CMakeFiles/evaluate_prototype.dir/evaluate_prototype.cpp.o"
  "CMakeFiles/evaluate_prototype.dir/evaluate_prototype.cpp.o.d"
  "evaluate_prototype"
  "evaluate_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluate_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
