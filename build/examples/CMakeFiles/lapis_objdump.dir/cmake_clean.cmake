file(REMOVE_RECURSE
  "CMakeFiles/lapis_objdump.dir/lapis_objdump.cpp.o"
  "CMakeFiles/lapis_objdump.dir/lapis_objdump.cpp.o.d"
  "lapis_objdump"
  "lapis_objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
