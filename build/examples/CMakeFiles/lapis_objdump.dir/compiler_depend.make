# Empty compiler generated dependencies file for lapis_objdump.
# This may be replaced when dependencies are built.
