# Empty dependencies file for lapis_package.
# This may be replaced when dependencies are built.
