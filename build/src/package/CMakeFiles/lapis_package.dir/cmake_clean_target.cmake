file(REMOVE_RECURSE
  "liblapis_package.a"
)
