file(REMOVE_RECURSE
  "CMakeFiles/lapis_package.dir/popcon.cc.o"
  "CMakeFiles/lapis_package.dir/popcon.cc.o.d"
  "CMakeFiles/lapis_package.dir/repository.cc.o"
  "CMakeFiles/lapis_package.dir/repository.cc.o.d"
  "liblapis_package.a"
  "liblapis_package.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
