
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disasm/decoder.cc" "src/disasm/CMakeFiles/lapis_disasm.dir/decoder.cc.o" "gcc" "src/disasm/CMakeFiles/lapis_disasm.dir/decoder.cc.o.d"
  "/root/repo/src/disasm/formatter.cc" "src/disasm/CMakeFiles/lapis_disasm.dir/formatter.cc.o" "gcc" "src/disasm/CMakeFiles/lapis_disasm.dir/formatter.cc.o.d"
  "/root/repo/src/disasm/insn.cc" "src/disasm/CMakeFiles/lapis_disasm.dir/insn.cc.o" "gcc" "src/disasm/CMakeFiles/lapis_disasm.dir/insn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
