file(REMOVE_RECURSE
  "CMakeFiles/lapis_disasm.dir/decoder.cc.o"
  "CMakeFiles/lapis_disasm.dir/decoder.cc.o.d"
  "CMakeFiles/lapis_disasm.dir/formatter.cc.o"
  "CMakeFiles/lapis_disasm.dir/formatter.cc.o.d"
  "CMakeFiles/lapis_disasm.dir/insn.cc.o"
  "CMakeFiles/lapis_disasm.dir/insn.cc.o.d"
  "liblapis_disasm.a"
  "liblapis_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
