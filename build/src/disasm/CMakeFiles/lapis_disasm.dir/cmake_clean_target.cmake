file(REMOVE_RECURSE
  "liblapis_disasm.a"
)
