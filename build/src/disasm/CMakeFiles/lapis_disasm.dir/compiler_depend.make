# Empty compiler generated dependencies file for lapis_disasm.
# This may be replaced when dependencies are built.
