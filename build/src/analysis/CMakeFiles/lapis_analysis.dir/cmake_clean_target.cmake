file(REMOVE_RECURSE
  "liblapis_analysis.a"
)
