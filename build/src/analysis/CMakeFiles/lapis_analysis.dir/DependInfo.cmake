
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/binary_analyzer.cc" "src/analysis/CMakeFiles/lapis_analysis.dir/binary_analyzer.cc.o" "gcc" "src/analysis/CMakeFiles/lapis_analysis.dir/binary_analyzer.cc.o.d"
  "/root/repo/src/analysis/db_pipeline.cc" "src/analysis/CMakeFiles/lapis_analysis.dir/db_pipeline.cc.o" "gcc" "src/analysis/CMakeFiles/lapis_analysis.dir/db_pipeline.cc.o.d"
  "/root/repo/src/analysis/dynamic_trace.cc" "src/analysis/CMakeFiles/lapis_analysis.dir/dynamic_trace.cc.o" "gcc" "src/analysis/CMakeFiles/lapis_analysis.dir/dynamic_trace.cc.o.d"
  "/root/repo/src/analysis/footprint.cc" "src/analysis/CMakeFiles/lapis_analysis.dir/footprint.cc.o" "gcc" "src/analysis/CMakeFiles/lapis_analysis.dir/footprint.cc.o.d"
  "/root/repo/src/analysis/library_resolver.cc" "src/analysis/CMakeFiles/lapis_analysis.dir/library_resolver.cc.o" "gcc" "src/analysis/CMakeFiles/lapis_analysis.dir/library_resolver.cc.o.d"
  "/root/repo/src/analysis/script_scanner.cc" "src/analysis/CMakeFiles/lapis_analysis.dir/script_scanner.cc.o" "gcc" "src/analysis/CMakeFiles/lapis_analysis.dir/script_scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/lapis_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/disasm/CMakeFiles/lapis_disasm.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lapis_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
