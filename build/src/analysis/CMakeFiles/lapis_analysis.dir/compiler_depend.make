# Empty compiler generated dependencies file for lapis_analysis.
# This may be replaced when dependencies are built.
