file(REMOVE_RECURSE
  "CMakeFiles/lapis_analysis.dir/binary_analyzer.cc.o"
  "CMakeFiles/lapis_analysis.dir/binary_analyzer.cc.o.d"
  "CMakeFiles/lapis_analysis.dir/db_pipeline.cc.o"
  "CMakeFiles/lapis_analysis.dir/db_pipeline.cc.o.d"
  "CMakeFiles/lapis_analysis.dir/dynamic_trace.cc.o"
  "CMakeFiles/lapis_analysis.dir/dynamic_trace.cc.o.d"
  "CMakeFiles/lapis_analysis.dir/footprint.cc.o"
  "CMakeFiles/lapis_analysis.dir/footprint.cc.o.d"
  "CMakeFiles/lapis_analysis.dir/library_resolver.cc.o"
  "CMakeFiles/lapis_analysis.dir/library_resolver.cc.o.d"
  "CMakeFiles/lapis_analysis.dir/script_scanner.cc.o"
  "CMakeFiles/lapis_analysis.dir/script_scanner.cc.o.d"
  "liblapis_analysis.a"
  "liblapis_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
