file(REMOVE_RECURSE
  "CMakeFiles/lapis_core.dir/api_id.cc.o"
  "CMakeFiles/lapis_core.dir/api_id.cc.o.d"
  "CMakeFiles/lapis_core.dir/completeness.cc.o"
  "CMakeFiles/lapis_core.dir/completeness.cc.o.d"
  "CMakeFiles/lapis_core.dir/dataset.cc.o"
  "CMakeFiles/lapis_core.dir/dataset.cc.o.d"
  "CMakeFiles/lapis_core.dir/diff.cc.o"
  "CMakeFiles/lapis_core.dir/diff.cc.o.d"
  "CMakeFiles/lapis_core.dir/libc_analysis.cc.o"
  "CMakeFiles/lapis_core.dir/libc_analysis.cc.o.d"
  "CMakeFiles/lapis_core.dir/report.cc.o"
  "CMakeFiles/lapis_core.dir/report.cc.o.d"
  "CMakeFiles/lapis_core.dir/seccomp.cc.o"
  "CMakeFiles/lapis_core.dir/seccomp.cc.o.d"
  "CMakeFiles/lapis_core.dir/systems.cc.o"
  "CMakeFiles/lapis_core.dir/systems.cc.o.d"
  "liblapis_core.a"
  "liblapis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
