# Empty dependencies file for lapis_core.
# This may be replaced when dependencies are built.
