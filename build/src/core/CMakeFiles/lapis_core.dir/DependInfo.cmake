
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api_id.cc" "src/core/CMakeFiles/lapis_core.dir/api_id.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/api_id.cc.o.d"
  "/root/repo/src/core/completeness.cc" "src/core/CMakeFiles/lapis_core.dir/completeness.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/completeness.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/core/CMakeFiles/lapis_core.dir/dataset.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/dataset.cc.o.d"
  "/root/repo/src/core/diff.cc" "src/core/CMakeFiles/lapis_core.dir/diff.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/diff.cc.o.d"
  "/root/repo/src/core/libc_analysis.cc" "src/core/CMakeFiles/lapis_core.dir/libc_analysis.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/libc_analysis.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/lapis_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/report.cc.o.d"
  "/root/repo/src/core/seccomp.cc" "src/core/CMakeFiles/lapis_core.dir/seccomp.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/seccomp.cc.o.d"
  "/root/repo/src/core/systems.cc" "src/core/CMakeFiles/lapis_core.dir/systems.cc.o" "gcc" "src/core/CMakeFiles/lapis_core.dir/systems.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
