file(REMOVE_RECURSE
  "liblapis_core.a"
)
