# Empty dependencies file for lapis_elf.
# This may be replaced when dependencies are built.
