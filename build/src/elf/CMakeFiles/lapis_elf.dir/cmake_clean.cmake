file(REMOVE_RECURSE
  "CMakeFiles/lapis_elf.dir/elf_builder.cc.o"
  "CMakeFiles/lapis_elf.dir/elf_builder.cc.o.d"
  "CMakeFiles/lapis_elf.dir/elf_image.cc.o"
  "CMakeFiles/lapis_elf.dir/elf_image.cc.o.d"
  "CMakeFiles/lapis_elf.dir/elf_reader.cc.o"
  "CMakeFiles/lapis_elf.dir/elf_reader.cc.o.d"
  "liblapis_elf.a"
  "liblapis_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
