file(REMOVE_RECURSE
  "liblapis_elf.a"
)
