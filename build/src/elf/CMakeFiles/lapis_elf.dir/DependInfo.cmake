
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elf/elf_builder.cc" "src/elf/CMakeFiles/lapis_elf.dir/elf_builder.cc.o" "gcc" "src/elf/CMakeFiles/lapis_elf.dir/elf_builder.cc.o.d"
  "/root/repo/src/elf/elf_image.cc" "src/elf/CMakeFiles/lapis_elf.dir/elf_image.cc.o" "gcc" "src/elf/CMakeFiles/lapis_elf.dir/elf_image.cc.o.d"
  "/root/repo/src/elf/elf_reader.cc" "src/elf/CMakeFiles/lapis_elf.dir/elf_reader.cc.o" "gcc" "src/elf/CMakeFiles/lapis_elf.dir/elf_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
