file(REMOVE_RECURSE
  "liblapis_util.a"
)
