# Empty dependencies file for lapis_util.
# This may be replaced when dependencies are built.
