file(REMOVE_RECURSE
  "CMakeFiles/lapis_util.dir/bytes.cc.o"
  "CMakeFiles/lapis_util.dir/bytes.cc.o.d"
  "CMakeFiles/lapis_util.dir/flags.cc.o"
  "CMakeFiles/lapis_util.dir/flags.cc.o.d"
  "CMakeFiles/lapis_util.dir/prng.cc.o"
  "CMakeFiles/lapis_util.dir/prng.cc.o.d"
  "CMakeFiles/lapis_util.dir/status.cc.o"
  "CMakeFiles/lapis_util.dir/status.cc.o.d"
  "CMakeFiles/lapis_util.dir/strings.cc.o"
  "CMakeFiles/lapis_util.dir/strings.cc.o.d"
  "CMakeFiles/lapis_util.dir/table_writer.cc.o"
  "CMakeFiles/lapis_util.dir/table_writer.cc.o.d"
  "liblapis_util.a"
  "liblapis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
