file(REMOVE_RECURSE
  "liblapis_corpus.a"
)
