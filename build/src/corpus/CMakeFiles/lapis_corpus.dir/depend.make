# Empty dependencies file for lapis_corpus.
# This may be replaced when dependencies are built.
