file(REMOVE_RECURSE
  "CMakeFiles/lapis_corpus.dir/api_universe.cc.o"
  "CMakeFiles/lapis_corpus.dir/api_universe.cc.o.d"
  "CMakeFiles/lapis_corpus.dir/binary_synth.cc.o"
  "CMakeFiles/lapis_corpus.dir/binary_synth.cc.o.d"
  "CMakeFiles/lapis_corpus.dir/dataset_io.cc.o"
  "CMakeFiles/lapis_corpus.dir/dataset_io.cc.o.d"
  "CMakeFiles/lapis_corpus.dir/distro_spec.cc.o"
  "CMakeFiles/lapis_corpus.dir/distro_spec.cc.o.d"
  "CMakeFiles/lapis_corpus.dir/study_runner.cc.o"
  "CMakeFiles/lapis_corpus.dir/study_runner.cc.o.d"
  "CMakeFiles/lapis_corpus.dir/syscall_table.cc.o"
  "CMakeFiles/lapis_corpus.dir/syscall_table.cc.o.d"
  "CMakeFiles/lapis_corpus.dir/system_profiles.cc.o"
  "CMakeFiles/lapis_corpus.dir/system_profiles.cc.o.d"
  "liblapis_corpus.a"
  "liblapis_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
