
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/api_universe.cc" "src/corpus/CMakeFiles/lapis_corpus.dir/api_universe.cc.o" "gcc" "src/corpus/CMakeFiles/lapis_corpus.dir/api_universe.cc.o.d"
  "/root/repo/src/corpus/binary_synth.cc" "src/corpus/CMakeFiles/lapis_corpus.dir/binary_synth.cc.o" "gcc" "src/corpus/CMakeFiles/lapis_corpus.dir/binary_synth.cc.o.d"
  "/root/repo/src/corpus/dataset_io.cc" "src/corpus/CMakeFiles/lapis_corpus.dir/dataset_io.cc.o" "gcc" "src/corpus/CMakeFiles/lapis_corpus.dir/dataset_io.cc.o.d"
  "/root/repo/src/corpus/distro_spec.cc" "src/corpus/CMakeFiles/lapis_corpus.dir/distro_spec.cc.o" "gcc" "src/corpus/CMakeFiles/lapis_corpus.dir/distro_spec.cc.o.d"
  "/root/repo/src/corpus/study_runner.cc" "src/corpus/CMakeFiles/lapis_corpus.dir/study_runner.cc.o" "gcc" "src/corpus/CMakeFiles/lapis_corpus.dir/study_runner.cc.o.d"
  "/root/repo/src/corpus/syscall_table.cc" "src/corpus/CMakeFiles/lapis_corpus.dir/syscall_table.cc.o" "gcc" "src/corpus/CMakeFiles/lapis_corpus.dir/syscall_table.cc.o.d"
  "/root/repo/src/corpus/system_profiles.cc" "src/corpus/CMakeFiles/lapis_corpus.dir/system_profiles.cc.o" "gcc" "src/corpus/CMakeFiles/lapis_corpus.dir/system_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/lapis_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/disasm/CMakeFiles/lapis_disasm.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/lapis_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lapis_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/package/CMakeFiles/lapis_package.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lapis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lapis_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
