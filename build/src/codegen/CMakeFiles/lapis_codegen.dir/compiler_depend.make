# Empty compiler generated dependencies file for lapis_codegen.
# This may be replaced when dependencies are built.
