file(REMOVE_RECURSE
  "liblapis_codegen.a"
)
