
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/function_builder.cc" "src/codegen/CMakeFiles/lapis_codegen.dir/function_builder.cc.o" "gcc" "src/codegen/CMakeFiles/lapis_codegen.dir/function_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/lapis_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/disasm/CMakeFiles/lapis_disasm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
