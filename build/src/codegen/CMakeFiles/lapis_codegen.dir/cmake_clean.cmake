file(REMOVE_RECURSE
  "CMakeFiles/lapis_codegen.dir/function_builder.cc.o"
  "CMakeFiles/lapis_codegen.dir/function_builder.cc.o.d"
  "liblapis_codegen.a"
  "liblapis_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
