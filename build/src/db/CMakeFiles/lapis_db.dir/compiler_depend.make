# Empty compiler generated dependencies file for lapis_db.
# This may be replaced when dependencies are built.
