file(REMOVE_RECURSE
  "liblapis_db.a"
)
