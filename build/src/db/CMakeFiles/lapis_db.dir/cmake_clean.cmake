file(REMOVE_RECURSE
  "CMakeFiles/lapis_db.dir/table.cc.o"
  "CMakeFiles/lapis_db.dir/table.cc.o.d"
  "CMakeFiles/lapis_db.dir/transitive_closure.cc.o"
  "CMakeFiles/lapis_db.dir/transitive_closure.cc.o.d"
  "liblapis_db.a"
  "liblapis_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
