
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/lapis_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/lapis_db.dir/table.cc.o.d"
  "/root/repo/src/db/transitive_closure.cc" "src/db/CMakeFiles/lapis_db.dir/transitive_closure.cc.o" "gcc" "src/db/CMakeFiles/lapis_db.dir/transitive_closure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
