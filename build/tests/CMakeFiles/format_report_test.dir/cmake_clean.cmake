file(REMOVE_RECURSE
  "CMakeFiles/format_report_test.dir/format_report_test.cc.o"
  "CMakeFiles/format_report_test.dir/format_report_test.cc.o.d"
  "format_report_test"
  "format_report_test.pdb"
  "format_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
