# Empty dependencies file for format_report_test.
# This may be replaced when dependencies are built.
