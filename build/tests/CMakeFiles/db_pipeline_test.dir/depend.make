# Empty dependencies file for db_pipeline_test.
# This may be replaced when dependencies are built.
