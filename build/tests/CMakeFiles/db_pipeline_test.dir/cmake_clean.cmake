file(REMOVE_RECURSE
  "CMakeFiles/db_pipeline_test.dir/db_pipeline_test.cc.o"
  "CMakeFiles/db_pipeline_test.dir/db_pipeline_test.cc.o.d"
  "db_pipeline_test"
  "db_pipeline_test.pdb"
  "db_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
