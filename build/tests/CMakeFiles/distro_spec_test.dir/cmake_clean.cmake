file(REMOVE_RECURSE
  "CMakeFiles/distro_spec_test.dir/distro_spec_test.cc.o"
  "CMakeFiles/distro_spec_test.dir/distro_spec_test.cc.o.d"
  "distro_spec_test"
  "distro_spec_test.pdb"
  "distro_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distro_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
