# Empty dependencies file for distro_spec_test.
# This may be replaced when dependencies are built.
