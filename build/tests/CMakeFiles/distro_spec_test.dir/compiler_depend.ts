# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for distro_spec_test.
