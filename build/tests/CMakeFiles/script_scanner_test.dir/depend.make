# Empty dependencies file for script_scanner_test.
# This may be replaced when dependencies are built.
