file(REMOVE_RECURSE
  "CMakeFiles/script_scanner_test.dir/script_scanner_test.cc.o"
  "CMakeFiles/script_scanner_test.dir/script_scanner_test.cc.o.d"
  "script_scanner_test"
  "script_scanner_test.pdb"
  "script_scanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
