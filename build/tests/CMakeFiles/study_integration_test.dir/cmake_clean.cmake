file(REMOVE_RECURSE
  "CMakeFiles/study_integration_test.dir/study_integration_test.cc.o"
  "CMakeFiles/study_integration_test.dir/study_integration_test.cc.o.d"
  "study_integration_test"
  "study_integration_test.pdb"
  "study_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
