
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/lapis_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lapis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lapis_db.dir/DependInfo.cmake"
  "/root/repo/build/src/package/CMakeFiles/lapis_package.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lapis_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/lapis_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/disasm/CMakeFiles/lapis_disasm.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/lapis_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lapis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
