# Empty compiler generated dependencies file for corpus_tables_test.
# This may be replaced when dependencies are built.
