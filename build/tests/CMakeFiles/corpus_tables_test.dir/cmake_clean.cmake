file(REMOVE_RECURSE
  "CMakeFiles/corpus_tables_test.dir/corpus_tables_test.cc.o"
  "CMakeFiles/corpus_tables_test.dir/corpus_tables_test.cc.o.d"
  "corpus_tables_test"
  "corpus_tables_test.pdb"
  "corpus_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
