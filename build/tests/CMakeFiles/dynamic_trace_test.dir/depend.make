# Empty dependencies file for dynamic_trace_test.
# This may be replaced when dependencies are built.
