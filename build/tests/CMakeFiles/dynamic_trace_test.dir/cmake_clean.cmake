file(REMOVE_RECURSE
  "CMakeFiles/dynamic_trace_test.dir/dynamic_trace_test.cc.o"
  "CMakeFiles/dynamic_trace_test.dir/dynamic_trace_test.cc.o.d"
  "dynamic_trace_test"
  "dynamic_trace_test.pdb"
  "dynamic_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
