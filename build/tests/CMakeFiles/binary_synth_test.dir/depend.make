# Empty dependencies file for binary_synth_test.
# This may be replaced when dependencies are built.
