file(REMOVE_RECURSE
  "CMakeFiles/binary_synth_test.dir/binary_synth_test.cc.o"
  "CMakeFiles/binary_synth_test.dir/binary_synth_test.cc.o.d"
  "binary_synth_test"
  "binary_synth_test.pdb"
  "binary_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
