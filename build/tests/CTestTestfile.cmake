# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/elf_test[1]_include.cmake")
include("/root/repo/build/tests/disasm_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/package_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_tables_test[1]_include.cmake")
include("/root/repo/build/tests/distro_spec_test[1]_include.cmake")
include("/root/repo/build/tests/binary_synth_test[1]_include.cmake")
include("/root/repo/build/tests/study_integration_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_trace_test[1]_include.cmake")
include("/root/repo/build/tests/db_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/format_report_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_io_test[1]_include.cmake")
include("/root/repo/build/tests/script_scanner_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/seccomp_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
