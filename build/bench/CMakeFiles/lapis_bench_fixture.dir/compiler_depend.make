# Empty compiler generated dependencies file for lapis_bench_fixture.
# This may be replaced when dependencies are built.
