file(REMOVE_RECURSE
  "liblapis_bench_fixture.a"
)
