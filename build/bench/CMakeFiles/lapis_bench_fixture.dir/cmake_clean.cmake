file(REMOVE_RECURSE
  "CMakeFiles/lapis_bench_fixture.dir/study_fixture.cc.o"
  "CMakeFiles/lapis_bench_fixture.dir/study_fixture.cc.o.d"
  "liblapis_bench_fixture.a"
  "liblapis_bench_fixture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapis_bench_fixture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
