# Empty dependencies file for lapis_bench_fixture.
# This may be replaced when dependencies are built.
