file(REMOVE_RECURSE
  "CMakeFiles/bench_release_diff.dir/bench_release_diff.cc.o"
  "CMakeFiles/bench_release_diff.dir/bench_release_diff.cc.o.d"
  "bench_release_diff"
  "bench_release_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_release_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
