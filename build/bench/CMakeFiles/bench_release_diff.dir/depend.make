# Empty dependencies file for bench_release_diff.
# This may be replaced when dependencies are built.
