file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_unused.dir/bench_tab3_unused.cc.o"
  "CMakeFiles/bench_tab3_unused.dir/bench_tab3_unused.cc.o.d"
  "bench_tab3_unused"
  "bench_tab3_unused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_unused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
