# Empty dependencies file for bench_tab3_unused.
# This may be replaced when dependencies are built.
