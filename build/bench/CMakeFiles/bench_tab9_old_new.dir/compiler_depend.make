# Empty compiler generated dependencies file for bench_tab9_old_new.
# This may be replaced when dependencies are built.
