file(REMOVE_RECURSE
  "CMakeFiles/bench_tab9_old_new.dir/bench_tab9_old_new.cc.o"
  "CMakeFiles/bench_tab9_old_new.dir/bench_tab9_old_new.cc.o.d"
  "bench_tab9_old_new"
  "bench_tab9_old_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab9_old_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
