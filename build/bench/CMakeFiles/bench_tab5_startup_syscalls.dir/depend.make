# Empty dependencies file for bench_tab5_startup_syscalls.
# This may be replaced when dependencies are built.
