file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_startup_syscalls.dir/bench_tab5_startup_syscalls.cc.o"
  "CMakeFiles/bench_tab5_startup_syscalls.dir/bench_tab5_startup_syscalls.cc.o.d"
  "bench_tab5_startup_syscalls"
  "bench_tab5_startup_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_startup_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
