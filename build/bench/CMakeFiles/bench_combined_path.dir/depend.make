# Empty dependencies file for bench_combined_path.
# This may be replaced when dependencies are built.
