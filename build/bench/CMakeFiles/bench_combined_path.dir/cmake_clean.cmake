file(REMOVE_RECURSE
  "CMakeFiles/bench_combined_path.dir/bench_combined_path.cc.o"
  "CMakeFiles/bench_combined_path.dir/bench_combined_path.cc.o.d"
  "bench_combined_path"
  "bench_combined_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combined_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
