file(REMOVE_RECURSE
  "CMakeFiles/bench_tab12_framework.dir/bench_tab12_framework.cc.o"
  "CMakeFiles/bench_tab12_framework.dir/bench_tab12_framework.cc.o.d"
  "bench_tab12_framework"
  "bench_tab12_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab12_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
