# Empty compiler generated dependencies file for bench_tab6_linux_systems.
# This may be replaced when dependencies are built.
