file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_linux_systems.dir/bench_tab6_linux_systems.cc.o"
  "CMakeFiles/bench_tab6_linux_systems.dir/bench_tab6_linux_systems.cc.o.d"
  "bench_tab6_linux_systems"
  "bench_tab6_linux_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_linux_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
