file(REMOVE_RECURSE
  "CMakeFiles/bench_ioctl_partial_support.dir/bench_ioctl_partial_support.cc.o"
  "CMakeFiles/bench_ioctl_partial_support.dir/bench_ioctl_partial_support.cc.o.d"
  "bench_ioctl_partial_support"
  "bench_ioctl_partial_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ioctl_partial_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
