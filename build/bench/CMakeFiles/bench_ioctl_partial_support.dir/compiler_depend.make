# Empty compiler generated dependencies file for bench_ioctl_partial_support.
# This may be replaced when dependencies are built.
