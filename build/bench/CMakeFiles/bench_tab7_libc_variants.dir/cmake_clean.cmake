file(REMOVE_RECURSE
  "CMakeFiles/bench_tab7_libc_variants.dir/bench_tab7_libc_variants.cc.o"
  "CMakeFiles/bench_tab7_libc_variants.dir/bench_tab7_libc_variants.cc.o.d"
  "bench_tab7_libc_variants"
  "bench_tab7_libc_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab7_libc_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
