# Empty dependencies file for bench_tab7_libc_variants.
# This may be replaced when dependencies are built.
