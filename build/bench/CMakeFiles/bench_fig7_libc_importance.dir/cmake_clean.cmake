file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_libc_importance.dir/bench_fig7_libc_importance.cc.o"
  "CMakeFiles/bench_fig7_libc_importance.dir/bench_fig7_libc_importance.cc.o.d"
  "bench_fig7_libc_importance"
  "bench_fig7_libc_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_libc_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
