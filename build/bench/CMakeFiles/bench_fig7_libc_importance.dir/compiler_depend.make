# Empty compiler generated dependencies file for bench_fig7_libc_importance.
# This may be replaced when dependencies are built.
