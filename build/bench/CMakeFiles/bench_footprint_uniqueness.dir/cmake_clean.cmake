file(REMOVE_RECURSE
  "CMakeFiles/bench_footprint_uniqueness.dir/bench_footprint_uniqueness.cc.o"
  "CMakeFiles/bench_footprint_uniqueness.dir/bench_footprint_uniqueness.cc.o.d"
  "bench_footprint_uniqueness"
  "bench_footprint_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_footprint_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
