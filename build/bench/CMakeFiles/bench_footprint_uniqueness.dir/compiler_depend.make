# Empty compiler generated dependencies file for bench_footprint_uniqueness.
# This may be replaced when dependencies are built.
