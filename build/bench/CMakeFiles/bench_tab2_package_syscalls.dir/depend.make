# Empty dependencies file for bench_tab2_package_syscalls.
# This may be replaced when dependencies are built.
