# Empty compiler generated dependencies file for bench_tab1_library_syscalls.
# This may be replaced when dependencies are built.
