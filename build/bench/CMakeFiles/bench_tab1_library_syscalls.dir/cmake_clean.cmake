file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_library_syscalls.dir/bench_tab1_library_syscalls.cc.o"
  "CMakeFiles/bench_tab1_library_syscalls.dir/bench_tab1_library_syscalls.cc.o.d"
  "bench_tab1_library_syscalls"
  "bench_tab1_library_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_library_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
