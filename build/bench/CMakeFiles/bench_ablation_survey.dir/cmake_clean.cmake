file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_survey.dir/bench_ablation_survey.cc.o"
  "CMakeFiles/bench_ablation_survey.dir/bench_ablation_survey.cc.o.d"
  "bench_ablation_survey"
  "bench_ablation_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
