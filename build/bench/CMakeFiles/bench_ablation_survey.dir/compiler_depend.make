# Empty compiler generated dependencies file for bench_ablation_survey.
# This may be replaced when dependencies are built.
