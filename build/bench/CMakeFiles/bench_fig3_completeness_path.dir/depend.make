# Empty dependencies file for bench_fig3_completeness_path.
# This may be replaced when dependencies are built.
