file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_completeness_path.dir/bench_fig3_completeness_path.cc.o"
  "CMakeFiles/bench_fig3_completeness_path.dir/bench_fig3_completeness_path.cc.o.d"
  "bench_fig3_completeness_path"
  "bench_fig3_completeness_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_completeness_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
