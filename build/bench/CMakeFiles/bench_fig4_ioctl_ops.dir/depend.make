# Empty dependencies file for bench_fig4_ioctl_ops.
# This may be replaced when dependencies are built.
