# Empty dependencies file for bench_tab4_stages.
# This may be replaced when dependencies are built.
