file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_stages.dir/bench_tab4_stages.cc.o"
  "CMakeFiles/bench_tab4_stages.dir/bench_tab4_stages.cc.o.d"
  "bench_tab4_stages"
  "bench_tab4_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
