file(REMOVE_RECURSE
  "CMakeFiles/bench_tab11_power_simplicity.dir/bench_tab11_power_simplicity.cc.o"
  "CMakeFiles/bench_tab11_power_simplicity.dir/bench_tab11_power_simplicity.cc.o.d"
  "bench_tab11_power_simplicity"
  "bench_tab11_power_simplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab11_power_simplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
