# Empty compiler generated dependencies file for bench_tab11_power_simplicity.
# This may be replaced when dependencies are built.
