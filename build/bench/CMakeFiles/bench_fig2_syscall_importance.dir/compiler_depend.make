# Empty compiler generated dependencies file for bench_fig2_syscall_importance.
# This may be replaced when dependencies are built.
