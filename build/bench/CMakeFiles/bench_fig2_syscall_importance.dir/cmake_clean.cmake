file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_syscall_importance.dir/bench_fig2_syscall_importance.cc.o"
  "CMakeFiles/bench_fig2_syscall_importance.dir/bench_fig2_syscall_importance.cc.o.d"
  "bench_fig2_syscall_importance"
  "bench_fig2_syscall_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_syscall_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
