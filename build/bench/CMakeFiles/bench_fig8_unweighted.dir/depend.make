# Empty dependencies file for bench_fig8_unweighted.
# This may be replaced when dependencies are built.
