file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_unweighted.dir/bench_fig8_unweighted.cc.o"
  "CMakeFiles/bench_fig8_unweighted.dir/bench_fig8_unweighted.cc.o.d"
  "bench_fig8_unweighted"
  "bench_fig8_unweighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_unweighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
