# Empty dependencies file for bench_fig5_fcntl_prctl.
# This may be replaced when dependencies are built.
