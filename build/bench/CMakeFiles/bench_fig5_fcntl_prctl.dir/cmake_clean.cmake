file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fcntl_prctl.dir/bench_fig5_fcntl_prctl.cc.o"
  "CMakeFiles/bench_fig5_fcntl_prctl.dir/bench_fig5_fcntl_prctl.cc.o.d"
  "bench_fig5_fcntl_prctl"
  "bench_fig5_fcntl_prctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fcntl_prctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
