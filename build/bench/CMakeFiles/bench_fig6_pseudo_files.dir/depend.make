# Empty dependencies file for bench_fig6_pseudo_files.
# This may be replaced when dependencies are built.
