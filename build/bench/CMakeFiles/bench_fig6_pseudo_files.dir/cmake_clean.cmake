file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pseudo_files.dir/bench_fig6_pseudo_files.cc.o"
  "CMakeFiles/bench_fig6_pseudo_files.dir/bench_fig6_pseudo_files.cc.o.d"
  "bench_fig6_pseudo_files"
  "bench_fig6_pseudo_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pseudo_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
