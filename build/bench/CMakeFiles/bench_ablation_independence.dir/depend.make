# Empty dependencies file for bench_ablation_independence.
# This may be replaced when dependencies are built.
