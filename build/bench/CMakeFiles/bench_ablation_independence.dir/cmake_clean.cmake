file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_independence.dir/bench_ablation_independence.cc.o"
  "CMakeFiles/bench_ablation_independence.dir/bench_ablation_independence.cc.o.d"
  "bench_ablation_independence"
  "bench_ablation_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
