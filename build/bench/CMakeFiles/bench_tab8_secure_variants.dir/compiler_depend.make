# Empty compiler generated dependencies file for bench_tab8_secure_variants.
# This may be replaced when dependencies are built.
