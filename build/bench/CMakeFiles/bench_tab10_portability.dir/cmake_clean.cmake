file(REMOVE_RECURSE
  "CMakeFiles/bench_tab10_portability.dir/bench_tab10_portability.cc.o"
  "CMakeFiles/bench_tab10_portability.dir/bench_tab10_portability.cc.o.d"
  "bench_tab10_portability"
  "bench_tab10_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab10_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
