# Empty dependencies file for bench_tab10_portability.
# This may be replaced when dependencies are built.
