file(REMOVE_RECURSE
  "CMakeFiles/bench_libc_restructure.dir/bench_libc_restructure.cc.o"
  "CMakeFiles/bench_libc_restructure.dir/bench_libc_restructure.cc.o.d"
  "bench_libc_restructure"
  "bench_libc_restructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_libc_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
