# Empty compiler generated dependencies file for bench_libc_restructure.
# This may be replaced when dependencies are built.
