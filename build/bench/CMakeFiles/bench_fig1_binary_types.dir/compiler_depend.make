# Empty compiler generated dependencies file for bench_fig1_binary_types.
# This may be replaced when dependencies are built.
