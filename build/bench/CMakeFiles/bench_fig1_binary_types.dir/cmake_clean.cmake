file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_binary_types.dir/bench_fig1_binary_types.cc.o"
  "CMakeFiles/bench_fig1_binary_types.dir/bench_fig1_binary_types.cc.o.d"
  "bench_fig1_binary_types"
  "bench_fig1_binary_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_binary_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
